"""Unit tests for the motivation analyses (Fig. 3a/3b)."""

import numpy as np
import pytest

from repro.analysis import analyse_page_fragmentation, track_token_importance
from repro.baselines import top_k_indices


class TestImportanceTracking:
    def test_trace_shape_and_bounds(self, tiny_model, short_prompt):
        positions = np.array([10, 40, 80])
        trace = track_token_importance(
            tiny_model, short_prompt, positions, num_steps=6, num_sink_tokens=4
        )
        assert trace.rankings.shape == (6, 3)
        assert trace.rankings.min() >= 0
        np.testing.assert_array_equal(trace.token_positions, positions)

    def test_rank_variation_nonnegative(self, tiny_model, short_prompt):
        trace = track_token_importance(
            tiny_model, short_prompt, [5, 50], num_steps=5, num_sink_tokens=4
        )
        variation = trace.rank_variation()
        assert np.all(variation >= 0)
        low, high = trace.rank_range(0)
        assert low <= high

    def test_importance_fluctuates(self, tiny_model, short_prompt):
        """The paper's motivating observation: rankings change across steps."""
        trace = track_token_importance(
            tiny_model, short_prompt, np.arange(10, 90, 10), num_steps=12, num_sink_tokens=4
        )
        assert trace.rank_variation().max() > 0


class TestFragmentation:
    def test_uniform_scores_spread_over_pages(self, rng):
        score_vectors = [rng.normal(size=256) for _ in range(4)]
        stats = analyse_page_fragmentation(score_vectors, top_k=16, page_size=16)
        assert 1.0 <= stats.important_per_occupied_page <= 16.0
        assert 0.0 < stats.occupied_page_fraction <= 1.0
        assert stats.histogram.sum() > 0
        assert stats.waste_factor >= 1.0

    def test_clustered_scores_fill_pages(self):
        """If all important tokens sit in one page, fragmentation is minimal."""
        scores = np.zeros(128)
        scores[32:48] = 10.0  # exactly one page of 16
        stats = analyse_page_fragmentation([scores], top_k=16, page_size=16)
        assert stats.important_per_occupied_page == pytest.approx(16.0)
        assert stats.waste_factor == pytest.approx(1.0)

    def test_scattered_scores_fragment(self):
        """Important tokens spaced one per page give the worst waste factor."""
        scores = np.zeros(256)
        scores[::16] = 5.0
        stats = analyse_page_fragmentation([scores], top_k=16, page_size=16)
        assert stats.important_per_occupied_page == pytest.approx(1.0)
        assert stats.waste_factor == pytest.approx(16.0)

    def test_consistency_with_topk(self):
        scores = np.arange(64, dtype=float)
        stats = analyse_page_fragmentation([scores], top_k=8, page_size=16)
        important = top_k_indices(scores, 8)
        assert stats.top_k == 8
        assert important.min() == 56  # the last 8 positions

    def test_validates_inputs(self, rng):
        with pytest.raises(ValueError):
            analyse_page_fragmentation([], top_k=4)
        with pytest.raises(ValueError):
            analyse_page_fragmentation([rng.normal(size=16)], top_k=0)
