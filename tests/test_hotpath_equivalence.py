"""Equivalence suite of the hot-path vectorization overhaul.

Every vectorized hot path must reproduce its historical scalar/per-head
counterpart exactly:

* batched grouped-GQA attention (prefill and decode, including the padded
  variable-length decode path) vs. the seed per-head loops;
* batched k-means (assignment GEMM + fused update over all heads) vs. the
  per-head :func:`~repro.core.clustering.kmeans_cluster`;
* chunked prefill with chunk >= prompt length vs. monolithic prefill,
  token for token, and small-chunk prefill producing identical tokens;
* the cached RoPE tables vs. direct cos/sin evaluation;
* cached centroid norms vs. renormalisation.

Plus the instrumentation-overhead guarantee: with recall/trace recording
disabled, the engine performs zero true-score GEMMs and materialises no
attention weights.
"""

import numpy as np
import pytest

from repro.baselines.base import merge_group_queries
from repro.core.clustering import kmeans_cluster, kmeans_cluster_batch, pairwise_scores
from repro.core.clusterkv import ClusterKVLayerState
from repro.core.config import ClusterKVConfig
from repro.core.metadata import ClusterMetadata
from repro.core.selection import score_centroids, select_clusters
from repro.model import (
    GenerationConfig,
    InferenceEngine,
    ModelConfig,
    TransformerModel,
    get_model_config,
)
from repro.model.attention import full_causal_attention, selected_attention
from repro.model.tensor_ops import (
    apply_rope,
    causal_mask,
    masked_fill,
    rope_frequencies,
    softmax,
)
from repro.perf import count_ops
from repro.serving import BatchedEngine, SchedulerConfig


# ----------------------------------------------------------------------
# reference implementations (the seed's scalar loops, kept verbatim here)
# ----------------------------------------------------------------------
def _reference_full_attention(queries, keys, values, scale):
    """The seed's per-head prefill attention loop."""
    n_heads, t_q, head_dim = queries.shape
    n_kv_heads, t_k, _ = keys.shape
    group = n_heads // n_kv_heads
    mask = causal_mask(t_q, t_k)
    outputs = np.empty((n_heads, t_q, head_dim))
    all_weights = np.empty((n_heads, t_q, t_k))
    for head in range(n_heads):
        kv_head = head // group
        scores = (queries[head] @ keys[kv_head].T) * scale
        scores = masked_fill(scores, mask)
        weights = softmax(scores, axis=-1)
        outputs[head] = weights @ values[kv_head]
        all_weights[head] = weights
    stacked = np.transpose(outputs, (1, 0, 2)).reshape(t_q, n_heads * head_dim)
    return stacked, all_weights


def _reference_selected_attention(queries, keys_per_head, values_per_head, scale):
    """The seed's per-kv-head decode attention loop."""
    n_heads, head_dim = queries.shape
    n_kv_heads = len(keys_per_head)
    group = n_heads // n_kv_heads
    output = np.empty((n_heads, head_dim))
    weights_list = []
    for kv_head in range(n_kv_heads):
        group_queries = queries[kv_head * group : (kv_head + 1) * group]
        scores = (group_queries @ keys_per_head[kv_head].T) * scale
        weights = softmax(scores, axis=-1)
        output[kv_head * group : (kv_head + 1) * group] = (
            weights @ values_per_head[kv_head]
        )
        weights_list.extend(weights[i] for i in range(group))
    return output.reshape(-1), weights_list


class TestVectorizedAttentionEquivalence:
    def test_full_causal_attention_matches_per_head_loop(self, rng):
        """(a) Batched GQA prefill attention is bit-identical to the loop."""
        for n_heads, n_kv_heads, t_q, t_k in [(8, 4, 5, 9), (8, 2, 1, 64), (4, 4, 7, 7)]:
            q = rng.normal(size=(n_heads, t_q, 16))
            k = rng.normal(size=(n_kv_heads, t_k, 16))
            v = rng.normal(size=(n_kv_heads, t_k, 16))
            got = full_causal_attention(q, k, v, 0.25, return_weights=True)
            expected, expected_weights = _reference_full_attention(q, k, v, 0.25)
            assert np.array_equal(got.output, expected)
            assert np.array_equal(np.stack(got.weights), expected_weights)

    def test_selected_attention_matches_per_head_loop(self, rng):
        """(a) Batched decode attention, equal and ragged selection sizes."""
        for sizes in ([5, 5, 5, 5], [5, 3, 7, 2], [1, 1, 1, 1], [64, 1, 32, 7]):
            q = rng.normal(size=(8, 16))
            keys = [rng.normal(size=(s, 16)) for s in sizes]
            values = [rng.normal(size=(s, 16)) for s in sizes]
            got = selected_attention(q, keys, values, 0.25)
            expected, expected_weights = _reference_selected_attention(
                q, keys, values, 0.25
            )
            assert np.array_equal(got.output, expected)
            assert all(
                np.array_equal(a, b) for a, b in zip(got.weights, expected_weights)
            )


class TestBatchedKMeansEquivalence:
    def test_kmeans_batch_matches_per_head(self, rng):
        """(c) Batched k-means: labels, centroids, iterations all identical."""
        for metric in ("cosine", "ip", "l2"):
            keys = rng.normal(size=(4, 120, 8))
            batch = kmeans_cluster_batch(keys, 10, metric=metric, max_iters=20, seed=9)
            for head in range(4):
                solo = kmeans_cluster(
                    keys[head], 10, metric=metric, max_iters=20, seed=9 + head
                )
                assert np.array_equal(solo.labels, batch[head].labels)
                assert np.array_equal(solo.centroids, batch[head].centroids)
                assert solo.n_iters == batch[head].n_iters
                assert solo.converged == batch[head].converged

    def test_clusterkv_state_selection_matches_select_clusters(self, rng):
        """The layer state's batched selection equals per-head select_clusters."""
        for metric, trim in [("ip", "order"), ("cosine", "order"), ("ip", "centroid")]:
            config = ClusterKVConfig(
                tokens_per_cluster=8,
                decode_window=8,
                decode_clusters=2,
                score_metric=metric,
                trim_policy=trim,
            )
            state = ClusterKVLayerState(0, 3, 8, config, num_sink_tokens=4)
            state.observe_prefill(rng.normal(size=(3, 60, 8)))
            for step in range(16):
                state.observe_decode(rng.normal(size=(3, 1, 8)))
                queries = rng.normal(size=(3, 2, 8))
                selections = state.select(queries, 24, step)
                merged = merge_group_queries(queries)
                budget = min(24, state.context_length)
                pending = state.context_length - state._pending_start
                cluster_budget = max(0, budget - state._num_sinks_held - pending)
                for head in range(3):
                    reference = select_clusters(
                        merged[head],
                        state.metadata[head],
                        cluster_budget,
                        score_metric=metric,
                        trim_policy=trim,
                        keys=state._all_keys()[head] if trim == "centroid" else None,
                    )
                    expected = np.concatenate(
                        [
                            np.arange(state._num_sinks_held),
                            reference.token_indices,
                            np.arange(state._pending_start, state.context_length),
                        ]
                    )
                    assert np.array_equal(selections[head], expected)


class TestChunkedPrefillEquivalence:
    @pytest.fixture()
    def serve_model(self):
        return TransformerModel(get_model_config("serve-sim"))

    def _run(self, model, chunk, prompts):
        engine = BatchedEngine(
            model,
            "clusterkv",
            GenerationConfig(
                budget=32, max_new_tokens=12, num_full_layers=1, num_sink_tokens=8
            ),
            SchedulerConfig(
                max_batch_size=4, max_prefills_per_step=4, prefill_chunk_tokens=chunk
            ),
        )
        for idx, prompt in enumerate(prompts):
            engine.submit(prompt, request_id=f"r{idx}")
        return engine.run()

    def test_full_chunk_is_token_identical(self, serve_model, rng):
        """(b) chunk >= prompt length: identical tokens AND step counts."""
        prompts = [
            rng.integers(4, 2048, size=n).astype(np.int64) for n in (120, 40, 64)
        ]
        monolithic = self._run(serve_model, None, prompts)
        full_chunk = self._run(serve_model, 10_000, prompts)
        assert monolithic.engine_steps == full_chunk.engine_steps
        for rid, result in monolithic.results().items():
            other = full_chunk.results()[rid]
            assert result.output_ids == other.output_ids
            assert result.output_logprobs == other.output_logprobs

    def test_small_chunks_produce_identical_tokens(self, serve_model, rng):
        """Chunked prefill attends the same math: same tokens, more steps."""
        prompts = [
            rng.integers(4, 2048, size=n).astype(np.int64) for n in (120, 40, 64)
        ]
        monolithic = self._run(serve_model, None, prompts)
        chunked = self._run(serve_model, 16, prompts)
        assert chunked.engine_steps > monolithic.engine_steps
        for rid, result in monolithic.results().items():
            assert result.output_ids == chunked.results()[rid].output_ids

    def test_chunked_prefill_staggers_first_tokens(self, serve_model, rng):
        """Long prompts take several steps to first token under chunking."""
        prompts = [rng.integers(4, 2048, size=200).astype(np.int64)]
        chunked = self._run(serve_model, 32, prompts)
        timings = chunked.request_timings()["r0"]
        # ceil(200 / 32) = 7 chunk steps; first token lands on the last one.
        assert timings["first_token_step"] == 6.0

    def test_engine_core_rejects_bad_chunks(self, serve_model):
        """Out-of-order or empty chunk ranges are errors."""
        from repro.model.generation import EngineCore, SequenceState
        from repro.baselines.full import FullKVSelector
        from repro.memory import OffloadManager

        gen = GenerationConfig(max_new_tokens=4)
        core = EngineCore(serve_model, gen)
        seq = SequenceState(serve_model, FullKVSelector(), gen, OffloadManager())
        prompt = np.arange(4, 20, dtype=np.int64)
        with pytest.raises(ValueError):
            core.prefill_chunk(seq, prompt, 4, 4)
        core.prefill_chunk(seq, prompt, 0, 8)
        with pytest.raises(RuntimeError):
            core.prefill_chunk(seq, prompt, 4, 12)  # not where the seq is
        assert core.prefill_chunk(seq, prompt, 8, 16) is not None


class TestBatchOneEquivalence:
    def test_batch_one_serving_matches_single_sequence(self, rng):
        """Batch-1 serving is bit-identical to the InferenceEngine."""
        model = TransformerModel(get_model_config("serve-sim"))
        prompt = rng.integers(4, 2048, size=48).astype(np.int64)
        gen = GenerationConfig(
            budget=24, max_new_tokens=10, num_full_layers=1, num_sink_tokens=8
        )
        solo = InferenceEngine(model, None, gen)
        solo_result = solo.generate(prompt)
        engine = BatchedEngine(
            model, None, gen, SchedulerConfig(max_batch_size=1)
        )
        engine.submit(prompt, request_id="one")
        report = engine.run()
        batched = report.results()["one"]
        assert batched.output_ids == solo_result.output_ids
        assert batched.output_logprobs == solo_result.output_logprobs


class TestRopeCacheEquivalence:
    def test_cached_tables_match_direct_evaluation(self, rng):
        """Integer-position RoPE through the cache equals direct cos/sin."""
        inv_freq = rope_frequencies(16)
        x = rng.normal(size=(4, 6, 16))
        for positions in (
            np.arange(6),
            np.arange(100, 106),
            np.asarray([3, 17, 2, 999, 0, 4], dtype=np.int64),
        ):
            got = apply_rope(x, positions, inv_freq)
            angles = np.outer(positions.astype(np.float64), inv_freq)
            cos, sin = np.cos(angles), np.sin(angles)
            x1, x2 = x[..., :8], x[..., 8:]
            expected = np.concatenate([x1 * cos - x2 * sin, x2 * cos + x1 * sin], axis=-1)
            assert np.array_equal(got, expected)

    def test_float_positions_fall_back(self, rng):
        """Non-integer positions bypass the table and still work."""
        inv_freq = rope_frequencies(8)
        x = rng.normal(size=(2, 3, 8))
        positions = np.asarray([0.5, 1.25, 7.75])
        got = apply_rope(x, positions, inv_freq)
        assert got.shape == x.shape
        assert np.all(np.isfinite(got))


class TestCentroidNormCache:
    def test_metadata_norms_match_recomputation(self, rng):
        """Cached norms equal np.linalg.norm of the live centroids."""
        from repro.core.clustering import ClusteringResult

        metadata = ClusterMetadata(8)
        for offset in (0, 30):
            keys = rng.normal(size=(30, 8))
            result = kmeans_cluster(keys, 5, seed=offset)
            metadata.append_clustering(result, offset)
        assert np.array_equal(
            metadata.centroid_norms, np.linalg.norm(metadata.centroids, axis=1)
        )

    def test_cosine_scoring_with_cached_norms_is_identical(self, rng):
        """score_centroids / pairwise_scores: cached norms change nothing."""
        centroids = rng.normal(size=(7, 8))
        norms = np.linalg.norm(centroids, axis=1)
        query = rng.normal(size=8)
        keys = rng.normal(size=(12, 8))
        assert np.array_equal(
            score_centroids(query, centroids, "cosine"),
            score_centroids(query, centroids, "cosine", centroid_norms=norms),
        )
        assert np.array_equal(
            pairwise_scores(keys, centroids, "cosine"),
            pairwise_scores(keys, centroids, "cosine", centroid_norms=norms),
        )


class TestInstrumentationOverhead:
    def _generate(self, record_true_scores, record_attention_trace):
        model = TransformerModel(
            ModelConfig(
                name="instr-test",
                vocab_size=128,
                d_model=32,
                n_layers=2,
                n_heads=4,
                n_kv_heads=2,
                d_ff=64,
                use_copy_head=False,
                seed=5,
            )
        )
        gen = GenerationConfig(
            budget=12,
            max_new_tokens=6,
            num_full_layers=1,
            num_sink_tokens=4,
            record_true_scores=record_true_scores,
            record_attention_trace=record_attention_trace,
        )
        from repro.policies import build_policy

        engine = InferenceEngine(model, build_policy("clusterkv"), gen)
        prompt = np.random.default_rng(0).integers(4, 128, size=40).astype(np.int64)
        with count_ops() as ops:
            result = engine.generate(prompt)
        return result, ops

    def test_disabled_recording_does_zero_true_score_gemms(self):
        """Satellite guarantee: the disabled path never scores the full context."""
        result, ops = self._generate(False, False)
        assert ops.get("gemm.true_score") == 0
        assert result.recall_records == []
        assert result.attention_trace == []

    def test_enabled_recording_scores_and_records(self):
        """Sanity check: enabling the flags actually does the extra work."""
        result, ops = self._generate(True, True)
        assert ops.get("gemm.true_score") > 0
        assert result.recall_records
        assert result.attention_trace
        # Trace entries carry per-kv-head weights (they were materialised).
        assert all(record.attention_weights for record in result.attention_trace)
