"""Property-based tests (hypothesis) for core data structures and invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.baselines import top_k_indices
from repro.core.clustering import kmeans_cluster
from repro.core.metadata import ClusterMetadata
from repro.core.selection import select_clusters
from repro.core.cache import ClusterCache
from repro.metrics import qa_f1_score, rouge_l_score
from repro.model.tensor_ops import softmax

# Keep hypothesis runs short: the functions under test are numerical and each
# example is cheap, but CI time still matters.
SETTINGS = settings(max_examples=40, deadline=None)


finite_floats = st.floats(
    min_value=-50.0, max_value=50.0, allow_nan=False, allow_infinity=False
)


@SETTINGS
@given(arrays(np.float64, st.integers(1, 40), elements=finite_floats))
def test_softmax_is_a_distribution(x):
    out = softmax(x)
    assert np.all(out >= 0)
    assert np.isclose(out.sum(), 1.0)


@SETTINGS
@given(
    arrays(np.float64, st.integers(1, 60), elements=finite_floats),
    st.integers(min_value=0, max_value=80),
)
def test_top_k_indices_properties(scores, k):
    indices = top_k_indices(scores, k)
    expected = min(k, scores.shape[0])
    assert indices.shape[0] == expected
    assert np.all(np.diff(indices) > 0) or indices.shape[0] <= 1
    if expected and expected < scores.shape[0]:
        chosen = set(indices.tolist())
        worst_chosen = min(scores[i] for i in chosen)
        best_rest = max(scores[i] for i in range(scores.shape[0]) if i not in chosen)
        assert worst_chosen >= best_rest - 1e-12


@SETTINGS
@given(
    st.integers(min_value=2, max_value=60),
    st.integers(min_value=1, max_value=8),
    st.integers(min_value=2, max_value=8),
    st.sampled_from(["cosine", "l2", "ip"]),
    st.integers(min_value=0, max_value=10_000),
)
def test_kmeans_invariants(num_keys, n_clusters, dim, metric, seed):
    rng = np.random.default_rng(seed)
    keys = rng.normal(size=(num_keys, dim))
    result = kmeans_cluster(keys, n_clusters, metric=metric, seed=seed)
    # Every key gets a label within range; cluster sizes sum to the key count.
    assert result.labels.shape == (num_keys,)
    assert result.labels.min() >= 0
    assert result.labels.max() < result.n_clusters
    assert result.cluster_sizes().sum() == num_keys
    assert result.n_clusters <= min(n_clusters, num_keys)
    assert np.all(np.isfinite(result.centroids))


@SETTINGS
@given(
    st.lists(st.integers(min_value=0, max_value=5), min_size=1, max_size=80),
    st.integers(min_value=0, max_value=120),
    st.integers(min_value=0, max_value=10_000),
)
def test_cluster_selection_invariants(labels, budget, seed):
    """Selection never exceeds the budget (when clusters cover it) and
    returns valid, unique, sorted token indices."""
    labels = np.asarray(labels, dtype=np.int64)
    n_clusters = int(labels.max()) + 1
    rng = np.random.default_rng(seed)
    centroids = rng.normal(size=(n_clusters, 4))
    from repro.core.clustering import ClusteringResult

    meta = ClusterMetadata(head_dim=4)
    meta.append_clustering(
        ClusteringResult(labels=labels, centroids=centroids, n_iters=1, converged=True),
        token_offset=0,
    )
    query = rng.normal(size=4)
    outcome = select_clusters(query, meta, budget)
    indices = outcome.token_indices
    assert indices.shape[0] == min(budget, labels.shape[0])
    assert len(set(indices.tolist())) == indices.shape[0]
    if indices.shape[0]:
        assert indices.min() >= 0
        assert indices.max() < labels.shape[0]
        assert np.all(np.diff(indices) > 0)


@SETTINGS
@given(
    st.lists(
        st.lists(st.integers(min_value=0, max_value=20), min_size=0, max_size=6),
        min_size=1,
        max_size=30,
    ),
    st.integers(min_value=0, max_value=3),
)
def test_cluster_cache_hit_rate_bounds(steps, history):
    """Accumulated hit rate is always within [0, 1] and hits never exceed
    what was previously selected."""
    cache = ClusterCache(history=history)
    previously_selected: set[int] = set()
    for step_labels in steps:
        labels = np.asarray(sorted(set(step_labels)), dtype=np.int64)
        tokens = {int(label): int(label) % 5 + 1 for label in labels}
        lookup = cache.lookup(labels, tokens)
        assert set(lookup.hit_labels.tolist()).issubset(previously_selected)
        cache.update(labels)
        previously_selected |= set(labels.tolist())
    assert 0.0 <= cache.hit_rate <= 1.0


words = st.lists(
    st.sampled_from([f"w{i}" for i in range(12)]), min_size=0, max_size=12
).map(" ".join)


@SETTINGS
@given(words, words)
def test_f1_and_rouge_bounds(prediction, reference):
    f1 = qa_f1_score(prediction, reference)
    rouge = rouge_l_score(prediction, reference)
    assert 0.0 <= f1 <= 1.0
    assert 0.0 <= rouge <= 1.0
    # Identity gives a perfect score.
    assert qa_f1_score(reference, reference) in (1.0,)
    assert rouge_l_score(reference, reference) in (1.0,)


@SETTINGS
@given(words)
def test_f1_identity(text):
    assert qa_f1_score(text, text) == 1.0
