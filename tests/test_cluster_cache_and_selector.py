"""Unit tests for the cluster cache and the full ClusterKV selector state."""

import numpy as np
import pytest

from repro.core import ClusterCache, ClusterKVConfig, ClusterKVSelector
from repro.core.clusterkv import ClusterKVLayerState
from repro.memory import TierKind


class TestClusterCache:
    def test_first_lookup_is_all_misses(self):
        cache = ClusterCache(history=1)
        lookup = cache.lookup(np.array([1, 2]), {1: 5, 2: 3})
        assert lookup.hit_tokens == 0
        assert lookup.miss_tokens == 8
        assert lookup.hit_rate == 0.0

    def test_repeat_selection_hits(self):
        cache = ClusterCache(history=1)
        cache.lookup(np.array([1, 2]), {1: 5, 2: 3})
        cache.update(np.array([1, 2]))
        lookup = cache.lookup(np.array([2, 3]), {2: 3, 3: 4})
        assert lookup.hit_tokens == 3
        assert lookup.miss_tokens == 4
        np.testing.assert_array_equal(lookup.hit_labels, [2])
        np.testing.assert_array_equal(lookup.miss_labels, [3])

    def test_history_window_eviction(self):
        cache = ClusterCache(history=1)
        cache.update(np.array([1]))
        cache.update(np.array([2]))  # evicts the step that selected cluster 1
        lookup = cache.lookup(np.array([1]), {1: 2})
        assert lookup.hit_tokens == 0

    def test_history_two_keeps_two_steps(self):
        cache = ClusterCache(history=2)
        cache.update(np.array([1]))
        cache.update(np.array([2]))
        assert cache.cached_labels == {1, 2}
        lookup = cache.lookup(np.array([1, 2]), {1: 1, 2: 1})
        assert lookup.hit_tokens == 2

    def test_disabled_cache(self):
        cache = ClusterCache(history=0)
        cache.update(np.array([1]))
        assert cache.cached_labels == set()
        lookup = cache.lookup(np.array([1]), {1: 4})
        assert lookup.hit_tokens == 0

    def test_cumulative_hit_rate(self):
        cache = ClusterCache(history=1)
        cache.lookup(np.array([0]), {0: 4})
        cache.update(np.array([0]))
        cache.lookup(np.array([0]), {0: 4})
        assert cache.hit_rate == pytest.approx(0.5)

    def test_reset(self):
        cache = ClusterCache(history=1)
        cache.update(np.array([5]))
        cache.lookup(np.array([5]), {5: 2})
        cache.reset()
        assert cache.cached_labels == set()
        assert cache.hit_rate == 0.0


def _make_state(n_kv_heads=2, head_dim=8, **config_overrides):
    defaults = dict(
        tokens_per_cluster=8,
        decode_window=6,
        decode_clusters=2,
        num_sink_tokens=4,
        kmeans_seed=0,
    )
    defaults.update(config_overrides)
    config = ClusterKVConfig(**defaults)
    return ClusterKVLayerState(2, n_kv_heads, head_dim, config), config


class TestClusterKVLayerState:
    def test_prefill_builds_clusters(self, rng):
        state, config = _make_state()
        keys = rng.normal(size=(2, 64, 8))
        state.observe_prefill(keys)
        expected_clusters = config.num_prefill_clusters(64 - 4)
        assert state.num_clusters(0) == expected_clusters
        assert state.context_length == 64
        assert state.stats.build_flops > 0

    def test_selection_respects_budget_and_bounds(self, rng):
        state, _ = _make_state()
        state.observe_prefill(rng.normal(size=(2, 64, 8)))
        queries = rng.normal(size=(2, 1, 8))
        selections = state.select(queries, budget=16, step=0)
        assert len(selections) == 2
        for indices in selections:
            assert indices.shape[0] <= 16
            assert indices.min() >= 0
            assert indices.max() < 64
            assert np.all(np.diff(indices) > 0)  # sorted and unique

    def test_sinks_always_selected(self, rng):
        state, _ = _make_state()
        state.observe_prefill(rng.normal(size=(2, 64, 8)))
        selections = state.select(rng.normal(size=(2, 1, 8)), budget=16, step=0)
        for indices in selections:
            assert set(range(4)).issubset(set(indices.tolist()))

    def test_decode_tokens_visible_before_clustering(self, rng):
        state, _ = _make_state()
        state.observe_prefill(rng.normal(size=(2, 64, 8)))
        state.observe_decode(rng.normal(size=(2, 1, 8)))
        assert state.num_pending_decode_tokens == 1
        selections = state.select(rng.normal(size=(2, 1, 8)), budget=16, step=0)
        for indices in selections:
            assert 64 in indices.tolist()  # the newly decoded token

    def test_decode_window_triggers_clustering(self, rng):
        state, config = _make_state()
        state.observe_prefill(rng.normal(size=(2, 64, 8)))
        before = state.num_clusters(0)
        for _ in range(config.decode_window):
            state.observe_decode(rng.normal(size=(2, 1, 8)))
        assert state.num_pending_decode_tokens == 0
        assert state.num_clusters(0) == before + config.decode_clusters

    def test_cache_hits_accumulate_on_repeated_queries(self, rng):
        state, _ = _make_state()
        state.observe_prefill(rng.normal(size=(2, 64, 8)))
        query = rng.normal(size=(2, 1, 8))
        state.select(query, budget=24, step=0)
        state.select(query, budget=24, step=1)
        # The same query selects the same clusters, so the second step is a hit.
        assert state.stats.cache_hit_tokens > 0
        assert state.cache_hit_rate() > 0.0

    def test_fetched_tokens_counted_for_misses(self, rng):
        state, _ = _make_state()
        state.observe_prefill(rng.normal(size=(2, 64, 8)))
        state.select(rng.normal(size=(2, 1, 8)), budget=24, step=0)
        assert state.stats.fetched_tokens == state.stats.cache_miss_tokens
        assert state.stats.fetched_tokens > 0

    def test_prefill_twice_raises(self, rng):
        state, _ = _make_state()
        state.observe_prefill(rng.normal(size=(2, 16, 8)))
        with pytest.raises(RuntimeError):
            state.observe_prefill(rng.normal(size=(2, 16, 8)))

    def test_decode_before_prefill_raises(self, rng):
        state, _ = _make_state()
        with pytest.raises(RuntimeError):
            state.observe_decode(rng.normal(size=(2, 1, 8)))

    def test_bad_key_shape_raises(self, rng):
        state, _ = _make_state()
        with pytest.raises(ValueError):
            state.observe_prefill(rng.normal(size=(3, 16, 8)))

    def test_short_prompt_smaller_than_sinks(self, rng):
        state, _ = _make_state()
        state.observe_prefill(rng.normal(size=(2, 3, 8)))
        selections = state.select(rng.normal(size=(2, 1, 8)), budget=8, step=0)
        for indices in selections:
            np.testing.assert_array_equal(indices, [0, 1, 2])


class TestClusterKVSelectorFactory:
    def test_residency_is_cpu(self):
        assert ClusterKVSelector().kv_residency is TierKind.CPU

    def test_create_layer_state_uses_engine_sinks(self):
        factory = ClusterKVSelector(ClusterKVConfig(num_sink_tokens=16))
        state = factory.create_layer_state(0, 2, 8, num_sink_tokens=2)
        assert state.num_sink_tokens == 2

    def test_describe_includes_key_parameters(self):
        description = ClusterKVSelector().describe()
        assert description["name"] == "clusterkv"
        assert "tokens_per_cluster" in description
        assert "distance_metric" in description


class TestClusterKVConfig:
    def test_c0_rule(self):
        config = ClusterKVConfig(tokens_per_cluster=80)
        assert config.num_prefill_clusters(32000) == 400
        assert config.num_prefill_clusters(40) == 1
        assert config.num_prefill_clusters(0) == 0

    def test_max_clusters_clamp(self):
        config = ClusterKVConfig(tokens_per_cluster=10, max_clusters=5)
        assert config.num_prefill_clusters(1000) == 5

    def test_invalid_values_rejected(self):
        with pytest.raises(ValueError):
            ClusterKVConfig(tokens_per_cluster=0)
        with pytest.raises(ValueError):
            ClusterKVConfig(distance_metric="hamming")
        with pytest.raises(ValueError):
            ClusterKVConfig(trim_policy="random")
        with pytest.raises(ValueError):
            ClusterKVConfig(cache_history=-1)
