"""Unit tests for the experiment harness utilities and perf-model experiments."""

import pytest

from repro.experiments import (
    ACCURACY_METHODS,
    ContextScale,
    Fig12Config,
    Fig13Config,
    PAPER_TABLE1,
    build_clusterkv_config,
    build_selector,
    format_fig12,
    format_fig13,
    format_kv,
    format_series,
    format_table,
    run_fig12,
    run_fig13_infinigen,
    run_fig13_quest,
)
from repro.baselines import FullKVSelector, InfiniGenSelector, QuestSelector
from repro.core import ClusterKVSelector


class TestContextScale:
    def test_length_scaling(self):
        scale = ContextScale(16)
        assert scale.length(32768) == 2048
        assert scale.length(256) == 16
        assert scale.length(8) == 1  # floors at the minimum

    def test_identity_scale(self):
        scale = ContextScale(1)
        assert scale.length(1000) == 1000

    def test_sink_tokens_scaled(self):
        assert ContextScale(16).sink_tokens(16) == 4
        assert ContextScale(1).sink_tokens(16) == 16

    def test_describe(self):
        assert "paper 32768" in ContextScale(16).describe(32768)

    def test_invalid(self):
        with pytest.raises(ValueError):
            ContextScale(0)
        with pytest.raises(ValueError):
            ContextScale(4).length(0)


class TestMethodBuilders:
    def test_accuracy_methods_cover_paper(self):
        assert set(ACCURACY_METHODS) == {"full", "clusterkv", "quest", "infinigen"}

    def test_build_selector_types(self):
        assert isinstance(build_selector("full"), FullKVSelector)
        assert isinstance(build_selector("clusterkv"), ClusterKVSelector)
        assert isinstance(build_selector("quest"), QuestSelector)
        assert isinstance(build_selector("infinigen"), InfiniGenSelector)

    def test_unknown_method_raises(self):
        with pytest.raises(ValueError):
            build_selector("magic")

    def test_clusterkv_config_scales(self):
        small = build_clusterkv_config(ContextScale(16))
        full = build_clusterkv_config(ContextScale(1))
        assert small.decode_window < full.decode_window
        assert full.tokens_per_cluster == 80
        assert small.num_sink_tokens <= full.num_sink_tokens

    def test_quest_page_size_not_scaled(self):
        selector = build_selector("quest", ContextScale(32))
        assert selector.config.page_size == 16


class TestReporting:
    def test_format_table_alignment(self):
        text = format_table(["a", "bb"], [[1, 2.5], ["x", "y"]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bb" in lines[1]
        assert len(lines) == 5

    def test_format_table_row_mismatch(self):
        with pytest.raises(ValueError):
            format_table(["a"], [[1, 2]])

    def test_format_series_and_kv(self):
        assert "x" in format_series("x", {1: 0.5})
        assert "key" in format_kv({"key": 1})


class TestPaperReference:
    def test_table1_reference_ordering(self):
        """The hard-coded paper numbers must themselves satisfy the paper's claim."""
        for budget in (256, 512, 1024, 2048):
            assert PAPER_TABLE1["clusterkv"][budget] > PAPER_TABLE1["infinigen"][budget]
            assert PAPER_TABLE1["clusterkv"][budget] > PAPER_TABLE1["quest"][budget]
            assert PAPER_TABLE1["clusterkv"][budget] < PAPER_TABLE1["full"][budget]


class TestPerfExperiments:
    def test_fig12_grid_and_claims(self):
        config = Fig12Config(
            prompt_lengths=(8192, 32768), decode_lengths=(1024,), budgets=(1024,)
        )
        result = run_fig12(config)
        assert len(result.reports) == 2 * 1 * 2  # (full + 1 budget) per cell
        speedup_short = result.speedup(8192, 1024, 1024)
        speedup_long = result.speedup(32768, 1024, 1024)
        assert speedup_long > speedup_short  # gains grow with context length
        assert speedup_long > 1.4
        assert result.prefill_overhead_fraction(32768, 1024, 1024) < 0.10
        assert "Fig. 12" in format_fig12(result)

    def test_fig13_claims(self):
        config = Fig13Config()
        infinigen = run_fig13_infinigen(config)
        quest = run_fig13_quest(config)
        assert infinigen.mean_speedup("infinigen") > 1.8
        assert quest.max_deviation("quest") < 0.08
        text = format_fig13(infinigen, quest)
        assert "Fig. 13a" in text and "Fig. 13b" in text
