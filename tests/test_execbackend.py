"""Differential tests of the execution-backend layer (:mod:`repro.execbackend`).

The load-bearing guarantee: the multiprocess backend — engines living in
worker processes over shared read-only weights — produces reports,
per-request tokens/logprobs and deterministic op counters **byte-identical**
to the in-process serial path, across every control-plane feature that
crosses the process boundary (failure kills, drain migration, checkpoint
recovery, tiered-capacity exhaustion).  Wall-clock observability rides
along but stays out of the serialized report.
"""

import json

import numpy as np
import pytest

from repro.api import EngineSpec
from repro.capacity.scenarios import (
    CapacityScenarioConfig,
    _burst_requests,
    probe_point,
)
from repro.cli import build_parser, main
from repro.cluster import ClusterBenchConfig, FailurePlan, run_cluster_bench
from repro.execbackend import MultiprocessBackend, WorkerCrashed
from repro.execbackend.mp import _model_digest
from repro.memory import CapacityExceeded
from repro.perf.counters import count_ops
from repro.traffic.bench import (
    TrafficBenchConfig,
    build_bench_requests,
    run_traffic_bench,
)
from repro.traffic.simulator import TrafficSimulator


def traffic_config(**overrides) -> TrafficBenchConfig:
    """Small three-policy workload: quick to run, exercises mixed traffic."""
    base = dict(
        policies=("clusterkv", "quest", "full"),
        num_requests=6,
        num_replicas=2,
        rate=2.0,
        prompt_len_min=24,
        prompt_len_max=40,
        max_new_tokens=8,
        seed=3,
    )
    base.update(overrides)
    return TrafficBenchConfig(**base)


def cluster_config(**overrides) -> ClusterBenchConfig:
    base = dict(
        policies=("quest",),
        num_requests=6,
        rate=2.0,
        prompt_len_min=24,
        prompt_len_max=40,
        max_new_tokens=8,
        min_replicas=2,
        max_replicas=3,
        router="jsq",
        seed=7,
    )
    base.update(overrides)
    return ClusterBenchConfig(**base)


def run_traffic(config: TrafficBenchConfig):
    """Run the benchmark workload, returning (report, raw per-request outputs)."""
    with TrafficSimulator(config.traffic_config()) as sim:
        report = sim.run(build_bench_requests(config))
        outputs = {
            request_id: (
                np.asarray(item.result.output_ids),
                np.asarray(item.result.output_logprobs),
            )
            for request_id, item in sim.completed.items()
        }
    return report, outputs


def assert_outputs_identical(left, right):
    assert left.keys() == right.keys()
    for request_id in left:
        assert np.array_equal(left[request_id][0], right[request_id][0])
        assert np.array_equal(left[request_id][1], right[request_id][1])


# ----------------------------------------------------------------------
# traffic parity
# ----------------------------------------------------------------------
class TestTrafficParity:
    def test_mixed_policies_byte_identical(self):
        with count_ops() as serial_ops:
            serial, serial_outputs = run_traffic(traffic_config())
        with count_ops() as parallel_ops:
            parallel, parallel_outputs = run_traffic(traffic_config(workers=2))
        assert serial.to_json() == parallel.to_json()
        assert_outputs_identical(serial_outputs, parallel_outputs)
        # Deterministic GEMM/op counters merge to the same totals.
        assert serial_ops.as_dict() == parallel_ops.as_dict()
        assert serial_ops.as_dict()  # non-trivial: the engines did work
        assert parallel.wall["backend"]["name"] == "multiprocess"
        assert parallel.wall["backend"]["workers"] == 2

    def test_backend_spec_field_selects_multiprocess(self):
        report = run_traffic_bench(traffic_config(backend="multiprocess"))
        assert report.wall["backend"]["name"] == "multiprocess"
        assert run_traffic_bench(traffic_config()).to_json() == report.to_json()


# ----------------------------------------------------------------------
# cluster parity: failures, checkpoints, drain migration
# ----------------------------------------------------------------------
class TestClusterParity:
    def test_failure_kill_and_checkpoint_recovery(self):
        overrides = dict(
            failures=FailurePlan.seeded(seed=7, num_failures=2, horizon_s=3.0),
            checkpoint_interval_s=0.5,
        )
        serial = run_cluster_bench(cluster_config(**overrides))
        parallel = run_cluster_bench(cluster_config(workers=2, **overrides))
        assert serial.to_json() == parallel.to_json()
        assert serial.num_recoveries or serial.failures  # the plan actually fired

    def test_drain_migration(self):
        overrides = dict(
            autoscaler="queue_depth",
            migrate_on_drain=True,
        )
        serial = run_cluster_bench(cluster_config(**overrides))
        parallel = run_cluster_bench(cluster_config(workers=2, **overrides))
        assert serial.to_json() == parallel.to_json()


# ----------------------------------------------------------------------
# capacity parity: tier exhaustion across the process boundary
# ----------------------------------------------------------------------
class TestCapacityParity:
    TIGHT = "gpu=64KiB,host=64KiB,ssd=128KiB"

    def test_probe_points_identical(self):
        serial_cfg = CapacityScenarioConfig(max_new_tokens=8)
        parallel_cfg = CapacityScenarioConfig(max_new_tokens=8, workers=1)
        for context in (64, 192):
            serial = probe_point(serial_cfg, serial_cfg.policies[0], context, 2)
            parallel = probe_point(
                parallel_cfg, parallel_cfg.policies[0], context, 2
            )
            assert serial == parallel

    def test_infeasible_point_reports_failed_tier(self):
        config = CapacityScenarioConfig(
            tiers=self.TIGHT, max_new_tokens=8, workers=1
        )
        point = probe_point(config, config.policies[-1], 192, 3)
        assert not point.feasible
        assert point.failed_tier is not None
        serial = CapacityScenarioConfig(tiers=self.TIGHT, max_new_tokens=8)
        assert point == probe_point(serial, serial.policies[-1], 192, 3)

    def test_capacity_exceeded_crosses_process_boundary(self):
        """The typed exception arrives intact — class and tier attribute."""
        config = CapacityScenarioConfig(
            tiers=self.TIGHT, max_new_tokens=8, workers=1
        )
        requests = _burst_requests(config, 192, 3)
        with TrafficSimulator(config.traffic_config(config.policies[-1], 3)) as sim:
            with pytest.raises(CapacityExceeded) as excinfo:
                sim.run(requests)
        assert excinfo.value.tier.value in ("gpu", "cpu", "ssd")


# ----------------------------------------------------------------------
# worker lifecycle
# ----------------------------------------------------------------------
class TestWorkerLifecycle:
    def test_worker_crash_raises_typed_error(self):
        spec = EngineSpec(model="serve-sim", max_new_tokens=8)
        backend = MultiprocessBackend(spec.build_model(), spec, workers=1)
        try:
            handle = backend.create_handle()
            client = backend._clients[0]
            client.process.kill()
            client.process.join(timeout=10)
            with pytest.raises(WorkerCrashed):
                handle.start_step()
                handle.finish_step()
        finally:
            backend.close()

    def test_close_is_idempotent(self):
        spec = EngineSpec(model="serve-sim", max_new_tokens=8)
        backend = MultiprocessBackend(spec.build_model(), spec, workers=1)
        backend.close()
        backend.close()

    def test_worker_weights_match_parent(self):
        """Shared-arena rebuild is bit-identical in every worker."""
        config = traffic_config(workers=2)
        with TrafficSimulator(config.traffic_config()) as sim:
            parent = _model_digest(sim.model)
            digests = sim._backend.model_digests()
        assert len(digests) == 2
        assert all(digest == parent for digest in digests.values())


# ----------------------------------------------------------------------
# wall-clock observability stays out of the serialized report
# ----------------------------------------------------------------------
class TestWallObservability:
    def test_wall_fields_present_but_unserialized(self):
        report = run_traffic_bench(traffic_config())
        assert set(report.wall) >= {"run_wall_s", "step_wall_s", "replicas", "backend"}
        assert len(report.wall["replicas"]) == 2
        for entry in report.wall["replicas"]:
            assert set(entry) == {"replica", "step_wall_s", "idle_wall_s"}
            assert entry["step_wall_s"] >= 0.0
        assert report.wall["backend"]["name"] == "serial"
        assert "wall" not in report.to_dict()
        assert "wall" not in json.loads(report.to_json())


# ----------------------------------------------------------------------
# spec and CLI surface
# ----------------------------------------------------------------------
class TestSpecSurface:
    def test_backend_validation(self):
        with pytest.raises(ValueError):
            EngineSpec(backend="threads")

    def test_backend_round_trips(self):
        spec = EngineSpec(backend="multiprocess")
        assert spec.to_dict()["backend"] == "multiprocess"
        assert EngineSpec.from_dict(spec.to_dict()) == spec

    def test_workers_validation(self):
        with pytest.raises(ValueError):
            traffic_config(workers=0).traffic_config()


class TestCLISurface:
    def test_backend_flags_registered(self):
        parser = build_parser()
        for command in ("traffic-bench", "cluster-bench", "capacity-bench"):
            args = parser.parse_args(
                [command, "--backend", "multiprocess", "--workers", "2"]
            )
            assert args.backend == "multiprocess"
            assert args.workers == 2

    def test_backend_choices_enforced(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args(["traffic-bench", "--backend", "threads"])

    def test_list_mentions_backends(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "execution backends" in out
        assert "--workers" in out
