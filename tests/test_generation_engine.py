"""Unit and integration tests for the inference engine, pointer head and sampling."""

import numpy as np
import pytest

from repro.baselines import FullKVSelector, OracleTopKSelector, StreamingLLMSelector
from repro.core import ClusterKVConfig, ClusterKVSelector
from repro.model import (
    CopyHead,
    GenerationConfig,
    InferenceEngine,
    ModelConfig,
    TransformerModel,
    greedy_sample,
    mix_distributions,
    temperature_sample,
)
from repro.memory import TransferDirection


class TestSampling:
    def test_greedy_argmax(self):
        assert greedy_sample(np.array([0.1, 0.7, 0.2])) == 1

    def test_temperature_sampling_reproducible(self):
        rng_a = np.random.default_rng(0)
        rng_b = np.random.default_rng(0)
        probs = np.array([0.2, 0.5, 0.3])
        assert temperature_sample(probs, rng_a) == temperature_sample(probs, rng_b)

    def test_temperature_must_be_positive(self):
        with pytest.raises(ValueError):
            temperature_sample(np.array([1.0]), np.random.default_rng(0), temperature=0.0)

    def test_mix_distributions(self):
        a = np.array([1.0, 0.0])
        b = np.array([0.0, 1.0])
        mixed = mix_distributions(a, b, 0.75)
        np.testing.assert_allclose(mixed, [0.75, 0.25])
        np.testing.assert_allclose(mix_distributions(a, None, 0.5), a)

    def test_mix_rejects_bad_gate(self):
        with pytest.raises(ValueError):
            mix_distributions(np.ones(2), np.ones(2), 1.5)


class TestCopyHead:
    def test_copy_distribution_points_to_successor(self, tiny_model):
        head = CopyHead(tiny_model.weights)
        head.ingest(np.array([10, 20, 30, 10]))
        # Current token is 10; its earlier occurrence (position 0) is followed
        # by 20, so 20 must receive almost all of the copy mass.
        dist = head.copy_distribution(10)
        assert int(np.argmax(dist)) == 20
        assert dist[20] > 0.9

    def test_restriction_blocks_copying(self, tiny_model):
        head = CopyHead(tiny_model.weights)
        head.ingest(np.array([10, 20, 30, 10]))
        dist = head.copy_distribution(10, allowed_indices=np.array([1, 2]))
        # Position 0 (the occurrence of 10 followed by 20) is not visible, so
        # 20 can only receive mass if some visible position precedes it.
        assert dist[20] < 0.5

    def test_empty_history_returns_none(self, tiny_model):
        head = CopyHead(tiny_model.weights)
        assert head.copy_distribution(5) is None

    def test_distribution_normalised(self, tiny_model):
        head = CopyHead(tiny_model.weights)
        head.ingest(np.array([4, 5, 6, 7, 4]))
        dist = head.copy_distribution(4)
        assert dist.sum() == pytest.approx(1.0)

    def test_bigram_disambiguates_occurrences(self, tiny_model):
        """Two occurrences of the same token with different predecessors."""
        head = CopyHead(tiny_model.weights)
        # ... 50 60 ... 51 60 ...; querying after (51, 60) must prefer the
        # successor of the second occurrence.
        head.ingest(np.array([50, 60, 70, 51, 60, 80, 51, 60]))
        dist = head.copy_distribution(60)
        assert dist[80] > dist[70]

    def test_requires_copy_projections(self, tiny_config):
        config = ModelConfig(**{**tiny_config.__dict__, "use_copy_head": False})
        model = TransformerModel(config)
        with pytest.raises(ValueError):
            CopyHead(model.weights)


class TestInferenceEngine:
    def test_generates_requested_tokens(self, tiny_model, short_prompt, fast_generation_config):
        engine = InferenceEngine(tiny_model, FullKVSelector(), fast_generation_config)
        result = engine.generate(short_prompt)
        assert len(result.output_ids) == fast_generation_config.max_new_tokens
        assert len(result.output_logprobs) == fast_generation_config.max_new_tokens
        assert result.prompt_length == short_prompt.shape[0]

    def test_generation_deterministic(self, tiny_model, short_prompt, fast_generation_config):
        a = InferenceEngine(tiny_model, FullKVSelector(), fast_generation_config).generate(short_prompt)
        b = InferenceEngine(tiny_model, FullKVSelector(), fast_generation_config).generate(short_prompt)
        assert a.output_ids == b.output_ids

    def test_engine_single_use(self, tiny_model, short_prompt, fast_generation_config):
        engine = InferenceEngine(tiny_model, FullKVSelector(), fast_generation_config)
        engine.generate(short_prompt)
        with pytest.raises(RuntimeError):
            engine.generate(short_prompt)

    def test_empty_prompt_rejected(self, tiny_model, fast_generation_config):
        engine = InferenceEngine(tiny_model, FullKVSelector(), fast_generation_config)
        with pytest.raises(ValueError):
            engine.generate(np.zeros(0, dtype=np.int64))

    def test_full_budget_equals_unbudgeted(self, tiny_model, short_prompt):
        """A budget larger than the context must not change the output."""
        unbudgeted = InferenceEngine(
            tiny_model, FullKVSelector(), GenerationConfig(budget=None, max_new_tokens=4)
        ).generate(short_prompt)
        huge_budget = InferenceEngine(
            tiny_model,
            ClusterKVSelector(ClusterKVConfig(tokens_per_cluster=16, num_sink_tokens=4)),
            GenerationConfig(budget=100_000, max_new_tokens=4),
        ).generate(short_prompt)
        assert unbudgeted.output_ids == huge_budget.output_ids

    def test_compressed_run_records_stats_and_ledger(self, tiny_model, short_prompt):
        config = GenerationConfig(budget=32, max_new_tokens=4, num_full_layers=1, num_sink_tokens=4)
        selector = ClusterKVSelector(
            ClusterKVConfig(tokens_per_cluster=12, decode_window=8, decode_clusters=2, num_sink_tokens=4)
        )
        engine = InferenceEngine(tiny_model, selector, config)
        result = engine.generate(short_prompt)
        assert result.selector_stats.num_selections > 0
        assert result.selector_stats.selected_tokens > 0
        # ClusterKV offloads KV to CPU: prefill offload plus per-step fetches.
        assert result.ledger.total_bytes(TransferDirection.HOST_TO_DEVICE) > 0
        assert result.ledger.total_bytes(TransferDirection.DEVICE_TO_HOST) > 0
        assert result.kv_cache_bytes > 0

    def test_num_full_layers_bypass(self, tiny_model, short_prompt):
        """Layers below num_full_layers must not have selector states."""
        config = GenerationConfig(budget=16, max_new_tokens=2, num_full_layers=2)
        engine = InferenceEngine(tiny_model, StreamingLLMSelector(), config)
        assert engine.layer_states[0] is None
        assert engine.layer_states[1] is None
        assert engine.layer_states[-1] is not None or tiny_model.config.n_layers <= 2

    def test_recall_records_oracle_is_perfect(self, tiny_model, short_prompt):
        config = GenerationConfig(
            budget=24, max_new_tokens=3, num_full_layers=1, record_true_scores=True
        )
        engine = InferenceEngine(tiny_model, OracleTopKSelector(), config)
        result = engine.generate(short_prompt)
        assert result.recall_records
        assert result.mean_recall() == pytest.approx(1.0)

    def test_recall_records_streaming_is_imperfect(self, tiny_model, short_prompt):
        config = GenerationConfig(
            budget=24, max_new_tokens=3, num_full_layers=1, record_true_scores=True
        )
        engine = InferenceEngine(tiny_model, StreamingLLMSelector(), config)
        result = engine.generate(short_prompt)
        assert 0.0 <= result.mean_recall() < 1.0

    def test_attention_trace_recorded(self, tiny_model, short_prompt):
        config = GenerationConfig(
            budget=None, max_new_tokens=3, num_full_layers=0, record_attention_trace=True
        )
        engine = InferenceEngine(tiny_model, FullKVSelector(), config)
        result = engine.generate(short_prompt)
        assert len(result.attention_trace) == 2  # one per decode step after the first token
        record = result.attention_trace[0]
        assert record.layer == tiny_model.config.n_layers - 1
        assert len(record.attention_weights) == tiny_model.config.n_kv_heads

    def test_score_sequence_perplexity(self, tiny_model, short_prompt):
        config = GenerationConfig(budget=None, max_new_tokens=1)
        engine = InferenceEngine(tiny_model, FullKVSelector(), config)
        result = engine.score_sequence(short_prompt, prefill_length=64)
        assert len(result.target_logprobs) == short_prompt.shape[0] - 64
        assert result.perplexity() > 0

    def test_score_sequence_validates_prefill_length(self, tiny_model, short_prompt):
        engine = InferenceEngine(tiny_model, FullKVSelector(), GenerationConfig())
        with pytest.raises(ValueError):
            engine.score_sequence(short_prompt, prefill_length=0)

    def test_perplexity_requires_scoring_run(self, tiny_model, short_prompt, fast_generation_config):
        engine = InferenceEngine(tiny_model, FullKVSelector(), fast_generation_config)
        result = engine.generate(short_prompt)
        with pytest.raises(ValueError):
            result.perplexity()
