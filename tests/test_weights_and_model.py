"""Unit tests for weight initialisation, the transformer and the tokenizer."""

import numpy as np
import pytest

from repro.model import ModelConfig, SyntheticTokenizer, TransformerModel, init_weights


class TestModelConfig:
    def test_head_dim_and_group_size(self, tiny_config):
        assert tiny_config.head_dim == tiny_config.d_model // tiny_config.n_heads
        assert tiny_config.group_size == tiny_config.n_heads // tiny_config.n_kv_heads

    def test_rejects_indivisible_heads(self):
        with pytest.raises(ValueError):
            ModelConfig(d_model=30, n_heads=4)

    def test_rejects_bad_gqa_grouping(self):
        with pytest.raises(ValueError):
            ModelConfig(n_heads=8, n_kv_heads=3, d_model=64)

    def test_rejects_unknown_norm(self):
        with pytest.raises(ValueError):
            ModelConfig(norm_type="batchnorm")

    def test_kv_bytes_per_token(self):
        config = ModelConfig(d_model=64, n_heads=8, n_kv_heads=4, n_layers=2)
        expected = 2 * 4 * 8 * 2 * 2  # K+V * kv_heads * head_dim * fp16 * layers
        assert config.kv_bytes_per_token() == expected

    def test_softmax_scale_default(self):
        config = ModelConfig(d_model=64, n_heads=4)
        assert config.softmax_scale == pytest.approx(1.0 / np.sqrt(16))


class TestWeights:
    def test_deterministic_initialisation(self, tiny_config):
        a = init_weights(tiny_config)
        b = init_weights(tiny_config)
        np.testing.assert_array_equal(a.embedding, b.embedding)
        np.testing.assert_array_equal(a.layers[0].wq, b.layers[0].wq)

    def test_different_seeds_differ(self, tiny_config):
        other = ModelConfig(**{**tiny_config.__dict__, "seed": tiny_config.seed + 1})
        a = init_weights(tiny_config)
        b = init_weights(other)
        assert not np.allclose(a.embedding, b.embedding)

    def test_embedding_rows_unit_norm(self, tiny_config):
        weights = init_weights(tiny_config)
        norms = np.linalg.norm(weights.embedding, axis=1)
        np.testing.assert_allclose(norms, 1.0, atol=1e-9)

    def test_embedding_cluster_structure(self, tiny_config):
        """Tokens in the same embedding cluster are closer than across clusters."""
        weights = init_weights(tiny_config)
        num_clusters = tiny_config.num_embedding_clusters
        block = tiny_config.vocab_size // num_clusters
        same = weights.embedding[4] @ weights.embedding[5]  # same block
        other = weights.embedding[4] @ weights.embedding[4 + 3 * block]
        assert same > other

    def test_parameter_count_positive_and_consistent(self, tiny_model):
        count = tiny_model.num_parameters
        assert count > 0
        assert count == tiny_model.weights.num_parameters()

    def test_opt_style_has_position_embeddings(self):
        config = ModelConfig(
            d_model=32, n_heads=4, n_kv_heads=4, use_rope=False, norm_type="layernorm",
            activation="gelu", max_position_embeddings=64, vocab_size=64,
        )
        weights = init_weights(config)
        assert weights.position_embedding is not None
        assert weights.position_embedding.shape == (64, 32)


class TestTransformerForward:
    def test_forward_shapes(self, tiny_model, short_prompt):
        logits = tiny_model.forward_full(short_prompt[:12])
        assert logits.shape == (12, tiny_model.config.vocab_size)
        assert np.all(np.isfinite(logits))

    def test_forward_deterministic(self, tiny_model, short_prompt):
        a = tiny_model.forward_full(short_prompt[:8])
        b = tiny_model.forward_full(short_prompt[:8])
        np.testing.assert_array_equal(a, b)

    def test_causality(self, tiny_model, short_prompt):
        """Changing a later token must not change earlier logits."""
        ids = short_prompt[:10].copy()
        base = tiny_model.forward_full(ids)
        ids_changed = ids.copy()
        ids_changed[-1] = (ids_changed[-1] + 1) % tiny_model.config.vocab_size
        changed = tiny_model.forward_full(ids_changed)
        np.testing.assert_allclose(base[:-1], changed[:-1], atol=1e-9)
        assert not np.allclose(base[-1], changed[-1])

    def test_rejects_out_of_vocab(self, tiny_model):
        with pytest.raises(ValueError):
            tiny_model.embed(np.array([10_000]), np.array([0]))

    def test_qkv_shapes(self, tiny_model, short_prompt):
        config = tiny_model.config
        hidden = tiny_model.embed(short_prompt[:6], np.arange(6))
        q, k, v = tiny_model.attention_qkv(0, hidden, np.arange(6))
        assert q.shape == (config.n_heads, 6, config.head_dim)
        assert k.shape == (config.n_kv_heads, 6, config.head_dim)
        assert v.shape == (config.n_kv_heads, 6, config.head_dim)


class TestTokenizer:
    def test_roundtrip(self, tiny_tokenizer):
        text = "w10 w20 w30"
        ids = tiny_tokenizer.encode(text)
        assert tiny_tokenizer.decode(ids) == text

    def test_unknown_word_maps_to_unk(self, tiny_tokenizer):
        ids = tiny_tokenizer.encode("definitely-not-a-word")
        assert ids == [tiny_tokenizer.unk_id]

    def test_special_tokens_skipped_in_decode(self, tiny_tokenizer):
        ids = [tiny_tokenizer.bos_id, 10, tiny_tokenizer.eos_id]
        assert tiny_tokenizer.decode(ids) == "w10"

    def test_add_bos(self, tiny_tokenizer):
        ids = tiny_tokenizer.encode("w10", add_bos=True)
        assert ids[0] == tiny_tokenizer.bos_id

    def test_rejects_tiny_vocab(self):
        with pytest.raises(ValueError):
            SyntheticTokenizer(3)

    def test_random_word_ids_respect_exclusions(self, tiny_tokenizer, rng):
        exclude = {10, 11, 12}
        ids = tiny_tokenizer.random_word_ids(50, rng, exclude=exclude)
        assert not (set(ids.tolist()) & exclude)
        assert np.all(ids >= tiny_tokenizer.num_special_tokens)
