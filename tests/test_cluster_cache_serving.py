"""ClusterCache hit-rate accounting under the batched serving path.

The traffic simulator's byte-savings numbers (and the perfmodel clock's
transfer charges) come from the per-request cluster-cache hit rates that
the serving engine surfaces.  These tests pin down that accounting under
*interleaved* requests:

* each request's caches are isolated — serving several ClusterKV requests
  concurrently yields exactly the hit/miss totals of serving each alone;
* hit plus miss tokens equal the fetch traffic the selector reports, so
  the hit rate measures real byte savings;
* the eviction window (``cache_history``) holds during serving, and the
  engine's :class:`~repro.serving.StepTrace` carries the live hit rate
  the virtual clock consumes.
"""

import numpy as np
import pytest

from repro.core import ClusterKVConfig, ClusterKVSelector
from repro.model import GenerationConfig, InferenceEngine
from repro.serving import BatchedEngine, SchedulerConfig


def make_selector(cache_history: int = 1) -> ClusterKVSelector:
    return ClusterKVSelector(
        ClusterKVConfig(
            tokens_per_cluster=12,
            decode_window=8,
            decode_clusters=2,
            num_sink_tokens=4,
            cache_history=cache_history,
        )
    )


def generation_config(max_new_tokens: int = 8) -> GenerationConfig:
    return GenerationConfig(
        budget=24, max_new_tokens=max_new_tokens, num_full_layers=1, num_sink_tokens=4
    )


def prompts_of(tiny_model, rng, count: int) -> list[np.ndarray]:
    return [
        rng.integers(4, tiny_model.config.vocab_size, size=40 + 12 * i).astype(np.int64)
        for i in range(count)
    ]


class TestInterleavedHitRateIsolation:
    def test_hit_rate_matches_single_sequence_per_request(self, tiny_model, rng):
        """Concurrent requests report the hit rate of serving them alone."""
        gen = generation_config()
        prompts = prompts_of(tiny_model, rng, 3)
        engine = BatchedEngine(
            tiny_model,
            make_selector(),
            gen,
            SchedulerConfig(max_batch_size=3, max_prefills_per_step=3),
        )
        for i, prompt in enumerate(prompts):
            engine.submit(prompt, request_id=f"r{i}")
        report = engine.run()
        assert len(report.completed) == 3

        for i, prompt in enumerate(prompts):
            alone = InferenceEngine(tiny_model, make_selector(), gen).generate(prompt)
            served = report.results()[f"r{i}"]
            assert served.cache_hit_rate == pytest.approx(alone.cache_hit_rate)
            # The accounting is exercised, not trivially zero: repeated
            # selections under a stable query distribution produce hits.
            assert served.cache_hit_rate > 0.0

    def test_hit_and_miss_tokens_match_fetch_traffic(self, tiny_model, rng):
        """miss tokens == fetched tokens: the hit rate measures byte savings."""
        gen = generation_config()
        engine = BatchedEngine(tiny_model, make_selector(), gen)
        engine.submit(prompts_of(tiny_model, rng, 1)[0], request_id="only")
        # Step manually so the in-flight selector states stay inspectable.
        while engine.num_active or engine.queue:
            finished = engine.step()
            for active in engine._active:
                for state in active.sequence.layer_states:
                    if state is None:
                        continue
                    hit = sum(cache.total_hit_tokens for cache in state.caches)
                    miss = sum(cache.total_miss_tokens for cache in state.caches)
                    assert miss == state.stats.fetched_tokens
                    assert hit + miss <= state.stats.selected_tokens
        (completed,) = finished
        assert 0.0 < completed.result.cache_hit_rate <= 1.0

    def test_interleaved_retirements_do_not_leak_cache_state(self, tiny_model, rng):
        """A request admitted mid-flight starts with cold caches."""
        gen = generation_config(max_new_tokens=6)
        prompts = prompts_of(tiny_model, rng, 2)
        engine = BatchedEngine(
            tiny_model,
            make_selector(),
            gen,
            SchedulerConfig(max_batch_size=2, max_prefills_per_step=2),
        )
        engine.submit(prompts[0], request_id="early")
        engine.step()
        engine.step()
        engine.submit(prompts[1], request_id="late")
        report = engine.run()
        late_alone = InferenceEngine(tiny_model, make_selector(), gen).generate(prompts[1])
        assert report.results()["late"].cache_hit_rate == pytest.approx(
            late_alone.cache_hit_rate
        )


class TestEvictionWindowUnderServing:
    def test_history_window_bounds_cached_labels(self, tiny_model, rng):
        """With cache_history=1 only the previous step's clusters stay cached."""
        gen = generation_config()
        engine = BatchedEngine(tiny_model, make_selector(cache_history=1), gen)
        engine.submit(prompts_of(tiny_model, rng, 1)[0], request_id="only")
        engine.step()
        for _ in range(4):
            engine.step()
            for active in engine._active:
                for state in active.sequence.layer_states:
                    if state is None:
                        continue
                    for cache in state.caches:
                        # One retained step: the cached set is exactly the
                        # last update, so eviction really happens.
                        assert len(cache._recent) <= 1
                        assert cache.cached_labels == (
                            cache._recent[-1] if cache._recent else set()
                        )

    def test_disabled_cache_under_serving_reports_zero_hit_rate(self, tiny_model, rng):
        gen = generation_config()
        engine = BatchedEngine(tiny_model, make_selector(cache_history=0), gen)
        engine.submit(prompts_of(tiny_model, rng, 1)[0], request_id="only")
        report = engine.run()
        assert report.results()["only"].cache_hit_rate == 0.0


class TestStepTraceHitRates:
    def test_decode_trace_carries_live_cluster_hit_rate(self, tiny_model, rng):
        gen = generation_config()
        engine = BatchedEngine(tiny_model, make_selector(), gen)
        engine.submit(prompts_of(tiny_model, rng, 1)[0], request_id="only")
        rates = []
        while engine.num_active or engine.queue:
            engine.step()
            trace = engine.last_step_trace
            for entry in trace.decodes:
                assert entry.policy_name == "clusterkv"
                assert entry.cache_hit_rate is not None
                assert 0.0 <= entry.cache_hit_rate <= 1.0
                rates.append(entry.cache_hit_rate)
        assert rates[-1] > 0.0  # the cache warmed up over the run

    def test_full_policy_trace_has_no_hit_rate(self, tiny_model, rng):
        engine = BatchedEngine(
            tiny_model, "full", GenerationConfig(max_new_tokens=3)
        )
        engine.submit(prompts_of(tiny_model, rng, 1)[0], request_id="only")
        engine.step()
        trace = engine.last_step_trace
        assert trace.decodes[0].policy_name == "full"
        assert trace.decodes[0].cache_hit_rate is None
        assert trace.decodes[0].budget is None
