"""Tests of the public session facade (``repro.api``).

Load-bearing guarantees:

* ``EngineSpec`` round-trips through dict and JSON, policy included;
* ``Session.generate()`` matches the single-sequence ``InferenceEngine``
  bit for bit (same model, policy and generation settings);
* ``Session.stream()`` yields exactly the tokens ``generate()`` returns,
  in order, with correct logprobs and a single final ``finished`` event;
* string prompts are tokenized, and per-request policies mix freely
  within one session.
"""

import dataclasses

import numpy as np
import pytest

from repro.api import EngineSpec, Session, TokenEvent
from repro.model import GenerationConfig, InferenceEngine, TransformerModel, get_model_config
from repro.policies import PolicySpec, build_policy

SPEC = EngineSpec(
    model="serve-sim",
    policy="clusterkv:tokens_per_cluster=16,decode_window=16,decode_clusters=2,num_sink_tokens=4",
    budget=24,
    max_new_tokens=6,
    num_full_layers=1,
    num_sink_tokens=4,
)

PROMPT = list(range(8, 40))


class TestEngineSpec:
    def test_policy_string_normalised_to_spec(self):
        assert isinstance(SPEC.policy, PolicySpec)
        assert SPEC.policy.name == "clusterkv"
        assert SPEC.policy.kwargs["tokens_per_cluster"] == 16

    def test_dict_and_json_round_trip(self):
        assert EngineSpec.from_dict(SPEC.to_dict()) == SPEC
        assert EngineSpec.from_json(SPEC.to_json()) == SPEC

    def test_builders_produce_consistent_slices(self):
        gen = SPEC.generation_config()
        assert gen.budget == 24
        assert gen.max_new_tokens == 6
        sched = SPEC.scheduler_config()
        assert sched.max_batch_size == 8
        assert SPEC.build_model().config.name == "serve-sim"

    def test_replace_reruns_policy_normalisation(self):
        replaced = dataclasses.replace(SPEC, policy="quest:page_size=8")
        assert isinstance(replaced.policy, PolicySpec)
        assert replaced.policy.name == "quest"


class TestSessionGenerate:
    def test_matches_single_sequence_engine(self):
        session = Session(SPEC)
        result = session.generate(PROMPT, request_id="one")

        model = TransformerModel(get_model_config(SPEC.model))
        reference = InferenceEngine(
            model, build_policy(SPEC.policy), SPEC.generation_config()
        ).generate(np.asarray(PROMPT, dtype=np.int64))

        assert result.output_ids == reference.output_ids
        assert result.output_logprobs == reference.output_logprobs
        assert result.method == "clusterkv"
        assert result.method_config["tokens_per_cluster"] == 16

    def test_kwarg_overrides_build_spec(self):
        session = Session(model="serve-sim", policy="full", max_new_tokens=3)
        assert session.spec.policy.name == "full"
        result = session.generate(PROMPT)
        assert len(result.output_ids) == 3

    def test_string_prompt_is_tokenized(self):
        session = Session(model="serve-sim", policy="full", max_new_tokens=2)
        result = session.generate("alpha beta gamma delta")
        assert len(result.output_ids) == 2
        assert result.prompt_length == 4

    def test_results_accumulate_across_calls(self):
        session = Session(SPEC)
        session.generate(PROMPT, request_id="a")
        session.generate(PROMPT, request_id="b")
        assert set(session.results()) == {"a", "b"}
        assert [c.request.request_id for c in session.completed] == ["a", "b"]

    def test_unstarted_abandoned_stream_releases_retention_hold(self):
        """An iterator dropped before its first next() must not pin results."""
        session = Session(model="serve-sim", policy="full", max_new_tokens=2)
        iterator = session.stream(PROMPT, request_id="never")
        del iterator  # abandoned before any step
        session.run()  # the request is still served
        session.clear_completed()
        assert session.results() == {}  # nothing retained: hold was released

    def test_clear_completed_preserves_live_stream(self):
        """Clearing results must not break a stream pending on a finished request."""
        session = Session(model="serve-sim", policy="full", max_new_tokens=3)
        iterator = session.stream(PROMPT, request_id="r")
        session.run()  # finishes "r" outside the iterator
        session.clear_completed()
        tokens = [e.token_id for e in iterator]  # must still replay all tokens
        assert len(tokens) == 3
        # Once the iterator is exhausted, the retention hold is released.
        session.clear_completed()
        assert session.results() == {}

    def test_clear_completed_bounds_retention(self):
        session = Session(SPEC)
        session.generate(PROMPT, request_id="a")
        session.clear_completed()
        assert session.results() == {}
        assert session.completed == []
        # The session keeps serving normally afterwards.
        session.generate(PROMPT, request_id="b")
        assert set(session.results()) == {"b"}


class TestSessionStream:
    def test_stream_equals_generate_token_by_token(self):
        streamed = list(Session(SPEC).stream(PROMPT, request_id="s"))
        generated = Session(SPEC).generate(PROMPT, request_id="g")

        assert [e.token_id for e in streamed] == generated.output_ids
        assert [e.logprob for e in streamed] == generated.output_logprobs
        assert [e.index for e in streamed] == list(range(len(generated.output_ids)))

    def test_finished_flag_only_on_last_event(self):
        events = list(Session(SPEC).stream(PROMPT))
        assert [e.finished for e in events] == [False] * (len(events) - 1) + [True]
        assert all(isinstance(e, TokenEvent) for e in events)

    def test_stream_decodes_text(self):
        session = Session(model="serve-sim", policy="full", max_new_tokens=4)
        events = list(session.stream("alpha beta gamma delta"))
        for event in events:
            expected = session.tokenizer.decode([event.token_id])
            assert event.text == expected

    def test_stream_request_appears_in_session_results(self):
        session = Session(SPEC)
        list(session.stream(PROMPT, request_id="streamed"))
        assert "streamed" in session.results()

    def test_stream_submits_and_validates_eagerly(self):
        """A bad policy fails at stream() itself, not at the first next()."""
        session = Session(model="serve-sim", policy="full", max_new_tokens=2)
        with pytest.raises(ValueError, match="registered policies"):
            session.stream(PROMPT, policy="bogus")
        # And a valid stream's request is queued before iteration starts.
        iterator = session.stream(PROMPT, request_id="eager")
        assert len(session.engine.queue) == 1
        list(iterator)
        assert "eager" in session.results()

    def test_interleaved_streams_both_yield_their_tokens(self):
        """Draining one stream must not break another stream's iterator."""
        session = Session(model="serve-sim", policy="full", max_new_tokens=3)
        first = session.stream(PROMPT, request_id="a")
        second = session.stream(PROMPT, request_id="b")
        tokens_a = [e.token_id for e in first]  # drains the engine, retires both
        tokens_b = [e.token_id for e in second]  # must still replay b's tokens
        assert tokens_a == session.results()["a"].output_ids
        assert tokens_b == session.results()["b"].output_ids

    def test_stream_after_run_still_yields(self):
        session = Session(model="serve-sim", policy="full", max_new_tokens=2)
        iterator = session.stream(PROMPT, request_id="r")
        session.run()  # finishes the request outside the iterator
        assert [e.token_id for e in iterator] == session.results()["r"].output_ids

    def test_abandoned_stream_request_is_finished_by_later_activity(self):
        session = Session(model="serve-sim", policy="full", max_new_tokens=2)
        iterator = session.stream(PROMPT, request_id="abandoned")
        next(iterator)
        del iterator
        # Documented behavior: subsequent session stepping finishes it.
        session.generate(PROMPT, request_id="later")
        assert set(session.results()) == {"abandoned", "later"}


class TestSessionBatch:
    def test_mixed_policies_in_one_session(self):
        session = Session(model="serve-sim", policy="full", budget=24,
                          max_new_tokens=4, num_full_layers=1, num_sink_tokens=4)
        session.submit(PROMPT, request_id="q", policy="quest:page_size=8")
        session.submit(PROMPT, request_id="s", policy="streaming_llm")
        session.submit(PROMPT, request_id="f")
        report = session.run()
        descriptions = report.policy_descriptions()
        assert descriptions["q"]["name"] == "quest"
        assert descriptions["q"]["page_size"] == 8
        assert descriptions["s"]["name"] == "streaming_llm"
        assert descriptions["f"]["name"] == "full"

    def test_step_returns_finished_requests(self):
        session = Session(model="serve-sim", policy="full", max_new_tokens=2)
        session.submit(PROMPT, request_id="r")
        finished: list[str] = []
        while session.engine.queue or session.engine.num_active:
            finished.extend(c.request.request_id for c in session.step())
        assert finished == ["r"]

    def test_unknown_policy_fails_at_submit(self):
        session = Session(model="serve-sim", policy="full", max_new_tokens=2)
        with pytest.raises(ValueError, match="registered policies"):
            session.submit(PROMPT, policy="nope")
        assert len(session.engine.queue) == 0
