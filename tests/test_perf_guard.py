"""Tier-1 hook of the hot-path perf regression guard (``scripts/check_perf.py``).

The deterministic section of ``BENCH_hotpaths.json`` pins the engine-step
and GEMM-launch counts of the vectorized hot paths on small fixed
configurations.  This test recomputes them and fails on any drift — the
machine-independent way to catch a de-vectorisation (per-head loops
creeping back, duplicated selection scoring, instrumentation GEMMs on the
disabled path) in CI, where wall-clock timings would be pure noise.
"""

import sys
from pathlib import Path

SCRIPTS_DIR = Path(__file__).resolve().parent.parent / "scripts"
sys.path.insert(0, str(SCRIPTS_DIR))

from check_perf import BENCH_PATH, counter_diff, load_baseline  # noqa: E402


def test_bench_file_exists_and_has_sections():
    """The committed bench file is present with its regression-guard section."""
    assert BENCH_PATH.exists(), (
        f"missing {BENCH_PATH}; create it with: python scripts/check_perf.py --update"
    )
    payload = load_baseline()
    assert "deterministic" in payload
    assert "serve" in payload["deterministic"]
    assert "kmeans" in payload["deterministic"]


def test_deterministic_counters_match_baseline():
    """Live engine-step / GEMM / k-means counters equal the checked-in ones."""
    mismatches = counter_diff()
    assert not mismatches, (
        "deterministic hot-path counters drifted from BENCH_hotpaths.json:\n"
        + "\n".join(f"  - {line}" for line in mismatches)
        + "\nintentional? run: python scripts/check_perf.py --update"
    )


def test_gemm_counters_prove_vectorization():
    """The pinned GEMM counts encode the vectorized shape of the hot paths.

    4 requests decode 8 tokens each on the 4-layer serve-sim model under
    ClusterKV.  With attention batched across heads *and* across the
    requests of a decode batch, the per-step decode GEMM count is bounded
    by a small multiple of the layer count — nowhere near the
    requests x layers x kv-heads explosion of the historical per-head loop.
    """
    payload = load_baseline()
    serve = payload["deterministic"]["serve"]
    counters = serve["counters"]
    steps = serve["engine_steps"]
    assert counters["gemm.attention_decode"] > 0
    # 2 launches per fused attention; at most (solo full layers + stacked
    # groups + stragglers) per step. The historical loop would need
    # >= 2 * 4 kv-head GEMMs per request per layer.
    per_step = counters["gemm.attention_decode"] / steps
    assert per_step <= 2 * (4 + 4)
    # Instrumentation is off in the pinned run: zero true-score GEMMs.
    assert counters.get("gemm.true_score", 0) == 0
