"""Unit tests for the KV cache store and the memory-tier substrate."""

import numpy as np
import pytest

from repro.memory import (
    MemoryCapacityError,
    MemoryTier,
    OffloadManager,
    TierKind,
    TransferDirection,
    TransferLedger,
)
from repro.model.kv_cache import KVCacheStore, LayerKVCache


class TestLayerKVCache:
    def test_append_and_views(self, rng):
        cache = LayerKVCache(0, n_kv_heads=2, head_dim=4)
        keys = rng.normal(size=(2, 3, 4))
        values = rng.normal(size=(2, 3, 4))
        cache.append(keys, values)
        assert len(cache) == 3
        np.testing.assert_array_equal(cache.keys, keys)
        np.testing.assert_array_equal(cache.values, values)

    def test_growth_preserves_content(self, rng):
        cache = LayerKVCache(0, 1, 4, initial_capacity=2)
        first = rng.normal(size=(1, 2, 4))
        cache.append(first, first)
        second = rng.normal(size=(1, 10, 4))
        cache.append(second, second)
        assert len(cache) == 12
        np.testing.assert_array_equal(cache.keys[:, :2, :], first)
        np.testing.assert_array_equal(cache.keys[:, 2:, :], second)

    def test_gather(self, rng):
        cache = LayerKVCache(0, 2, 4)
        keys = rng.normal(size=(2, 5, 4))
        cache.append(keys, keys.copy())
        gathered_k, gathered_v = cache.gather(1, np.array([0, 3]))
        np.testing.assert_array_equal(gathered_k, keys[1, [0, 3], :])
        np.testing.assert_array_equal(gathered_v, keys[1, [0, 3], :])

    def test_gather_out_of_range_raises(self, rng):
        cache = LayerKVCache(0, 1, 4)
        cache.append(rng.normal(size=(1, 2, 4)), rng.normal(size=(1, 2, 4)))
        with pytest.raises(IndexError):
            cache.gather(0, np.array([5]))

    def test_shape_mismatch_raises(self, rng):
        cache = LayerKVCache(0, 2, 4)
        with pytest.raises(ValueError):
            cache.append(rng.normal(size=(2, 3, 4)), rng.normal(size=(2, 2, 4)))


class TestMemoryTier:
    def test_allocate_and_free(self):
        tier = MemoryTier(TierKind.GPU, capacity_bytes=100)
        tier.allocate("a", 60)
        assert tier.used_bytes == 60
        assert tier.free_bytes == 40
        tier.free("a")
        assert tier.used_bytes == 0

    def test_capacity_enforced(self):
        tier = MemoryTier(TierKind.GPU, capacity_bytes=100)
        tier.allocate("a", 90)
        with pytest.raises(MemoryCapacityError):
            tier.allocate("b", 20)

    def test_peak_tracking(self):
        tier = MemoryTier(TierKind.CPU)
        tier.allocate("a", 50)
        tier.allocate("b", 30)
        tier.free("a")
        assert tier.peak_bytes == 80
        assert tier.used_bytes == 30

    def test_resize(self):
        tier = MemoryTier(TierKind.GPU, capacity_bytes=100)
        tier.allocate("a", 10)
        tier.resize("a", 70)
        assert tier.used_bytes == 70
        with pytest.raises(MemoryCapacityError):
            tier.resize("a", 200)

    def test_duplicate_allocation_rejected(self):
        tier = MemoryTier(TierKind.GPU)
        tier.allocate("a", 1)
        with pytest.raises(ValueError):
            tier.allocate("a", 1)


class TestTransferLedger:
    def test_totals_and_filters(self):
        ledger = TransferLedger()
        ledger.record(TransferDirection.HOST_TO_DEVICE, 100, "kv_fetch", step=0)
        ledger.record(TransferDirection.HOST_TO_DEVICE, 50, "kv_fetch", step=1)
        ledger.record(TransferDirection.DEVICE_TO_HOST, 30, "kv_offload", step=1)
        assert ledger.total_bytes() == 180
        assert ledger.total_bytes(TransferDirection.HOST_TO_DEVICE) == 150
        assert ledger.total_bytes(tag="kv_offload") == 30
        assert ledger.bytes_per_step(TransferDirection.HOST_TO_DEVICE) == {0: 100, 1: 50}

    def test_negative_size_rejected(self):
        ledger = TransferLedger()
        with pytest.raises(ValueError):
            ledger.record(TransferDirection.HOST_TO_DEVICE, -1, "x")


class TestOffloadManager:
    def test_offload_and_fetch_roundtrip(self):
        manager = OffloadManager()
        manager.register("buf", 1000, TierKind.GPU)
        moved = manager.offload_to_cpu("buf")
        assert moved == 1000
        assert manager.residency("buf") is TierKind.CPU
        moved_back = manager.fetch_to_gpu("buf")
        assert moved_back == 1000
        assert manager.residency("buf") is TierKind.GPU
        assert len(manager.ledger) == 2

    def test_offload_already_on_cpu_is_noop(self):
        manager = OffloadManager()
        manager.register("buf", 10, TierKind.CPU)
        assert manager.offload_to_cpu("buf") == 0

    def test_unknown_buffer_raises(self):
        manager = OffloadManager()
        with pytest.raises(KeyError):
            manager.residency("missing")


class TestKVCacheStore:
    def test_cpu_residency_charges_fetch(self, rng):
        manager = OffloadManager()
        store = KVCacheStore(2, 2, 4, offload=manager, residency=TierKind.CPU)
        store.append(0, rng.normal(size=(2, 8, 4)), rng.normal(size=(2, 8, 4)))
        charged = store.record_fetch(4, step=0)
        assert charged == 4 * store.token_nbytes()
        assert manager.ledger.total_bytes(TransferDirection.HOST_TO_DEVICE) == charged

    def test_gpu_residency_does_not_charge(self, rng):
        manager = OffloadManager()
        store = KVCacheStore(1, 2, 4, offload=manager, residency=TierKind.GPU)
        store.append(0, rng.normal(size=(2, 8, 4)), rng.normal(size=(2, 8, 4)))
        assert store.record_fetch(4, step=0) == 0

    def test_total_bytes_grows_with_tokens(self, rng):
        store = KVCacheStore(2, 2, 4)
        assert store.total_nbytes() == 0
        store.append(0, rng.normal(size=(2, 3, 4)), rng.normal(size=(2, 3, 4)))
        store.append(1, rng.normal(size=(2, 3, 4)), rng.normal(size=(2, 3, 4)))
        assert store.total_nbytes() == 2 * 3 * store.token_nbytes()
        assert store.context_length() == 3
