"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.model import (
    GenerationConfig,
    ModelConfig,
    SyntheticTokenizer,
    TransformerModel,
)


@pytest.fixture(scope="session")
def tiny_config() -> ModelConfig:
    """A very small model configuration used across tests."""
    return ModelConfig(
        name="test-tiny",
        vocab_size=128,
        d_model=32,
        n_layers=2,
        n_heads=4,
        n_kv_heads=2,
        d_ff=64,
        seed=7,
    )


@pytest.fixture(scope="session")
def tiny_model(tiny_config: ModelConfig) -> TransformerModel:
    """A tiny transformer with deterministic weights."""
    return TransformerModel(tiny_config)


@pytest.fixture(scope="session")
def tiny_tokenizer(tiny_config: ModelConfig) -> SyntheticTokenizer:
    """Tokenizer matching the tiny model's vocabulary."""
    return SyntheticTokenizer(tiny_config.vocab_size)


@pytest.fixture()
def rng() -> np.random.Generator:
    """Deterministic random generator for individual tests."""
    return np.random.default_rng(1234)


@pytest.fixture()
def short_prompt(tiny_config: ModelConfig, rng: np.random.Generator) -> np.ndarray:
    """A short random prompt of valid token ids."""
    return rng.integers(4, tiny_config.vocab_size, size=96).astype(np.int64)


@pytest.fixture()
def fast_generation_config() -> GenerationConfig:
    """Generation settings that keep tests fast."""
    return GenerationConfig(
        budget=None,
        max_new_tokens=4,
        num_full_layers=1,
        num_sink_tokens=4,
    )
