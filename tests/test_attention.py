"""Unit tests for the attention module."""

import numpy as np
import pytest

from repro.model.attention import full_causal_attention, selected_attention
from repro.model.tensor_ops import softmax


def _random_qkv(rng, n_heads=4, n_kv_heads=2, length=8, head_dim=8):
    q = rng.normal(size=(n_heads, length, head_dim))
    k = rng.normal(size=(n_kv_heads, length, head_dim))
    v = rng.normal(size=(n_kv_heads, length, head_dim))
    return q, k, v


class TestFullCausalAttention:
    def test_output_shape(self, rng):
        q, k, v = _random_qkv(rng)
        out = full_causal_attention(q, k, v, scale=0.5)
        assert out.output.shape == (8, 4 * 8)

    def test_first_token_attends_only_to_itself(self, rng):
        q, k, v = _random_qkv(rng)
        out = full_causal_attention(q, k, v, scale=0.5, return_weights=True)
        for head_weights in out.weights:
            np.testing.assert_allclose(head_weights[0, 1:], 0.0, atol=1e-12)
            assert head_weights[0, 0] == pytest.approx(1.0)

    def test_weights_rows_sum_to_one(self, rng):
        q, k, v = _random_qkv(rng)
        out = full_causal_attention(q, k, v, scale=0.5, return_weights=True)
        for head_weights in out.weights:
            np.testing.assert_allclose(head_weights.sum(axis=-1), 1.0, atol=1e-9)

    def test_matches_manual_single_head(self, rng):
        q = rng.normal(size=(1, 4, 8))
        k = rng.normal(size=(1, 4, 8))
        v = rng.normal(size=(1, 4, 8))
        out = full_causal_attention(q, k, v, scale=1.0)
        # Manual computation for the last query (sees all four keys).
        scores = q[0, -1] @ k[0].T
        expected_last = softmax(scores) @ v[0]
        np.testing.assert_allclose(out.output[-1], expected_last, atol=1e-9)

    def test_gqa_mapping(self, rng):
        """With identical kv heads, GQA must equal MHA with repeated kv."""
        q = rng.normal(size=(4, 5, 8))
        k_single = rng.normal(size=(1, 5, 8))
        v_single = rng.normal(size=(1, 5, 8))
        gqa = full_causal_attention(q, k_single, v_single, scale=0.3)
        k_rep = np.repeat(k_single, 4, axis=0)
        v_rep = np.repeat(v_single, 4, axis=0)
        mha = full_causal_attention(q, k_rep, v_rep, scale=0.3)
        np.testing.assert_allclose(gqa.output, mha.output, atol=1e-12)

    def test_rejects_bad_grouping(self, rng):
        q = rng.normal(size=(4, 3, 8))
        k = rng.normal(size=(3, 3, 8))
        v = rng.normal(size=(3, 3, 8))
        with pytest.raises(ValueError):
            full_causal_attention(q, k, v, scale=1.0)


class TestSelectedAttention:
    def test_selecting_everything_matches_full(self, rng):
        """Decode attention over all tokens equals the last row of full attention."""
        q, k, v = _random_qkv(rng, length=10)
        full = full_causal_attention(q, k, v, scale=0.4)
        last_queries = q[:, -1, :]
        keys = [k[h] for h in range(k.shape[0])]
        values = [v[h] for h in range(v.shape[0])]
        selected = selected_attention(last_queries, keys, values, scale=0.4)
        np.testing.assert_allclose(selected.output, full.output[-1], atol=1e-9)

    def test_variable_selection_sizes_per_head(self, rng):
        q = rng.normal(size=(4, 8))
        keys = [rng.normal(size=(3, 8)), rng.normal(size=(7, 8))]
        values = [rng.normal(size=(3, 8)), rng.normal(size=(7, 8))]
        out = selected_attention(q, keys, values, scale=1.0)
        assert out.output.shape == (4 * 8,)
        assert out.weights[0].shape == (3,)
        assert out.weights[-1].shape == (7,)

    def test_empty_selection_raises(self, rng):
        q = rng.normal(size=(2, 8))
        with pytest.raises(ValueError):
            selected_attention(q, [np.zeros((0, 8))], [np.zeros((0, 8))], scale=1.0)

    def test_single_token_selection_returns_its_value(self, rng):
        q = rng.normal(size=(2, 4))
        key = rng.normal(size=(1, 4))
        value = rng.normal(size=(1, 4))
        out = selected_attention(q, [key], [value], scale=1.0)
        np.testing.assert_allclose(out.output[:4], value[0], atol=1e-12)
        np.testing.assert_allclose(out.output[4:], value[0], atol=1e-12)
