"""Unit tests for the evaluation metrics."""

import numpy as np
import pytest

from repro.metrics import (
    ScoreTable,
    average_scores,
    mean_recall,
    normalize_answer,
    perplexity_from_logprobs,
    qa_f1_score,
    recall_by_budget,
    rouge_l_score,
)
from repro.model.generation import RecallRecord


class TestQAF1:
    def test_exact_match(self):
        assert qa_f1_score("w1 w2 w3", "w1 w2 w3") == pytest.approx(1.0)

    def test_no_overlap(self):
        assert qa_f1_score("a b", "c d") == 0.0

    def test_partial_overlap(self):
        # prediction has 2 tokens, reference 4, overlap 2 -> P=1, R=0.5, F1=2/3
        assert qa_f1_score("w1 w2", "w1 w2 w3 w4") == pytest.approx(2 / 3)

    def test_case_and_punctuation_normalised(self):
        assert qa_f1_score("Hello, World!", "hello world") == pytest.approx(1.0)

    def test_empty_prediction(self):
        assert qa_f1_score("", "w1") == 0.0
        assert qa_f1_score("", "") == 1.0

    def test_order_does_not_matter_for_bag_overlap(self):
        assert qa_f1_score("w2 w1", "w1 w2") == pytest.approx(1.0)

    def test_normalize_answer(self):
        assert normalize_answer(" A, b! ") == ["a", "b"]


class TestRougeL:
    def test_identical(self):
        assert rouge_l_score("w1 w2 w3", "w1 w2 w3") == pytest.approx(1.0)

    def test_subsequence_order_matters(self):
        in_order = rouge_l_score("w1 w2 w3 w4", "w1 w3")
        reversed_order = rouge_l_score("w1 w2 w3 w4", "w3 w1")
        assert in_order > reversed_order

    def test_disjoint(self):
        assert rouge_l_score("a b", "c d") == 0.0

    def test_bounded_by_one(self):
        assert 0.0 <= rouge_l_score("w1 w2 w5", "w1 w2 w3 w4") <= 1.0


class TestPerplexity:
    def test_uniform_distribution(self):
        logprobs = [np.log(1 / 16)] * 10
        assert perplexity_from_logprobs(logprobs) == pytest.approx(16.0)

    def test_perfect_prediction(self):
        assert perplexity_from_logprobs([0.0, 0.0]) == pytest.approx(1.0)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            perplexity_from_logprobs([])

    def test_non_finite_raises(self):
        with pytest.raises(ValueError):
            perplexity_from_logprobs([0.0, -np.inf])


class TestRecallAggregation:
    def _records(self):
        return [
            RecallRecord(step=0, layer=2, head=0, budget=64, recall=0.5),
            RecallRecord(step=0, layer=2, head=1, budget=64, recall=0.7),
            RecallRecord(step=1, layer=3, head=0, budget=128, recall=0.9),
        ]

    def test_mean_recall(self):
        assert mean_recall(self._records()) == pytest.approx((0.5 + 0.7 + 0.9) / 3)

    def test_mean_recall_empty(self):
        assert mean_recall([]) == 0.0

    def test_recall_by_budget(self):
        grouped = recall_by_budget(self._records())
        assert grouped[64] == pytest.approx(0.6)
        assert grouped[128] == pytest.approx(0.9)


class TestScoreTable:
    def test_record_and_query(self):
        table = ScoreTable()
        table.record("clusterkv", 256, "qasper", 0.8)
        table.record("clusterkv", 512, "qasper", 0.9)
        table.record("quest", 256, "qasper", 0.5)
        assert table.methods() == ["clusterkv", "quest"]
        assert table.budgets() == [256, 512]
        assert table.task_curve("clusterkv", "qasper") == {256: 0.8, 512: 0.9}

    def test_average_by_budget(self):
        table = ScoreTable()
        table.record("clusterkv", 256, "a", 0.4)
        table.record("clusterkv", 256, "b", 0.6)
        assert table.average_by_budget("clusterkv") == {256: pytest.approx(0.5)}

    def test_to_rows_flattening(self):
        table = ScoreTable()
        table.record("full", 256, "a", 1.0)
        rows = table.to_rows()
        assert rows == [{"method": "full", "budget": 256, "task": "a", "score": 1.0}]

    def test_average_scores_empty_raises(self):
        with pytest.raises(ValueError):
            average_scores({})
