"""Tier-1 hook of the docstring-coverage check (``scripts/check_docs.py``).

Fails with the full listing whenever a public module, class, function or
method under ``src/repro`` lacks a docstring, so documentation debt cannot
accumulate silently.
"""

import sys
from pathlib import Path

SCRIPTS_DIR = Path(__file__).resolve().parent.parent / "scripts"
sys.path.insert(0, str(SCRIPTS_DIR))

from check_docs import SOURCE_ROOT, find_missing_docstrings  # noqa: E402


def test_public_api_is_fully_documented():
    """Every public object under src/repro carries a docstring."""
    missing = find_missing_docstrings()
    assert not missing, (
        f"{len(missing)} public object(s) under {SOURCE_ROOT} lack docstrings:\n"
        + "\n".join(f"  - {entry}" for entry in missing)
    )


def test_checker_detects_missing_docstrings(tmp_path):
    """The checker itself flags undocumented modules, classes and functions."""
    package = tmp_path / "pkg"
    package.mkdir()
    (package / "documented.py").write_text(
        '"""Module docstring."""\n\n'
        "def covered():\n"
        '    """Has a docstring."""\n'
        "def _private():\n"
        "    pass\n"
    )
    (package / "undocumented.py").write_text(
        "def bare():\n    pass\n\n\nclass Bare:\n    def method(self):\n        pass\n"
    )
    missing = find_missing_docstrings(package)
    assert "pkg.undocumented (module)" in missing
    assert "pkg.undocumented.bare (function)" in missing
    assert "pkg.undocumented.Bare (class)" in missing
    assert "pkg.undocumented.Bare.method (function)" in missing
    assert not any(entry.startswith("pkg.documented") for entry in missing)
