"""Scenario-matrix and invariant tests of the elastic cluster layer.

Three workload scenarios (poisson burst, on/off diurnal, heavy-tail mix)
crossed with three compression policies pin the cluster simulator's two
core contracts in every cell:

* **bit-reproducibility** — on the perfmodel clock, two runs of the same
  cell emit byte-identical report JSON (scaling timeline, rejections and
  failure log included);
* **request conservation** — every workload request is accounted for:
  ``submitted == completed + rejected`` once the run drains, with no
  request stuck in retry limbo.

Seeded property-style tests cover the control-plane invariants (fleet
size within bounds, no scale-down while a replica holds work, admission
never rejecting a request the fleet has headroom for), and the failure
tests pin that killing a replica mid-decode changes no surviving
request's tokens and that retried requests reproduce their monolithic
outputs.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.api import EngineSpec, simulate
from repro.cluster import (
    ClusterConfig,
    ClusterSimulator,
    FailureEvent,
    FailurePlan,
    FleetView,
    QueueDepthAutoscaler,
    ReplicaInfo,
    ReplicaLifecycle,
    SLOAttainmentAutoscaler,
    StaticAutoscaler,
    TokenBudgetAdmission,
    admission_names,
    autoscaler_names,
    build_admission,
    build_autoscaler,
    simulate_cluster,
)
from repro.serving import BatchedEngine
from repro.serving.bench import serving_policy_spec
from repro.traffic import RequestShape, SLOSpec, build_arrivals, generate_traffic

POLICIES = ("clusterkv", "streaming_llm", "full")
SCENARIOS = ("poisson_burst", "onoff_diurnal", "heavy_tail")
VOCAB = 2048


def _scenario_workload(scenario: str, policy_name: str, seed: int = 0):
    """Deterministic requests of one matrix cell."""
    policy = serving_policy_spec(policy_name, num_sink_tokens=8)
    small = RequestShape(
        prompt_len_range=(24, 48), max_new_tokens=12, policy=policy, weight=0.85
    )
    if scenario == "poisson_burst":
        shapes = [small]
        times = build_arrivals("poisson", rate=1.2).times(8, seed=seed)
    elif scenario == "onoff_diurnal":
        shapes = [small]
        times = build_arrivals("onoff", rate=0.6, burstiness=5.0).times(8, seed=seed)
    elif scenario == "heavy_tail":
        heavy = RequestShape(
            prompt_len_range=(48, 96), max_new_tokens=64, policy=policy, weight=0.15
        )
        shapes = [small, heavy]
        times = build_arrivals("poisson", rate=0.6).times(8, seed=seed)
    else:  # pragma: no cover - guards typos in the parametrize lists
        raise ValueError(f"unknown scenario {scenario!r}")
    return generate_traffic(shapes, times, vocab_size=VOCAB, seed=seed)


def _cell_config(policy_name: str) -> ClusterConfig:
    """The elastic fleet every matrix cell runs on."""
    policy = serving_policy_spec(policy_name, num_sink_tokens=8)
    return ClusterConfig(
        engine=EngineSpec(
            model="serve-sim",
            policy=policy,
            budget=48,
            max_new_tokens=24,
            num_full_layers=1,
            num_sink_tokens=8,
            max_batch_size=4,
            max_prefills_per_step=4,
        ),
        min_replicas=1,
        max_replicas=3,
        autoscaler="queue_depth:high=1.5,low=0.25,cooldown_s=2",
        admission="queue_deadline:deadline_s=8,service_tokens_per_s=40",
        router="jsq",
        slo=SLOSpec(ttft_s=4.0, tpot_s=0.2),
    )


def _run_cell(scenario: str, policy_name: str):
    """Run one matrix cell on a fresh simulator."""
    requests = _scenario_workload(scenario, policy_name)
    simulator = ClusterSimulator(_cell_config(policy_name))
    report = simulator.run(requests)
    return simulator, report, requests


class TestScenarioMatrix:
    """Reproducibility and conservation across scenario x policy cells."""

    @pytest.mark.parametrize("scenario", SCENARIOS)
    @pytest.mark.parametrize("policy_name", POLICIES)
    def test_cell_is_byte_identical_and_conserves_requests(
        self, scenario, policy_name
    ):
        """Each cell: identical JSON run-to-run, every request accounted for."""
        _, first, requests = _run_cell(scenario, policy_name)
        simulator, second, _ = _run_cell(scenario, policy_name)
        assert first.to_json() == second.to_json()

        # Conservation: admitted = completed + rejected + in-retry, and
        # in-retry is empty once the run drains.
        assert second.num_requests + second.num_rejected == len(requests)
        assert second.num_submitted == len(requests)
        completed_ids = set(simulator.completed)
        rejected_ids = {r.request_id for r in second.rejected}
        assert completed_ids | rejected_ids == {r.request_id for r in requests}
        assert not completed_ids & rejected_ids
        # Every retry was resolved: retried requests completed or were
        # explicitly given up on (never silently dropped).
        for request_id, retries in simulator._retry_counts.items():
            assert retries >= 1
            assert request_id in completed_ids or request_id in rejected_ids

    def test_rejections_are_first_class_records(self):
        """A saturated fleet rejects with reason and decision detail."""
        requests = _scenario_workload("poisson_burst", "clusterkv")
        config = ClusterConfig(
            engine=_cell_config("clusterkv").engine,
            min_replicas=1,
            max_replicas=1,
            autoscaler="static",
            admission="queue_deadline:deadline_s=0.5,service_tokens_per_s=10",
        )
        report = simulate_cluster(requests, config)
        assert report.num_rejected > 0
        for rejection in report.rejected:
            assert rejection.reason == "queue_deadline"
            assert rejection.detail["estimated_delay_s"] > rejection.detail["deadline_s"]
        payload = report.to_dict()
        assert payload["num_rejected"] == report.num_rejected
        assert len(payload["rejected"]) == report.num_rejected


def _random_view(rng: np.random.Generator) -> FleetView:
    """One synthetic fleet snapshot for the pure property tests."""
    num = int(rng.integers(1, 6))
    states = [
        ReplicaLifecycle(
            str(rng.choice(["starting", "active", "draining"], p=[0.2, 0.6, 0.2]))
        )
        for _ in range(num)
    ]
    replicas = tuple(
        ReplicaInfo(
            index=i,
            state=states[i],
            queued=int(rng.integers(0, 5)),
            active=int(rng.integers(0, 5)),
            committed_tokens=int(rng.integers(0, 2048)),
            capacity_tokens=int(rng.integers(256, 2048)),
            clock_s=float(rng.uniform(0, 100)),
        )
        for i in range(num)
    )
    min_replicas = int(rng.integers(1, 3))
    return FleetView(
        now_s=float(rng.uniform(0, 100)),
        replicas=replicas,
        parked=int(rng.integers(0, 3)),
        recent_slo_attainment=float(rng.uniform(0, 1)) if rng.random() < 0.8 else None,
        min_replicas=min_replicas,
        max_replicas=min_replicas + int(rng.integers(0, 4)),
    )


class TestControlPlaneInvariants:
    """Seeded property-style invariants of autoscaling and admission."""

    def test_registries_enumerate_builtins(self):
        """Both registries expose the built-in strategies by name."""
        assert set(autoscaler_names()) >= {"static", "queue_depth", "slo_attainment"}
        assert set(admission_names()) >= {"always", "token_budget", "queue_deadline"}
        assert isinstance(build_autoscaler("queue_depth", high=3.0), QueueDepthAutoscaler)
        assert isinstance(build_admission("token_budget"), TokenBudgetAdmission)

    def test_autoscaler_decisions_respect_bounds(self):
        """No policy ever proposes growing past max or shrinking past min."""
        rng = np.random.default_rng(0)
        scalers = [
            StaticAutoscaler(),
            QueueDepthAutoscaler(cooldown_s=0.0),
            SLOAttainmentAutoscaler(cooldown_s=0.0),
        ]
        for scaler in scalers:
            for outcome in (True, False, False, True):
                scaler.observe(outcome)
        for _ in range(200):
            view = _random_view(rng)
            for scaler in scalers:
                decision = scaler.decide(view)
                if decision.add:
                    assert view.provisioned < view.max_replicas
                if decision.drain:
                    assert view.provisioned > view.min_replicas

    def test_admission_never_rejects_with_fleet_headroom(self):
        """token_budget admits every request some accepting replica can hold."""
        rng = np.random.default_rng(1)
        policy = TokenBudgetAdmission()
        for _ in range(300):
            view = _random_view(rng)
            tokens = int(rng.integers(1, 1024))
            decision = policy.consider(tokens, view)
            if view.accepting and view.max_headroom_tokens >= tokens:
                assert decision.admitted, (
                    f"rejected {tokens} tokens with headroom "
                    f"{view.max_headroom_tokens}"
                )
            if not decision.admitted:
                assert decision.detail["max_headroom_tokens"] < tokens or (
                    not view.accepting
                )

    def test_fleet_size_always_within_bounds_in_simulation(self):
        """The provisioned count stays within [min, max] at every transition."""
        for seed in range(3):
            requests = _scenario_workload("onoff_diurnal", "streaming_llm", seed=seed)
            config = ClusterConfig(
                engine=_cell_config("streaming_llm").engine,
                min_replicas=2,
                max_replicas=4,
                autoscaler="queue_depth:high=1.0,low=0.5,cooldown_s=1",
                failures=FailurePlan.seeded(seed, num_failures=1, horizon_s=10.0),
            )
            report = simulate_cluster(requests, config)
            assert report.scaling, "elastic run must log its fleet transitions"
            for entry in report.scaling:
                assert entry["provisioned"] <= config.max_replicas
                # Two legitimate below-floor moments: while the initial
                # fleet is still being built replica by replica at t=0,
                # and the instant of a kill — healing restores the floor
                # at the same instant, before any other event runs.
                if entry["action"] != "fail" and entry["reason"] != "initial fleet":
                    assert entry["provisioned"] >= config.min_replicas
            fails = [e for e in report.scaling if e["action"] == "fail"]
            for fail in fails:
                heals = [
                    e
                    for e in report.scaling
                    if e["action"] == "boot" and e["time_s"] == fail["time_s"]
                ]
                assert heals, "every kill is healed back to the floor instantly"

    def test_no_scale_down_while_replica_holds_work(self):
        """Drained replicas retire their work; removal only happens empty."""
        requests = _scenario_workload("poisson_burst", "streaming_llm")
        config = ClusterConfig(
            engine=_cell_config("streaming_llm").engine,
            min_replicas=1,
            max_replicas=3,
            # Aggressive watermarks force both scale-ups and drains.
            autoscaler="queue_depth:high=0.75,low=0.6,cooldown_s=0.5",
        )
        simulator = ClusterSimulator(config)
        report = simulator.run(requests)
        drains = [e for e in report.scaling if e["action"] == "drain"]
        removes = {e["replica"]: e for e in report.scaling if e["action"] == "remove"}
        assert drains, "the aggressive watermarks must trigger a drain"
        # No failures were injected, so a lost request could only come
        # from an unsafe drain; conservation proves there was none.
        assert report.num_retries == 0
        assert report.num_requests + report.num_rejected == len(requests)
        for drain in drains:
            replica = next(
                r for r in simulator.fleet if r.index == drain["replica"]
            )
            assert replica.state in (
                ReplicaLifecycle.STOPPED,
                ReplicaLifecycle.DRAINING,
                ReplicaLifecycle.FAILED,
            )
            if replica.index in removes:
                assert removes[replica.index]["time_s"] >= drain["time_s"]
        # Removing a replica that still holds work is an assertion error.
        victim = simulator.fleet[0]
        victim.engine._draining = False
        victim.engine.submit(np.arange(8) + 4)
        with pytest.raises(AssertionError):
            simulator._stop_replica(victim, 0.0)


class TestFailureDeterminism:
    """Failure injection changes nothing it should not change."""

    def _workload(self, seed: int = 3):
        policy = serving_policy_spec("clusterkv", num_sink_tokens=8)
        shapes = [
            RequestShape(prompt_len_range=(24, 48), max_new_tokens=16, policy=policy)
        ]
        times = build_arrivals("poisson", rate=0.8).times(8, seed=seed)
        return generate_traffic(shapes, times, vocab_size=VOCAB, seed=seed)

    def _config(self, failures: FailurePlan = FailurePlan()) -> ClusterConfig:
        return ClusterConfig(
            engine=_cell_config("clusterkv").engine,
            min_replicas=2,
            max_replicas=2,
            autoscaler="static",
            failures=failures,
        )

    def test_mid_decode_kill_preserves_all_token_sequences(self):
        """Unaffected requests are bit-identical; retries reproduce outputs."""
        requests = self._workload()
        baseline = ClusterSimulator(self._config())
        baseline.run(requests)
        baseline_tokens = {
            rid: list(c.result.output_ids) for rid, c in baseline.completed.items()
        }

        plan = FailurePlan(events=(FailureEvent(time_s=7.0, slot=0),))
        failed = ClusterSimulator(self._config(plan))
        report = failed.run(requests)
        failed_tokens = {
            rid: list(c.result.output_ids) for rid, c in failed.completed.items()
        }

        # The kill actually hit live work (otherwise the test is vacuous).
        assert report.failures and report.failures[0]["lost_requests"]
        assert report.num_retries >= 1
        retried_ids = {m.request_id for m in report.requests if m.retries > 0}
        assert retried_ids

        # Every request — on the killed replica or not — produced exactly
        # the tokens of the failure-free run: decoding is a deterministic
        # function of the request, not of fleet history.
        assert failed_tokens == baseline_tokens

        # And the retried requests reproduce their monolithic outputs:
        # serving each alone on a fresh engine yields the same tokens.
        config = self._config()
        for request_id in retried_ids:
            request = next(r for r in requests if r.request_id == request_id)
            engine = BatchedEngine(
                failed.model,
                selector=config.engine.build_policy(),
                generation_config=config.engine.generation_config(),
                scheduler_config=config.engine.scheduler_config(),
            )
            engine.submit(
                request.prompt_ids,
                request_id=request.request_id,
                max_new_tokens=request.max_new_tokens,
                policy=request.policy,
            )
            solo = engine.run()
            assert list(solo.completed[0].result.output_ids) == failed_tokens[
                request_id
            ]

    def test_failure_runs_are_byte_identical(self):
        """The same failure plan yields the same report, byte for byte."""
        requests = self._workload()
        plan = FailurePlan.seeded(seed=7, num_failures=2, horizon_s=12.0)
        first = ClusterSimulator(self._config(plan)).run(requests)
        second = ClusterSimulator(self._config(plan)).run(requests)
        assert first.to_json() == second.to_json()
        assert first.failures == second.failures

    def test_exhausted_retries_do_not_count_as_redispatches(self):
        """A request given up on contributes rejections, not phantom retries."""
        requests = self._workload()
        plan = FailurePlan(events=(FailureEvent(time_s=7.0, slot=0),))
        config = ClusterConfig(
            engine=_cell_config("clusterkv").engine,
            min_replicas=2,
            max_replicas=2,
            autoscaler="static",
            failures=plan,
            max_retries=0,
        )
        report = ClusterSimulator(config).run(requests)
        exhausted = [r for r in report.rejected if r.reason == "retries_exhausted"]
        assert exhausted, "the kill must hit live work for this test to bite"
        # num_retries counts actual re-dispatches only — none happened.
        assert report.num_retries == 0
        assert all(not f.get("retried") for f in report.failures)
        assert report.num_requests + report.num_rejected == len(requests)

    def test_lost_work_is_accounted(self):
        """Retry and lost-token counters reconcile with the failure log."""
        requests = self._workload()
        plan = FailurePlan(events=(FailureEvent(time_s=7.0, slot=0),))
        report = ClusterSimulator(self._config(plan)).run(requests)
        logged_lost = sum(int(f.get("lost_tokens", 0)) for f in report.failures)
        assert report.lost_tokens == logged_lost
        logged_retries = sum(len(f.get("retried", ())) for f in report.failures)
        assert report.num_retries == logged_retries
        assert sum(m.retries for m in report.requests) == report.num_retries


class TestElasticApi:
    """The public simulate() knobs reach the cluster simulator."""

    def test_simulate_cluster_knobs(self):
        """Passing any cluster knob switches simulate() to the elastic path."""
        policy = serving_policy_spec("streaming_llm", num_sink_tokens=8)
        shapes = [
            RequestShape(prompt_len_range=(24, 32), max_new_tokens=8, policy=policy)
        ]
        times = build_arrivals("constant", rate=1.0).times(4, seed=0)
        requests = generate_traffic(shapes, times, vocab_size=VOCAB, seed=0)
        from repro.traffic import TrafficConfig

        config = TrafficConfig(engine=_cell_config("streaming_llm").engine)
        report = simulate(requests, config, autoscaler="queue_depth")
        assert report.autoscaler["name"] == "queue_depth"
        assert report.autoscaler["min_replicas"] == 1
        assert report.scaling[0]["action"] == "boot"
        static = simulate(requests, config)
        assert static.autoscaler == {}
        assert [m.request_id for m in report.requests] == [
            m.request_id for m in static.requests
        ]

    def test_warmup_is_priced_by_the_perfmodel(self):
        """Scale-ups pay the cost model's replica warm-up lag on the clock."""
        from repro.perfmodel import StepCostModel
        from repro.traffic import build_clock

        clock = build_clock("perfmodel", context_scale=64)
        expected = StepCostModel(context_scale=64).replica_warmup_seconds()
        assert clock.warmup_seconds() == expected
        assert expected > 0.0
        requests = _scenario_workload("poisson_burst", "streaming_llm")
        config = ClusterConfig(
            engine=_cell_config("streaming_llm").engine,
            min_replicas=1,
            max_replicas=3,
            autoscaler="queue_depth:high=0.9,low=0.1,cooldown_s=0.5",
        )
        report = simulate_cluster(requests, config)
        boots = [
            e
            for e in report.scaling
            if e["action"] == "boot" and e["reason"] != "initial fleet"
        ]
        readies = {e["replica"]: e for e in report.scaling if e["action"] == "ready"}
        assert boots, "the aggressive watermarks must boot a replica"
        for boot in boots:
            ready = readies[boot["replica"]]
            assert ready["time_s"] == pytest.approx(boot["time_s"] + expected)
