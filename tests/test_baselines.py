"""Unit tests for the baseline KV selection methods."""

import numpy as np
import pytest

from repro.baselines import (
    FullKVSelector,
    H2OSelector,
    InfiniGenSelector,
    OracleTopKSelector,
    QuestSelector,
    StreamingLLMSelector,
    merge_group_queries,
    top_k_indices,
)
from repro.baselines.infinigen import InfiniGenConfig
from repro.baselines.quest import QuestConfig
from repro.memory import TierKind


def _state(factory, n_kv_heads=2, head_dim=8, sinks=4):
    return factory.create_layer_state(0, n_kv_heads, head_dim, sinks)


class TestHelpers:
    def test_merge_group_queries_sums_group(self, rng):
        queries = rng.normal(size=(2, 3, 4))
        merged = merge_group_queries(queries)
        np.testing.assert_allclose(merged, queries.sum(axis=1))

    def test_merge_accepts_already_merged(self, rng):
        queries = rng.normal(size=(2, 4))
        np.testing.assert_array_equal(merge_group_queries(queries), queries)

    def test_top_k_indices_sorted_and_correct(self):
        scores = np.array([0.1, 5.0, 3.0, 5.0, -1.0])
        np.testing.assert_array_equal(top_k_indices(scores, 2), [1, 3])
        np.testing.assert_array_equal(top_k_indices(scores, 10), [0, 1, 2, 3, 4])
        assert top_k_indices(scores, 0).shape == (0,)


class TestFullKV:
    def test_selects_everything(self, rng):
        state = _state(FullKVSelector())
        state.observe_prefill(rng.normal(size=(2, 10, 8)))
        state.observe_decode(rng.normal(size=(2, 1, 8)))
        selections = state.select(rng.normal(size=(2, 1, 8)), budget=4, step=0)
        for indices in selections:
            np.testing.assert_array_equal(indices, np.arange(11))

    def test_residency_gpu(self):
        assert FullKVSelector().kv_residency is TierKind.GPU


class TestStreamingLLM:
    def test_sinks_plus_recent_window(self, rng):
        state = _state(StreamingLLMSelector(), sinks=2)
        state.observe_prefill(rng.normal(size=(2, 20, 8)))
        selections = state.select(rng.normal(size=(2, 1, 8)), budget=6, step=0)
        expected = np.array([0, 1, 16, 17, 18, 19])
        for indices in selections:
            np.testing.assert_array_equal(indices, expected)

    def test_never_selects_middle_tokens(self, rng):
        state = _state(StreamingLLMSelector(), sinks=2)
        state.observe_prefill(rng.normal(size=(2, 50, 8)))
        selections = state.select(rng.normal(size=(2, 1, 8)), budget=10, step=0)
        middle = set(range(10, 40))
        for indices in selections:
            assert not (set(indices.tolist()) & middle)


class TestOracle:
    def test_selects_exact_top_k(self, rng):
        state = _state(OracleTopKSelector(), n_kv_heads=1)
        keys = rng.normal(size=(1, 30, 8))
        state.observe_prefill(keys)
        query = rng.normal(size=(1, 1, 8))
        selections = state.select(query, budget=5, step=0)
        scores = keys[0] @ query[0, 0]
        np.testing.assert_array_equal(selections[0], top_k_indices(scores, 5))


class TestQuest:
    def test_page_construction(self, rng):
        state = _state(QuestSelector(QuestConfig(page_size=4)))
        state.observe_prefill(rng.normal(size=(2, 10, 8)))
        assert state.num_pages == 3  # 4 + 4 + 2

    def test_selection_is_page_aligned(self, rng):
        state = _state(QuestSelector(QuestConfig(page_size=4)))
        state.observe_prefill(rng.normal(size=(2, 32, 8)))
        selections = state.select(rng.normal(size=(2, 1, 8)), budget=8, step=0)
        for indices in selections:
            pages = set((indices // 4).tolist())
            # every selected page must be fully present
            for page in pages:
                members = [i for i in indices.tolist() if i // 4 == page]
                assert len(members) == 4

    def test_last_page_always_included(self, rng):
        state = _state(QuestSelector(QuestConfig(page_size=4)))
        state.observe_prefill(rng.normal(size=(2, 33, 8)))
        selections = state.select(rng.normal(size=(2, 1, 8)), budget=4, step=0)
        for indices in selections:
            assert 32 in indices.tolist()

    def test_page_bound_finds_planted_outlier(self, rng):
        """A page containing an extreme key must outrank ordinary pages."""
        keys = 0.01 * rng.normal(size=(1, 64, 8))
        keys[0, 37] = 5.0  # page 9 holds an extreme key
        state = _state(QuestSelector(QuestConfig(page_size=8, include_last_page=False)), n_kv_heads=1)
        state.observe_prefill(keys)
        query = np.ones((1, 1, 8))
        selections = state.select(query, budget=8, step=0)
        assert 37 in selections[0].tolist()

    def test_min_max_summaries_updated_on_decode(self, rng):
        state = _state(QuestSelector(QuestConfig(page_size=4)))
        state.observe_prefill(rng.normal(size=(2, 4, 8)))
        state.observe_decode(rng.normal(size=(2, 3, 8)))
        assert state.num_pages == 2
        assert state.context_length == 7

    def test_invalid_page_size(self):
        with pytest.raises(ValueError):
            QuestConfig(page_size=0)


class TestInfiniGen:
    def test_partial_dim(self):
        config = InfiniGenConfig(partial_ratio=0.25)
        assert config.partial_dim(64) == 16
        assert config.partial_dim(8) == 4  # floor at min_partial_dim

    def test_selection_size_and_bounds(self, rng):
        state = _state(InfiniGenSelector())
        state.observe_prefill(rng.normal(size=(2, 40, 8)))
        selections = state.select(rng.normal(size=(2, 1, 8)), budget=10, step=0)
        for indices in selections:
            assert indices.shape[0] == 10
            assert indices.max() < 40

    def test_idealised_variant_matches_oracle_direction(self, rng):
        """With zero noise and full partial ratio, InfiniGen equals the oracle."""
        config = InfiniGenConfig(partial_ratio=1.0, speculation_noise=0.0)
        state = _state(InfiniGenSelector(config), n_kv_heads=1)
        keys = rng.normal(size=(1, 30, 8))
        state.observe_prefill(keys)
        query = rng.normal(size=(1, 1, 8))
        selections = state.select(query, budget=6, step=0)
        np.testing.assert_array_equal(
            selections[0], top_k_indices(keys[0] @ query[0, 0], 6)
        )

    def test_partial_keys_grow_with_decode(self, rng):
        state = _state(InfiniGenSelector())
        state.observe_prefill(rng.normal(size=(2, 16, 8)))
        aux_before = state.stats.aux_bytes
        state.observe_decode(rng.normal(size=(2, 4, 8)))
        assert state.context_length == 20
        assert state.stats.aux_bytes > aux_before

    def test_decode_before_prefill_raises(self, rng):
        state = _state(InfiniGenSelector())
        with pytest.raises(RuntimeError):
            state.observe_decode(rng.normal(size=(2, 1, 8)))

    def test_residency_cpu_and_fetch_accounting(self, rng):
        assert InfiniGenSelector().kv_residency is TierKind.CPU
        state = _state(InfiniGenSelector())
        state.observe_prefill(rng.normal(size=(2, 40, 8)))
        state.select(rng.normal(size=(2, 1, 8)), budget=10, step=0)
        assert state.stats.fetched_tokens == 2 * 10  # per kv head

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            InfiniGenConfig(partial_ratio=0.0)
        with pytest.raises(ValueError):
            InfiniGenConfig(speculation_noise=-1.0)


class TestH2O:
    def test_budget_respected(self, rng):
        state = _state(H2OSelector(), sinks=2)
        state.observe_prefill(rng.normal(size=(2, 40, 8)))
        selections = state.select(rng.normal(size=(2, 1, 8)), budget=12, step=0)
        for indices in selections:
            assert indices.shape[0] <= 14  # budget plus forced sinks margin

    def test_eviction_is_permanent(self, rng):
        """Tokens evicted at one step never reappear in later selections."""
        state = _state(H2OSelector(), sinks=2)
        state.observe_prefill(rng.normal(size=(2, 60, 8)))
        first = state.select(rng.normal(size=(2, 1, 8)), budget=12, step=0)
        evicted = set(range(60)) - set(first[0].tolist())
        state.observe_decode(rng.normal(size=(2, 1, 8)))
        second = state.select(rng.normal(size=(2, 1, 8)), budget=12, step=1)
        assert not (set(second[0].tolist()) & evicted)

    def test_new_tokens_enter_candidate_set(self, rng):
        state = _state(H2OSelector(), sinks=2)
        state.observe_prefill(rng.normal(size=(2, 30, 8)))
        state.select(rng.normal(size=(2, 1, 8)), budget=10, step=0)
        state.observe_decode(rng.normal(size=(2, 1, 8)))
        selections = state.select(rng.normal(size=(2, 1, 8)), budget=10, step=1)
        assert 30 in selections[0].tolist()
