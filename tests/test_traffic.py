"""Tests of the traffic layer: arrivals, workloads, routing, simulation, SLO.

The load-bearing guarantees:

* everything is seeded and deterministic — equal configuration yields
  byte-identical ``TrafficReport`` JSON, run to run;
* the virtual-clock simulator is *functionally transparent*: a single
  replica at batch capacity 1 reproduces ``BatchedEngine.run()`` outputs
  token for token;
* the SLO metrics follow the timing points (queue wait <= TTFT <= E2E);
* on the perfmodel clock, ClusterKV sustains a higher arrival rate than
  full KV at a fixed SLO — the serving claim of the paper, measurable.
"""

import json

import numpy as np
import pytest

from repro.api import EngineSpec, simulate as api_simulate
from repro.model import TransformerModel, get_model_config
from repro.policies import PolicySpec
from repro.serving import BatchedEngine, SchedulerConfig
from repro.traffic import (
    ConstantArrivals,
    OnOffArrivals,
    PoissonArrivals,
    RequestShape,
    Router,
    SLOSpec,
    TraceArrivals,
    TrafficBenchConfig,
    TrafficConfig,
    TrafficRequest,
    TrafficSimulator,
    WallClock,
    arrival_names,
    build_arrivals,
    build_router,
    format_traffic_report,
    generate_traffic,
    load_trace,
    router_names,
    run_traffic_bench,
    save_trace,
    simulate,
)
from repro.traffic.report import percentile


class TestArrivalProcesses:
    def test_registry_names(self):
        assert set(arrival_names()) >= {"constant", "poisson", "onoff", "trace"}
        assert set(router_names()) >= {"round_robin", "jsq", "least_kv"}

    def test_unknown_names_rejected(self):
        with pytest.raises(ValueError, match="unknown arrival process"):
            build_arrivals("bogus")
        with pytest.raises(ValueError, match="unknown router"):
            build_router("bogus")

    def test_constant_spacing(self):
        times = ConstantArrivals(rate=4.0).times(5)
        assert np.allclose(np.diff(times), 0.25)
        assert times[0] == 0.0

    def test_poisson_deterministic_and_sorted(self):
        a = PoissonArrivals(rate=2.0).times(50, seed=3)
        b = PoissonArrivals(rate=2.0).times(50, seed=3)
        c = PoissonArrivals(rate=2.0).times(50, seed=4)
        assert np.array_equal(a, b)
        assert not np.array_equal(a, c)
        assert np.all(np.diff(a) >= 0)
        # Mean inter-arrival approximates 1/rate over many samples.
        assert np.mean(np.diff(a)) == pytest.approx(0.5, rel=0.5)

    def test_onoff_is_burstier_than_poisson(self):
        onoff = OnOffArrivals(rate=1.0, burstiness=8.0).times(200, seed=0)
        poisson = PoissonArrivals(rate=1.0).times(200, seed=0)
        assert np.all(np.diff(onoff) >= 0)
        # Burstiness: higher variance of inter-arrival gaps at equal mean rate.
        assert np.var(np.diff(onoff)) > np.var(np.diff(poisson))

    def test_trace_arrivals_validation(self):
        with pytest.raises(ValueError, match="non-decreasing"):
            TraceArrivals(timestamps=(1.0, 0.5))
        trace = TraceArrivals.from_sequence([0.0, 1.0, 2.0])
        assert np.array_equal(trace.times(2), [0.0, 1.0])
        with pytest.raises(ValueError, match="holds 3 arrivals"):
            trace.times(4)

    def test_invalid_rates_rejected(self):
        with pytest.raises(ValueError):
            ConstantArrivals(rate=0.0)
        with pytest.raises(ValueError):
            PoissonArrivals(rate=-1.0)
        with pytest.raises(ValueError):
            OnOffArrivals(rate=1.0, burstiness=0.5)


class TestWorkloadGeneration:
    def test_deterministic_and_policy_propagation(self):
        shapes = [
            RequestShape(prompt_len_range=(8, 16), max_new_tokens=4, policy="quest"),
            RequestShape(prompt_len_range=(24, 24), max_new_tokens=8),
        ]
        times = ConstantArrivals(rate=1.0).times(10)
        a = generate_traffic(shapes, times, vocab_size=128, seed=5)
        b = generate_traffic(shapes, times, vocab_size=128, seed=5)
        assert len(a) == 10
        for x, y in zip(a, b):
            assert x.request_id == y.request_id
            assert x.arrival_time_s == y.arrival_time_s
            assert np.array_equal(x.prompt_ids, y.prompt_ids)
            assert x.policy == y.policy
        policies = {r.policy.name if r.policy else None for r in a}
        assert policies <= {"quest", None}
        for request in a:
            if request.policy is not None and request.policy.name == "quest":
                assert 8 <= request.prompt_length() <= 16
            else:
                assert request.prompt_length() == 24

    def test_validation(self):
        with pytest.raises(ValueError, match="non-empty"):
            generate_traffic([], [0.0], vocab_size=128)
        with pytest.raises(ValueError, match="non-decreasing"):
            generate_traffic([RequestShape()], [1.0, 0.0], vocab_size=128)
        with pytest.raises(ValueError):
            RequestShape(prompt_len_range=(0, 4))
        with pytest.raises(ValueError):
            RequestShape(max_new_tokens=0)
        with pytest.raises(ValueError):
            TrafficRequest("x", -1.0, np.array([1, 2]), 4)

    def test_custom_prompt_sampler(self):
        shape = RequestShape(
            prompt_len_range=(6, 6),
            prompt_sampler=lambda rng, length: np.full(length, 7, dtype=np.int64),
        )
        (request,) = generate_traffic([shape], arrival_times=[0.0], vocab_size=64)
        assert np.array_equal(request.prompt_ids, np.full(6, 7))


class TestTraceRoundTrip:
    def _requests(self):
        shapes = [RequestShape(prompt_len_range=(8, 12), max_new_tokens=4, policy="quest")]
        times = PoissonArrivals(rate=2.0).times(6, seed=1)
        return generate_traffic(shapes, times, vocab_size=128, seed=1)

    def test_round_trip_regenerates_identical_workload(self, tmp_path):
        requests = self._requests()
        path = tmp_path / "trace.jsonl"
        assert save_trace(path, requests) == 6
        loaded = load_trace(path, vocab_size=128, seed=9)
        reloaded = load_trace(path, vocab_size=128, seed=9)
        assert len(loaded) == 6
        for original, x, y in zip(requests, loaded, reloaded):
            assert x.arrival_time_s == original.arrival_time_s
            assert x.prompt_length() == original.prompt_length()
            assert x.max_new_tokens == original.max_new_tokens
            assert x.policy == original.policy
            # Same load seed -> identical regenerated contents.
            assert np.array_equal(x.prompt_ids, y.prompt_ids)

    def test_embedded_prompt_ids_replay_exactly(self, tmp_path):
        requests = self._requests()
        path = tmp_path / "trace.jsonl"
        save_trace(path, requests, include_prompt_ids=True)
        loaded = load_trace(path, vocab_size=128, seed=123)
        for original, x in zip(requests, loaded):
            assert np.array_equal(x.prompt_ids, original.prompt_ids)

    def test_malformed_traces_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text("not json\n", encoding="utf-8")
        with pytest.raises(ValueError, match="malformed JSON"):
            load_trace(path, vocab_size=128)
        path.write_text(
            '{"arrival_time_s": 1.0, "prompt_len": 4}\n'
            '{"arrival_time_s": 0.5, "prompt_len": 4}\n',
            encoding="utf-8",
        )
        with pytest.raises(ValueError, match="non-decreasing"):
            load_trace(path, vocab_size=128)
        path.write_text('{"arrival_time_s": 0.5}\n', encoding="utf-8")
        with pytest.raises(ValueError, match="prompt_len or prompt_ids"):
            load_trace(path, vocab_size=128)


class TestRouters:
    class _View:
        def __init__(self, index, queued, active, reserved):
            self.index = index
            self.queued = queued
            self.active = active
            self.reserved_kv_bytes = reserved
            self.clock_s = 0.0

    def _request(self):
        return TrafficRequest("x", 0.0, np.array([1, 2, 3]), 4)

    def test_round_robin_cycles(self):
        router = build_router("round_robin")
        views = [self._View(i, 0, 0, 0) for i in range(3)]
        picks = [router.choose(views, self._request()) for _ in range(6)]
        assert picks == [0, 1, 2, 0, 1, 2]

    def test_jsq_prefers_fewest_in_system(self):
        router = build_router("jsq")
        views = [self._View(0, 2, 1, 0), self._View(1, 0, 2, 0), self._View(2, 1, 2, 0)]
        assert router.choose(views, self._request()) == 1

    def test_jsq_ties_break_low_index(self):
        router = build_router("jsq")
        views = [self._View(0, 1, 1, 0), self._View(1, 0, 2, 0)]
        assert router.choose(views, self._request()) == 0

    def test_least_kv_prefers_fewest_reserved_bytes(self):
        router = build_router("least_kv")
        views = [self._View(0, 0, 1, 500), self._View(1, 5, 0, 100)]
        assert router.choose(views, self._request()) == 1


class TestSLOAndReport:
    def test_slo_validation_and_is_met(self):
        with pytest.raises(ValueError):
            SLOSpec(ttft_s=0.0)
        with pytest.raises(ValueError):
            SLOSpec(tpot_s=-1.0)
        slo = SLOSpec(ttft_s=1.0, tpot_s=0.1)
        assert slo.is_met(0.9, 0.05)
        assert not slo.is_met(1.1, 0.05)
        assert not slo.is_met(0.9, 0.2)
        assert SLOSpec(ttft_s=None, tpot_s=None).is_met(100.0, 100.0)
        assert SLOSpec.from_dict(slo.to_dict()) == slo

    def test_percentile_helper(self):
        import math

        # No samples -> NaN (serialised as null), never a perfect-looking 0.
        assert math.isnan(percentile([], 99))
        values = [float(v) for v in range(1, 101)]
        assert percentile(values, 50) == pytest.approx(50.5)
        assert percentile(values, 99) == pytest.approx(99.01)


def tiny_engine_spec(**overrides) -> EngineSpec:
    defaults = dict(
        model="tiny",
        policy="clusterkv:tokens_per_cluster=12,decode_window=8,decode_clusters=2,num_sink_tokens=4",
        budget=24,
        max_new_tokens=6,
        num_full_layers=1,
        num_sink_tokens=4,
        max_batch_size=4,
        max_prefills_per_step=4,
    )
    defaults.update(overrides)
    return EngineSpec(**defaults)


def tiny_requests(count: int, spacing: float = 0.0, seed: int = 11) -> list[TrafficRequest]:
    shapes = [RequestShape(prompt_len_range=(32, 56), max_new_tokens=6)]
    times = np.arange(count, dtype=np.float64) * spacing
    vocab = get_model_config("tiny").vocab_size
    return generate_traffic(shapes, times, vocab_size=vocab, seed=seed)


class TestSimulatorEquivalence:
    def test_capacity_one_reproduces_batched_engine_run(self):
        """Single replica, batch capacity 1: token-for-token BatchedEngine."""
        spec = tiny_engine_spec(max_batch_size=1, max_prefills_per_step=1)
        requests = tiny_requests(3)
        simulator = TrafficSimulator(TrafficConfig(engine=spec, num_replicas=1))
        simulator.run(requests)

        reference = BatchedEngine(
            TransformerModel(get_model_config("tiny")),
            selector=spec.build_policy(),
            generation_config=spec.generation_config(),
            scheduler_config=SchedulerConfig(max_batch_size=1, max_prefills_per_step=1),
        )
        for request in requests:
            reference.submit(
                request.prompt_ids,
                request_id=request.request_id,
                max_new_tokens=request.max_new_tokens,
            )
        expected = reference.run().results()

        assert set(simulator.completed) == set(expected)
        for request_id, result in expected.items():
            simulated = simulator.completed[request_id].result
            assert simulated.output_ids == result.output_ids
            assert simulated.output_logprobs == result.output_logprobs

    def test_batched_simulation_also_reproduces_engine_outputs(self):
        """At full batch capacity the simulator is still output-transparent."""
        spec = tiny_engine_spec()
        requests = tiny_requests(4)
        simulator = TrafficSimulator(TrafficConfig(engine=spec, num_replicas=1))
        simulator.run(requests)
        reference = BatchedEngine(
            TransformerModel(get_model_config("tiny")),
            selector=spec.build_policy(),
            generation_config=spec.generation_config(),
            scheduler_config=spec.scheduler_config(),
        )
        for request in requests:
            reference.submit(
                request.prompt_ids,
                request_id=request.request_id,
                max_new_tokens=request.max_new_tokens,
            )
        expected = reference.run().results()
        for request_id, result in expected.items():
            assert simulator.completed[request_id].result.output_ids == result.output_ids


class TestSimulatorDeterminismAndMetrics:
    def test_bit_reproducible_report_json(self):
        config = TrafficConfig(
            engine=tiny_engine_spec(),
            num_replicas=2,
            router="jsq",
        )
        shapes = [
            RequestShape(prompt_len_range=(32, 48), max_new_tokens=6),
            RequestShape(prompt_len_range=(32, 48), max_new_tokens=6, policy="full"),
        ]
        times = PoissonArrivals(rate=1.0).times(8, seed=2)
        vocab = get_model_config("tiny").vocab_size
        requests = generate_traffic(shapes, times, vocab_size=vocab, seed=2)
        first = simulate(requests, config).to_json()
        second = simulate(requests, config).to_json()
        assert first == second
        payload = json.loads(first)
        assert payload["num_requests"] == 8
        assert set(payload["latency"]) == {"ttft_s", "tpot_s", "queue_wait_s", "e2e_s"}
        for row in payload["latency"].values():
            assert set(row) == {"p50", "p95", "p99", "samples"}
            assert row["samples"] == 8.0

    def test_timing_points_are_ordered(self):
        report = simulate(
            tiny_requests(5, spacing=0.2),
            TrafficConfig(engine=tiny_engine_spec(), num_replicas=2, router="round_robin"),
        )
        assert report.num_requests == 5
        for metrics in report.requests:
            assert metrics.queue_wait_s >= 0.0
            assert metrics.ttft_s > metrics.queue_wait_s
            assert metrics.e2e_s >= metrics.ttft_s
            assert metrics.tpot_s >= 0.0
            assert metrics.output_tokens == 6
        assert report.duration_s >= max(m.e2e_s for m in report.requests)

    def test_idle_replica_fast_forwards_to_arrival(self):
        """A request arriving late is timed from its arrival, not from 0."""
        report = simulate(
            tiny_requests(1, spacing=0.0)[:1]
            + [
                TrafficRequest(
                    "late",
                    50.0,
                    tiny_requests(2)[1].prompt_ids,
                    4,
                )
            ],
            TrafficConfig(engine=tiny_engine_spec(), num_replicas=1),
        )
        late = next(m for m in report.requests if m.request_id == "late")
        assert late.arrival_time_s == 50.0
        # The replica idled until the arrival: no queueing, a fresh TTFT.
        assert late.queue_wait_s == 0.0
        assert late.ttft_s < 5.0
        assert report.duration_s > 50.0

    def test_wall_clock_mode_runs(self):
        report = simulate(
            tiny_requests(2),
            TrafficConfig(engine=tiny_engine_spec(), num_replicas=1, clock="wall"),
        )
        assert report.clock == {"name": "wall"}
        assert report.duration_s > 0.0
        for metrics in report.requests:
            assert metrics.ttft_s > 0.0

    def test_misbehaving_router_rejected(self):
        class Bad(Router):
            name = "bad"

            def choose(self, replicas, request):
                return len(replicas)  # out of range

        with pytest.raises(ValueError, match="chose replica"):
            simulate(
                tiny_requests(1),
                TrafficConfig(engine=tiny_engine_spec(), num_replicas=1),
                router=Bad(),
            )

    def test_api_simulate_forwards(self):
        report = api_simulate(
            tiny_requests(2),
            TrafficConfig(engine=tiny_engine_spec(), num_replicas=1),
        )
        assert report.num_requests == 2

    def test_rerun_on_one_simulator_is_independent(self):
        """run() starts cold every time: same workload, same report."""
        simulator = TrafficSimulator(
            TrafficConfig(engine=tiny_engine_spec(), num_replicas=2, router="round_robin")
        )
        requests = tiny_requests(4, spacing=0.5)
        first = simulator.run(requests).to_json()
        second = simulator.run(requests).to_json()
        assert first == second

    def test_least_kv_spreads_a_burst_across_replicas(self):
        """Queued requests count toward reserved KV, so bursts spread."""
        requests = tiny_requests(4)  # all arrive at t=0
        simulator = TrafficSimulator(
            TrafficConfig(engine=tiny_engine_spec(), num_replicas=2, router="least_kv")
        )
        report = simulator.run(requests)
        per_replica = {m.replica for m in report.requests}
        assert per_replica == {0, 1}


class TestPolicySLOSeparation:
    def test_clusterkv_sustains_higher_rate_than_full_at_fixed_slo(self):
        """The paper's serving claim on the virtual clock.

        At an arrival rate full KV cannot sustain (its slower decode steps
        let the queue build), ClusterKV keeps most requests inside the
        same SLO and delivers strictly more goodput.
        """
        slo = SLOSpec(ttft_s=4.0, tpot_s=0.12)
        reports = {}
        for policy in ("clusterkv", "full"):
            config = TrafficBenchConfig(
                num_requests=12,
                rate=0.7,
                policies=(policy,),
                num_replicas=1,
                router="round_robin",
                prompt_len_min=48,
                prompt_len_max=64,
                max_new_tokens=160,
                budget=32,
                slo=slo,
                seed=0,
            )
            reports[policy] = run_traffic_bench(config)
        clusterkv = reports["clusterkv"]
        full = reports["full"]
        # ClusterKV sustains the rate; full KV violates the SLO for most
        # requests at the identical workload.
        assert clusterkv.slo_attainment >= 0.7
        assert full.slo_attainment <= 0.5
        assert clusterkv.slo_attainment > full.slo_attainment
        assert clusterkv.goodput_tokens_per_s > 1.5 * full.goodput_tokens_per_s
        # Both reports stay printable.
        assert "goodput" in format_traffic_report(clusterkv)


class TestTrafficBenchConfig:
    def test_bare_policies_get_serving_tuned_specs(self):
        config = TrafficBenchConfig(policies=("clusterkv",))
        (spec,) = config.policies
        assert isinstance(spec, PolicySpec)
        assert spec.kwargs["tokens_per_cluster"] == 32

    def test_explicit_spec_used_verbatim(self):
        spec = PolicySpec("clusterkv", {"tokens_per_cluster": 16})
        config = TrafficBenchConfig(policies=(spec,))
        assert config.policies == (spec,)

    def test_validation(self):
        with pytest.raises(ValueError):
            TrafficBenchConfig(policies=())
        with pytest.raises(ValueError):
            TrafficBenchConfig(num_requests=0)
        with pytest.raises(ValueError):
            TrafficBenchConfig(rate=0.0)

    def test_trace_replay_matches_generated_run(self, tmp_path):
        base = TrafficBenchConfig(
            model="tiny",
            num_requests=4,
            rate=1.0,
            policies=("full",),
            num_replicas=1,
            prompt_len_min=16,
            prompt_len_max=24,
            max_new_tokens=4,
            budget=16,
            seed=3,
        )
        from repro.traffic import build_bench_requests

        requests = build_bench_requests(base)
        path = tmp_path / "trace.jsonl"
        save_trace(path, requests, include_prompt_ids=True)
        import dataclasses

        replayed = dataclasses.replace(base, trace=str(path))
        direct = run_traffic_bench(base)
        from_trace = run_traffic_bench(replayed)
        assert from_trace.to_json() == direct.to_json()
