"""Tests of the batched serving engine, scheduler and request queue.

The load-bearing guarantees:

* a batched run of size 1 is bit-identical to the single-sequence engine
  (same tokens, same log-probabilities) for ClusterKV and the baselines;
* the scheduler admits strictly in arrival order, never exceeds the batch
  or KV-memory budgets, and never starves a request;
* retired requests release their KV memory back to the shared tiers.
"""

import numpy as np
import pytest

from repro.baselines import FullKVSelector, QuestSelector, StreamingLLMSelector
from repro.core import ClusterKVConfig, ClusterKVSelector
from repro.model import GenerationConfig, InferenceEngine
from repro.policies import PolicySpec, build_policy, policy_spec_from_description
from repro.serving import (
    BatchedEngine,
    ContinuousBatchingScheduler,
    RequestQueue,
    SchedulerConfig,
    ServeRequest,
    format_serve_bench,
    serve_prompts,
)
from repro.serving.bench import MethodThroughput


def make_clusterkv():
    return ClusterKVSelector(
        ClusterKVConfig(
            tokens_per_cluster=12, decode_window=8, decode_clusters=2, num_sink_tokens=4
        )
    )


SELECTOR_FACTORIES = {
    "clusterkv": make_clusterkv,
    "full": FullKVSelector,
    "streaming_llm": StreamingLLMSelector,
    "quest": QuestSelector,
}


class TestRequestQueue:
    def test_fifo_order_and_arrival_numbers(self):
        queue = RequestQueue()
        first = queue.submit([1, 2, 3])
        second = queue.submit([4, 5], request_id="named")
        assert len(queue) == 2
        assert first.arrival_order < second.arrival_order
        assert queue.peek() is first
        assert queue.pop() is first
        assert queue.pop().request_id == "named"
        with pytest.raises(IndexError):
            queue.pop()

    def test_standalone_auto_ids_skip_explicit_ids(self):
        queue = RequestQueue()
        queue.submit([1, 2], request_id="req-0")
        auto = queue.submit([3, 4])
        assert auto.request_id != "req-0"

    def test_explicit_duplicate_id_rejected_by_queue(self):
        queue = RequestQueue()
        queue.submit([1, 2], request_id="a")
        queue.pop()
        # Ids stay reserved for the queue's lifetime — they key KV buffer
        # names and report entries downstream.
        with pytest.raises(ValueError, match="already submitted"):
            queue.submit([3, 4], request_id="a")

    def test_rejects_empty_prompt(self):
        queue = RequestQueue()
        with pytest.raises(ValueError):
            queue.submit(np.zeros(0, dtype=np.int64))

    def test_rejects_bad_max_new_tokens(self):
        with pytest.raises(ValueError):
            ServeRequest(request_id="x", prompt_ids=np.array([1]), max_new_tokens=0)


class TestSchedulerConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            SchedulerConfig(max_batch_size=0)
        with pytest.raises(ValueError):
            SchedulerConfig(max_prefills_per_step=0)
        with pytest.raises(ValueError):
            SchedulerConfig(kv_budget_bytes=0)


class TestSchedulerAdmission:
    def _queue_with(self, lengths):
        queue = RequestQueue()
        for length in lengths:
            queue.submit(np.ones(length, dtype=np.int64))
        return queue

    def test_admits_in_arrival_order(self):
        queue = self._queue_with([8, 8, 8, 8])
        scheduler = ContinuousBatchingScheduler(
            SchedulerConfig(max_batch_size=4, max_prefills_per_step=4)
        )
        admitted = scheduler.admit(
            queue, num_active=0, reserved_bytes=0,
            kv_bytes_per_token=1, default_max_new_tokens=4,
        )
        assert [r.arrival_order for r in admitted] == [0, 1, 2, 3]

    def test_respects_batch_slots_and_prefill_rate(self):
        queue = self._queue_with([8] * 6)
        scheduler = ContinuousBatchingScheduler(
            SchedulerConfig(max_batch_size=4, max_prefills_per_step=2)
        )
        first = scheduler.admit(queue, 0, 0, 1, 4)
        assert len(first) == 2  # prefill rate
        second = scheduler.admit(queue, 3, 0, 1, 4)
        assert len(second) == 1  # batch slots: 3 active + 1 = 4
        assert len(queue) == 3

    def test_head_of_line_blocks_under_budget_pressure(self):
        # Head request needs 100 bytes, later one only 10; with 50 bytes
        # free the scheduler must admit neither (no queue jumping).
        queue = RequestQueue()
        queue.submit(np.ones(96, dtype=np.int64))  # projected 100 bytes
        queue.submit(np.ones(6, dtype=np.int64))  # projected 10 bytes
        scheduler = ContinuousBatchingScheduler(
            SchedulerConfig(max_batch_size=4, max_prefills_per_step=4, kv_budget_bytes=150)
        )
        admitted = scheduler.admit(
            queue, num_active=1, reserved_bytes=100,
            kv_bytes_per_token=1, default_max_new_tokens=4,
        )
        assert admitted == []
        assert len(queue) == 2

    def test_oversized_request_raises(self):
        queue = self._queue_with([200])
        scheduler = ContinuousBatchingScheduler(
            SchedulerConfig(kv_budget_bytes=100)
        )
        with pytest.raises(ValueError):
            scheduler.admit(queue, 0, 0, 1, 4)

    def test_oversized_head_does_not_drop_admitted_requests(self):
        # A servable request ahead of an unservable one must be returned
        # (and stay popped), not lost to the ValueError.
        queue = self._queue_with([8, 200])
        scheduler = ContinuousBatchingScheduler(
            SchedulerConfig(max_batch_size=4, max_prefills_per_step=4, kv_budget_bytes=100)
        )
        admitted = scheduler.admit(queue, 0, 0, 1, 4)
        assert [r.arrival_order for r in admitted] == [0]
        assert len(queue) == 1
        with pytest.raises(ValueError):
            scheduler.admit(queue, 0, 0, 1, 4)


class TestBatchOneBitIdentity:
    @pytest.mark.parametrize("method", ["clusterkv", "full", "streaming_llm", "quest"])
    def test_matches_single_sequence_engine(self, tiny_model, short_prompt, method):
        gen = GenerationConfig(
            budget=24, max_new_tokens=6, num_full_layers=1, num_sink_tokens=4
        )
        single = InferenceEngine(
            tiny_model, SELECTOR_FACTORIES[method](), gen
        ).generate(short_prompt)

        engine = BatchedEngine(
            tiny_model,
            SELECTOR_FACTORIES[method](),
            gen,
            SchedulerConfig(max_batch_size=1),
        )
        engine.submit(short_prompt, request_id="only")
        report = engine.run()
        batched = report.results()["only"]

        assert batched.output_ids == single.output_ids
        assert batched.output_logprobs == single.output_logprobs
        assert batched.decode_steps == single.decode_steps
        assert batched.selector_stats.selected_tokens == single.selector_stats.selected_tokens

    def test_non_greedy_sampling_matches(self, tiny_model, short_prompt):
        gen = GenerationConfig(
            budget=None, max_new_tokens=6, greedy=False, temperature=0.8, seed=3
        )
        single = InferenceEngine(tiny_model, FullKVSelector(), gen).generate(short_prompt)
        engine = BatchedEngine(tiny_model, FullKVSelector(), gen)
        engine.submit(short_prompt, request_id="only")
        batched = engine.run().results()["only"]
        assert batched.output_ids == single.output_ids


class TestBatchedEngine:
    def test_batched_outputs_match_sequential(self, tiny_model, rng):
        """Requests served concurrently produce the same tokens as alone."""
        gen = GenerationConfig(
            budget=24, max_new_tokens=5, num_full_layers=1, num_sink_tokens=4
        )
        prompts = [
            rng.integers(4, tiny_model.config.vocab_size, size=40 + 8 * i).astype(np.int64)
            for i in range(4)
        ]
        engine = BatchedEngine(
            tiny_model,
            make_clusterkv(),
            gen,
            SchedulerConfig(max_batch_size=4, max_prefills_per_step=4),
        )
        for i, prompt in enumerate(prompts):
            engine.submit(prompt, request_id=f"r{i}")
        report = engine.run()
        assert len(report.completed) == 4
        for i, prompt in enumerate(prompts):
            reference = InferenceEngine(tiny_model, make_clusterkv(), gen).generate(prompt)
            assert report.results()[f"r{i}"].output_ids == reference.output_ids

    def test_per_request_overrides(self, tiny_model, short_prompt):
        gen = GenerationConfig(budget=None, max_new_tokens=8)
        engine = BatchedEngine(tiny_model, FullKVSelector(), gen)
        engine.submit(short_prompt, request_id="short", max_new_tokens=2)
        engine.submit(short_prompt, request_id="long")
        report = engine.run()
        results = report.results()
        assert len(results["short"].output_ids) == 2
        assert len(results["long"].output_ids) == 8
        short_done = next(c for c in report.completed if c.request.request_id == "short")
        long_done = next(c for c in report.completed if c.request.request_id == "long")
        assert short_done.finished_at_step < long_done.finished_at_step

    def test_memory_released_on_retirement(self, tiny_model, short_prompt):
        gen = GenerationConfig(budget=16, max_new_tokens=3, num_sink_tokens=4)
        engine = BatchedEngine(tiny_model, make_clusterkv(), gen)
        for i in range(3):
            engine.submit(short_prompt, request_id=f"r{i}")
        report = engine.run()
        # ClusterKV keeps the bulk KV on the CPU tier; all of it must be
        # freed once every request has retired.
        assert engine.offload.cpu.used_bytes == 0
        assert engine.offload.gpu.used_bytes == 0
        assert report.peak_cpu_bytes > 0
        assert engine.reserved_kv_bytes() == 0

    def test_kv_budget_staggers_admission_without_starvation(self, tiny_model, rng):
        gen = GenerationConfig(budget=None, max_new_tokens=4)
        kv_per_token = tiny_model.config.kv_bytes_per_token()
        prompt_len = 32
        # Budget for exactly two in-flight requests.
        budget = 2 * (prompt_len + gen.max_new_tokens) * kv_per_token
        engine = BatchedEngine(
            tiny_model,
            FullKVSelector(),
            gen,
            SchedulerConfig(max_batch_size=8, max_prefills_per_step=8, kv_budget_bytes=budget),
        )
        for i in range(6):
            prompt = rng.integers(4, tiny_model.config.vocab_size, size=prompt_len)
            engine.submit(prompt.astype(np.int64), request_id=f"r{i}")
        report = engine.run()
        assert len(report.completed) == 6
        assert max(report.occupancy) <= 2
        assert report.peak_gpu_bytes <= budget
        # FCFS fairness: admission order equals arrival order, and earlier
        # requests never finish after later ones.
        admitted_order = sorted(report.completed, key=lambda c: c.request.arrival_order)
        admit_steps = [c.admitted_at_step for c in admitted_order]
        finish_steps = [c.finished_at_step for c in admitted_order]
        assert admit_steps == sorted(admit_steps)
        assert finish_steps == sorted(finish_steps)

    def test_mid_flight_submission_is_served(self, tiny_model, short_prompt):
        gen = GenerationConfig(budget=None, max_new_tokens=4)
        engine = BatchedEngine(tiny_model, FullKVSelector(), gen)
        engine.submit(short_prompt, request_id="first")
        engine.step()
        engine.submit(short_prompt, request_id="late")
        report = engine.run()
        assert set(report.results()) == {"late"} | {"first"}
        late = next(c for c in report.completed if c.request.request_id == "late")
        assert late.submitted_at_step == 1
        assert late.queue_delay_steps >= 0

    def test_duplicate_request_id_rejected(self, tiny_model, short_prompt):
        engine = BatchedEngine(tiny_model, FullKVSelector(), GenerationConfig(max_new_tokens=2))
        engine.submit(short_prompt, request_id="dup")
        with pytest.raises(ValueError, match="already submitted"):
            engine.submit(short_prompt, request_id="dup")
        engine.run()
        # Ids key the shared KV buffers and the report, so reuse stays
        # rejected even after the original request has retired.
        with pytest.raises(ValueError, match="already submitted"):
            engine.submit(short_prompt, request_id="dup")

    def test_auto_ids_never_collide_with_explicit_ids(self, tiny_model, short_prompt):
        engine = BatchedEngine(tiny_model, FullKVSelector(), GenerationConfig(max_new_tokens=2))
        engine.submit(short_prompt, request_id="req-0")
        auto = engine.submit(short_prompt)  # must not reuse "req-0"
        assert auto.request_id != "req-0"
        report = engine.run()
        assert len(report.completed) == 2
        assert set(report.results()) == {"req-0", auto.request_id}

    def test_oversized_submit_rejected_without_queueing(self, tiny_model, short_prompt):
        kv_per_token = tiny_model.config.kv_bytes_per_token()
        engine = BatchedEngine(
            tiny_model,
            FullKVSelector(),
            GenerationConfig(max_new_tokens=2),
            SchedulerConfig(kv_budget_bytes=16 * kv_per_token),
        )
        with pytest.raises(ValueError, match="more than the whole budget"):
            engine.submit(short_prompt, request_id="huge")
        assert len(engine.queue) == 0
        # The engine remains fully usable for requests that fit.
        small = np.arange(1, 9, dtype=np.int64)
        engine.submit(small, request_id="small", max_new_tokens=2)
        report = engine.run()
        assert list(report.results()) == ["small"]

    def test_no_per_request_state_retained_after_run(self, tiny_model, short_prompt):
        engine = BatchedEngine(tiny_model, FullKVSelector(), GenerationConfig(max_new_tokens=2))
        for i in range(3):
            engine.submit(short_prompt, request_id=f"r{i}")
        engine.run()
        assert engine._submitted_at_step == {}
        assert engine._reserved_bytes == {}
        assert engine.num_active == 0

    def test_request_timings_surfaced_in_report(self, tiny_model, short_prompt):
        gen = GenerationConfig(budget=None, max_new_tokens=4)
        engine = BatchedEngine(
            tiny_model, FullKVSelector(), gen, SchedulerConfig(max_batch_size=1)
        )
        engine.submit(short_prompt, request_id="first", arrival_time_s=1.5)
        engine.submit(short_prompt, request_id="second", arrival_time_s=2.5)
        report = engine.run()
        timings = report.request_timings()
        assert set(timings) == {"first", "second"}
        first = timings["first"]
        assert first["arrival_time_s"] == 1.5
        # Prefill samples the first token in the admission step.
        assert first["first_token_step"] == first["admitted_step"]
        assert first["finish_step"] >= first["first_token_step"]
        assert first["queue_wait_steps"] == 0.0
        # Batch capacity 1: the second request waits out the first.
        second = timings["second"]
        assert second["queue_wait_steps"] > 0
        assert report.queue_waits()["second"] == second["queue_wait_steps"]
        done = {c.request.request_id: c for c in report.completed}
        assert done["second"].arrival_time_s == 2.5
        assert done["first"].finish_step == done["first"].finished_at_step

    def test_step_trace_describes_each_step(self, tiny_model, short_prompt):
        gen = GenerationConfig(budget=None, max_new_tokens=3)
        engine = BatchedEngine(tiny_model, FullKVSelector(), gen)
        assert engine.last_step_trace is None
        engine.submit(short_prompt, request_id="only")
        engine.step()
        trace = engine.last_step_trace
        assert trace.engine_step == 0
        assert [e.request_id for e in trace.prefills] == ["only"]
        assert trace.prefills[0].context_length == short_prompt.shape[0]
        assert [e.request_id for e in trace.decodes] == ["only"]
        # Decode context: prompt plus the token appended this step.
        assert trace.decodes[0].context_length == short_prompt.shape[0] + 1
        assert trace.wall_seconds > 0.0
        engine.step()
        assert engine.last_step_trace.engine_step == 1
        assert engine.last_step_trace.prefills == []

    def test_serve_prompts_convenience(self, tiny_model, rng):
        prompts = [
            rng.integers(4, tiny_model.config.vocab_size, size=24).astype(np.int64)
            for _ in range(3)
        ]
        report = serve_prompts(
            tiny_model,
            prompts,
            generation_config=GenerationConfig(budget=None, max_new_tokens=2),
        )
        assert report.total_generated_tokens == 6
        assert report.mean_batch_occupancy > 0
        assert report.tokens_per_second > 0


MIXED_POLICIES = (
    "clusterkv:tokens_per_cluster=12,decode_window=8,decode_clusters=2,num_sink_tokens=4",
    "quest",
    "streaming_llm",
    "full",
)


class TestMixedPolicyBatches:
    """One engine serving requests that each carry their own policy."""

    def _generation_config(self):
        return GenerationConfig(
            budget=24, max_new_tokens=5, num_full_layers=1, num_sink_tokens=4
        )

    def _prompts(self, tiny_model, rng, count):
        return [
            rng.integers(4, tiny_model.config.vocab_size, size=40 + 8 * i).astype(
                np.int64
            )
            for i in range(count)
        ]

    def test_mixed_batch_bit_identical_to_homogeneous_runs(self, tiny_model, rng):
        """Each request's output is unchanged by its batch neighbours' policies.

        A single ``run()`` serves eight requests cycling through four
        policies; every request must match (tokens *and* logprobs) both a
        homogeneous batched run of that policy and the single-sequence
        engine.
        """
        gen = self._generation_config()
        prompts = self._prompts(tiny_model, rng, 8)
        assignments = [MIXED_POLICIES[i % len(MIXED_POLICIES)] for i in range(8)]

        mixed = BatchedEngine(
            tiny_model,
            selector="full",
            generation_config=gen,
            scheduler_config=SchedulerConfig(max_batch_size=8, max_prefills_per_step=8),
        )
        for i, (prompt, policy) in enumerate(zip(prompts, assignments)):
            mixed.submit(prompt, request_id=f"r{i}", policy=policy)
        mixed_results = mixed.run().results()
        assert len(mixed_results) == 8

        for policy in MIXED_POLICIES:
            indices = [i for i, assigned in enumerate(assignments) if assigned == policy]
            homogeneous = BatchedEngine(
                tiny_model,
                selector=policy,
                generation_config=gen,
                scheduler_config=SchedulerConfig(
                    max_batch_size=8, max_prefills_per_step=8
                ),
            )
            for i in indices:
                homogeneous.submit(prompts[i], request_id=f"r{i}")
            homogeneous_results = homogeneous.run().results()
            for i in indices:
                assert (
                    mixed_results[f"r{i}"].output_ids
                    == homogeneous_results[f"r{i}"].output_ids
                )
                assert (
                    mixed_results[f"r{i}"].output_logprobs
                    == homogeneous_results[f"r{i}"].output_logprobs
                )
                single = InferenceEngine(
                    tiny_model, build_policy(policy), gen
                ).generate(prompts[i])
                assert mixed_results[f"r{i}"].output_ids == single.output_ids

    def test_policy_descriptions_embedded_in_report(self, tiny_model, rng):
        gen = self._generation_config()
        engine = BatchedEngine(tiny_model, generation_config=gen)
        engine.submit(self._prompts(tiny_model, rng, 1)[0], request_id="q",
                      policy="quest:page_size=8")
        report = engine.run()
        description = report.policy_descriptions()["q"]
        assert description["name"] == "quest"
        assert description["page_size"] == 8
        # The embedded description is enough to rebuild the policy.
        rebuilt = build_policy(policy_spec_from_description(description))
        assert rebuilt.config.page_size == 8

    def test_serve_prompts_accepts_per_prompt_policies(self, tiny_model, rng):
        gen = self._generation_config()
        prompts = self._prompts(tiny_model, rng, 3)
        report = serve_prompts(
            tiny_model,
            prompts,
            generation_config=gen,
            policies=["quest", None, "streaming_llm"],
        )
        names = [
            report.policy_descriptions()[f"req-{i}"]["name"] for i in range(3)
        ]
        assert names == ["quest", "full", "streaming_llm"]

    def test_serve_prompts_policy_length_mismatch(self, tiny_model, rng):
        with pytest.raises(ValueError, match="one entry per prompt"):
            serve_prompts(
                tiny_model,
                self._prompts(tiny_model, rng, 2),
                policies=["quest"],
            )

    def test_engine_accepts_policy_string_as_default_selector(self, tiny_model, rng):
        gen = self._generation_config()
        engine = BatchedEngine(tiny_model, selector="streaming_llm", generation_config=gen)
        engine.submit(self._prompts(tiny_model, rng, 1)[0], request_id="s")
        report = engine.run()
        assert report.policy_descriptions()["s"]["name"] == "streaming_llm"

    def test_unknown_per_request_policy_rejected_at_submit(self, tiny_model, rng):
        engine = BatchedEngine(tiny_model, generation_config=self._generation_config())
        with pytest.raises(ValueError, match="registered policies"):
            engine.submit(self._prompts(tiny_model, rng, 1)[0], policy="bogus")
        assert len(engine.queue) == 0


class TestServeBenchConfigPolicies:
    def test_bare_name_policy_gets_serving_tuned_config(self):
        """--policy clusterkv benchmarks the same config as --methods clusterkv."""
        from repro.serving.bench import ServeBenchConfig, serving_policy_spec

        config = ServeBenchConfig(policies=(PolicySpec("clusterkv"),))
        (resolved,) = config.resolved_policies()
        assert resolved == serving_policy_spec("clusterkv", config.num_sink_tokens)
        assert resolved.kwargs["tokens_per_cluster"] == 32

    def test_explicit_kwargs_policy_used_verbatim(self):
        from repro.serving.bench import ServeBenchConfig

        spec = PolicySpec("clusterkv", {"tokens_per_cluster": 64})
        config = ServeBenchConfig(policies=(spec,))
        assert config.resolved_policies() == (spec,)

    def test_mixed_bench_reports_only_exercised_policies(self):
        from repro.serving.bench import ServeBenchConfig, run_mixed_serve_bench

        config = ServeBenchConfig(
            policies=(
                PolicySpec("streaming_llm"),
                PolicySpec("full"),
                PolicySpec("quest"),
            ),
            num_requests=2,  # round-robin never reaches quest
            max_batch_size=2,
            prompt_len=12,
            max_new_tokens=4,
            repeats=1,
        )
        result = run_mixed_serve_bench(config)
        assert [spec.name for spec in result.policies] == ["streaming_llm", "full"]

    def test_duplicate_method_names_get_distinct_row_labels(self):
        from repro.serving.bench import ServeBenchConfig, run_serve_bench

        config = ServeBenchConfig(
            policies=(
                PolicySpec("quest", {"page_size": 8}),
                PolicySpec("quest", {"page_size": 32}),
            ),
            num_requests=2,
            max_batch_size=2,
            prompt_len=12,
            max_new_tokens=4,
            repeats=1,
        )
        labels = [row.method for row in run_serve_bench(config)]
        assert len(set(labels)) == 2
        assert "page_size=8" in labels[0] and "page_size=32" in labels[1]

    def test_identical_duplicate_specs_still_get_distinct_labels(self):
        from repro.serving.bench import ServeBenchConfig, run_serve_bench

        config = ServeBenchConfig(
            policies=(PolicySpec("quest"), PolicySpec("quest")),
            num_requests=2,
            max_batch_size=2,
            prompt_len=12,
            max_new_tokens=4,
            repeats=1,
        )
        labels = [row.method for row in run_serve_bench(config)]
        assert len(set(labels)) == 2

    def test_empty_policies_and_methods_rejected(self):
        from repro.serving.bench import ServeBenchConfig

        with pytest.raises(ValueError, match="non-empty"):
            ServeBenchConfig(policies=())
        with pytest.raises(ValueError, match="non-empty"):
            ServeBenchConfig(methods=())


class TestServeBenchFormatting:
    def test_format_serve_bench_table(self):
        rows = [
            MethodThroughput(
                method="clusterkv",
                num_requests=8,
                batch_size=8,
                total_tokens=768,
                sequential_seconds=2.0,
                batched_seconds=1.0,
                mean_occupancy=7.5,
            )
        ]
        table = format_serve_bench(rows)
        assert "clusterkv" in table
        assert "2.00x" in table
        assert rows[0].speedup == pytest.approx(2.0)
        assert rows[0].batched_tokens_per_second == pytest.approx(768.0)
