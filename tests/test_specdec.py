"""Differential and unit tests of speculative decoding (:mod:`repro.specdec`).

The load-bearing guarantee: greedy decoding with speculation ON emits
exactly the tokens AND log-probabilities of speculation OFF at batch
size one, for every registered policy on both test models — speculation
is a pure engine-step optimisation, invisible in the outputs.  On top:
rollback hygiene (a fully rejected round leaves no residue in the KV
cache, selector state or offload ledger), the conserved accounting
``accepted + rejected == drafted`` in every report, the step-count win
the feature exists for, checkpoint compatibility, and the satellite
bugfixes of the same PR (NaN percentiles for empty samples, typed
degenerate-distribution errors, ``WorkerCrashed`` detail).
"""

import json
import math

import numpy as np
import pytest

from repro.api import EngineSpec
from repro.execbackend import WorkerCrashed
from repro.memory import OffloadManager
from repro.model import (
    EngineCore,
    GenerationConfig,
    SequenceState,
    TransformerModel,
    get_model_config,
)
from repro.model.sampling import (
    DegenerateDistributionError,
    apply_temperature,
    mix_distributions,
    temperature_sample,
)
from repro.policies import available_policies, build_policy
from repro.serving import BatchedEngine
from repro.specdec import (
    Drafter,
    NGramDrafter,
    SpeculationConfig,
    build_drafter,
    drafter_names,
    register_drafter,
)
from repro.specdec.drafter import _DRAFTERS
from repro.traffic.bench import run_traffic_bench, TrafficBenchConfig
from repro.traffic.report import RequestMetrics, TrafficReport, percentile

CLUSTERKV = "clusterkv:tokens_per_cluster=12,decode_window=8,decode_clusters=2,num_sink_tokens=4"

# Policy spec of every registered method, sized for the tiny test models.
POLICY_SPECS = {
    name: (CLUSTERKV if name == "clusterkv" else name) for name in available_policies()
}


@pytest.fixture(scope="module")
def models():
    """Both test models, built once for the whole module."""
    return {
        name: TransformerModel(get_model_config(name))
        for name in ("tiny", "serve-sim")
    }


def generation(greedy: bool = True, **overrides) -> GenerationConfig:
    """Small-budget generation config shared by the differential tests."""
    base = dict(
        budget=24,
        num_full_layers=1,
        num_sink_tokens=4,
        max_new_tokens=8,
        greedy=greedy,
        seed=3,
    )
    base.update(overrides)
    return GenerationConfig(**base)


def repetitive_prompt(vocab_size: int, length: int = 40) -> np.ndarray:
    """A periodic prompt the n-gram drafter accepts heavily on."""
    pattern = np.array([7, 11, 13, 17], dtype=np.int64) % vocab_size
    return np.tile(pattern, length // len(pattern) + 1)[:length]


def random_prompt(vocab_size: int, length: int = 40, seed: int = 11) -> np.ndarray:
    """A seeded incompressible prompt (exercises the empty-draft path)."""
    rng = np.random.default_rng(seed)
    return rng.integers(0, vocab_size, length)


def run_serve(model, policy, prompts, speculation=None, gen=None):
    """Serve ``prompts`` through one BatchedEngine; returns its report."""
    engine = BatchedEngine(
        model,
        selector=build_policy(policy),
        generation_config=gen or generation(),
        speculation=speculation,
    )
    for index, prompt in enumerate(prompts):
        engine.submit(prompt, request_id=f"req-{index}")
    return engine.run()


def results_by_id(report):
    """Request id -> GenerationResult of a ServeReport."""
    return {c.request.request_id: c.result for c in report.completed}


def assert_conserved(speculation: dict) -> None:
    """The accounting invariant every report must satisfy."""
    assert (
        speculation["accepted_tokens"] + speculation["rejected_tokens"]
        == speculation["drafted_tokens"]
    )


# ----------------------------------------------------------------------
# drafters and configuration
# ----------------------------------------------------------------------
class TestNGramDrafter:
    def test_proposes_continuation_of_earlier_match(self):
        drafter = NGramDrafter()
        # Suffix [1, 2, 3] occurs at the start; its continuation follows.
        assert drafter.propose([1, 2, 3, 4, 1, 2, 3], 3) == [4, 1, 2]

    def test_prefers_most_recent_match(self):
        drafter = NGramDrafter(max_ngram=1)
        # Token 5 occurs twice; the later occurrence (followed by 9) wins.
        assert drafter.propose([5, 8, 5, 9, 5], 1) == [9]

    def test_prefers_longer_ngram(self):
        drafter = NGramDrafter(max_ngram=3)
        # A 2-gram match exists later, but the 3-gram match wins outright.
        history = [1, 2, 3, 7, 9, 2, 3, 8, 1, 2, 3]
        assert drafter.propose(history, 1) == [7]

    def test_empty_on_novel_history(self):
        drafter = NGramDrafter()
        assert drafter.propose([1, 2, 3, 4, 5], 4) == []

    def test_empty_on_degenerate_inputs(self):
        drafter = NGramDrafter()
        assert drafter.propose([1, 1, 1], 0) == []
        assert drafter.propose([1], 4) == []
        assert drafter.propose([], 4) == []

    def test_caps_draft_at_k(self):
        drafter = NGramDrafter()
        draft = drafter.propose(list(repetitive_prompt(128, 40)), 4)
        assert 1 <= len(draft) <= 4

    def test_deterministic(self):
        drafter = NGramDrafter()
        history = list(random_prompt(128, 64))
        assert drafter.propose(history, 4) == drafter.propose(history, 4)

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            NGramDrafter(max_ngram=0)
        with pytest.raises(ValueError):
            NGramDrafter(max_ngram=2, min_ngram=3)
        with pytest.raises(ValueError):
            NGramDrafter(max_ngram=2, min_ngram=0)

    def test_describe(self):
        assert NGramDrafter(max_ngram=5).describe() == {
            "name": "ngram",
            "max_ngram": 5,
            "min_ngram": 1,
        }


class TestRegistry:
    def test_ngram_registered(self):
        assert "ngram" in drafter_names()
        assert isinstance(build_drafter("ngram"), NGramDrafter)

    def test_unknown_drafter_lists_known_names(self):
        with pytest.raises(ValueError, match="ngram"):
            build_drafter("definitely-not-registered")

    def test_register_custom_drafter(self):
        class _Const(Drafter):
            name = "test-const"

            def propose(self, token_history, k):
                return [0] * k

        register_drafter("test-const", _Const)
        try:
            assert "test-const" in drafter_names()
            assert build_drafter("test-const").propose([1, 2], 2) == [0, 0]
        finally:
            _DRAFTERS.pop("test-const", None)


class TestSpeculationConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            SpeculationConfig(k=0)
        with pytest.raises(ValueError):
            SpeculationConfig(drafter="")

    def test_build_and_describe(self):
        config = SpeculationConfig(drafter="ngram", k=3)
        assert isinstance(config.build_drafter(), NGramDrafter)
        assert config.describe() == {"drafter": "ngram", "k": 3}

    def test_engine_spec_threading(self):
        spec = EngineSpec(speculate_k=4, drafter="ngram")
        config = spec.speculation_config()
        assert config == SpeculationConfig(drafter="ngram", k=4)
        assert EngineSpec(speculate_k=0).speculation_config() is None
        assert EngineSpec.from_dict(spec.to_dict()).speculate_k == 4
        with pytest.raises(ValueError):
            EngineSpec(speculate_k=-1)
        with pytest.raises(ValueError, match="drafter"):
            EngineSpec(speculate_k=2, drafter="nope")
        # An unknown drafter name is irrelevant while speculation is off.
        EngineSpec(speculate_k=0, drafter="nope")


class _ReplayDrafter(Drafter):
    """Deterministic test drafter built from a plain run's known outputs.

    Proposes the token the model will actually emit at each position,
    except every third position, which it flips to a guaranteed-wrong
    token — so every policy/model cell exercises non-trivial accepted
    prefixes AND rejections with rollback, independent of whether the
    n-gram drafter happens to find matches in that model's output.
    """

    name = "test-replay"

    def __init__(self, prompt_len: int, expected: list[int], vocab: int):
        self.prompt_len = prompt_len
        self.expected = expected
        self.vocab = vocab

    def propose(self, token_history, k):
        position = len(token_history) - self.prompt_len
        draft = []
        for offset in range(k):
            index = position + offset
            base = self.expected[index] if index < len(self.expected) else 0
            if index % 3 == 2:
                base = (base + 1) % self.vocab
            draft.append(base)
        return draft


# ----------------------------------------------------------------------
# the core property: greedy spec-on == spec-off, bit for bit, at B=1
# ----------------------------------------------------------------------
class TestGreedyDifferential:
    @pytest.mark.parametrize("model_name", ["tiny", "serve-sim"])
    @pytest.mark.parametrize("policy_name", sorted(POLICY_SPECS))
    def test_every_policy_bit_identical_at_batch_one(
        self, models, model_name, policy_name
    ):
        """Tokens AND logprobs identical, spec-on vs spec-off, all policies."""
        model = models[model_name]
        prompt = repetitive_prompt(model.config.vocab_size)
        policy = POLICY_SPECS[policy_name]
        plain = run_serve(model, policy, [prompt])
        expected = results_by_id(plain)["req-0"]
        register_drafter(
            "test-replay",
            lambda: _ReplayDrafter(
                len(prompt), expected.output_ids, model.config.vocab_size
            ),
        )
        try:
            spec = run_serve(
                model,
                policy,
                [prompt],
                speculation=SpeculationConfig(drafter="test-replay", k=4),
            )
        finally:
            _DRAFTERS.pop("test-replay", None)
        actual = results_by_id(spec)["req-0"]
        assert actual.output_ids == expected.output_ids
        assert actual.output_logprobs == expected.output_logprobs
        assert actual.decode_steps == expected.decode_steps
        accounting = spec.speculation()
        assert_conserved(accounting)
        assert accounting["drafted_tokens"] > 0
        assert accounting["accepted_tokens"] > 0
        assert accounting["rejected_tokens"] > 0

    @pytest.mark.parametrize("model_name", ["tiny", "serve-sim"])
    def test_ngram_drafter_end_to_end_identical(self, models, model_name):
        """The production drafter: identical outputs on both models."""
        model = models[model_name]
        prompt = repetitive_prompt(model.config.vocab_size)
        plain = run_serve(model, CLUSTERKV, [prompt])
        spec = run_serve(
            model, CLUSTERKV, [prompt], speculation=SpeculationConfig(k=4)
        )
        expected = results_by_id(plain)["req-0"]
        actual = results_by_id(spec)["req-0"]
        assert actual.output_ids == expected.output_ids
        assert actual.output_logprobs == expected.output_logprobs
        assert_conserved(spec.speculation())
        if model_name == "tiny":
            # tiny's greedy output continues the periodic prompt, so the
            # n-gram drafter finds matches; serve-sim's output is novel
            # and the drafter (correctly) proposes little or nothing.
            assert spec.speculation()["drafted_tokens"] > 0

    @pytest.mark.parametrize("policy_name", ["clusterkv", "full", "streaming_llm"])
    def test_incompressible_prompt_still_identical(self, models, policy_name):
        """Random prompts (empty/low-acceptance drafts) change nothing."""
        model = models["tiny"]
        prompt = random_prompt(model.config.vocab_size)
        policy = POLICY_SPECS[policy_name]
        plain = run_serve(model, policy, [prompt])
        spec = run_serve(
            model, policy, [prompt], speculation=SpeculationConfig(k=4)
        )
        assert (
            results_by_id(spec)["req-0"].output_ids
            == results_by_id(plain)["req-0"].output_ids
        )
        assert (
            results_by_id(spec)["req-0"].output_logprobs
            == results_by_id(plain)["req-0"].output_logprobs
        )
        assert_conserved(spec.speculation())

    def test_multi_request_batch_token_identical(self, models):
        """Batched serving: same tokens; logprobs equal to BLAS rounding.

        Per-offset verify batches shrink as requests run out of draft, so
        the BLAS accumulation order (hence the last bit of the logprobs)
        can differ from the plain batch — the same batch-shape caveat the
        engine documents for occupancy changes.  Token decisions are
        argmaxes with real margins and stay identical.
        """
        model = models["serve-sim"]
        vocab = model.config.vocab_size
        prompts = [
            repetitive_prompt(vocab, 40),
            random_prompt(vocab, 36, seed=5),
            repetitive_prompt(vocab, 44),
            random_prompt(vocab, 48, seed=6),
        ]
        plain = run_serve(model, CLUSTERKV, prompts)
        spec = run_serve(
            model, CLUSTERKV, prompts, speculation=SpeculationConfig(k=4)
        )
        expected = results_by_id(plain)
        actual = results_by_id(spec)
        assert set(actual) == set(expected)
        for rid in expected:
            assert actual[rid].output_ids == expected[rid].output_ids
            np.testing.assert_allclose(
                actual[rid].output_logprobs,
                expected[rid].output_logprobs,
                rtol=1e-9,
                atol=1e-12,
            )
        assert_conserved(spec.speculation())

    def test_step_reduction_on_serve_bench_workload(self, models):
        """The headline win: >= 1.3x fewer engine steps at k=4, batch 8."""
        model = models["serve-sim"]
        prompts = [
            np.tile(np.array([5, 6, 7, 8], dtype=np.int64), 16) for _ in range(8)
        ]
        gen = GenerationConfig(
            budget=48,
            num_full_layers=1,
            num_sink_tokens=4,
            max_new_tokens=48,
            greedy=True,
            seed=3,
        )
        plain = run_serve(model, "full", prompts, gen=gen)
        spec = run_serve(
            model, "full", prompts, speculation=SpeculationConfig(k=4), gen=gen
        )
        expected = results_by_id(plain)
        actual = results_by_id(spec)
        for rid in expected:
            assert actual[rid].output_ids == expected[rid].output_ids
        assert spec.engine_steps * 1.3 <= plain.engine_steps
        accounting = spec.speculation()
        assert_conserved(accounting)
        assert accounting["acceptance_rate"] > 0.5
        assert accounting["mean_accepted_run_length"] > 1.0
        # Compressed policies improve too, if less (their looping outputs
        # give the drafter shorter matches); strict step win either way.
        plain_ck = run_serve(model, CLUSTERKV, prompts, gen=gen)
        spec_ck = run_serve(
            model, CLUSTERKV, prompts, speculation=SpeculationConfig(k=4), gen=gen
        )
        assert spec_ck.engine_steps < plain_ck.engine_steps


# ----------------------------------------------------------------------
# rollback hygiene: rejected drafts leave no residue
# ----------------------------------------------------------------------
class _AvoidDrafter(Drafter):
    """Adversarial drafter proposing tokens guaranteed to be rejected.

    Built from the plain run's known outputs: at every position it
    proposes ``expected_token + 1 (mod vocab)``, so greedy acceptance is
    zero and every round exercises the full rollback path.
    """

    name = "test-avoid"

    def __init__(self, prompt_len: int, expected: list[int], vocab: int, k_pad: int):
        self.prompt_len = prompt_len
        self.expected = expected
        self.vocab = vocab
        self.k_pad = k_pad

    def propose(self, token_history, k):
        position = len(token_history) - self.prompt_len
        draft = []
        for offset in range(min(k, self.k_pad)):
            index = position + offset
            base = self.expected[index] if index < len(self.expected) else 0
            draft.append((base + 1) % self.vocab)
        return draft


class TestRollback:
    def _fresh(self, model, policy):
        selector = build_policy(policy)
        core = EngineCore(model, generation())
        seq = SequenceState(model, selector, generation(), OffloadManager())
        return core, seq

    @pytest.mark.parametrize("policy_name", sorted(POLICY_SPECS))
    def test_fully_rejected_round_leaves_no_residue(self, models, policy_name):
        """All-wrong drafts: same emission, same state, clean invariants."""
        model = models["tiny"]
        policy = POLICY_SPECS[policy_name]
        prompt = repetitive_prompt(model.config.vocab_size)

        # Plain twin: its outputs define what the wrong drafts must avoid.
        plain = results_by_id(run_serve(model, policy, [prompt]))["req-0"]

        core, seq = self._fresh(model, policy)
        distribution = core.prefill(seq, prompt)
        token = core.pick_token(seq, distribution)
        core.record_output(seq, token, distribution)
        wrong = [
            (plain.output_ids[1 + offset] + 1) % model.config.vocab_size
            for offset in range(4)
        ]
        emitted = core.speculative_round([seq], [token], [0], [wrong])
        assert emitted == [[plain.output_ids[1]]]
        assert seq.result.spec_accepted_tokens == 0
        assert seq.result.spec_rejected_tokens == 4
        assert seq.result.spec_drafted_tokens == 4
        assert seq.result.output_logprobs == plain.output_logprobs[:2]
        # Tier accounting reconciles against the live store mid-run.
        seq.offload.check_invariants(stores=[seq.kv_store])

        # Continuing plainly from the rolled-back state must replay the
        # uninterrupted run exactly — KV, selector state, pointer head and
        # ledger all back to where a plain step would have left them.
        token = emitted[0][-1]
        for step in range(1, generation().max_new_tokens - 1):
            distribution = core.decode_step_batch([seq], [token], [step])[0]
            token = core.pick_token(seq, distribution)
            core.record_output(seq, token, distribution)
        assert seq.result.output_ids == plain.output_ids
        assert seq.result.output_logprobs == plain.output_logprobs

    def test_adversarial_drafter_end_to_end(self, models):
        """A zero-acceptance engine run is still bit-identical to plain."""
        model = models["tiny"]
        prompt = repetitive_prompt(model.config.vocab_size)
        plain = results_by_id(run_serve(model, CLUSTERKV, [prompt]))["req-0"]
        register_drafter(
            "test-avoid",
            lambda: _AvoidDrafter(
                len(prompt), plain.output_ids, model.config.vocab_size, 4
            ),
        )
        try:
            spec = run_serve(
                model,
                CLUSTERKV,
                [prompt],
                speculation=SpeculationConfig(drafter="test-avoid", k=4),
            )
        finally:
            _DRAFTERS.pop("test-avoid", None)
        actual = results_by_id(spec)["req-0"]
        assert actual.output_ids == plain.output_ids
        assert actual.output_logprobs == plain.output_logprobs
        accounting = spec.speculation()
        assert_conserved(accounting)
        assert accounting["accepted_tokens"] == 0.0
        assert accounting["rejected_tokens"] > 0.0


# ----------------------------------------------------------------------
# temperature sampling and checkpoint safety
# ----------------------------------------------------------------------
class TestTemperature:
    def test_sampled_speculation_is_deterministic(self, models):
        """Same seed, same config -> identical spec-on sampled output."""
        model = models["tiny"]
        prompt = repetitive_prompt(model.config.vocab_size)
        gen = generation(greedy=False, temperature=0.8)
        first = run_serve(
            model, CLUSTERKV, [prompt], speculation=SpeculationConfig(k=4), gen=gen
        )
        second = run_serve(
            model, CLUSTERKV, [prompt], speculation=SpeculationConfig(k=4), gen=gen
        )
        a, b = results_by_id(first)["req-0"], results_by_id(second)["req-0"]
        assert a.output_ids == b.output_ids
        assert a.output_logprobs == b.output_logprobs
        assert_conserved(first.speculation())

    def test_sampled_speculation_emits_full_length(self, models):
        model = models["tiny"]
        prompt = repetitive_prompt(model.config.vocab_size)
        gen = generation(greedy=False, temperature=1.2, max_new_tokens=10)
        report = run_serve(
            model, "full", [prompt], speculation=SpeculationConfig(k=3), gen=gen
        )
        result = results_by_id(report)["req-0"]
        assert len(result.output_ids) == 10
        assert all(math.isfinite(lp) for lp in result.output_logprobs)
        assert_conserved(report.speculation())


class TestCheckpointSafety:
    def test_checkpoint_mid_speculative_run_is_invisible(self, models):
        """Checkpoint between rounds, restore elsewhere: identical output."""
        model = models["tiny"]
        prompt = repetitive_prompt(model.config.vocab_size)
        speculation = SpeculationConfig(k=4)
        gen = generation(max_new_tokens=12)
        baseline = results_by_id(
            run_serve(model, CLUSTERKV, [prompt], speculation=speculation, gen=gen)
        )["req-0"]

        source = BatchedEngine(
            model,
            selector=build_policy(CLUSTERKV),
            generation_config=gen,
            speculation=speculation,
        )
        source.submit(prompt, request_id="req-0")
        for _ in range(2):  # prefill + at least one speculative round
            source.step()
        checkpoint = source.checkpoint_request("req-0", keep=False)
        assert 0 < len(checkpoint.result.output_ids) < len(baseline.output_ids)

        target = BatchedEngine(
            model,
            selector=build_policy(CLUSTERKV),
            generation_config=gen,
            speculation=speculation,
        )
        target.restore_request(checkpoint)
        report = target.run()
        restored = results_by_id(report)["req-0"]
        assert restored.output_ids == baseline.output_ids
        assert restored.output_logprobs == baseline.output_logprobs
        assert (
            restored.spec_accepted_tokens + restored.spec_rejected_tokens
            == restored.spec_drafted_tokens
        )


# ----------------------------------------------------------------------
# reports, traffic threading and the CLI
# ----------------------------------------------------------------------
class TestReports:
    def test_serve_report_zero_without_speculation(self, models):
        report = run_serve(
            models["tiny"], "full", [repetitive_prompt(128)]
        )
        accounting = report.speculation()
        assert accounting["drafted_tokens"] == 0.0
        assert accounting["acceptance_rate"] == 0.0
        assert accounting["mean_accepted_run_length"] == 0.0

    def test_traffic_report_carries_speculation(self):
        config = TrafficBenchConfig(
            policies=("clusterkv",),
            num_requests=4,
            num_replicas=1,
            rate=2.0,
            prompt_len_min=24,
            prompt_len_max=40,
            max_new_tokens=8,
            seed=3,
            speculate_k=4,
        )
        report = run_traffic_bench(config)
        accounting = report.speculation()
        assert_conserved(accounting)
        payload = json.loads(report.to_json())
        assert payload["speculation"]["drafted_tokens"] == accounting[
            "drafted_tokens"
        ]
        for metrics in report.requests:
            assert (
                metrics.spec_accepted_tokens + metrics.spec_rejected_tokens
                == metrics.spec_drafted_tokens
            )
        # Byte-reproducible with speculation on.
        assert run_traffic_bench(config).to_json() == report.to_json()

    def test_traffic_speculation_matches_serial_outputs(self):
        """Spec-on traffic sim serves the same tokens as spec-off."""
        base = dict(
            policies=("clusterkv",),
            num_requests=4,
            num_replicas=2,
            rate=2.0,
            prompt_len_min=24,
            prompt_len_max=40,
            max_new_tokens=8,
            seed=3,
        )
        plain = run_traffic_bench(TrafficBenchConfig(**base))
        spec = run_traffic_bench(TrafficBenchConfig(**base, speculate_k=4))
        plain_tokens = {m.request_id: m.output_tokens for m in plain.requests}
        spec_tokens = {m.request_id: m.output_tokens for m in spec.requests}
        assert spec_tokens == plain_tokens
        assert spec.engine_steps <= plain.engine_steps

    def test_cli_traffic_bench_speculate_flag(self, capsys):
        from repro.cli import main

        main(
            [
                "traffic-bench",
                "--requests",
                "3",
                "--rate",
                "2.0",
                "--new-tokens",
                "6",
                "--prompt-len-min",
                "24",
                "--prompt-len-max",
                "32",
                "--speculate",
                "2",
                "--json",
            ]
        )
        payload = json.loads(capsys.readouterr().out)
        accounting = payload["speculation"]
        assert (
            accounting["accepted_tokens"] + accounting["rejected_tokens"]
            == accounting["drafted_tokens"]
        )


# ----------------------------------------------------------------------
# satellite: empty-sample percentiles serialise as null, with counts
# ----------------------------------------------------------------------
class TestLatencyMetricEdgeCases:
    def test_percentile_of_empty_is_nan(self):
        assert math.isnan(percentile([], 50))
        assert math.isnan(percentile([], 99))

    def test_empty_report_serialises_nan_as_null(self):
        report = TrafficReport()
        summary = report.latency_summary()
        assert summary["ttft_s"]["samples"] == 0.0
        assert math.isnan(summary["ttft_s"]["p50"])
        payload = report.to_dict()
        assert payload["latency"]["ttft_s"]["p50"] is None
        assert payload["latency"]["ttft_s"]["samples"] == 0.0
        # Standard JSON: no NaN/Infinity literals anywhere in the body.
        text = report.to_json()
        json.loads(text)
        assert "NaN" not in text and "Infinity" not in text

    def test_all_rejected_class_reports_null_not_zero(self):
        """Regression: an all-rejected run must not look latency-perfect."""
        from repro.traffic.report import RejectedRequest

        report = TrafficReport(
            rejected=[
                RejectedRequest(
                    request_id="r0",
                    arrival_time_s=0.0,
                    prompt_tokens=32,
                    max_new_tokens=8,
                    reason="kv_headroom",
                )
            ]
        )
        assert report.num_submitted == 1 and report.num_requests == 0
        payload = report.to_dict()
        for series in payload["latency"].values():
            assert series["p50"] is None and series["p99"] is None
            assert series["samples"] == 0.0

    def test_samples_counts_match_served_requests(self):
        metrics = [
            RequestMetrics(
                request_id=f"r{i}",
                replica=0,
                policy="full",
                arrival_time_s=0.0,
                queue_wait_s=0.1,
                ttft_s=0.5,
                tpot_s=0.05,
                e2e_s=1.0,
                prompt_tokens=16,
                output_tokens=4,
                slo_met=True,
                slo_class="interactive" if i % 2 else "batch",
            )
            for i in range(3)
        ]
        report = TrafficReport(requests=metrics)
        summary = report.latency_summary()
        assert all(entry["samples"] == 3.0 for entry in summary.values())
        classes = report.class_summary()
        assert classes["interactive"]["num_requests"] == 1
        assert classes["batch"]["num_requests"] == 2


# ----------------------------------------------------------------------
# satellite: typed degenerate-distribution errors
# ----------------------------------------------------------------------
class TestDegenerateDistributions:
    def test_mix_zero_mass_primary_raises_typed_error(self):
        with pytest.raises(DegenerateDistributionError):
            mix_distributions(np.zeros(4), None, 1.0)

    def test_mix_zero_mass_mixture_raises_typed_error(self):
        with pytest.raises(DegenerateDistributionError):
            mix_distributions(np.zeros(4), np.zeros(4), 0.5)

    def test_typed_error_is_a_value_error(self):
        assert issubclass(DegenerateDistributionError, ValueError)

    def test_mix_shape_and_gate_validation(self):
        with pytest.raises(ValueError):
            mix_distributions(np.ones(3), np.ones(4), 0.5)
        with pytest.raises(ValueError):
            mix_distributions(np.ones(3), np.ones(3), 1.5)

    def test_mix_normalises(self):
        mixed = mix_distributions(np.array([2.0, 0.0]), np.array([0.0, 2.0]), 0.5)
        np.testing.assert_allclose(mixed, [0.5, 0.5])

    def test_apply_temperature_zero_mass_raises(self):
        with pytest.raises(DegenerateDistributionError):
            apply_temperature(np.zeros(4))

    def test_temperature_sample_zero_mass_raises(self):
        rng = np.random.default_rng(0)
        with pytest.raises(DegenerateDistributionError):
            temperature_sample(np.zeros(4), rng)

    def test_temperature_sample_still_works(self):
        rng = np.random.default_rng(0)
        token = temperature_sample(np.array([0.0, 1.0, 0.0]), rng, 0.5)
        assert token == 1


# ----------------------------------------------------------------------
# satellite: WorkerCrashed carries an attributable detail
# ----------------------------------------------------------------------
class TestWorkerCrashedDetail:
    def test_detail_lands_in_message_and_attribute(self):
        error = WorkerCrashed(3, "step", detail="pipe error: EOFError(); worker exitcode=-9")
        assert error.worker == 3 and error.command == "step"
        assert error.detail == "pipe error: EOFError(); worker exitcode=-9"
        assert "worker 3" in str(error) and "'step'" in str(error)
        assert "exitcode=-9" in str(error)

    def test_detail_is_optional(self):
        error = WorkerCrashed(0, "submit")
        assert error.detail is None
        assert str(error).count("\n") == 0

    def test_killed_worker_surfaces_exit_code(self):
        from repro.execbackend import MultiprocessBackend

        spec = EngineSpec(model="serve-sim", max_new_tokens=8)
        backend = MultiprocessBackend(spec.build_model(), spec, workers=1)
        try:
            handle = backend.create_handle()
            client = backend._clients[0]
            client.process.kill()
            client.process.join(timeout=10)
            with pytest.raises(WorkerCrashed) as excinfo:
                handle.start_step()
                handle.finish_step()
            assert excinfo.value.detail is not None
            assert "exitcode" in excinfo.value.detail
        finally:
            backend.close()
