"""Unit tests for selector statistics accounting."""

import pytest

from repro.baselines import SelectorStats, clip_budget


class TestSelectorStats:
    def test_merge_sums_all_counters(self):
        a = SelectorStats(
            score_flops=10,
            build_flops=5,
            selected_tokens=100,
            fetched_tokens=40,
            cache_hit_tokens=60,
            cache_miss_tokens=40,
            num_selections=2,
            aux_bytes=8,
        )
        b = SelectorStats(
            score_flops=1,
            build_flops=1,
            selected_tokens=1,
            fetched_tokens=1,
            cache_hit_tokens=1,
            cache_miss_tokens=1,
            num_selections=1,
            aux_bytes=1,
        )
        merged = a.merge(b)
        assert merged.score_flops == 11
        assert merged.build_flops == 6
        assert merged.selected_tokens == 101
        assert merged.fetched_tokens == 41
        assert merged.cache_hit_tokens == 61
        assert merged.cache_miss_tokens == 41
        assert merged.num_selections == 3
        assert merged.aux_bytes == 9
        # merge does not mutate its inputs
        assert a.score_flops == 10 and b.score_flops == 1

    def test_cache_hit_rate(self):
        stats = SelectorStats(cache_hit_tokens=30, cache_miss_tokens=10)
        assert stats.cache_hit_rate == pytest.approx(0.75)
        assert SelectorStats().cache_hit_rate == 0.0


class TestClipBudget:
    def test_clamps_to_context(self):
        assert clip_budget(100, 40) == 40
        assert clip_budget(10, 40) == 10

    def test_rejects_non_positive(self):
        with pytest.raises(ValueError):
            clip_budget(0, 10)
