"""Unit tests for the semantic clustering of key vectors."""

import numpy as np
import pytest

from repro.core.clustering import (
    ClusteringResult,
    cluster_heads,
    clustering_flops,
    kmeans_cluster,
    pairwise_scores,
)


def _blobs(rng, centers, points_per_center, noise=0.05):
    """Well-separated clusters of unit-ish vectors around given centres."""
    pieces = []
    for center in centers:
        pieces.append(center[None, :] + noise * rng.normal(size=(points_per_center, center.shape[0])))
    return np.concatenate(pieces, axis=0)


class TestPairwiseScores:
    def test_cosine_is_scale_invariant(self, rng):
        keys = rng.normal(size=(5, 8))
        centroids = rng.normal(size=(3, 8))
        a = pairwise_scores(keys, centroids, "cosine")
        b = pairwise_scores(keys * 10.0, centroids, "cosine")
        np.testing.assert_allclose(a, b, atol=1e-9)

    def test_ip_is_not_scale_invariant(self, rng):
        keys = rng.normal(size=(5, 8))
        centroids = rng.normal(size=(3, 8))
        a = pairwise_scores(keys, centroids, "ip")
        b = pairwise_scores(keys * 10.0, centroids, "ip")
        np.testing.assert_allclose(b, 10.0 * a, atol=1e-9)

    def test_l2_argmax_matches_nearest(self, rng):
        keys = rng.normal(size=(10, 4))
        centroids = rng.normal(size=(3, 4))
        scores = pairwise_scores(keys, centroids, "l2")
        explicit = np.array(
            [[np.sum((k - c) ** 2) for c in centroids] for k in keys]
        )
        np.testing.assert_array_equal(np.argmax(scores, axis=1), np.argmin(explicit, axis=1))

    def test_unknown_metric_raises(self, rng):
        with pytest.raises(ValueError):
            pairwise_scores(rng.normal(size=(2, 2)), rng.normal(size=(2, 2)), "manhattan")


class TestKMeans:
    def test_recovers_separated_clusters(self, rng):
        centers = np.eye(8)[:3]
        keys = _blobs(rng, centers, points_per_center=20)
        result = kmeans_cluster(keys, 3, metric="cosine", seed=0)
        assert result.n_clusters == 3
        # All points generated from the same centre must share a label.
        labels = result.labels.reshape(3, 20)
        for group in labels:
            assert len(set(group.tolist())) == 1
        # And different centres must have different labels.
        assert len({group[0] for group in labels}) == 3

    def test_labels_in_range_and_sizes_sum(self, rng):
        keys = rng.normal(size=(50, 8))
        result = kmeans_cluster(keys, 7, seed=1)
        assert result.labels.shape == (50,)
        assert result.labels.min() >= 0
        assert result.labels.max() < result.n_clusters
        assert result.cluster_sizes().sum() == 50

    def test_no_empty_clusters(self, rng):
        keys = rng.normal(size=(40, 6))
        result = kmeans_cluster(keys, 10, seed=2)
        assert np.all(result.cluster_sizes() > 0)

    def test_more_clusters_than_points_is_clamped(self, rng):
        keys = rng.normal(size=(4, 6))
        result = kmeans_cluster(keys, 16, seed=3)
        assert result.n_clusters <= 4
        assert result.labels.shape == (4,)

    def test_empty_input(self):
        result = kmeans_cluster(np.zeros((0, 8)), 4)
        assert result.n_clusters == 0
        assert result.labels.shape == (0,)

    def test_deterministic_for_fixed_seed(self, rng):
        keys = rng.normal(size=(30, 8))
        a = kmeans_cluster(keys, 5, seed=9)
        b = kmeans_cluster(keys, 5, seed=9)
        np.testing.assert_array_equal(a.labels, b.labels)
        np.testing.assert_allclose(a.centroids, b.centroids)

    def test_convergence_flag(self, rng):
        centers = np.eye(4)[:2]
        keys = _blobs(rng, centers, points_per_center=10)
        result = kmeans_cluster(keys, 2, max_iters=50, seed=0)
        assert result.converged
        assert result.n_iters <= 50

    def test_invalid_inputs(self, rng):
        with pytest.raises(ValueError):
            kmeans_cluster(rng.normal(size=(10,)), 2)
        with pytest.raises(ValueError):
            kmeans_cluster(rng.normal(size=(10, 4)), 0)

    def test_centroid_is_mean_of_members_cosine(self, rng):
        keys = rng.normal(size=(24, 6))
        result = kmeans_cluster(keys, 3, metric="cosine", seed=4)
        if not result.converged:
            pytest.skip("did not converge within the iteration cap")
        for cluster in range(result.n_clusters):
            members = keys[result.labels == cluster]
            np.testing.assert_allclose(
                result.centroids[cluster], members.mean(axis=0), atol=1e-9
            )


class TestClusterHeads:
    def test_per_head_results(self, rng):
        keys = rng.normal(size=(3, 30, 8))
        results = cluster_heads(keys, 4, seed=0)
        assert len(results) == 3
        for result in results:
            assert isinstance(result, ClusteringResult)
            assert result.labels.shape == (30,)

    def test_heads_clustered_independently(self, rng):
        keys = rng.normal(size=(2, 30, 8))
        results = cluster_heads(keys, 4, seed=0)
        # Different heads have different data, so centroids must differ.
        assert not np.allclose(results[0].centroids, results[1].centroids)

    def test_rejects_bad_shape(self, rng):
        with pytest.raises(ValueError):
            cluster_heads(rng.normal(size=(30, 8)), 4)


def test_clustering_flops_scaling():
    base = clustering_flops(100, 10, 16, 5)
    assert clustering_flops(200, 10, 16, 5) == 2 * base
    assert clustering_flops(100, 20, 16, 5) == 2 * base
    assert base > 0
