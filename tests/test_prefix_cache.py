"""Differential and property tests of the cross-request prefix/KV cache.

The load-bearing guarantees:

* **exactness** — enabling the prefix cache changes no output: for every
  registered compression policy, both models, chunked prefill, sampled
  decoding and mixed-policy batches, cache-on serving is token- and
  log-probability-identical to cache-off serving while reporting real
  hits;
* **radix-tree invariants** — refcount conservation across match/release,
  longest-match correctness against a brute-force oracle on random prompt
  forests, LRU eviction that never removes an in-use node, and exact
  accounting (``inserted - evicted == cached``);
* **semantic reuse** — ClusterKV's segmented prefill clustering restored
  from the cache reproduces the from-scratch outputs bit for bit while
  skipping k-means work on the reused prefix;
* **traffic integration** — a shared-preamble workload reports a hit rate
  of at least one half and strictly lower mean TTFT than the cache-off
  run at equal output tokens, all byte-reproducible on the virtual clock,
  and request conservation holds under replica failures with retries.
"""

import json

import numpy as np
import pytest

from repro.api import EngineSpec
from repro.cluster import ClusterConfig, ClusterSimulator, FailureEvent, FailurePlan
from repro.model import GenerationConfig, TransformerModel, get_model_config
from repro.policies import available_policies
from repro.prefixcache import PrefixCacheConfig, RadixPrefixCache
from repro.serving import BatchedEngine, SchedulerConfig, serve_prompts
from repro.traffic import (
    PrefixAffineRouter,
    TrafficConfig,
    TrafficRequest,
    TrafficSimulator,
)

BLOCK = 16
CLUSTERKV = "clusterkv:tokens_per_cluster=12,decode_window=8,decode_clusters=2,num_sink_tokens=4"
SEGMENTED_CLUSTERKV = CLUSTERKV + ",prefill_segment_tokens=16"

# Policy spec of every registered method, sized for the tiny test models.
POLICY_SPECS = {
    name: (CLUSTERKV if name == "clusterkv" else name) for name in available_policies()
}


def tiny_generation(greedy: bool = True) -> GenerationConfig:
    """Small-budget generation config shared by the differential tests."""
    return GenerationConfig(
        budget=24,
        num_full_layers=1,
        num_sink_tokens=4,
        max_new_tokens=6,
        greedy=greedy,
        seed=3,
    )


def shared_prefix_prompts(
    vocab_size: int, count: int = 3, preamble_tokens: int = 48, seed: int = 7
) -> list[np.ndarray]:
    """Prompts sharing a common preamble followed by unique suffixes."""
    rng = np.random.default_rng(seed)
    preamble = rng.integers(0, vocab_size, preamble_tokens)
    return [
        np.concatenate([preamble, rng.integers(0, vocab_size, 17 + index)])
        for index in range(count)
    ]


def scheduler(cache: bool, **overrides) -> SchedulerConfig:
    """Scheduler config with the cache on or off; admission is staggered.

    ``max_prefills_per_step=1`` makes each admission a separate engine
    step, so earlier prompts are inserted into the cache before later
    ones are matched — the differential tests need real hits, not just a
    cache that was never consulted.
    """
    knobs = dict(max_batch_size=4, max_prefills_per_step=1)
    if cache:
        knobs.update(prefix_cache_tokens=4096, prefix_block_tokens=BLOCK)
    knobs.update(overrides)
    return SchedulerConfig(**knobs)


def assert_identical_outputs(cache_off, cache_on) -> None:
    """Both serve reports contain bit-identical per-request outputs."""
    off, on = cache_off.results(), cache_on.results()
    assert set(off) == set(on)
    for request_id, expected in off.items():
        actual = on[request_id]
        assert actual.output_ids == expected.output_ids, request_id
        assert actual.output_logprobs == expected.output_logprobs, request_id


# ----------------------------------------------------------------------
# radix-tree properties
# ----------------------------------------------------------------------


def fake_layer_kv(prompt_ids: np.ndarray, num_layers: int = 2):
    """Per-layer KV whose entry at position ``p`` encodes ``prompt_ids[p]``.

    Lets the tests verify that matched KV really is the KV of the matched
    positions, not just the right shape.
    """
    ids = np.asarray(prompt_ids, dtype=np.float64)
    base = ids.reshape(1, -1, 1)
    return [(base + layer, base - layer) for layer in range(num_layers)]


def brute_force_match_tokens(
    query: np.ndarray, inserted: list[np.ndarray], block: int
) -> int:
    """Longest cached prefix of ``query`` by exhaustive comparison.

    Mirrors the cache contract: only whole blocks are cached (``len //
    block`` blocks per inserted prompt) and a match never swallows the
    entire query (at least one token is left to prefill).
    """
    limit = ((len(query) - 1) // block) * block if len(query) > 1 else 0
    best = 0
    for prompt in inserted:
        whole = (len(prompt) // block) * block
        matchable = min(limit, whole)
        length = 0
        while (
            length + block <= matchable
            and np.array_equal(query[length : length + block], prompt[length : length + block])
        ):
            length += block
        best = max(best, length)
    return best


class TestRadixTreeProperties:
    """Property-style tests driving ``RadixPrefixCache`` directly."""

    def make_cache(self, capacity: int | None = None) -> RadixPrefixCache:
        """A cache with the test block size and optional capacity."""
        return RadixPrefixCache(
            PrefixCacheConfig(block_tokens=BLOCK, capacity_tokens=capacity)
        )

    def test_longest_match_matches_brute_force_on_random_forest(self):
        """Random prompt forest: the radix match equals the oracle answer."""
        rng = np.random.default_rng(17)
        cache = self.make_cache()
        inserted: list[np.ndarray] = []
        stems = [rng.integers(0, 4, BLOCK * 2) for _ in range(3)]
        for round_idx in range(40):
            stem = stems[int(rng.integers(0, len(stems)))]
            keep = int(rng.integers(0, len(stem) + 1))
            tail = rng.integers(0, 4, int(rng.integers(1, BLOCK * 3)))
            prompt = np.concatenate([stem[:keep], tail])
            expected = brute_force_match_tokens(prompt, inserted, BLOCK)
            match = cache.match(prompt)
            actual = 0 if match is None else match.num_tokens
            assert actual == expected, f"round {round_idx}"
            if match is not None:
                # Matched KV is the KV of exactly the matched positions.
                assert np.array_equal(
                    match.keys(0)[0, :, 0], prompt[: match.num_tokens].astype(np.float64)
                )
                cache.release(match)
            cache.insert(prompt, fake_layer_kv(prompt))
            inserted.append(prompt)
            cache.check_invariants()

    def test_refcount_conservation_across_matches_and_releases(self):
        """Total live refcounts equal the blocks held by unreleased matches."""
        cache = self.make_cache()
        prompt = np.arange(BLOCK * 4 + 1)
        cache.insert(prompt, fake_layer_kv(prompt))

        def total_refcount() -> int:
            """Sum of refcounts over every node in the tree."""
            total, stack = 0, list(cache._root.children.values())
            while stack:
                node = stack.pop()
                total += node.refcount
                stack.extend(node.children.values())
            return total

        matches = [cache.match(prompt) for _ in range(3)]
        assert all(m is not None for m in matches)
        assert total_refcount() == sum(m.num_blocks for m in matches)
        cache.release(matches[0])
        cache.release(matches[0])  # idempotent: releasing twice is a no-op
        assert total_refcount() == sum(m.num_blocks for m in matches[1:])
        for match in matches[1:]:
            cache.release(match)
        assert total_refcount() == 0
        cache.check_invariants()

    def test_eviction_never_removes_in_use_nodes(self):
        """A held match pins its blocks; only unreferenced fillers are evicted."""
        cache = self.make_cache(capacity=BLOCK * 2)
        pinned = np.arange(BLOCK * 2 + 1)
        cache.insert(pinned, fake_layer_kv(pinned))
        match = cache.match(pinned)
        assert match is not None and match.num_tokens == BLOCK * 2

        rng = np.random.default_rng(5)
        for _ in range(4):
            other = rng.integers(100, 200, BLOCK + 3)
            cache.insert(other, fake_layer_kv(other))
            cache.check_invariants()
            # The filler (the only unreferenced leaf) was evicted, never
            # the pinned path, which stays fully matchable mid-flight.
            assert cache.cached_tokens == BLOCK * 2
            probe = cache.match(pinned)
            assert probe is not None and probe.num_tokens == BLOCK * 2
            cache.release(probe)
        assert cache.stats()["evictions"] == 4

        # Once released, the pinned path becomes evictable like any other.
        cache.release(match)
        filler = np.arange(300, 300 + BLOCK + 1)
        cache.insert(filler, fake_layer_kv(filler))
        assert cache.cached_tokens <= BLOCK * 2
        cache.check_invariants()

    def test_lru_eviction_order_and_stats_accounting(self):
        """The least recently touched unreferenced leaf is evicted first."""
        cache = self.make_cache(capacity=BLOCK * 2)
        first = np.arange(BLOCK + 1)
        second = np.arange(500, 500 + BLOCK + 1)
        cache.insert(first, fake_layer_kv(first))
        cache.insert(second, fake_layer_kv(second))
        refresh = cache.match(first)  # first becomes most recently used
        assert refresh is not None
        cache.release(refresh)

        third = np.arange(900, 900 + BLOCK + 1)
        cache.insert(third, fake_layer_kv(third))
        cache.check_invariants()
        assert cache.match(second) is None  # LRU victim
        kept = cache.match(first)
        assert kept is not None
        cache.release(kept)

        stats = cache.stats()
        assert stats["inserted_tokens"] - stats["evicted_tokens"] == stats["cached_tokens"]
        assert stats["evictions"] == 1 and stats["evicted_tokens"] == BLOCK
        assert stats["hits"] == 2 and stats["misses"] == 1
        assert stats["hit_rate"] == pytest.approx(2.0 / 3.0)

    def test_match_always_leaves_one_token_to_prefill(self):
        """A fully cached prompt still matches strictly less than itself."""
        cache = self.make_cache()
        prompt = np.arange(BLOCK * 2)
        cache.insert(prompt, fake_layer_kv(prompt))
        match = cache.match(prompt)
        assert match is not None and match.num_tokens == BLOCK
        cache.release(match)
        assert cache.match(np.arange(BLOCK)) is None  # single block: no room

    def test_semantic_segments_ride_matched_nodes_per_signature(self):
        """Semantic payloads come back only for the matched prefix and signature."""
        cache = self.make_cache()
        prompt = np.arange(BLOCK * 3 + 1)
        semantic = {
            "sig-a": {
                (0, 0, BLOCK): "seg0",
                (0, BLOCK, BLOCK * 2): "seg1",
                (0, BLOCK * 2, BLOCK * 3): "seg2",
            }
        }
        cache.insert(prompt, fake_layer_kv(prompt), semantic=semantic)
        match = cache.match(prompt[: BLOCK * 2 + 1])
        assert match is not None and match.num_tokens == BLOCK * 2
        segments = match.semantic_segments("sig-a")
        assert set(segments) == {(0, 0, BLOCK), (0, BLOCK, BLOCK * 2)}
        assert match.semantic_segments("sig-b") == {}
        cache.release(match)


# ----------------------------------------------------------------------
# engine differentials: cache-on == cache-off, for everything
# ----------------------------------------------------------------------


class TestEngineDifferential:
    """Cache-on serving must be bit-identical to cache-off serving."""

    @pytest.mark.parametrize("model_name", ["tiny", "serve-sim"])
    @pytest.mark.parametrize("policy_name", sorted(POLICY_SPECS))
    def test_every_policy_is_cache_transparent(self, model_name, policy_name):
        """All registered policies x both models: identical tokens, real hits."""
        config = get_model_config(model_name)
        model = TransformerModel(config)
        prompts = shared_prefix_prompts(config.vocab_size)
        policy = POLICY_SPECS[policy_name]
        generation = tiny_generation()
        off = serve_prompts(
            model, prompts, selector=policy,
            generation_config=generation, scheduler_config=scheduler(cache=False),
        )
        on = serve_prompts(
            model, prompts, selector=policy,
            generation_config=generation, scheduler_config=scheduler(cache=True),
        )
        assert_identical_outputs(off, on)
        assert off.prefix_cache == {}
        assert on.prefix_cache["hits"] == 2
        attached = sorted(r.cached_prefix_tokens for r in on.results().values())
        assert attached == [0, 48, 48]

    def test_sampled_decoding_is_cache_transparent(self):
        """Non-greedy decoding draws the same samples with the cache on."""
        config = get_model_config("tiny")
        model = TransformerModel(config)
        prompts = shared_prefix_prompts(config.vocab_size)
        generation = tiny_generation(greedy=False)
        off = serve_prompts(
            model, prompts, selector=CLUSTERKV,
            generation_config=generation, scheduler_config=scheduler(cache=False),
        )
        on = serve_prompts(
            model, prompts, selector=CLUSTERKV,
            generation_config=generation, scheduler_config=scheduler(cache=True),
        )
        assert_identical_outputs(off, on)
        assert on.prefix_cache["hits"] == 2

    @pytest.mark.parametrize("policy_name", ["clusterkv", "full"])
    def test_chunked_prefill_is_cache_transparent(self, policy_name):
        """Suffix-only prefill composes with chunked prefill unchanged.

        Chunked prefill spreads one prompt over several steps, so hits
        need the preamble to be *fully* prefilled before the followers
        arrive: the leader is served alone (populating the cache), then
        each follower is served on the same engine.  Followers run one
        at a time so both runs chunk the suffix at the same boundaries
        (the per-step chunk budget is shared across concurrent prefills,
        and row batching is not bitwise associativity-free).
        """
        config = get_model_config("tiny")
        model = TransformerModel(config)
        prompts = shared_prefix_prompts(config.vocab_size)
        policy = POLICY_SPECS[policy_name]
        generation = tiny_generation()

        def two_phase_serve(cache: bool):
            """Serve the leader, then each follower, on one engine."""
            engine = BatchedEngine(
                model,
                selector=policy,
                generation_config=generation,
                scheduler_config=scheduler(cache=cache, prefill_chunk_tokens=16),
            )
            results: dict = {}
            for prompt in prompts:
                engine.submit(prompt)
                results.update(engine.run().results())
            return engine, results

        engine_off, off = two_phase_serve(cache=False)
        engine_on, on = two_phase_serve(cache=True)
        assert set(off) == set(on)
        for request_id, expected in off.items():
            assert on[request_id].output_ids == expected.output_ids, request_id
            assert on[request_id].output_logprobs == expected.output_logprobs, request_id
        assert engine_off.prefix_cache_stats() == {}
        assert engine_on.prefix_cache_stats()["hits"] == 2
        attached = sorted(r.cached_prefix_tokens for r in on.values())
        assert attached == [0, 48, 48]

    def test_mixed_policy_batch_is_cache_transparent(self):
        """Requests with different policies share one cache without cross-talk."""
        config = get_model_config("tiny")
        model = TransformerModel(config)
        prompts = shared_prefix_prompts(config.vocab_size, count=4)
        policies = [CLUSTERKV, None, "streaming_llm", "quest"]
        generation = tiny_generation()
        off = serve_prompts(
            model, prompts, selector="full", generation_config=generation,
            scheduler_config=scheduler(cache=False), policies=policies,
        )
        on = serve_prompts(
            model, prompts, selector="full", generation_config=generation,
            scheduler_config=scheduler(cache=True), policies=policies,
        )
        assert_identical_outputs(off, on)
        assert on.prefix_cache["hits"] == 3

    def test_segmented_clusterkv_semantic_reuse_is_exact_and_cheaper(self):
        """Restored cluster state reproduces outputs while skipping k-means."""
        config = get_model_config("tiny")
        model = TransformerModel(config)
        prompts = shared_prefix_prompts(config.vocab_size)
        generation = tiny_generation()

        def run(cache: bool, semantic: bool):
            """One serve run of the segmented policy with the given knobs."""
            return serve_prompts(
                model, prompts, selector=SEGMENTED_CLUSTERKV,
                generation_config=generation,
                scheduler_config=scheduler(
                    cache=cache, prefix_semantic_reuse=semantic
                ) if cache else scheduler(cache=False),
            )

        off = run(cache=False, semantic=False)
        kv_only = run(cache=True, semantic=False)
        semantic = run(cache=True, semantic=True)
        assert_identical_outputs(off, kv_only)
        assert_identical_outputs(off, semantic)
        assert semantic.prefix_cache["hits"] == 2

        def build_flops(report) -> int:
            """Total structure-build FLOPs across all completed requests."""
            return sum(r.selector_stats.build_flops for r in report.results().values())

        # Semantic restore skips re-clustering the shared prefix entirely.
        assert build_flops(semantic) < build_flops(kv_only)
        assert build_flops(kv_only) == build_flops(off)


# ----------------------------------------------------------------------
# traffic and cluster scenarios
# ----------------------------------------------------------------------


def preamble_workload(count: int = 8, preamble_tokens: int = 64) -> list[TrafficRequest]:
    """An open-loop trace whose prompts all share one long preamble."""
    vocab = get_model_config("tiny").vocab_size
    rng = np.random.default_rng(23)
    preamble = rng.integers(0, vocab, preamble_tokens)
    return [
        TrafficRequest(
            request_id=f"req-{index:03d}",
            arrival_time_s=0.05 * index,
            prompt_ids=np.concatenate([preamble, rng.integers(0, vocab, 9 + index)]),
            max_new_tokens=6,
        )
        for index in range(count)
    ]


def traffic_spec(cache: bool) -> EngineSpec:
    """Replica engine spec with the prefix cache on or off."""
    return EngineSpec(
        model="tiny",
        policy=CLUSTERKV,
        budget=24,
        max_new_tokens=6,
        num_full_layers=1,
        num_sink_tokens=4,
        max_batch_size=4,
        max_prefills_per_step=1,
        prefix_cache_tokens=4096 if cache else None,
        prefix_block_tokens=BLOCK,
    )


class TestTrafficScenarios:
    """Prefix caching inside the virtual-clock traffic and cluster layers."""

    def test_shared_preamble_hit_rate_and_ttft_improvement(self):
        """Hit rate >= 0.5 and strictly lower TTFT at equal output tokens."""
        requests = preamble_workload()
        cached = TrafficSimulator(TrafficConfig(engine=traffic_spec(True), num_replicas=1))
        cached_report = cached.run(requests)
        plain = TrafficSimulator(TrafficConfig(engine=traffic_spec(False), num_replicas=1))
        plain_report = plain.run(requests)

        # Outputs are token-identical, so goodput comparisons are fair.
        assert set(cached.completed) == set(plain.completed)
        for request_id, completed in plain.completed.items():
            assert cached.completed[request_id].result.output_ids == completed.result.output_ids
        assert cached_report.total_output_tokens == plain_report.total_output_tokens

        cache = cached_report.prefix_cache
        assert cache["hit_rate"] >= 0.5
        assert cache["requests_with_hit"] == len(requests) - 1
        # Both cohort means are reported (the lone miss is the first
        # arrival, whose empty-queue TTFT is not comparable in absolute
        # terms — the fair comparison is against the cache-off run below).
        assert cache["ttft_hit_mean_s"] > 0.0 and cache["ttft_miss_mean_s"] > 0.0
        assert plain_report.prefix_cache == {}

        def ttft(report) -> tuple[float, float]:
            """(mean, p99) TTFT of one report."""
            values = [m.ttft_s for m in report.requests]
            return float(np.mean(values)), report.latency_summary()["ttft_s"]["p99"]

        cached_mean, cached_p99 = ttft(cached_report)
        plain_mean, plain_p99 = ttft(plain_report)
        assert cached_mean < plain_mean
        assert cached_p99 <= plain_p99
        # Latency is bought with reuse, not by shedding throughput.
        assert cached_report.goodput_tokens_per_s >= plain_report.goodput_tokens_per_s

    def test_cached_traffic_report_is_byte_reproducible(self):
        """Two fresh cache-enabled runs emit byte-identical report JSON."""
        requests = preamble_workload()
        first = TrafficSimulator(
            TrafficConfig(engine=traffic_spec(True), num_replicas=2, router="prefix_affine")
        ).run(requests)
        second = TrafficSimulator(
            TrafficConfig(engine=traffic_spec(True), num_replicas=2, router="prefix_affine")
        ).run(requests)
        assert first.to_json() == second.to_json()
        payload = json.loads(first.to_json())
        assert payload["prefix_cache"]["hits"] >= 1

    def test_prefix_affine_router_pins_shared_preambles(self):
        """Requests sharing a first block all land on the same replica."""
        router = PrefixAffineRouter(block_tokens=BLOCK)
        requests = preamble_workload(count=4)
        slots = {router.choose([0, 1, 2], request) for request in requests}
        assert len(slots) == 1
        assert router.describe() == {"name": "prefix_affine", "block_tokens": BLOCK}
        lone = TrafficRequest(
            request_id="solo",
            arrival_time_s=0.0,
            prompt_ids=np.arange(BLOCK * 2),
            max_new_tokens=4,
        )
        assert router.choose([0, 1, 2], lone) == router.choose([0, 1, 2], lone)

    def test_cluster_conservation_under_failures_with_cache(self):
        """Replica kills plus retries conserve requests with the cache on."""
        requests = preamble_workload(count=10)
        config = ClusterConfig(
            engine=traffic_spec(True),
            min_replicas=2,
            max_replicas=2,
            autoscaler="static",
            router="prefix_affine",
            failures=FailurePlan(events=(FailureEvent(time_s=7.0, slot=0),)),
        )
        report = ClusterSimulator(config).run(requests)
        assert report.num_requests + report.num_rejected == len(requests)
        assert report.prefix_cache and report.prefix_cache["hits"] >= 1
        repeat = ClusterSimulator(config).run(requests)
        assert report.to_json() == repeat.to_json()
