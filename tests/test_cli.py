"""Unit tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_all_experiments_registered(self):
        parser = build_parser()
        args = parser.parse_args(["fig12"])
        assert args.command == "fig12"
        args = parser.parse_args(["fig9", "--scale", "32", "--samples", "3"])
        assert args.scale == 32
        assert args.samples == 3

    def test_unknown_command_rejected(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args(["fig99"])

    def test_serve_bench_registered(self):
        parser = build_parser()
        args = parser.parse_args(
            ["serve-bench", "--batch", "4", "--requests", "6", "--methods", "full"]
        )
        assert args.command == "serve-bench"
        assert args.batch == 4
        assert args.requests == 6
        assert args.methods == ["full"]

    def test_serve_bench_policy_flags(self):
        parser = build_parser()
        args = parser.parse_args(
            [
                "serve-bench",
                "--policy", "clusterkv:tokens_per_cluster=32",
                "--policy", "quest:page_size=8",
                "--mixed",
            ]
        )
        assert args.policy == ["clusterkv:tokens_per_cluster=32", "quest:page_size=8"]
        assert args.mixed is True

    def test_serve_bench_policy_json_flag(self):
        parser = build_parser()
        args = parser.parse_args(
            ["serve-bench", "--policy-json", '{"name": "quest", "page_size": 32}']
        )
        assert args.policy_json == '{"name": "quest", "page_size": 32}'

    def test_traffic_bench_registered(self):
        parser = build_parser()
        args = parser.parse_args(
            [
                "traffic-bench",
                "--rate", "0.7",
                "--replicas", "2",
                "--router", "jsq",
                "--arrivals", "onoff",
                "--slo-ttft", "3.0",
                "--seed", "5",
            ]
        )
        assert args.command == "traffic-bench"
        assert args.rate == 0.7
        assert args.replicas == 2
        assert args.router == "jsq"
        assert args.arrivals == "onoff"
        assert args.slo_ttft == 3.0
        assert args.seed == 5


class TestMain:
    def test_no_command_prints_help(self, capsys):
        assert main([]) == 2
        assert "regenerate" in capsys.readouterr().out

    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig12" in out and "cache-study" in out
        # Every subcommand is enumerated, including serving and list itself.
        assert "serve-bench" in out
        assert "list" in out
        # Registered policies are enumerated from the registry.
        for policy in ("clusterkv", "quest", "infinigen", "streaming_llm", "full"):
            assert policy in out

    def test_mixed_serve_bench_runs(self, capsys):
        assert (
            main(
                [
                    "serve-bench",
                    "--mixed",
                    "--requests", "3",
                    "--batch", "3",
                    "--prompt-len", "12",
                    "--new-tokens", "4",
                    "--repeats", "1",
                    "--policy", "streaming_llm",
                    "--policy", "quest:page_size=8",
                    "--policy", "full",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "per-request policies" in out
        assert "quest:page_size=8" in out

    def test_policy_json_serve_bench_runs(self, capsys):
        assert (
            main(
                [
                    "serve-bench",
                    "--requests", "2",
                    "--batch", "2",
                    "--prompt-len", "12",
                    "--new-tokens", "4",
                    "--repeats", "1",
                    # Object form and bare-string form mix in one list.
                    "--policy-json", '[{"name": "streaming_llm"}, "full"]',
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "streaming_llm" in out and "full" in out

    def test_policy_json_rejects_non_mapping_entries(self):
        with pytest.raises(ValueError, match="policy objects"):
            main(
                [
                    "serve-bench",
                    "--repeats", "1",
                    "--policy-json", "[42]",
                ]
            )

    def test_traffic_bench_runs_and_is_bit_reproducible(self, capsys):
        argv = [
            "traffic-bench",
            "--model", "tiny",
            "--requests", "4",
            "--rate", "0.8",
            "--replicas", "2",
            "--router", "jsq",
            "--prompt-len-min", "16",
            "--prompt-len-max", "24",
            "--new-tokens", "4",
            "--budget", "16",
            "--seed", "3",
            "--json",
        ]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert main(argv) == 0
        second = capsys.readouterr().out
        # The acceptance contract: identical TrafficReport JSON run-to-run.
        assert first == second
        assert '"num_replicas": 2' in first

    def test_traffic_bench_table_output(self, capsys):
        assert (
            main(
                [
                    "traffic-bench",
                    "--model", "tiny",
                    "--requests", "3",
                    "--rate", "1.0",
                    "--replicas", "1",
                    "--router", "round_robin",
                    "--prompt-len-min", "16",
                    "--prompt-len-max", "24",
                    "--new-tokens", "4",
                    "--budget", "16",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "[traffic-bench]" in out
        assert "goodput" in out
        assert "ttft_s" in out

    def test_list_includes_traffic_registries(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "traffic-bench" in out
        for router in ("round_robin", "jsq", "least_kv"):
            assert router in out
        for process in ("poisson", "onoff", "constant"):
            assert process in out

    def test_list_includes_cluster_registries(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "cluster-bench" in out
        for autoscaler in ("static", "queue_depth", "slo_attainment"):
            assert autoscaler in out
        for admission in ("always", "token_budget", "queue_deadline"):
            assert admission in out

    def test_cluster_bench_runs_and_is_bit_reproducible(self, capsys):
        argv = [
            "cluster-bench",
            "--model", "tiny",
            "--requests", "4",
            "--rate", "0.8",
            "--min-replicas", "1",
            "--max-replicas", "2",
            "--autoscaler", "queue_depth:high=1,low=0.25,cooldown_s=1",
            "--admission", "token_budget",
            "--kill", "4.0@0",
            "--prompt-len-min", "16",
            "--prompt-len-max", "24",
            "--new-tokens", "4",
            "--budget", "16",
            "--seed", "3",
            "--json",
        ]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert main(argv) == 0
        second = capsys.readouterr().out
        assert first == second
        assert '"autoscaler"' in first
        assert '"failures"' in first

    def test_cluster_bench_table_output(self, capsys):
        assert (
            main(
                [
                    "cluster-bench",
                    "--model", "tiny",
                    "--requests", "3",
                    "--rate", "1.0",
                    "--min-replicas", "1",
                    "--max-replicas", "2",
                    "--prompt-len-min", "16",
                    "--prompt-len-max", "24",
                    "--new-tokens", "4",
                    "--budget", "16",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "cluster: autoscaler=slo_attainment" in out
        assert "scaling timeline:" in out

    def test_cluster_bench_rejects_malformed_kill(self):
        with pytest.raises(ValueError, match="malformed --kill"):
            main(["cluster-bench", "--kill", "nonsense"])

    def test_fig12_runs_and_prints_table(self, capsys):
        assert main(["fig12"]) == 0
        out = capsys.readouterr().out
        assert "[Fig. 12]" in out
        assert "best speedup" in out

    def test_fig13_runs(self, capsys):
        assert main(["fig13"]) == 0
        out = capsys.readouterr().out
        assert "[Fig. 13a]" in out and "[Fig. 13b]" in out

    def test_output_file_written(self, tmp_path, capsys):
        target = tmp_path / "fig12.txt"
        assert main(["fig12", "--out", str(target)]) == 0
        assert "[Fig. 12]" in target.read_text()
