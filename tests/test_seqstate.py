"""Round-trip property tests of :mod:`repro.seqstate` checkpoints.

The load-bearing guarantee: checkpointing a live sequence at *any* point —
mid-decode, mid-chunk during prefill, after a prefix-cache attach, under
greedy or sampled decoding — and restoring it onto a fresh
:class:`~repro.model.generation.SequenceState` (fresh selector instance,
fresh offload manager, as a migration would use) produces exactly the
tokens and log-probabilities of the uninterrupted run, for every
registered policy on both test models.
"""

import dataclasses

import numpy as np
import pytest

from repro.memory import OffloadManager
from repro.model import (
    EngineCore,
    GenerationConfig,
    SequenceState,
    TransformerModel,
    get_model_config,
)
from repro.policies import available_policies, build_policy
from repro.seqstate import (
    SEQSTATE_VERSION,
    SequenceCheckpoint,
    checkpoint_sequence,
    policy_signature,
    restore_sequence,
)

CLUSTERKV = "clusterkv:tokens_per_cluster=12,decode_window=8,decode_clusters=2,num_sink_tokens=4"

# Policy spec of every registered method, sized for the tiny test models.
POLICY_SPECS = {
    name: (CLUSTERKV if name == "clusterkv" else name) for name in available_policies()
}


def tiny_generation(greedy: bool = True) -> GenerationConfig:
    """Small-budget generation config shared by the round-trip tests."""
    return GenerationConfig(
        budget=24,
        num_full_layers=1,
        num_sink_tokens=4,
        max_new_tokens=6,
        greedy=greedy,
        seed=3,
    )


def make_prompt(vocab_size: int, length: int = 40, seed: int = 11) -> np.ndarray:
    """Deterministic random prompt."""
    rng = np.random.default_rng(seed)
    return rng.integers(0, vocab_size, length)


def fresh_sequence(model, policy, generation):
    """A new (core, sequence) pair with its own selector and offload."""
    selector = build_policy(policy)
    core = EngineCore(model, generation)
    seq = SequenceState(model, selector, generation, OffloadManager())
    return core, seq


def decode_from(core, seq, token, start_step):
    """Drive decoding from ``start_step`` to completion; returns the result."""
    generation = core.generation_config
    for step in range(start_step, generation.max_new_tokens - 1):
        distribution = core.decode_step_batch([seq], [token], [step])[0]
        token = core.pick_token(seq, distribution)
        core.record_output(seq, token, distribution)
        seq.result.decode_steps += 1
    return core.finalise(seq)


def run_uninterrupted(model, policy, generation, prompt):
    """Baseline: prefill plus a full decode with no checkpoint."""
    core, seq = fresh_sequence(model, policy, generation)
    distribution = core.prefill(seq, prompt)
    token = core.pick_token(seq, distribution)
    core.record_output(seq, token, distribution)
    return decode_from(core, seq, token, 0)


def run_with_checkpoint(model, policy, generation, prompt, stop_step):
    """Decode to ``stop_step``, checkpoint, restore elsewhere, finish there.

    The restore target uses a *fresh* selector instance and a *fresh*
    offload manager — exactly what a migration to another replica does.
    """
    core, seq = fresh_sequence(model, policy, generation)
    distribution = core.prefill(seq, prompt)
    token = core.pick_token(seq, distribution)
    core.record_output(seq, token, distribution)
    for step in range(stop_step):
        distribution = core.decode_step_batch([seq], [token], [step])[0]
        token = core.pick_token(seq, distribution)
        core.record_output(seq, token, distribution)
        seq.result.decode_steps += 1
    checkpoint = core.checkpoint_request(seq)
    seq.release()  # the source is gone, as after a migration or failure

    target_core = EngineCore(model, generation)
    restored = target_core.restore_request(
        checkpoint, build_policy(policy), OffloadManager()
    )
    token = restored.result.output_ids[-1]
    return decode_from(target_core, restored, token, stop_step)


def assert_same_result(expected, actual) -> None:
    """Token- and logprob-identical generation results."""
    assert actual.output_ids == expected.output_ids
    assert actual.output_logprobs == expected.output_logprobs
    assert actual.decode_steps == expected.decode_steps
    assert actual.prompt_length == expected.prompt_length


# ----------------------------------------------------------------------
# the core property: restore == never interrupted
# ----------------------------------------------------------------------


class TestRoundTrip:
    """Checkpoint/restore must be invisible in the outputs."""

    @pytest.mark.parametrize("model_name", ["tiny", "serve-sim"])
    @pytest.mark.parametrize("policy_name", sorted(POLICY_SPECS))
    def test_every_policy_round_trips_bit_identically(self, model_name, policy_name):
        """All registered policies x both models: identical tokens."""
        config = get_model_config(model_name)
        model = TransformerModel(config)
        prompt = make_prompt(config.vocab_size)
        policy = POLICY_SPECS[policy_name]
        generation = tiny_generation()
        expected = run_uninterrupted(model, policy, generation, prompt)
        actual = run_with_checkpoint(model, policy, generation, prompt, stop_step=2)
        assert_same_result(expected, actual)

    @pytest.mark.parametrize("stop_step", range(0, 5))
    def test_checkpoint_at_every_decode_position(self, stop_step):
        """Arbitrary decode positions: every step is a valid checkpoint."""
        config = get_model_config("tiny")
        model = TransformerModel(config)
        prompt = make_prompt(config.vocab_size)
        generation = tiny_generation()
        expected = run_uninterrupted(model, CLUSTERKV, generation, prompt)
        actual = run_with_checkpoint(
            model, CLUSTERKV, generation, prompt, stop_step=stop_step
        )
        assert_same_result(expected, actual)

    @pytest.mark.parametrize("policy_name", ["clusterkv", "full", "infinigen"])
    def test_sampled_decoding_round_trips(self, policy_name):
        """The restored RNG draws exactly the samples the source would have."""
        config = get_model_config("tiny")
        model = TransformerModel(config)
        prompt = make_prompt(config.vocab_size)
        policy = POLICY_SPECS[policy_name]
        generation = tiny_generation(greedy=False)
        expected = run_uninterrupted(model, policy, generation, prompt)
        actual = run_with_checkpoint(model, policy, generation, prompt, stop_step=3)
        assert_same_result(expected, actual)

    def test_checkpoint_leaves_the_source_sequence_unaffected(self):
        """Checkpointing is a pure read: the source finishes identically."""
        config = get_model_config("tiny")
        model = TransformerModel(config)
        prompt = make_prompt(config.vocab_size)
        generation = tiny_generation(greedy=False)
        expected = run_uninterrupted(model, CLUSTERKV, generation, prompt)

        core, seq = fresh_sequence(model, CLUSTERKV, generation)
        distribution = core.prefill(seq, prompt)
        token = core.pick_token(seq, distribution)
        core.record_output(seq, token, distribution)
        for step in range(2):
            distribution = core.decode_step_batch([seq], [token], [step])[0]
            token = core.pick_token(seq, distribution)
            core.record_output(seq, token, distribution)
            seq.result.decode_steps += 1
        core.checkpoint_request(seq)  # snapshot taken, then ignored
        actual = decode_from(core, seq, token, 2)
        assert_same_result(expected, actual)


# ----------------------------------------------------------------------
# prefill-time checkpoints: mid-chunk and prefix-attached
# ----------------------------------------------------------------------


class TestPrefillCheckpoints:
    """Checkpoints taken before decoding starts restore exactly too."""

    @pytest.mark.parametrize("policy_name", ["clusterkv", "full", "quest"])
    def test_mid_chunk_prefill_round_trips(self, policy_name):
        """A checkpoint between prefill chunks resumes the chunk sequence."""
        config = get_model_config("tiny")
        model = TransformerModel(config)
        prompt = make_prompt(config.vocab_size)
        policy = POLICY_SPECS[policy_name]
        generation = tiny_generation()
        chunks = [(0, 16), (16, 32), (32, len(prompt))]

        def chunked_prefill(core, seq, start_chunk):
            """Run the remaining prefill chunks; returns the distribution."""
            distribution = None
            for start, end in chunks[start_chunk:]:
                distribution = core.prefill_chunk(seq, prompt, start, end)
            assert distribution is not None
            return distribution

        core, seq = fresh_sequence(model, policy, generation)
        distribution = chunked_prefill(core, seq, 0)
        token = core.pick_token(seq, distribution)
        core.record_output(seq, token, distribution)
        expected = decode_from(core, seq, token, 0)

        core, seq = fresh_sequence(model, policy, generation)
        core.prefill_chunk(seq, prompt, *chunks[0])
        checkpoint = core.checkpoint_request(seq)
        seq.release()
        target_core = EngineCore(model, generation)
        restored = target_core.restore_request(
            checkpoint, build_policy(policy), OffloadManager()
        )
        assert restored.position == chunks[0][1] and restored.prefilled
        distribution = chunked_prefill(target_core, restored, 1)
        token = target_core.pick_token(restored, distribution)
        target_core.record_output(restored, token, distribution)
        actual = decode_from(target_core, restored, token, 0)
        assert_same_result(expected, actual)

    def test_prefix_attached_request_round_trips(self):
        """A request running on attached prefix KV checkpoints and restores."""
        config = get_model_config("tiny")
        model = TransformerModel(config)
        prompt = make_prompt(config.vocab_size, length=33)
        attached = 16
        generation = tiny_generation()

        def donor_kv():
            """Prefill the full prompt once; harvest the prefix KV."""
            core, seq = fresh_sequence(model, CLUSTERKV, generation)
            core.prefill(seq, prompt)
            keys = [seq.kv_store.keys(l)[:, :attached, :].copy() for l in range(config.n_layers)]
            values = [seq.kv_store.values(l)[:, :attached, :].copy() for l in range(config.n_layers)]
            seq.release()
            return keys, values

        keys, values = donor_kv()

        def attached_run(checkpoint_at: int | None):
            """Serve the prompt on attached KV, optionally checkpointing."""
            core, seq = fresh_sequence(model, CLUSTERKV, generation)
            core.attach_prefix(seq, prompt, keys, values)
            distribution = core.prefill_chunk(seq, prompt, attached, len(prompt))
            token = core.pick_token(seq, distribution)
            core.record_output(seq, token, distribution)
            if checkpoint_at is None:
                return decode_from(core, seq, token, 0)
            for step in range(checkpoint_at):
                distribution = core.decode_step_batch([seq], [token], [step])[0]
                token = core.pick_token(seq, distribution)
                core.record_output(seq, token, distribution)
                seq.result.decode_steps += 1
            checkpoint = core.checkpoint_request(seq)
            seq.release()
            target_core = EngineCore(model, generation)
            restored = target_core.restore_request(
                checkpoint, build_policy(CLUSTERKV), OffloadManager()
            )
            assert restored.result.cached_prefix_tokens == attached
            return decode_from(
                target_core, restored, restored.result.output_ids[-1], checkpoint_at
            )

        expected = attached_run(checkpoint_at=None)
        actual = attached_run(checkpoint_at=2)
        assert_same_result(expected, actual)
        assert actual.cached_prefix_tokens == attached


# ----------------------------------------------------------------------
# validation: incompatible restores are refused
# ----------------------------------------------------------------------


class TestRestoreValidation:
    """Restore refuses anything that would break exactness."""

    def make_checkpoint(self, generation=None) -> tuple:
        """A real mid-decode checkpoint of a tiny clusterkv run."""
        config = get_model_config("tiny")
        model = TransformerModel(config)
        prompt = make_prompt(config.vocab_size)
        generation = generation or tiny_generation()
        core, seq = fresh_sequence(model, CLUSTERKV, generation)
        distribution = core.prefill(seq, prompt)
        token = core.pick_token(seq, distribution)
        core.record_output(seq, token, distribution)
        checkpoint = core.checkpoint_request(seq)
        seq.release()
        return model, generation, checkpoint

    def test_version_mismatch_is_refused(self):
        """A checkpoint from another format version does not restore."""
        model, generation, checkpoint = self.make_checkpoint()
        stale = dataclasses.replace(checkpoint, version=SEQSTATE_VERSION + 1)
        with pytest.raises(ValueError, match="version"):
            restore_sequence(
                model, generation, stale, build_policy(CLUSTERKV), OffloadManager()
            )

    def test_policy_signature_mismatch_is_refused(self):
        """Same policy name, different configuration: refused."""
        model, generation, checkpoint = self.make_checkpoint()
        other = build_policy(
            "clusterkv:tokens_per_cluster=8,decode_window=8,decode_clusters=2,num_sink_tokens=4"
        )
        assert policy_signature(other) != checkpoint.policy_signature
        with pytest.raises(ValueError, match="signature"):
            restore_sequence(model, generation, other_checkpoint := checkpoint, other, OffloadManager())
        assert other_checkpoint is checkpoint

    def test_generation_config_mismatch_is_refused(self):
        """Restoring under a different decoding configuration is refused."""
        model, generation, checkpoint = self.make_checkpoint()
        other = dataclasses.replace(generation, budget=16)
        with pytest.raises(ValueError, match="generation configuration"):
            restore_sequence(
                model, other, checkpoint, build_policy(CLUSTERKV), OffloadManager()
            )

    def test_model_mismatch_is_refused(self):
        """Restoring onto a different model is refused."""
        _, generation, checkpoint = self.make_checkpoint()
        other_model = TransformerModel(get_model_config("serve-sim"))
        with pytest.raises(ValueError, match="model"):
            restore_sequence(
                other_model, generation, checkpoint, build_policy(CLUSTERKV), OffloadManager()
            )

    def test_checkpoint_carries_identity_defaults(self):
        """Engine-level identity fields default until the serving layer fills them."""
        _, _, checkpoint = self.make_checkpoint()
        assert isinstance(checkpoint, SequenceCheckpoint)
        assert checkpoint.version == SEQSTATE_VERSION
        assert checkpoint.request_id == ""
        assert checkpoint.slo_class == "interactive"
        assert checkpoint.tokens_generated == 1
        assert checkpoint.num_tokens == checkpoint.position
        summary = checkpoint.describe()
        assert summary["policy"] == "clusterkv"
        assert summary["tokens_generated"] == 1
