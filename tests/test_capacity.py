"""Tests for the tiered-memory capacity harness (:mod:`repro.capacity`).

Covers the tier substrate (budget parsing, the pinned off-by-one of
:class:`CapacityExceeded`), the host->SSD spill pager (bit-identical
round trips, real byte movement), memory-ledger conservation across
every KV lifecycle path (admission, prefix attaches, checkpoint
restores, cross-engine migration, retirement), and the sweep-to-failure
scenario harness (deterministic byte-identical reports, frontier
semantics).
"""

import dataclasses
import json

import numpy as np
import pytest

from repro.api import EngineSpec, Session
from repro.capacity import (
    CapacityPoint,
    CapacityReport,
    CapacityScenarioConfig,
    HostSpillManager,
    build_scenario,
    probe_point,
    run_scenario,
    scenario_names,
)
from repro.memory import (
    CapacityExceeded,
    MemoryLedgerDrift,
    MemoryTier,
    OffloadManager,
    TierBudgets,
    TierKind,
    TransferDirection,
    parse_size,
)
from repro.model.kv_cache import LayerKVCache

# The pinned reference budgets of the capacity benchmark: tight enough
# that a 192-token x 3-request burst fits only by spilling to SSD.
TIERS = "gpu=320KiB,host=448KiB,ssd=4MiB"


def capacity_spec(policy: str = "clusterkv", **overrides) -> EngineSpec:
    """The pinned capacity-mode engine used throughout these tests."""
    from repro.serving.bench import serving_policy_spec

    defaults = dict(
        model="serve-sim",
        policy=serving_policy_spec(policy, 8),
        budget=48,
        max_new_tokens=16,
        num_full_layers=1,
        num_sink_tokens=8,
        max_batch_size=3,
        max_prefills_per_step=3,
        tiers=TIERS,
    )
    defaults.update(overrides)
    return EngineSpec(**defaults)


def burst_prompts(num: int, length: int, vocab: int = 2048, seed: int = 0):
    """Seeded equal-length prompts, one per request."""
    rng = np.random.default_rng([seed, length, num])
    return [rng.integers(4, vocab, size=length).astype(np.int64) for _ in range(num)]


class TestTierBudgets:
    def test_parse_size_suffixes(self):
        assert parse_size("320KiB") == 320 * 1024
        assert parse_size("4MiB") == 4 * 1024**2
        assert parse_size("2GB") == 2 * 10**9
        assert parse_size("1024") == 1024
        assert parse_size("none") is None

    def test_parse_spec_with_cpu_alias(self):
        budgets = TierBudgets.parse("gpu=320KiB,cpu=448KiB,ssd=4MiB")
        assert budgets.gpu_bytes == 320 * 1024
        assert budgets.host_bytes == 448 * 1024
        assert budgets.ssd_bytes == 4 * 1024**2

    def test_round_trip(self):
        budgets = TierBudgets.parse(TIERS)
        assert TierBudgets.from_dict(budgets.to_dict()) == budgets

    def test_unknown_tier_rejected(self):
        with pytest.raises(ValueError, match="unknown tier"):
            TierBudgets.parse("vram=1GiB")

    def test_build_manager_bounds_tiers(self):
        manager = TierBudgets.parse(TIERS).build_manager()
        assert manager.gpu.capacity_bytes == 320 * 1024
        assert manager.cpu.capacity_bytes == 448 * 1024
        assert manager.ssd.capacity_bytes == 4 * 1024**2


class TestCapacityExceededOffByOne:
    """Pin the boundary: exactly-at-capacity fits, one byte more raises."""

    def test_allocate_boundary(self):
        tier = MemoryTier(TierKind.GPU, capacity_bytes=1024)
        tier.allocate("a", 1024)  # exactly full: fine
        tier.free("a")
        tier.allocate("b", 1023)
        tier.allocate("c", 1)  # lands exactly on capacity: fine
        with pytest.raises(CapacityExceeded):
            tier.allocate("d", 1)

    def test_resize_boundary(self):
        tier = MemoryTier(TierKind.CPU, capacity_bytes=1024)
        tier.allocate("a", 512)
        tier.resize("a", 1024)  # grows exactly to capacity: fine
        with pytest.raises(CapacityExceeded):
            tier.resize("a", 1025)

    def test_structured_fields(self):
        tier = MemoryTier(TierKind.SSD, capacity_bytes=100)
        tier.allocate("a", 60)
        with pytest.raises(CapacityExceeded) as excinfo:
            tier.allocate("b", 41)
        error = excinfo.value
        assert error.tier is TierKind.SSD
        assert error.name == "b"
        assert error.needed_bytes == 41
        assert error.used_bytes == 60
        assert error.capacity_bytes == 100


class TestSpanEviction:
    def test_evict_restore_bit_identity(self, rng):
        cache = LayerKVCache(0, n_kv_heads=2, head_dim=4)
        data = rng.normal(size=(2, 64, 4))
        cache.append(data, data * 2.0)
        before_k = cache.keys.copy()
        before_v = cache.values.copy()
        payload = cache.evict_span(16, 48)
        # The evicted span really is gone from the live buffer.
        assert np.all(cache.keys[:, 16:48, :] == 0.0)
        assert np.any(before_k[:, 16:48, :] != 0.0)
        cache.restore_span(16, 48, payload)
        np.testing.assert_array_equal(cache.keys, before_k)
        np.testing.assert_array_equal(cache.values, before_v)

    def test_restore_rejects_wrong_length(self, rng):
        cache = LayerKVCache(0, n_kv_heads=1, head_dim=4)
        data = rng.normal(size=(1, 8, 4))
        cache.append(data, data)
        payload = cache.evict_span(0, 4)
        with pytest.raises(ValueError):
            cache.restore_span(0, 8, payload)


class TestSpillRecallEndToEnd:
    def test_spill_happens_and_outputs_bit_identical(self):
        """Capacity-mode decoding spills to SSD yet decodes the exact
        same tokens as the unbounded engine."""
        prompts = burst_prompts(3, 192)
        bounded = Session(capacity_spec())
        unbounded = Session(dataclasses.replace(capacity_spec(), tiers=None))
        for session in (bounded, unbounded):
            for index, prompt in enumerate(prompts):
                session.submit(prompt, request_id=f"r{index}")
            session.run()
        stats = bounded.engine.spill.stats()
        assert stats["spill_events"] > 0
        assert stats["recall_events"] > 0
        ledger = bounded.engine.offload.ledger
        assert ledger.total_bytes(TransferDirection.HOST_TO_SSD) > 0
        assert ledger.total_bytes(TransferDirection.SSD_TO_HOST) > 0
        for rid in ("r0", "r1", "r2"):
            assert (
                bounded.results()[rid].output_ids == unbounded.results()[rid].output_ids
            )
            assert (
                bounded.results()[rid].output_logprobs
                == unbounded.results()[rid].output_logprobs
            )

    def test_ssd_exhaustion_raises(self):
        """With the SSD tier too small to absorb the spill, the host
        wall surfaces as a typed CapacityExceeded."""
        session = Session(capacity_spec(tiers="gpu=320KiB,host=448KiB,ssd=64KiB"))
        for index, prompt in enumerate(burst_prompts(3, 192)):
            session.submit(prompt, request_id=f"r{index}")
        with pytest.raises(CapacityExceeded) as excinfo:
            session.run()
        assert excinfo.value.tier in (TierKind.CPU, TierKind.SSD)

    def test_full_policy_hits_gpu_wall(self):
        """The dense baseline cannot even admit the pinned burst."""
        session = Session(capacity_spec("full"))
        for index, prompt in enumerate(burst_prompts(3, 192)):
            session.submit(prompt, request_id=f"r{index}")
        with pytest.raises(CapacityExceeded) as excinfo:
            session.run()
        assert excinfo.value.tier is TierKind.GPU


class TestMemoryConservation:
    """Satellite: every KV alloc/release flow reconciles against the ledger."""

    def test_invariants_hold_every_step_at_the_wall(self):
        session = Session(capacity_spec())
        for index, prompt in enumerate(burst_prompts(3, 192)):
            session.submit(prompt, request_id=f"r{index}")
        while session.engine.queue or session.engine.num_active:
            session.step()
            used = session.engine.check_memory_invariants()
            assert used["gpu"] <= 320 * 1024
            assert used["cpu"] <= 448 * 1024
            assert used["ssd"] <= 4 * 1024**2
        # After retirement everything is released.
        assert session.engine.check_memory_invariants() == {
            "gpu": 0,
            "cpu": 0,
            "ssd": 0,
        }

    def test_orphan_registration_is_caught(self):
        session = Session(capacity_spec())
        session.engine.offload.register("ghost", 128, TierKind.GPU)
        with pytest.raises(MemoryLedgerDrift, match="ghost"):
            session.engine.check_memory_invariants()

    def test_size_drift_is_caught(self):
        session = Session(capacity_spec())
        session.submit(burst_prompts(1, 64)[0], request_id="r0")
        session.step()
        store = session.engine._active[0].sequence.kv_store
        name = store._buffer_name(0)
        recorded = session.engine.offload.cpu.allocation_bytes(name)
        session.engine.offload.resize(name, recorded + 64)
        with pytest.raises(MemoryLedgerDrift):
            session.engine.check_memory_invariants()

    def test_invariants_across_prefix_attach(self):
        spec = capacity_spec(prefix_cache_tokens=512)
        session = Session(spec)
        prompt = burst_prompts(1, 96)[0]
        session.submit(np.concatenate([prompt, prompt[:8]]), request_id="r0")
        session.run()
        # Second request shares the 96-token prefix: it attaches cached KV.
        session.submit(np.concatenate([prompt, prompt[8:16]]), request_id="r1")
        while session.engine.queue or session.engine.num_active:
            session.step()
            session.engine.check_memory_invariants()
        assert session.results()["r1"].cached_prefix_tokens > 0

    def test_invariants_across_checkpoint_restore(self):
        session = Session(capacity_spec())
        session.submit(burst_prompts(1, 96)[0], request_id="r0")
        for _ in range(4):
            session.step()
        checkpoint = session.engine.checkpoint_request("r0", keep=False)
        session.engine.check_memory_invariants()
        session.engine.restore_request(checkpoint)
        session.engine.check_memory_invariants()
        session.run()
        assert session.engine.check_memory_invariants() == {
            "gpu": 0,
            "cpu": 0,
            "ssd": 0,
        }

    def test_invariants_across_migration(self):
        """A checkpoint restored on a *different* engine registers its KV
        (and staging reservation) on the destination's ledger."""
        source = Session(capacity_spec())
        source.submit(burst_prompts(1, 96)[0], request_id="r0")
        for _ in range(4):
            source.step()
        checkpoint = source.engine.checkpoint_request("r0", keep=False)
        assert source.engine.check_memory_invariants() == {
            "gpu": 0,
            "cpu": 0,
            "ssd": 0,
        }
        destination = Session(capacity_spec())
        destination.engine.restore_request(checkpoint)
        used = destination.engine.check_memory_invariants()
        assert used["cpu"] > 0  # the migrated KV lives on the host tier
        while destination.engine.queue or destination.engine.num_active:
            destination.step()
            destination.engine.check_memory_invariants()


class TestScenarios:
    def test_registry(self):
        assert scenario_names() == [
            "capacity_frontier",
            "latency_curve",
            "oom_finder",
        ]
        with pytest.raises(ValueError, match="unknown capacity scenario"):
            build_scenario("nope")

    def test_probe_point_feasible_and_infeasible(self):
        config = CapacityScenarioConfig()
        ok = probe_point(config, config.policies[0], 192, 3)
        assert ok.feasible and ok.failed_tier is None
        assert ok.transfers["h2s"] > 0 and ok.transfers["s2h"] > 0
        assert ok.duration_s > 0.0
        bad = probe_point(config, config.policies[1], 192, 3)
        assert not bad.feasible
        assert bad.failed_tier == "gpu"
        assert bad.duration_s == 0.0

    def test_oom_finder_matches_frontier_grid(self):
        """Bisection and exhaustive grid agree on the frontier."""
        config = CapacityScenarioConfig(concurrencies=(3,))
        fast = run_scenario("oom_finder", config)
        slow = run_scenario("capacity_frontier", config)
        assert fast.frontier == slow.frontier
        assert len(fast.points) <= len(slow.points)

    def test_frontier_monotone_in_concurrency(self):
        report = run_scenario("capacity_frontier")
        for policy in report.policies:
            edge = report.frontier[policy]
            contexts = [edge[str(c)] for c in (1, 2, 3)]
            assert contexts == sorted(contexts, reverse=True)

    def test_report_byte_reproducible_and_round_trips(self):
        config = CapacityScenarioConfig(
            concurrencies=(3,), context_min=192, context_max=192
        )
        first = run_scenario("capacity_frontier", config)
        second = run_scenario("capacity_frontier", config)
        assert first.to_json() == second.to_json()
        assert CapacityReport.from_json(first.to_json()).to_json() == first.to_json()
        payload = json.loads(first.to_json())
        assert sorted(payload) == list(payload)  # canonical key order

    def test_latency_curve_stops_at_collapse(self):
        config = CapacityScenarioConfig(rates=(0.25, 0.5), concurrencies=(3,))
        report = run_scenario("latency_curve", config)
        for policy in report.policies:
            assert "max_rate" in report.frontier[policy]
        by_policy: dict[str, list[CapacityPoint]] = {}
        for point in report.points:
            by_policy.setdefault(point.policy, []).append(point)
        for policy, points in by_policy.items():
            # Only the last probed rate of a policy may be a failure.
            for point in points[:-1]:
                assert point.feasible
                assert point.slo_attainment >= config.slo_floor


class TestCapacityCLI:
    def test_capacity_bench_command(self, capsys):
        from repro.cli import main

        code = main(
            [
                "capacity-bench",
                "--scenario",
                "oom_finder",
                "--sweep",
                "64:192:64",
                "--concurrency",
                "3",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "scenario=oom_finder" in out
        assert "frontier clusterkv" in out

    def test_capacity_bench_json(self, capsys):
        from repro.cli import main

        code = main(
            [
                "capacity-bench",
                "--sweep",
                "192:192:64",
                "--concurrency",
                "3",
                "--json",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        payload = json.loads(out)
        assert payload["scenario"] == "capacity_frontier"

    def test_malformed_sweep_rejected(self):
        from repro.cli import main

        with pytest.raises(ValueError, match="malformed --sweep"):
            main(["capacity-bench", "--sweep", "sideways"])

    def test_listing_mentions_capacity(self, capsys):
        from repro.cli import main

        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "capacity-bench" in out
        assert "capacity_frontier" in out


class TestSpillManagerUnit:
    def test_make_room_raises_when_everything_spilled(self):
        manager = OffloadManager()
        manager.cpu.capacity_bytes = 64
        spill = HostSpillManager(manager, page_tokens=4)
        with pytest.raises(CapacityExceeded) as excinfo:
            spill.make_room(128)
        assert excinfo.value.tier is TierKind.CPU

    def test_make_room_noop_when_host_has_space(self):
        manager = OffloadManager()
        spill = HostSpillManager(manager, page_tokens=4)
        spill.make_room(1024)  # plenty of room: nothing to do
        assert spill.stats()["spill_events"] == 0
