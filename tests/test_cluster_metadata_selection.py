"""Unit tests for cluster metadata, indexing and cluster-granularity selection."""

import numpy as np
import pytest

from repro.core.clustering import ClusteringResult, kmeans_cluster
from repro.core.metadata import ClusterMetadata
from repro.core.selection import score_centroids, select_clusters


def _make_result(labels, centroids):
    return ClusteringResult(
        labels=np.asarray(labels, dtype=np.int64),
        centroids=np.asarray(centroids, dtype=np.float64),
        n_iters=1,
        converged=True,
    )


class TestClusterMetadata:
    def test_paper_figure8_example(self):
        """Reproduce the metadata of the paper's Fig. 8 walk-through.

        Keys k0..k5 with k0,k5 -> cluster 2, k1 -> cluster 0, k2,k3,k4 ->
        cluster 1; sizes are (1, 3, 2) and the sorted indices group tokens by
        cluster label.
        """
        labels = [2, 0, 1, 1, 1, 2]
        centroids = np.eye(3, 4)
        meta = ClusterMetadata(head_dim=4)
        meta.append_clustering(_make_result(labels, centroids), token_offset=0)
        np.testing.assert_array_equal(meta.cluster_sizes, [1, 3, 2])
        np.testing.assert_array_equal(meta.prefix_sum, [0, 1, 4])
        np.testing.assert_array_equal(meta.sorted_indices, [1, 2, 3, 4, 0, 5])
        np.testing.assert_array_equal(meta.cluster_tokens(1), [2, 3, 4])
        np.testing.assert_array_equal(meta.cluster_tokens(2), [0, 5])

    def test_token_offset_applied(self):
        meta = ClusterMetadata(head_dim=2)
        meta.append_clustering(_make_result([0, 1, 0], np.zeros((2, 2))), token_offset=10)
        np.testing.assert_array_equal(meta.cluster_tokens(0), [10, 12])
        np.testing.assert_array_equal(meta.cluster_tokens(1), [11])

    def test_append_assigns_fresh_labels(self):
        meta = ClusterMetadata(head_dim=2)
        first = meta.append_clustering(_make_result([0, 1], np.zeros((2, 2))), 0)
        second = meta.append_clustering(_make_result([0, 0, 1], np.ones((2, 2))), 2)
        np.testing.assert_array_equal(first, [0, 1])
        np.testing.assert_array_equal(second, [2, 3])
        assert meta.num_clusters == 4
        assert meta.num_tokens == 5
        np.testing.assert_array_equal(meta.cluster_tokens(2), [2, 3])

    def test_tokens_of_clusters_concatenates(self):
        meta = ClusterMetadata(head_dim=2)
        meta.append_clustering(_make_result([0, 1, 1, 0], np.zeros((2, 2))), 0)
        tokens = meta.tokens_of_clusters(np.array([1, 0]))
        np.testing.assert_array_equal(tokens, [1, 2, 0, 3])

    def test_invalid_label_raises(self):
        meta = ClusterMetadata(head_dim=2)
        meta.append_clustering(_make_result([0], np.zeros((1, 2))), 0)
        with pytest.raises(IndexError):
            meta.cluster_tokens(3)

    def test_metadata_bytes_positive(self):
        meta = ClusterMetadata(head_dim=4)
        meta.append_clustering(_make_result([0, 0, 1], np.zeros((2, 4))), 0)
        assert meta.metadata_nbytes() > 0

    def test_dimension_mismatch_raises(self):
        meta = ClusterMetadata(head_dim=4)
        with pytest.raises(ValueError):
            meta.append_clustering(_make_result([0], np.zeros((1, 3))), 0)


class TestScoreCentroids:
    def test_inner_product_scores(self, rng):
        query = rng.normal(size=6)
        centroids = rng.normal(size=(4, 6))
        np.testing.assert_allclose(
            score_centroids(query, centroids, "ip"), centroids @ query
        )

    def test_cosine_bounded(self, rng):
        query = rng.normal(size=6)
        centroids = rng.normal(size=(4, 6))
        scores = score_centroids(query, centroids, "cosine")
        assert np.all(np.abs(scores) <= 1.0 + 1e-9)

    def test_empty_centroids(self):
        assert score_centroids(np.ones(3), np.zeros((0, 3))).shape == (0,)


class TestSelectClusters:
    def _metadata(self):
        """Three clusters whose centroids are axis-aligned unit vectors."""
        labels = [0, 0, 1, 1, 1, 2, 2, 2, 2]
        centroids = np.eye(3, 4)
        meta = ClusterMetadata(head_dim=4)
        meta.append_clustering(_make_result(labels, centroids), token_offset=0)
        return meta

    def test_selects_closest_cluster_first(self):
        meta = self._metadata()
        query = np.array([10.0, 1.0, 0.0, 0.0])
        outcome = select_clusters(query, meta, budget=2)
        assert outcome.selected_labels[0] == 0
        np.testing.assert_array_equal(outcome.token_indices, [0, 1])
        assert outcome.num_trimmed == 0

    def test_budget_spans_multiple_clusters(self):
        meta = self._metadata()
        query = np.array([10.0, 5.0, 1.0, 0.0])
        outcome = select_clusters(query, meta, budget=5)
        np.testing.assert_array_equal(outcome.selected_labels, [0, 1])
        np.testing.assert_array_equal(outcome.token_indices, [0, 1, 2, 3, 4])

    def test_trimming_respects_budget(self):
        meta = self._metadata()
        query = np.array([10.0, 5.0, 1.0, 0.0])
        outcome = select_clusters(query, meta, budget=4)
        assert outcome.token_indices.shape[0] == 4
        assert outcome.trimmed_label == 1
        assert outcome.num_trimmed == 1

    def test_budget_larger_than_everything(self):
        meta = self._metadata()
        query = np.array([0.0, 0.0, 1.0, 0.0])
        outcome = select_clusters(query, meta, budget=100)
        assert outcome.token_indices.shape[0] == meta.num_tokens
        assert outcome.num_trimmed == 0

    def test_zero_budget(self):
        meta = self._metadata()
        outcome = select_clusters(np.ones(4), meta, budget=0)
        assert outcome.token_indices.shape[0] == 0
        assert outcome.selected_labels.shape[0] == 0

    def test_negative_budget_raises(self):
        meta = self._metadata()
        with pytest.raises(ValueError):
            select_clusters(np.ones(4), meta, budget=-1)

    def test_centroid_trim_keeps_closest_members(self, rng):
        """With the 'centroid' policy the kept tokens are closest to the centroid."""
        keys = np.concatenate(
            [
                np.tile(np.array([1.0, 0.0]), (4, 1)) + 0.01 * rng.normal(size=(4, 2)),
                np.tile(np.array([0.0, 1.0]), (4, 1)) + 0.01 * rng.normal(size=(4, 2)),
            ]
        )
        clustering = kmeans_cluster(keys, 2, seed=0)
        meta = ClusterMetadata(head_dim=2)
        meta.append_clustering(clustering, 0)
        query = np.array([1.0, 0.9])
        outcome = select_clusters(
            query, meta, budget=6, trim_policy="centroid", keys=keys
        )
        assert outcome.token_indices.shape[0] == 6
        assert outcome.num_trimmed == 2

    def test_selection_flops_accounted(self):
        meta = self._metadata()
        outcome = select_clusters(np.ones(4), meta, budget=2)
        assert outcome.score_flops == 2 * meta.num_clusters * meta.head_dim
