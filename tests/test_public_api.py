"""Tier-1 hook of the public-API surface check (``scripts/check_api.py``).

The supported API is whatever ``scripts/api_surface.txt`` records: every
``__all__`` export of the public modules with its call signature.  This
test fails whenever the live surface drifts from the snapshot — a removed
export, a renamed parameter, a changed default — so accidental breakage is
caught in CI while intentional changes are one
``python scripts/check_api.py --update`` away.
"""

import sys
from pathlib import Path

SCRIPTS_DIR = Path(__file__).resolve().parent.parent / "scripts"
sys.path.insert(0, str(SCRIPTS_DIR))

from check_api import (  # noqa: E402
    SNAPSHOT_PATH,
    api_surface,
    load_snapshot,
    surface_diff,
)


def test_snapshot_exists_and_is_nonempty():
    """The committed snapshot is present and substantial."""
    assert SNAPSHOT_PATH.exists(), (
        f"missing {SNAPSHOT_PATH}; create it with: python scripts/check_api.py --update"
    )
    assert len(load_snapshot()) > 100


def test_public_api_surface_matches_snapshot():
    """Live exports and signatures equal the committed snapshot."""
    missing, unexpected = surface_diff()
    message = []
    if missing:
        message.append("removed/changed exports:")
        message.extend(f"  - {line}" for line in missing)
    if unexpected:
        message.append("added/changed exports:")
        message.extend(f"  + {line}" for line in unexpected)
    assert not missing and not unexpected, (
        "public API surface drifted from scripts/api_surface.txt\n"
        + "\n".join(message)
        + "\nintentional? run: python scripts/check_api.py --update"
    )


def test_core_entry_points_are_snapshotted():
    """The redesigned entry points are part of the supported surface."""
    surface = "\n".join(api_surface())
    for needle in (
        "repro.Session",
        "repro.EngineSpec",
        "repro.PolicySpec",
        "repro.api.Session",
        "repro.policies.build_policy",
        "repro.policies.register_policy",
    ):
        assert needle in surface
