"""Unit tests for the model zoo, reference architectures and generation config."""

import pytest

from repro.model import (
    GenerationConfig,
    TransformerModel,
    get_model_config,
    get_reference_architecture,
    list_model_configs,
    list_reference_architectures,
)


class TestModelZoo:
    def test_all_simulation_configs_valid(self):
        for name in list_model_configs():
            config = get_model_config(name)
            assert config.d_model % config.n_heads == 0
            assert config.n_heads % config.n_kv_heads == 0
            assert config.name == name

    def test_expected_families_present(self):
        names = list_model_configs()
        assert {"tiny", "llama-sim", "glm-sim", "opt-sim"}.issubset(set(names))

    def test_opt_family_architecture(self):
        opt = get_model_config("opt-sim")
        assert opt.norm_type == "layernorm"
        assert opt.activation == "gelu"
        assert not opt.use_rope
        assert opt.n_kv_heads == opt.n_heads  # MHA

    def test_llama_and_glm_use_gqa(self):
        for name in ("llama-sim", "glm-sim"):
            config = get_model_config(name)
            assert config.n_kv_heads < config.n_heads
            assert config.use_rope

    def test_all_sim_models_instantiate(self):
        for name in list_model_configs():
            model = TransformerModel(get_model_config(name))
            assert model.num_parameters > 0

    def test_unknown_names_raise(self):
        with pytest.raises(KeyError):
            get_model_config("gpt-7")
        with pytest.raises(KeyError):
            get_reference_architecture("gpt-7")


class TestReferenceArchitectures:
    def test_expected_architectures_present(self):
        assert set(list_reference_architectures()) == {
            "llama-3.1-8b",
            "glm4-9b",
            "opt-6.7b",
        }

    def test_llama_parameter_count_plausible(self):
        llama = get_reference_architecture("llama-3.1-8b")
        params = llama.num_parameters
        assert 6e9 < params < 10e9  # ~8B parameters

    def test_opt_parameter_count_plausible(self):
        # The estimate assumes a three-projection FFN for every family, so it
        # over-counts OPT's two-projection FFN by ~2 B parameters; the check
        # only guards against order-of-magnitude mistakes.
        opt = get_reference_architecture("opt-6.7b")
        assert 5e9 < opt.num_parameters < 10e9

    def test_kv_bytes_per_token_llama(self):
        llama = get_reference_architecture("llama-3.1-8b")
        # 2 (K+V) * 32 layers * 8 kv heads * 128 dims * 2 bytes = 128 KiB.
        assert llama.kv_bytes_per_token() == 131072

    def test_head_dim(self):
        assert get_reference_architecture("glm4-9b").head_dim == 128


class TestGenerationConfig:
    def test_defaults_valid(self):
        config = GenerationConfig()
        assert config.budget is None
        assert config.num_full_layers == 2
        assert config.num_sink_tokens == 16

    def test_invalid_values(self):
        with pytest.raises(ValueError):
            GenerationConfig(budget=0)
        with pytest.raises(ValueError):
            GenerationConfig(max_new_tokens=0)
        with pytest.raises(ValueError):
            GenerationConfig(num_sink_tokens=-1)
        with pytest.raises(ValueError):
            GenerationConfig(num_full_layers=-1)
