"""End-to-end integration tests of the accuracy pipeline at a small scale.

These tests exercise the full path — workload generation, inference engine,
KV selection, metric scoring — and assert the *qualitative* results the
paper reports (who wins, and that compression at a generous budget matches
full attention), with loose thresholds so that the suite stays robust to the
exact synthetic configuration.
"""

import numpy as np
import pytest

from repro.experiments import (
    ContextScale,
    EvaluationContext,
    build_clusterkv_config,
    build_selector,
    evaluate_sample,
)
from repro.core import ClusterKVSelector
from repro.metrics import mean_recall
from repro.workloads import LONGBENCH_TASKS, LongBenchTaskGenerator

SCALE = ContextScale(64)  # very small contexts: fast CI-scale integration
CONTEXT_LENGTH = 512
NUM_SAMPLES = 3


@pytest.fixture(scope="module")
def eval_context():
    return EvaluationContext.create("glm-sim", SCALE, seed=0)


@pytest.fixture(scope="module")
def qa_samples(eval_context):
    generator = LongBenchTaskGenerator(
        eval_context.tokenizer,
        LONGBENCH_TASKS["multifieldqa"],
        topic_model=eval_context.topic_model,
        seed=0,
    )
    return generator.generate_dataset(CONTEXT_LENGTH, NUM_SAMPLES)


def _mean_score(eval_context, samples, method, budget):
    scores = []
    for sample in samples:
        selector = build_selector(method, SCALE)
        score, _ = evaluate_sample(
            eval_context, selector, sample, budget, num_full_layers=1
        )
        scores.append(score)
    return float(np.mean(scores))


@pytest.mark.integration
class TestAccuracyPipeline:
    def test_full_kv_solves_retrieval_task(self, eval_context, qa_samples):
        score = _mean_score(eval_context, qa_samples, "full", None)
        assert score > 0.9

    def test_generous_budget_matches_full(self, eval_context, qa_samples):
        """At ~40% of the context the compressed methods match full KV."""
        budget = int(0.4 * CONTEXT_LENGTH)
        full = _mean_score(eval_context, qa_samples, "full", None)
        clusterkv = _mean_score(eval_context, qa_samples, "clusterkv", budget)
        assert clusterkv >= full - 0.15

    def test_clusterkv_beats_quest_at_tight_budget(self, eval_context, qa_samples):
        budget = max(16, CONTEXT_LENGTH // 16)
        clusterkv = _mean_score(eval_context, qa_samples, "clusterkv", budget)
        quest = _mean_score(eval_context, qa_samples, "quest", budget)
        assert clusterkv >= quest

    def test_oracle_upper_bounds_methods(self, eval_context, qa_samples):
        budget = max(24, CONTEXT_LENGTH // 12)
        oracle = _mean_score(eval_context, qa_samples, "oracle", budget)
        quest = _mean_score(eval_context, qa_samples, "quest", budget)
        assert oracle >= quest - 1e-9


@pytest.mark.integration
class TestRecallPipeline:
    def test_recall_ordering_and_monotonicity(self, eval_context, qa_samples):
        """ClusterKV recalls more important tokens than Quest, and recall
        grows with the budget (paper Fig. 11a)."""
        sample = qa_samples[0]
        sample.answer_length = 8

        def recall(method, budget):
            selector = build_selector(method, SCALE)
            _, result = evaluate_sample(
                eval_context,
                selector,
                sample,
                budget,
                num_full_layers=1,
                record_true_scores=True,
            )
            return mean_recall(result.recall_records)

        tight = max(16, CONTEXT_LENGTH // 16)
        generous = CONTEXT_LENGTH // 4
        assert recall("clusterkv", generous) > recall("clusterkv", tight) - 0.05
        assert recall("clusterkv", generous) >= recall("quest", generous) - 0.05

    def test_cache_hit_rate_increases_with_history(self, eval_context, qa_samples):
        """R = 2 caches at least as well as R = 1 (paper Sec. V-C)."""
        sample = qa_samples[0]
        sample.answer_length = 12
        budget = CONTEXT_LENGTH // 8
        hit_rates = {}
        for history in (1, 2):
            selector = ClusterKVSelector(
                build_clusterkv_config(SCALE, cache_history=history)
            )
            _, result = evaluate_sample(
                eval_context, selector, sample, budget, num_full_layers=1
            )
            hit_rates[history] = result.cache_hit_rate
        assert hit_rates[2] >= hit_rates[1] - 1e-9
