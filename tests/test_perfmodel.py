"""Unit tests for the analytical performance model."""

import pytest

from repro.model import get_reference_architecture
from repro.perfmodel import (
    ADA_6000,
    LatencyModel,
    MethodLatencyParams,
    OpCost,
    attention_decode_cost,
    attention_prefill_cost,
    kv_bytes,
    linear_layers_cost,
    roofline_time,
)


@pytest.fixture(scope="module")
def llama():
    return get_reference_architecture("llama-3.1-8b")


@pytest.fixture(scope="module")
def model(llama):
    return LatencyModel(llama, ADA_6000)


class TestCosts:
    def test_opcost_addition_and_scaling(self):
        a = OpCost(flops=1.0, device_bytes=2.0, pcie_bytes=3.0)
        b = OpCost(flops=10.0, device_bytes=20.0, pcie_bytes=30.0, fixed_seconds=1.0)
        total = a + b
        assert total.flops == 11.0
        assert total.pcie_bytes == 33.0
        scaled = a.scaled(4)
        assert scaled.device_bytes == 8.0

    def test_roofline_compute_vs_memory_bound(self):
        compute_heavy = OpCost(flops=1e15, device_bytes=1.0)
        memory_heavy = OpCost(flops=1.0, device_bytes=1e12)
        t_compute = roofline_time(compute_heavy, ADA_6000)
        t_memory = roofline_time(memory_heavy, ADA_6000)
        assert t_compute == pytest.approx(
            1e15 / (ADA_6000.compute_flops * ADA_6000.kernel_efficiency)
        )
        assert t_memory == pytest.approx(
            1e12 / (ADA_6000.memory_bandwidth * ADA_6000.kernel_efficiency)
        )

    def test_pcie_overlap(self):
        cost = OpCost(device_bytes=1e9, pcie_bytes=1e9)
        serial = roofline_time(cost, ADA_6000, overlap_pcie=False)
        overlapped = roofline_time(cost, ADA_6000, overlap_pcie=True)
        assert overlapped < serial

    def test_kv_bytes_scaling(self, llama):
        single = kv_bytes(llama, 1)
        assert single == 2 * llama.n_layers * llama.n_kv_heads * llama.head_dim * 2
        assert kv_bytes(llama, 100) == 100 * single
        assert kv_bytes(llama, 10, num_layers=2) < kv_bytes(llama, 10)

    def test_linear_cost_weight_bytes_independent_of_tokens(self, llama):
        one = linear_layers_cost(llama, 1)
        many = linear_layers_cost(llama, 128)
        assert many.flops == pytest.approx(128 * one.flops, rel=1e-6)
        # Weight streaming dominates the bytes and is token-independent.
        assert many.device_bytes < 2 * one.device_bytes

    def test_attention_costs_scale_with_length(self, llama):
        assert (
            attention_prefill_cost(llama, 2048).flops
            == attention_prefill_cost(llama, 1024).flops * 4
        )
        assert (
            attention_decode_cost(llama, 2048).device_bytes
            == attention_decode_cost(llama, 1024).device_bytes * 2
        )

    def test_read_amplification(self, llama):
        base = attention_decode_cost(llama, 1000, read_amplification=1.0)
        amplified = attention_decode_cost(llama, 1000, read_amplification=4.0)
        assert amplified.device_bytes == pytest.approx(4 * base.device_bytes)


class TestLatencyModel:
    def test_decode_step_full_grows_with_context(self, model):
        short = model.decode_step("full", 8192, None)
        long = model.decode_step("full", 32768, None)
        assert long["total"] > short["total"]

    def test_clusterkv_step_nearly_flat_in_context(self, model):
        short = model.decode_step("clusterkv", 8192, 1024)
        long = model.decode_step("clusterkv", 32768, 1024)
        assert long["total"] < 1.2 * short["total"]

    def test_clusterkv_faster_than_full_at_long_context(self, model):
        full = model.decode_step("full", 32768, None)
        compressed = model.decode_step("clusterkv", 32768, 1024)
        assert compressed["total"] < full["total"]

    def test_infinigen_selection_scales_with_context(self, model):
        short = model.decode_step("infinigen", 8192, 256)
        long = model.decode_step("infinigen", 32768, 256)
        assert long["selection"] > short["selection"]

    def test_quest_has_no_pcie_transfer(self, model):
        step = model.decode_step("quest", 32768, 1024)
        assert step["transfer"] == 0.0

    def test_cache_disabled_costs_more(self, model):
        cached = model.decode_step("clusterkv", 32768, 1024, cache_hit_rate=0.63)
        uncached = model.decode_step(
            "clusterkv", 32768, 1024, cache_hit_rate=0.0, cluster_cache_enabled=False
        )
        assert uncached["total"] > 1.5 * cached["total"]

    def test_generation_latency_report_consistency(self, model):
        report = model.generation_latency("clusterkv", 16384, 512, budget=1024)
        assert report.total_seconds == pytest.approx(
            report.prefill_seconds + report.prefill_build_seconds + report.decode_seconds
        )
        assert report.decode_throughput == pytest.approx(512 / report.decode_seconds)

    def test_unknown_method_rejected(self, model):
        with pytest.raises(ValueError):
            model.decode_step("h2o", 1024, 64)
        with pytest.raises(ValueError):
            model.generation_latency("h2o", 1024, 64)

    def test_invalid_lengths_rejected(self, model):
        with pytest.raises(ValueError):
            model.generation_latency("full", 0, 64)


class TestPaperShapes:
    """Coarse checks that the modelled numbers match the paper's claims."""

    def test_fig12_speedup_band(self, model):
        full = model.generation_latency("full", 32768, 1024)
        ours = model.generation_latency("clusterkv", 32768, 1024, budget=1024)
        speedup = ours.speedup_over(full)
        assert 1.4 <= speedup <= 2.5  # paper reports ~2x

    def test_fig12_throughput_band(self, model):
        full = model.generation_latency("full", 32768, 1024)
        ours = model.generation_latency("clusterkv", 32768, 1024, budget=1024)
        ratio = ours.decode_throughput / full.decode_throughput
        assert 1.7 <= ratio <= 3.0  # paper reports up to 2.5x

    def test_prefill_clustering_overhead_small(self, model):
        report = model.generation_latency("clusterkv", 32768, 256, budget=1024)
        fraction = report.prefill_build_seconds / (
            report.prefill_seconds + report.prefill_build_seconds
        )
        assert fraction < 0.10  # paper: 6-8% of prefill

    def test_fig13b_quest_parity(self, model):
        for prompt in (8192, 32768):
            quest = model.generation_latency("quest", prompt, 512, budget=1024)
            ours = model.generation_latency("clusterkv", prompt, 512, budget=1024)
            deviation = abs(ours.total_seconds - quest.total_seconds) / quest.total_seconds
            assert deviation < 0.08  # paper: within ~5%

    def test_fig13a_infinigen_speedup(self):
        opt = get_reference_architecture("opt-6.7b")
        model = LatencyModel(opt, ADA_6000)
        infinigen = model.generation_latency("infinigen", 2048, 256, budget=256)
        ours = model.generation_latency("clusterkv", 2048, 256, budget=256)
        speedup = ours.speedup_over(infinigen)
        assert 1.8 <= speedup <= 3.0  # paper: ~2.3x average

    def test_custom_params_change_results(self, llama):
        default = LatencyModel(llama, ADA_6000)
        tweaked = LatencyModel(
            llama, ADA_6000, MethodLatencyParams(cache_hit_rate=0.0)
        )
        assert (
            tweaked.decode_step("clusterkv", 32768, 1024)["transfer"]
            > default.decode_step("clusterkv", 32768, 1024)["transfer"]
        )


class TestStepCostModel:
    """The serving step-cost adapter charging engine steps."""

    class _Entry:
        def __init__(self, policy_name, context_length, budget, cache_hit_rate=None):
            self.policy_name = policy_name
            self.context_length = context_length
            self.budget = budget
            self.cache_hit_rate = cache_hit_rate

    @pytest.fixture(scope="class")
    def cost(self):
        from repro.perfmodel import StepCostModel

        return StepCostModel(context_scale=64)

    def test_resolves_arch_by_name_and_validates_scale(self):
        from repro.perfmodel import StepCostModel

        model = StepCostModel("glm4-9b")
        assert model.arch.name == "glm4-9b"
        assert model.describe()["context_scale"] == 1
        with pytest.raises(ValueError, match="context_scale"):
            StepCostModel(context_scale=0)
        with pytest.raises(KeyError):
            StepCostModel("not-a-model")

    def test_dense_cost_is_batched_not_per_request(self, cost):
        one = cost.dense_seconds(1)
        eight = cost.dense_seconds(8)
        # Weight streaming is shared: 8 requests cost far less than 8x.
        assert one < eight < 4 * one
        assert cost.dense_seconds(0) == 0.0

    def test_full_attention_grows_with_context(self, cost):
        small = cost.attend_seconds("full", 64, None)
        large = cost.attend_seconds("full", 256, None)
        assert large > small * 3

    def test_clusterkv_cheaper_than_full_at_long_context(self, cost):
        full = cost.attend_seconds("full", 256, None)
        clusterkv = cost.attend_seconds("clusterkv", 256, 32, cache_hit_rate=0.6)
        assert clusterkv < full

    def test_higher_hit_rate_lowers_transfer_cost(self, cost):
        cold = cost.attend_seconds("clusterkv", 256, 32, cache_hit_rate=0.0)
        warm = cost.attend_seconds("clusterkv", 256, 32, cache_hit_rate=0.9)
        assert warm < cold

    def test_generic_policy_priced_as_sparse_attention(self, cost):
        generic = cost.attend_seconds("streaming_llm", 256, 32)
        full = cost.attend_seconds("full", 256, None)
        clusterkv = cost.attend_seconds("clusterkv", 256, 32, cache_hit_rate=0.0)
        # No selection or transfer overhead: cheaper than ClusterKV's cold
        # cache, and far cheaper than full attention.
        assert generic < clusterkv
        assert generic < full
        # A budget at or above the context degenerates to full attention.
        assert cost.attend_seconds("streaming_llm", 64, 64) == cost.attend_seconds(
            "full", 64, None
        )

    def test_prefill_offload_methods_cost_more(self, cost):
        full = cost.prefill_seconds("full", 64)
        clusterkv = cost.prefill_seconds("clusterkv", 64)
        assert clusterkv > full  # clustering build on top of the same prefill

    def test_prefill_without_budget_prices_as_plain_full(self, cost):
        # A clusterkv-named policy serving with no budget never compresses:
        # its prefill must not be charged offload or clustering build work.
        assert cost.prefill_seconds("clusterkv", 64, None) == cost.prefill_seconds(
            "full", 64, None
        )
        assert cost.prefill_seconds("clusterkv", 64, 32) > cost.prefill_seconds(
            "clusterkv", 64, None
        )

    def test_step_seconds_composes_prefills_and_decodes(self, cost):
        prefill = self._Entry("full", 64, None)
        decodes = [self._Entry("full", 128, None) for _ in range(4)]
        combined = cost.step_seconds([prefill], decodes)
        assert combined == pytest.approx(
            cost.prefill_seconds("full", 64)
            + cost.dense_seconds(4)
            + 4 * cost.attend_seconds("full", 128, None)
        )
        assert cost.step_seconds([], []) == 0.0

    def test_context_scale_amplifies_costs(self):
        from repro.perfmodel import StepCostModel

        unscaled = StepCostModel(context_scale=1)
        scaled = StepCostModel(context_scale=64)
        assert scaled.attend_seconds("full", 128, None) > unscaled.attend_seconds(
            "full", 128, None
        )
        assert scaled.prefill_seconds("full", 128) > unscaled.prefill_seconds("full", 128)
