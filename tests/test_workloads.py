"""Unit tests for the synthetic workload generators."""

import numpy as np
import pytest

from repro.model import SyntheticTokenizer
from repro.workloads import (
    LONGBENCH_TASKS,
    DocumentBuilder,
    LongBenchTaskGenerator,
    LongBenchTaskSpec,
    PG19Config,
    PG19Generator,
    TopicModel,
)


@pytest.fixture(scope="module")
def tokenizer():
    return SyntheticTokenizer(512)


@pytest.fixture(scope="module")
def topic_model(tokenizer):
    return TopicModel(tokenizer, num_topics=8, seed=0)


class TestTopicModel:
    def test_topics_partition_background(self, topic_model, tokenizer):
        all_topic_tokens = np.concatenate(topic_model.topics)
        reserved = set(topic_model.reserved_tokens.tolist())
        background = set(all_topic_tokens.tolist())
        assert not (reserved & background)
        assert min(background | reserved) >= tokenizer.num_special_tokens

    def test_background_only_uses_topic_tokens(self, topic_model, rng):
        segment = topic_model.sample_background(200, rng)
        allowed = set(np.concatenate(topic_model.topics).tolist())
        assert set(segment.tolist()).issubset(allowed)
        assert segment.shape == (200,)

    def test_reserved_sampling_distinct_and_excludable(self, topic_model, rng):
        first = topic_model.sample_reserved(10, rng)
        assert len(set(first.tolist())) == 10
        second = topic_model.sample_reserved(10, rng, exclude=set(first.tolist()))
        assert not (set(first.tolist()) & set(second.tolist()))

    def test_topic_segment_stays_in_topic(self, topic_model, rng):
        segment = topic_model.sample_topic_tokens = topic_model.sample_topic_segment(2, 50, rng)
        assert set(segment.tolist()).issubset(set(topic_model.topics[2].tolist()))

    def test_invalid_parameters(self, tokenizer):
        with pytest.raises(ValueError):
            TopicModel(tokenizer, num_topics=0)
        with pytest.raises(ValueError):
            TopicModel(tokenizer, reserved_fraction=1.5)


class TestDocumentBuilder:
    def test_plant_and_build(self, topic_model, rng):
        background = topic_model.sample_background(200, rng)
        builder = DocumentBuilder(background, protected_prefix=16)
        span = builder.plant(np.array([500, 501, 502]), rng)
        document = builder.build()
        np.testing.assert_array_equal(
            document[span.position : span.end], [500, 501, 502]
        )
        assert span.position >= 16

    def test_spans_do_not_overlap(self, topic_model, rng):
        background = topic_model.sample_background(300, rng)
        builder = DocumentBuilder(background, protected_prefix=8)
        spans = [builder.plant(np.arange(400, 410), rng) for _ in range(10)]
        intervals = sorted((span.position, span.end) for span in spans)
        for (_, end_a), (start_b, _) in zip(intervals, intervals[1:]):
            assert end_a <= start_b

    def test_evidence_positions_reported(self, topic_model, rng):
        background = topic_model.sample_background(120, rng)
        builder = DocumentBuilder(background, protected_prefix=8)
        evidence = builder.plant(np.array([400, 401]), rng, kind="evidence")
        builder.plant(np.array([402, 403]), rng, kind="distractor")
        positions = builder.evidence_positions()
        np.testing.assert_array_equal(positions, [evidence.position, evidence.position + 1])

    def test_too_small_document_rejected(self):
        with pytest.raises(ValueError):
            DocumentBuilder(np.arange(10), protected_prefix=16)


class TestLongBenchTasks:
    def test_all_eight_tasks_registered(self):
        assert len(LONGBENCH_TASKS) == 8
        assert set(LONGBENCH_TASKS) == {
            "2wikimqa",
            "triviaqa",
            "hotpotqa",
            "multifieldqa",
            "musique",
            "narrativeqa",
            "qasper",
            "govreport",
        }

    def test_metrics_match_paper_protocol(self):
        assert LONGBENCH_TASKS["govreport"].metric == "rouge_l"
        assert all(
            spec.metric == "f1"
            for name, spec in LONGBENCH_TASKS.items()
            if name != "govreport"
        )

    def test_sample_structure(self, tokenizer, topic_model):
        generator = LongBenchTaskGenerator(
            tokenizer, LONGBENCH_TASKS["multifieldqa"], topic_model=topic_model, seed=0
        )
        sample = generator.generate_sample(512)
        assert sample.prompt_ids.dtype == np.int64
        assert sample.prompt_length > 512  # document plus question
        assert sample.answer_length >= LONGBENCH_TASKS["multifieldqa"].answer_length
        assert len(sample.reference_answer.split()) == LONGBENCH_TASKS[
            "multifieldqa"
        ].answer_length
        assert sample.evidence_positions.size > 0

    def test_question_repeats_cue_from_evidence(self, tokenizer, topic_model):
        generator = LongBenchTaskGenerator(
            tokenizer, LONGBENCH_TASKS["triviaqa"], topic_model=topic_model, seed=1
        )
        sample = generator.generate_sample(512)
        cue_len = LONGBENCH_TASKS["triviaqa"].cue_length
        question_cue = sample.prompt_ids[-cue_len:]
        document = sample.prompt_ids[: -cue_len - 1]
        # The cue must appear verbatim inside the document (the evidence span).
        found = any(
            np.array_equal(document[i : i + cue_len], question_cue)
            for i in range(len(document) - cue_len)
        )
        assert found

    def test_multi_hop_adds_generation_room(self, tokenizer, topic_model):
        spec = LONGBENCH_TASKS["musique"]
        generator = LongBenchTaskGenerator(tokenizer, spec, topic_model=topic_model)
        sample = generator.generate_sample(512)
        assert sample.answer_length == spec.answer_length + 2 * (spec.hops - 1)

    def test_samples_are_deterministic_per_index(self, tokenizer, topic_model):
        generator = LongBenchTaskGenerator(
            tokenizer, LONGBENCH_TASKS["qasper"], topic_model=topic_model, seed=3
        )
        a = generator.generate_sample(512, index=5)
        b = generator.generate_sample(512, index=5)
        np.testing.assert_array_equal(a.prompt_ids, b.prompt_ids)
        c = generator.generate_sample(512, index=6)
        assert not np.array_equal(a.prompt_ids, c.prompt_ids)

    def test_invalid_spec_rejected(self):
        with pytest.raises(ValueError):
            LongBenchTaskSpec(
                name="bad", category="single_doc_qa", hops=0, cue_length=3,
                answer_length=4, num_distractors=0, num_hard_distractors=0,
                metric="f1", paper_full_kv_score=0.0,
            )
        with pytest.raises(ValueError):
            LongBenchTaskSpec(
                name="bad", category="single_doc_qa", hops=1, cue_length=3,
                answer_length=4, num_distractors=0, num_hard_distractors=0,
                metric="bleu", paper_full_kv_score=0.0,
            )

    def test_dataset_generation(self, tokenizer, topic_model):
        generator = LongBenchTaskGenerator(
            tokenizer, LONGBENCH_TASKS["govreport"], topic_model=topic_model
        )
        samples = generator.generate_dataset(400, 3)
        assert len(samples) == 3
        assert all(sample.metric == "rouge_l" for sample in samples)


class TestPG19:
    def test_exact_length(self, tokenizer, topic_model):
        generator = PG19Generator(tokenizer, topic_model=topic_model, seed=0)
        sample = generator.generate_sample(700)
        assert sample.length == 700

    def test_motifs_recur(self, tokenizer, topic_model):
        config = PG19Config(num_motifs=4, motif_length=8, motif_fraction=0.5)
        generator = PG19Generator(tokenizer, config, topic_model=topic_model, seed=0)
        sample = generator.generate_sample(1200)
        assert sample.motif_positions.size > 4  # at least some recurrences

    def test_deterministic(self, tokenizer, topic_model):
        generator = PG19Generator(tokenizer, topic_model=topic_model, seed=5)
        a = generator.generate_sample(500, index=1)
        b = generator.generate_sample(500, index=1)
        np.testing.assert_array_equal(a.token_ids, b.token_ids)

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            PG19Config(motif_fraction=0.0)
        with pytest.raises(ValueError):
            PG19Config(motif_length=1)

    def test_too_short_document_rejected(self, tokenizer, topic_model):
        generator = PG19Generator(tokenizer, topic_model=topic_model)
        with pytest.raises(ValueError):
            generator.generate_sample(5)


class TestCrossProcessDeterminism:
    """Sample streams must not depend on Python's per-process hash seed."""

    def test_longbench_sample_independent_of_hash_seed(self):
        import os
        import subprocess
        import sys
        from pathlib import Path

        snippet = (
            "from repro.model import SyntheticTokenizer;"
            "from repro.workloads import LONGBENCH_TASKS, LongBenchTaskGenerator, TopicModel;"
            "tok = SyntheticTokenizer(256);"
            "gen = LongBenchTaskGenerator(tok, LONGBENCH_TASKS['multifieldqa'],"
            " topic_model=TopicModel(tok, seed=0), seed=0);"
            "print(int(gen.generate_sample(256).prompt_ids.sum()))"
        )
        checksums = []
        for hash_seed in ("1", "2"):
            src = str(Path(__file__).resolve().parent.parent / "src")
            env = {**os.environ, "PYTHONHASHSEED": hash_seed}
            env["PYTHONPATH"] = os.pathsep.join(
                filter(None, [src, env.get("PYTHONPATH")])
            )
            output = subprocess.run(
                [sys.executable, "-c", snippet],
                capture_output=True, text=True, check=True, env=env,
            ).stdout.strip()
            checksums.append(output)
        assert checksums[0] == checksums[1]
