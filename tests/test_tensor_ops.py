"""Unit tests for the numerical primitives."""

import numpy as np
import pytest

from repro.model.tensor_ops import (
    apply_rope,
    causal_mask,
    gelu,
    layer_norm,
    log_softmax,
    masked_fill,
    rms_norm,
    rope_frequencies,
    silu,
    softmax,
    swiglu,
)


class TestSoftmax:
    def test_sums_to_one(self):
        x = np.array([[1.0, 2.0, 3.0], [0.0, 0.0, 0.0]])
        out = softmax(x, axis=-1)
        np.testing.assert_allclose(out.sum(axis=-1), 1.0)

    def test_large_values_are_stable(self):
        x = np.array([1e4, 1e4 + 1.0])
        out = softmax(x)
        assert np.all(np.isfinite(out))
        assert out[1] > out[0]

    def test_matches_log_softmax(self):
        x = np.random.default_rng(0).normal(size=(5, 7))
        np.testing.assert_allclose(np.log(softmax(x)), log_softmax(x), atol=1e-12)

    def test_invariant_to_shift(self):
        x = np.array([0.5, -1.0, 2.0])
        np.testing.assert_allclose(softmax(x), softmax(x + 100.0), atol=1e-12)


class TestNorms:
    def test_rms_norm_unit_scale(self):
        x = np.random.default_rng(1).normal(size=(4, 8))
        out = rms_norm(x, np.ones(8))
        rms = np.sqrt(np.mean(out**2, axis=-1))
        np.testing.assert_allclose(rms, 1.0, atol=1e-3)

    def test_layer_norm_zero_mean_unit_var(self):
        x = np.random.default_rng(2).normal(loc=3.0, size=(4, 16))
        out = layer_norm(x, np.ones(16), np.zeros(16))
        np.testing.assert_allclose(out.mean(axis=-1), 0.0, atol=1e-8)
        np.testing.assert_allclose(out.var(axis=-1), 1.0, atol=1e-3)

    def test_layer_norm_bias_applied(self):
        x = np.random.default_rng(3).normal(size=(2, 4))
        out = layer_norm(x, np.ones(4), np.full(4, 5.0))
        np.testing.assert_allclose(out.mean(axis=-1), 5.0, atol=1e-8)


class TestActivations:
    def test_silu_at_zero(self):
        assert silu(np.array([0.0]))[0] == pytest.approx(0.0)

    def test_silu_positive_limit(self):
        x = np.array([20.0])
        assert silu(x)[0] == pytest.approx(20.0, rel=1e-6)

    def test_gelu_monotone_region(self):
        # GELU is monotone to the right of its minimum (around x = -0.75).
        x = np.linspace(-0.5, 1.0, 11)
        y = gelu(x)
        assert np.all(np.diff(y) > 0)

    def test_swiglu_is_silu_times_up(self):
        gate = np.array([1.0, -2.0])
        up = np.array([3.0, 4.0])
        np.testing.assert_allclose(swiglu(gate, up), silu(gate) * up)


class TestRope:
    def test_requires_even_head_dim(self):
        with pytest.raises(ValueError):
            rope_frequencies(7)

    def test_rotation_preserves_norm(self):
        inv_freq = rope_frequencies(8)
        x = np.random.default_rng(4).normal(size=(2, 5, 8))
        rotated = apply_rope(x, np.arange(5), inv_freq)
        np.testing.assert_allclose(
            np.linalg.norm(rotated, axis=-1), np.linalg.norm(x, axis=-1), atol=1e-9
        )

    def test_position_zero_is_identity(self):
        inv_freq = rope_frequencies(8)
        x = np.random.default_rng(5).normal(size=(1, 1, 8))
        rotated = apply_rope(x, np.array([0]), inv_freq)
        np.testing.assert_allclose(rotated, x, atol=1e-12)

    def test_relative_position_property(self):
        """q·k after RoPE depends only on the relative distance."""
        inv_freq = rope_frequencies(16)
        rng = np.random.default_rng(6)
        q = rng.normal(size=16)
        k = rng.normal(size=16)
        def scored(pos_q, pos_k):
            rq = apply_rope(q[None, None, :], np.array([pos_q]), inv_freq)[0, 0]
            rk = apply_rope(k[None, None, :], np.array([pos_k]), inv_freq)[0, 0]
            return rq @ rk
        np.testing.assert_allclose(scored(3, 1), scored(13, 11), atol=1e-9)

    def test_length_mismatch_raises(self):
        inv_freq = rope_frequencies(8)
        x = np.zeros((1, 4, 8))
        with pytest.raises(ValueError):
            apply_rope(x, np.arange(3), inv_freq)


class TestMasking:
    def test_causal_mask_shape_and_content(self):
        mask = causal_mask(2, 4)
        assert mask.shape == (2, 4)
        # query 0 is position 2 of 4, so it sees positions 0..2.
        np.testing.assert_array_equal(mask[0], [True, True, True, False])
        np.testing.assert_array_equal(mask[1], [True, True, True, True])

    def test_causal_mask_rejects_longer_query(self):
        with pytest.raises(ValueError):
            causal_mask(5, 4)

    def test_masked_fill(self):
        scores = np.array([[1.0, 2.0]])
        mask = np.array([[True, False]])
        out = masked_fill(scores, mask, value=-99.0)
        assert out[0, 0] == 1.0
        assert out[0, 1] == -99.0
