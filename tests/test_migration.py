"""Differential tests of live KV migration, recovery and zone failures.

The load-bearing guarantee of the migration path: a request whose live
state moves between engines — by drain migration, preemption hand-off or
checkpoint recovery — finishes with exactly the tokens and
log-probabilities of an uninterrupted run, and never pays a second
prefill.  The prefill cost is asserted through the deterministic
``gemm.attention_prefill`` op counter: flat across a migration, strictly
higher when a failure forces a from-scratch retry.
"""

import numpy as np
import pytest

from repro.cluster import (
    Autoscaler,
    ClusterBenchConfig,
    ClusterSimulator,
    FailureEvent,
    FailurePlan,
    ScaleDecision,
)
from repro.model import GenerationConfig, TransformerModel, get_model_config
from repro.perf.counters import count_ops
from repro.serving import BatchedEngine
from repro.traffic.bench import build_bench_requests

CLUSTERKV = "clusterkv:tokens_per_cluster=12,decode_window=8,decode_clusters=2,num_sink_tokens=4"


# ----------------------------------------------------------------------
# engine-level migration differential
# ----------------------------------------------------------------------
def tiny_generation() -> GenerationConfig:
    return GenerationConfig(
        budget=24,
        num_full_layers=1,
        num_sink_tokens=4,
        max_new_tokens=8,
        greedy=True,
        seed=3,
    )


def make_prompts(vocab_size: int, lengths=(40, 52), seed: int = 11):
    rng = np.random.default_rng(seed)
    return [rng.integers(0, vocab_size, length) for length in lengths]


def outputs_of(report):
    return {
        item.request.request_id: (
            np.asarray(item.result.output_ids),
            np.asarray(item.result.output_logprobs),
        )
        for item in report.completed
    }


class TestEngineMigration:
    def test_mid_decode_migration_is_exact_and_never_reprefills(self):
        """Checkpoint-migrate active requests A->B mid-decode.

        Migrated requests finish with the baseline's exact tokens and
        logprobs, and the prefill GEMM count across both engines equals
        the single-engine baseline — every decoded token travelled with
        the checkpoint, nothing was prefilled twice.
        """
        model = TransformerModel(get_model_config("tiny"))
        prompts = make_prompts(model.config.vocab_size)

        def submit_all(engine):
            engine.submit(prompts[0], request_id="a", policy=CLUSTERKV)
            engine.submit(prompts[1], request_id="b", policy="quest")

        baseline_engine = BatchedEngine(model, generation_config=tiny_generation())
        submit_all(baseline_engine)
        with count_ops() as baseline_ops:
            baseline = outputs_of(baseline_engine.run())

        source = BatchedEngine(model, generation_config=tiny_generation())
        target = BatchedEngine(model, generation_config=tiny_generation())
        submit_all(source)
        with count_ops() as migrated_ops:
            completed = []
            for _ in range(3):  # prefill, then a couple of decode steps
                completed.extend(source.step())
            moved = 0
            for request_id in list(source.active_request_ids):
                target.restore_request(
                    source.checkpoint_request(request_id, keep=False)
                )
                moved += 1
            report = target.run()
            report.completed.extend(completed)
            migrated = outputs_of(report)

        assert moved == 2
        assert source.num_active == 0
        assert migrated_ops.get("seqstate.migrated_in") == moved
        assert set(migrated) == set(baseline)
        for request_id, (ids, logprobs) in baseline.items():
            np.testing.assert_array_equal(migrated[request_id][0], ids)
            np.testing.assert_array_equal(migrated[request_id][1], logprobs)
        assert migrated_ops.get("gemm.attention_prefill") == baseline_ops.get(
            "gemm.attention_prefill"
        )


# ----------------------------------------------------------------------
# cluster-level scenarios
# ----------------------------------------------------------------------
class DrainOnce(Autoscaler):
    """Hold the fleet at ``target`` replicas, then drain one at ``at_s``."""

    name = "drain_once"

    def __init__(self, at_s: float, target: int = 2) -> None:
        self.at_s = at_s
        self.target = target
        self._fired = False

    def reset(self) -> None:
        self._fired = False

    def decide(self, view) -> ScaleDecision:
        if not self._fired and len(view.replicas) < self.target:
            return ScaleDecision(
                add=self.target - len(view.replicas), reason="hold fleet"
            )
        if not self._fired and view.now_s >= self.at_s:
            self._fired = True
            return ScaleDecision(drain=1, reason="forced drain")
        return ScaleDecision()


class RecordingClusterSimulator(ClusterSimulator):
    """Cluster simulator that keeps every retired request's raw output."""

    def _metrics_of(self, item, finish_s):
        if not hasattr(self, "outputs"):
            self.outputs = {}
        self.outputs[item.request.request_id] = (
            np.asarray(item.result.output_ids),
            np.asarray(item.result.output_logprobs),
        )
        return super()._metrics_of(item, finish_s)


def cluster_run(**overrides):
    """One recorded cluster run; returns (report, outputs, op counter)."""
    config = ClusterBenchConfig(
        num_requests=10,
        rate=4.0,
        policies=("clusterkv", "quest"),
        **overrides,
    )
    requests = build_bench_requests(config)
    simulator = RecordingClusterSimulator(config.cluster_config())
    with count_ops() as ops:
        report = simulator.run(requests)
    return report, getattr(simulator, "outputs", {}), ops


BASELINE_FLEET = dict(min_replicas=2, max_replicas=2, autoscaler="static")


class TestDrainMigration:
    def test_migration_completes_without_reprefill(self):
        """A forced drain of a busy replica migrates its work.

        The migrated requests all complete, their outputs are bit-identical
        to a drain-free static-fleet run of the same workload, and the
        prefill GEMM counter stays flat — migration moved KV, it never
        re-prefilled a prompt.
        """
        baseline_report, baseline_outputs, baseline_ops = cluster_run(**BASELINE_FLEET)
        report, outputs, ops = cluster_run(
            min_replicas=1,
            max_replicas=3,
            autoscaler=DrainOnce(at_s=3.0),
            migrate_on_drain=True,
        )
        assert report.num_migrations > 0
        assert report.num_requests == baseline_report.num_requests
        assert report.num_rejected == 0
        migrated = [m for m in report.requests if m.migrations > 0]
        assert migrated and all(m.retries == 0 for m in migrated)
        assert set(outputs) == set(baseline_outputs)
        for request_id, (ids, logprobs) in baseline_outputs.items():
            np.testing.assert_array_equal(outputs[request_id][0], ids)
            # Scheduling differs between the two fleets, so batch
            # composition — and with it GEMM kernel selection — differs;
            # logprobs may wobble in the last bit (see repro.model.attention).
            np.testing.assert_allclose(
                outputs[request_id][1], logprobs, rtol=0, atol=1e-12
            )
        assert ops.get("gemm.attention_prefill") == baseline_ops.get(
            "gemm.attention_prefill"
        )
        assert ops.get("seqstate.migrated_in") == report.num_migrations

    def test_migration_run_is_byte_reproducible(self):
        first, _, _ = cluster_run(
            min_replicas=1,
            max_replicas=3,
            autoscaler=DrainOnce(at_s=3.0),
            migrate_on_drain=True,
        )
        second, _, _ = cluster_run(
            min_replicas=1,
            max_replicas=3,
            autoscaler=DrainOnce(at_s=3.0),
            migrate_on_drain=True,
        )
        assert first.to_json() == second.to_json()


FAILURE_AT_6S = FailurePlan(events=(FailureEvent(time_s=6.0, slot=0),))


class TestFailureRecovery:
    def test_retry_reprefills_but_checkpoint_recovery_does_not(self):
        """The failure differential, measured in prefill GEMMs.

        A from-scratch retry replays the victim's whole prefill (strictly
        more prefill GEMMs than the failure-free baseline); resuming from
        a periodic checkpoint skips it for every request checkpointed
        before the failure.  Both paths reproduce the failure-free outputs
        token for token.
        """
        _, baseline_outputs, baseline_ops = cluster_run(**BASELINE_FLEET)
        retry_report, retry_outputs, retry_ops = cluster_run(
            **BASELINE_FLEET, failures=FAILURE_AT_6S
        )
        recovery_report, recovery_outputs, recovery_ops = cluster_run(
            **BASELINE_FLEET, failures=FAILURE_AT_6S, checkpoint_interval_s=2.0
        )

        assert retry_report.num_retries > 0
        assert recovery_report.num_recoveries > 0
        baseline_prefills = baseline_ops.get("gemm.attention_prefill")
        assert retry_ops.get("gemm.attention_prefill") > baseline_prefills
        assert recovery_ops.get("gemm.attention_prefill") < retry_ops.get(
            "gemm.attention_prefill"
        )
        assert recovery_report.lost_tokens < retry_report.lost_tokens
        for outputs in (retry_outputs, recovery_outputs):
            for request_id, (ids, logprobs) in outputs.items():
                np.testing.assert_array_equal(ids, baseline_outputs[request_id][0])
                # Failure detours change batch composition; last-bit
                # GEMM-kernel rounding on logprobs is tolerated (tokens
                # are exact — see repro.model.attention).
                np.testing.assert_allclose(
                    logprobs, baseline_outputs[request_id][1], rtol=0, atol=1e-12
                )


class TestZoneFailures:
    def test_zone_failure_conserves_every_request(self):
        """A correlated zone kill never loses or duplicates a request.

        Every submitted request is accounted for exactly once — completed
        or first-class rejected — and the run is byte-reproducible.
        """
        plan = FailurePlan(
            events=(FailureEvent(time_s=6.0, zone=0),), num_zones=2
        )
        report, outputs, _ = cluster_run(
            min_replicas=3, max_replicas=4, failures=plan, max_retries=3
        )
        assert len(report.failures) >= 2  # the whole zone died together
        assert report.num_requests + report.num_rejected == report.num_submitted
        completed_ids = {m.request_id for m in report.requests}
        rejected_ids = {r.request_id for r in report.rejected}
        assert not completed_ids & rejected_ids
        assert len(completed_ids) == report.num_requests
        repeat, _, _ = cluster_run(
            min_replicas=3, max_replicas=4, failures=plan, max_retries=3
        )
        assert report.to_json() == repeat.to_json()

    def test_zone_events_require_zone_count(self):
        with pytest.raises(ValueError):
            FailurePlan(events=(FailureEvent(time_s=1.0, zone=0),))
        with pytest.raises(ValueError):
            FailurePlan(events=(FailureEvent(time_s=1.0, zone=2),), num_zones=2)
