"""Tests of the policy registry and the declarative PolicySpec.

Load-bearing guarantees:

* every built-in selector self-registers and builds through the registry;
* ``PolicySpec -> factory -> describe() -> PolicySpec`` round-trips with
  the *full* configuration (reproducibility of reports);
* unknown names and bad configuration keys fail with self-diagnosing
  messages listing what is known/accepted;
* third-party selectors register without touching core files.
"""

import numpy as np
import pytest

from repro.baselines import (
    FullKVSelector,
    InfiniGenSelector,
    QuestSelector,
)
from repro.baselines.base import KVSelectorFactory
from repro.baselines.full import FullKVLayerState
from repro.core import ClusterKVSelector
from repro.experiments import ContextScale, build_selector, build_selector_spec
from repro.memory import TierKind
from repro.policies import (
    PolicySpec,
    UnknownPolicyError,
    available_policies,
    build_policy,
    policy_names,
    policy_spec_from_description,
    policy_spec_of,
    register_policy,
    resolve_policy_spec,
)

BUILTIN_POLICIES = (
    "clusterkv",
    "full",
    "h2o",
    "infinigen",
    "oracle",
    "quest",
    "streaming_llm",
)


class TestPolicySpec:
    def test_parse_bare_name(self):
        spec = PolicySpec.parse("quest")
        assert spec.name == "quest"
        assert dict(spec.kwargs) == {}

    def test_parse_with_kwargs_and_coercion(self):
        spec = PolicySpec.parse(
            "clusterkv:tokens_per_cluster=32,distance_metric=cosine,"
            "max_clusters=none,trim_policy=order"
        )
        assert spec.kwargs["tokens_per_cluster"] == 32
        assert spec.kwargs["distance_metric"] == "cosine"
        assert spec.kwargs["max_clusters"] is None

    def test_parse_rejects_malformed(self):
        with pytest.raises(ValueError, match="key=value"):
            PolicySpec.parse("quest:page_size")
        with pytest.raises(ValueError):
            PolicySpec.parse("")

    def test_cli_round_trip(self):
        spec = PolicySpec("quest", {"page_size": 32, "include_last_page": False})
        assert PolicySpec.parse(spec.to_cli()) == spec

    def test_to_cli_refuses_unrepresentable_values(self):
        """Values the CLI form would corrupt raise instead (JSON still works)."""
        for bad in ({"label": "none"}, {"tag": "16"}, {"s": "p,q"}, {"s": "a=b"}):
            spec = PolicySpec("x", bad)
            with pytest.raises(ValueError, match="to_json"):
                spec.to_cli()
            assert PolicySpec.from_json(spec.to_json()) == spec

    def test_dict_and_json_round_trip(self):
        spec = PolicySpec("infinigen", {"partial_ratio": 0.5, "seed": 3})
        assert PolicySpec.from_dict(spec.to_dict()) == spec
        assert PolicySpec.from_json(spec.to_json()) == spec

    def test_from_dict_requires_name(self):
        with pytest.raises(ValueError, match="name"):
            PolicySpec.from_dict({"page_size": 16})

    def test_kwargs_are_read_only(self):
        spec = PolicySpec("quest", {"page_size": 16})
        with pytest.raises(TypeError):
            spec.kwargs["page_size"] = 32  # type: ignore[index]

    def test_specs_pickle_and_deepcopy(self):
        """Specs survive pickle and deepcopy despite the proxy kwargs."""
        import copy
        import pickle

        spec = PolicySpec("quest", {"page_size": 8, "include_last_page": False})
        assert pickle.loads(pickle.dumps(spec)) == spec
        assert copy.deepcopy(spec) == spec
        assert copy.copy(spec) == spec

    def test_specs_are_hashable(self):
        """Specs work as set members / dict keys despite the proxy kwargs."""
        a = PolicySpec("quest", {"page_size": 16})
        b = PolicySpec("quest", {"page_size": 16})
        c = PolicySpec("quest", {"page_size": 32})
        assert hash(a) == hash(b)
        assert {a, b, c} == {a, c}
        assert {a: 1}[b] == 1

    def test_specs_with_unhashable_kwargs_are_hashable(self):
        """JSON-sourced list/dict values must not break set membership."""
        a = PolicySpec.from_dict({"name": "x", "dims": [1, 2], "m": {"p": 1, "q": 2}})
        b = PolicySpec.from_dict({"name": "x", "m": {"q": 2, "p": 1}, "dims": [1, 2]})
        assert a == b
        assert hash(a) == hash(b)
        assert {a, b} == {a}

    def test_resolve_policy_spec(self):
        spec = PolicySpec("full")
        assert resolve_policy_spec(spec) is spec
        assert resolve_policy_spec("full") == spec
        with pytest.raises(TypeError):
            resolve_policy_spec(42)  # type: ignore[arg-type]


class TestRegistry:
    def test_all_builtins_registered(self):
        assert set(BUILTIN_POLICIES) <= set(policy_names())

    def test_build_by_name_returns_expected_types(self):
        assert isinstance(build_policy("full"), FullKVSelector)
        assert isinstance(build_policy("clusterkv"), ClusterKVSelector)
        assert isinstance(build_policy("quest"), QuestSelector)
        assert isinstance(build_policy("infinigen"), InfiniGenSelector)

    def test_build_applies_kwargs(self):
        factory = build_policy("quest:page_size=8,include_last_page=false")
        assert factory.config.page_size == 8
        assert factory.config.include_last_page is False

    def test_unknown_name_lists_known_policies(self):
        with pytest.raises(UnknownPolicyError) as excinfo:
            build_policy("typo")
        message = str(excinfo.value)
        for name in BUILTIN_POLICIES:
            assert name in message

    def test_unknown_policy_error_pickles_cleanly(self):
        """Crossing a process boundary must not wrap the message twice."""
        import pickle

        error = UnknownPolicyError("typo")
        restored = pickle.loads(pickle.dumps(error))
        assert restored.name == "typo"
        assert str(restored) == str(error)

    def test_bad_kwargs_list_accepted_keys(self):
        with pytest.raises(ValueError, match="page_size"):
            build_policy("quest:paeg_size=8")

    def test_configless_policy_rejects_kwargs(self):
        with pytest.raises(ValueError, match="accepts no configuration"):
            build_policy("full:budget=3")

    def test_summaries_available_for_listing(self):
        policies = available_policies()
        for name in BUILTIN_POLICIES:
            assert policies[name].summary

    @pytest.mark.parametrize("name", BUILTIN_POLICIES)
    def test_spec_factory_describe_round_trip(self, name):
        """PolicySpec -> factory -> describe() -> PolicySpec is lossless."""
        spec = build_selector_spec(name, ContextScale(64))
        factory = build_policy(spec)
        recovered = policy_spec_of(factory)
        assert recovered.name == name
        rebuilt = build_policy(recovered)
        assert type(rebuilt) is type(factory)
        # The describe() of the rebuilt factory matches exactly — the spec
        # carries the *full* configuration.
        assert rebuilt.describe() == factory.describe()
        # And a second round trip is a fixed point.
        assert policy_spec_of(rebuilt) == recovered

    @pytest.mark.parametrize("name", BUILTIN_POLICIES)
    def test_description_rebuilds_policy_directly(self, name):
        """describe() output feeds build_policy via the public helper."""
        factory = build_policy(name)
        rebuilt = build_policy(policy_spec_from_description(factory.describe()))
        assert rebuilt.describe() == factory.describe()

    def test_spec_of_registered_factory_ignores_incomplete_describe(self):
        """policy_spec_of reads the config object, not describe() output."""

        class SparseConfig:
            """Config whose selector never overrides describe()."""

            def __init__(self, x: int = 1) -> None:
                self.x = x

        @register_policy("test_sparse", config_cls=SparseConfig, summary="toy")
        class SparseSelector(KVSelectorFactory):
            """Deliberately keeps the base (config-less) describe()."""

            name = "test_sparse"

            def __init__(self, config: SparseConfig | None = None) -> None:
                self.config = config or SparseConfig()

            def create_layer_state(self, *args):
                """Unused."""
                raise NotImplementedError

        try:
            spec = policy_spec_of(SparseSelector(SparseConfig(x=5)))
            assert dict(spec.kwargs) == {"x": 5}
            assert build_policy(spec).config.x == 5
        finally:
            from repro.policies.registry import _REGISTRY

            _REGISTRY.pop("test_sparse", None)

    def test_description_requires_name(self):
        with pytest.raises(ValueError, match="name"):
            policy_spec_from_description({"page_size": 16})

    def test_describe_includes_full_config(self):
        description = ClusterKVSelector().describe()
        for key in (
            "tokens_per_cluster",
            "decode_window",
            "decode_clusters",
            "num_sink_tokens",
            "distance_metric",
            "max_kmeans_iters",
            "kmeans_seed",
            "cache_history",
            "trim_policy",
            "score_metric",
        ):
            assert key in description
        infinigen = InfiniGenSelector().describe()
        for key in ("partial_ratio", "min_partial_dim", "speculation_noise", "seed"):
            assert key in infinigen
        quest = QuestSelector().describe()
        assert "page_size" in quest and "include_last_page" in quest
        h2o = build_policy("h2o").describe()
        assert "recent_ratio" in h2o

    def test_duplicate_name_rejected(self):
        with pytest.raises(ValueError, match="already registered"):

            @register_policy("quest")
            class ImposterSelector(KVSelectorFactory):
                """Pretends to be Quest."""

                name = "quest"

                def create_layer_state(self, *args):
                    """Unused."""
                    raise NotImplementedError

    def test_same_class_name_from_other_module_rejected(self):
        """A foreign class reusing the built-in's class name cannot take over."""
        with pytest.raises(ValueError, match="already registered"):
            # Same bare name as the built-in factory, different module:
            # still an impostor, must still be rejected.
            imposter = type(
                "QuestSelector",
                (KVSelectorFactory,),
                {"__doc__": "Pretends harder to be Quest.", "name": "quest"},
            )
            register_policy("quest")(imposter)
        # The real entry is untouched.
        assert isinstance(build_policy("quest:page_size=16"), QuestSelector)


class TestThirdPartyRegistration:
    def test_external_selector_plugs_in_everywhere(self):
        """A selector registered outside core files works by name."""

        class EveryOtherConfig:
            """Config of the toy third-party selector."""

            def __init__(self, stride: int = 2) -> None:
                self.stride = stride

        @register_policy(
            "test_every_other",
            config_cls=EveryOtherConfig,
            summary="toy: select every stride-th token",
        )
        class EveryOtherSelector(KVSelectorFactory):
            """Keeps every ``stride``-th token — accuracy be damned."""

            name = "test_every_other"
            kv_residency = TierKind.GPU

            def __init__(self, config: EveryOtherConfig | None = None) -> None:
                self.config = config or EveryOtherConfig()

            def create_layer_state(
                self, layer_idx, n_kv_heads, head_dim, num_sink_tokens
            ):
                """Reuse the full-KV state (selection itself is not under test)."""
                return FullKVLayerState(layer_idx, n_kv_heads, head_dim)

            def describe(self):
                """Full config, like every registered policy."""
                description = super().describe()
                description.update(stride=self.config.stride)
                return description

        try:
            assert "test_every_other" in policy_names()
            factory = build_policy("test_every_other:stride=4")
            assert factory.config.stride == 4
            # Registry round-trip holds for third-party policies too.
            assert build_policy(policy_spec_of(factory)).config.stride == 4
            # And experiments resolve it through the same path.
            assert type(build_selector("test_every_other")) is EveryOtherSelector
        finally:
            # Keep the process-global registry clean for other tests.
            from repro.policies.registry import _REGISTRY

            _REGISTRY.pop("test_every_other", None)


class TestExperimentMethods:
    def test_build_selector_unknown_name_is_self_diagnosing(self):
        with pytest.raises(ValueError, match="clusterkv"):
            build_selector("magic")

    def test_build_selector_spec_scales_clusterkv(self):
        spec = build_selector_spec("clusterkv", ContextScale(64))
        assert spec.kwargs["tokens_per_cluster"] >= 4
        factory = build_policy(spec)
        assert factory.config.tokens_per_cluster == spec.kwargs["tokens_per_cluster"]

    def test_build_selector_quest_page_size_not_scaled(self):
        factory = build_selector("quest", ContextScale(32))
        assert factory.config.page_size == 16
