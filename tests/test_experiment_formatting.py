"""Unit tests for the experiment result containers and their formatters.

These tests build small result objects directly (no model runs) and check
that the aggregation logic and the plain-text rendering behave as the
benchmark harness expects.
"""

import pytest

from repro.experiments import (
    CacheStudyResult,
    DesignAblationResult,
    DesignVariantResult,
    Fig10Result,
    Fig11Result,
    format_cache_study,
    format_design_ablation,
    format_fig10,
    format_fig11,
    format_table1,
    Table1Result,
)
from repro.experiments.fig9_longbench import Fig9Result
from repro.metrics import ScoreTable


class TestFig10Result:
    def _result(self):
        result = Fig10Result(budget=64)
        result.perplexities = {
            "full": {8000: 10.0, 16000: 11.0},
            "clusterkv": {8000: 10.4, 16000: 11.6},
            "quest": {8000: 14.0, 16000: 15.0},
        }
        return result

    def test_deviation_from_full(self):
        result = self._result()
        assert result.deviation_from_full("clusterkv") == pytest.approx(0.5)
        assert result.deviation_from_full("quest") == pytest.approx(4.0)
        assert result.deviation_from_full("full") == pytest.approx(0.0)

    def test_deviation_with_no_overlap_is_nan(self):
        result = Fig10Result()
        result.perplexities = {"full": {8000: 10.0}, "clusterkv": {16000: 11.0}}
        assert result.deviation_from_full("clusterkv") != result.deviation_from_full(
            "clusterkv"
        )  # NaN

    def test_format_contains_methods_and_deviation(self):
        text = format_fig10(self._result())
        assert "clusterkv" in text and "dev. vs full" in text


class TestFig11Result:
    def test_record_and_format(self):
        result = Fig11Result(context_length=2048)
        result.record("clusterkv", 256, 0.3)
        result.record("clusterkv", 512, 0.4)
        result.record("quest", 256, 0.2)
        text = format_fig11(result)
        assert "clusterkv" in text and "quest" in text
        assert result.curves["clusterkv"] == {256: 0.3, 512: 0.4}


class TestTable1Formatting:
    def test_format_includes_measured_and_paper(self):
        fig9 = Fig9Result(table=ScoreTable())
        fig9.table.record("clusterkv", 256, "qasper", 0.5)
        fig9.table.record("full", 256, "qasper", 0.6)
        result = Table1Result(
            averages={"clusterkv": {256: 50.0}, "full": {256: 60.0}}, fig9=fig9
        )
        text = format_table1(result)
        assert "measured" in text
        assert "paper-reported" in text
        without_paper = format_table1(result, include_paper=False)
        assert "paper-reported" not in without_paper


class TestCacheStudyFormatting:
    def test_format_rows_per_history(self):
        result = CacheStudyResult(
            hit_rates={1: 0.12, 2: 0.2},
            throughput_gain={1: 2.4, 2: 2.5},
            throughput_gain_paper_hit={1: 2.6, 2: 2.6},
        )
        text = format_cache_study(result)
        assert "63%" in text  # paper reference for R=1
        assert "2.40x" in text


class TestDesignAblationFormatting:
    def test_format_and_accessor(self):
        result = DesignAblationResult(
            variants={
                "default": DesignVariantResult("default", 0.8, 0.5, 0.1),
                "no-sinks": DesignVariantResult("no-sinks", 0.7, 0.45, 0.1),
            }
        )
        assert result.score_of("default") == pytest.approx(0.8)
        text = format_design_ablation(result)
        assert "no-sinks" in text and "cache hit rate" in text
