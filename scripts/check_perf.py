#!/usr/bin/env python
"""Hot-path performance regression guard.

Recomputes the *deterministic* counters of the hot-path benchmark —
engine steps, GEMM-launch counts (via :mod:`repro.perf.counters`) and
k-means iteration counts on pinned configurations — and compares them
against the ``deterministic`` section of the checked-in
``BENCH_hotpaths.json``.  The counters are pure functions of
configuration and control flow, so the comparison is exact and
machine-independent: a vectorisation regression (say, attention falling
back to one GEMM per head) multiplies the counts and fails tier-1
(``tests/test_perf_guard.py``) even though every output token is
unchanged.  Wall-clock numbers in the bench file are informational and
are not compared.

    python scripts/check_perf.py            # verify against the baseline
    python scripts/check_perf.py --update   # re-run the full benchmark and
                                            # rewrite BENCH_hotpaths.json

Run with ``src`` on ``sys.path`` (the script inserts it itself when
needed), in the style of ``scripts/check_docs.py`` / ``check_api.py``.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
BENCH_PATH = REPO_ROOT / "BENCH_hotpaths.json"
CAPACITY_BENCH_PATH = REPO_ROOT / "BENCH_capacity.json"
SOURCE_ROOT = REPO_ROOT / "src"

if str(SOURCE_ROOT) not in sys.path:
    sys.path.insert(0, str(SOURCE_ROOT))


def load_baseline() -> dict:
    """The checked-in ``BENCH_hotpaths.json`` payload."""
    return json.loads(BENCH_PATH.read_text(encoding="utf-8"))


def current_deterministic() -> dict:
    """Freshly computed deterministic counters on the pinned configs."""
    from repro.perf import deterministic_counters

    return deterministic_counters()


def _flatten(prefix: str, value: object, into: dict) -> None:
    if isinstance(value, dict):
        for key in sorted(value):
            _flatten(f"{prefix}.{key}" if prefix else str(key), value[key], into)
    else:
        into[prefix] = value


def counter_diff() -> list[str]:
    """Mismatch lines between the baseline and the live counters (empty = ok)."""
    baseline: dict = {}
    live: dict = {}
    _flatten("", load_baseline().get("deterministic", {}), baseline)
    _flatten("", current_deterministic(), live)
    lines = []
    for key in sorted(set(baseline) | set(live)):
        if baseline.get(key) != live.get(key):
            lines.append(
                f"{key}: baseline={baseline.get(key)!r} current={live.get(key)!r}"
            )
    return lines


def load_capacity_baseline() -> dict:
    """The checked-in ``BENCH_capacity.json`` payload."""
    return json.loads(CAPACITY_BENCH_PATH.read_text(encoding="utf-8"))


def current_capacity() -> dict:
    """Freshly computed capacity-frontier report on the pinned sweep.

    Like the hot-path counters, every value (frontier contexts,
    per-direction transfer bytes, virtual-clock seconds) is a
    deterministic function of seeds and configuration, so the comparison
    is exact and machine-independent.
    """
    from repro.capacity import deterministic_capacity

    return deterministic_capacity()


def capacity_diff() -> list[str]:
    """Mismatch lines between the baseline and the live capacity report."""
    baseline: dict = {}
    live: dict = {}
    _flatten("", load_capacity_baseline().get("deterministic", {}), baseline)
    _flatten("", current_capacity(), live)
    lines = []
    for key in sorted(set(baseline) | set(live)):
        if baseline.get(key) != live.get(key):
            lines.append(
                f"{key}: baseline={baseline.get(key)!r} current={live.get(key)!r}"
            )
    return lines


def update() -> None:
    """Re-run both benchmarks and rewrite their baseline files."""
    from repro.perf import run_perf_bench, write_bench_file

    write_bench_file(str(BENCH_PATH), run_perf_bench())
    print(f"wrote {BENCH_PATH}")
    update_capacity()


def update_capacity() -> None:
    """Re-run the pinned capacity sweep and rewrite ``BENCH_capacity.json``."""
    payload = {"deterministic": current_capacity()}
    CAPACITY_BENCH_PATH.write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    print(f"wrote {CAPACITY_BENCH_PATH}")


def main(argv: list[str]) -> int:
    """CLI entry point; returns a process exit code."""
    if "--update" in argv:
        update()
        return 0
    if "--update-capacity" in argv:
        update_capacity()
        return 0
    failed = False
    if not BENCH_PATH.exists():
        print(f"missing {BENCH_PATH}; create it with: python scripts/check_perf.py --update")
        return 1
    mismatches = counter_diff()
    if mismatches:
        print("deterministic hot-path counters drifted from BENCH_hotpaths.json:")
        for line in mismatches:
            print(f"  {line}")
        print("intentional? run: python scripts/check_perf.py --update")
        failed = True
    else:
        print("hot-path counters match BENCH_hotpaths.json")
    if not CAPACITY_BENCH_PATH.exists():
        print(
            f"missing {CAPACITY_BENCH_PATH}; create it with: "
            "python scripts/check_perf.py --update-capacity"
        )
        return 1
    mismatches = capacity_diff()
    if mismatches:
        print("capacity frontier drifted from BENCH_capacity.json:")
        for line in mismatches:
            print(f"  {line}")
        print("intentional? run: python scripts/check_perf.py --update-capacity")
        failed = True
    else:
        print("capacity frontier matches BENCH_capacity.json")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
