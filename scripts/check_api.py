#!/usr/bin/env python
"""Public-API surface check for the ``repro`` package.

Renders every ``__all__`` export of the public modules — with call
signatures for functions and classes and reprs for simple constants — and
compares the result against the committed snapshot
``scripts/api_surface.txt``.  An accidental rename, a removed export or a
changed signature therefore fails tier-1
(``tests/test_public_api.py``) instead of silently breaking downstream
users; an *intentional* API change is one ``--update`` away:

    python scripts/check_api.py            # verify against the snapshot
    python scripts/check_api.py --update   # rewrite the snapshot

Run with ``src`` on ``sys.path`` (the script inserts it itself when
needed), in the style of ``scripts/check_docs.py``.
"""

from __future__ import annotations

import importlib
import inspect
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
SNAPSHOT_PATH = REPO_ROOT / "scripts" / "api_surface.txt"

# Modules whose ``__all__`` constitutes the supported public surface.
PUBLIC_MODULES = (
    "repro",
    "repro.api",
    "repro.policies",
    "repro.baselines",
    "repro.core",
    "repro.model",
    "repro.memory",
    "repro.capacity",
    "repro.metrics",
    "repro.perf",
    "repro.serving",
    "repro.execbackend",
    "repro.specdec",
    "repro.seqstate",
    "repro.prefixcache",
    "repro.traffic",
    "repro.cluster",
    "repro.experiments",
    "repro.perfmodel",
    "repro.workloads",
    "repro.analysis",
)


def _describe_object(obj: object) -> str:
    """One deterministic line fragment describing an exported object."""
    if inspect.isclass(obj) or inspect.isfunction(obj):
        try:
            return str(inspect.signature(obj))
        except (ValueError, TypeError):
            return "(...)"
    if isinstance(obj, (str, int, float, bool, tuple)) or obj is None:
        return f" = {obj!r}"
    return f": {type(obj).__name__}"


def api_surface() -> list[str]:
    """Render the public API surface, one sorted line per export."""
    lines: list[str] = []
    for module_name in PUBLIC_MODULES:
        module = importlib.import_module(module_name)
        exported = getattr(module, "__all__", ())
        for name in sorted(exported):
            obj = getattr(module, name)
            lines.append(f"{module_name}.{name}{_describe_object(obj)}")
    return lines


def load_snapshot() -> list[str]:
    """The committed surface snapshot (empty when missing)."""
    if not SNAPSHOT_PATH.exists():
        return []
    return SNAPSHOT_PATH.read_text(encoding="utf-8").splitlines()


def surface_diff() -> tuple[list[str], list[str]]:
    """(missing, unexpected) lines of the current surface vs. the snapshot."""
    current = api_surface()
    snapshot = load_snapshot()
    missing = sorted(set(snapshot) - set(current))
    unexpected = sorted(set(current) - set(snapshot))
    return missing, unexpected


def main(argv: list[str] | None = None) -> int:
    """CLI entry point: verify (default) or ``--update`` the snapshot."""
    argv = sys.argv[1:] if argv is None else argv
    if argv == ["--update"]:
        SNAPSHOT_PATH.write_text("\n".join(api_surface()) + "\n", encoding="utf-8")
        print(f"wrote {SNAPSHOT_PATH}")
        return 0
    if argv:
        print(__doc__)
        return 2
    missing, unexpected = surface_diff()
    if not missing and not unexpected:
        print(f"public API surface OK ({len(api_surface())} exports)")
        return 0
    if missing:
        print(f"{len(missing)} export(s) removed or changed:")
        for line in missing:
            print(f"  - {line}")
    if unexpected:
        print(f"{len(unexpected)} export(s) added or changed:")
        for line in unexpected:
            print(f"  + {line}")
    print("intentional? run: python scripts/check_api.py --update")
    return 1


if __name__ == "__main__":
    if str(REPO_ROOT / "src") not in sys.path:
        sys.path.insert(0, str(REPO_ROOT / "src"))
    sys.exit(main())
