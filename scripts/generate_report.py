"""Regenerate every table and figure and write a plain-text report.

This is the script behind EXPERIMENTS.md: it runs each experiment at the
given context scale and prints the formatted tables/series, so the measured
numbers recorded in the documentation can be refreshed with one command.

Usage:
    python scripts/generate_report.py [--scale 64] [--samples 2] [--out report.txt]
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.experiments import (
    CacheStudyConfig,
    ContextScale,
    Fig3Config,
    Fig9Config,
    Fig10Config,
    Fig11Config,
    Fig12Config,
    Fig13Config,
    format_cache_study,
    format_fig3,
    format_fig9,
    format_fig10,
    format_fig11,
    format_fig12,
    format_fig13,
    format_table1,
    run_cache_study,
    run_fig3,
    run_fig9,
    run_fig10,
    run_fig11_ablation,
    run_fig11_methods,
    run_fig12,
    run_fig13_infinigen,
    run_fig13_quest,
    run_table1,
)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=int, default=64, help="context down-scale factor")
    parser.add_argument("--samples", type=int, default=2, help="samples per task")
    parser.add_argument("--out", type=str, default=None, help="write the report to a file")
    args = parser.parse_args()

    scale = ContextScale(args.scale)
    sections: list[str] = [
        f"ClusterKV reproduction report (context scale 1/{args.scale}, "
        f"{args.samples} samples per task)"
    ]

    def section(title, body, started):
        sections.append(f"\n### {title}  [{time.time() - started:.1f}s]\n{body}")

    t = time.time()
    fig3 = run_fig3(Fig3Config(scale=scale))
    section("Fig. 3 motivation", format_fig3(fig3), t)

    t = time.time()
    fig9 = run_fig9(Fig9Config(scale=scale, num_samples=args.samples))
    section("Fig. 9 LongBench analogues", format_fig9(fig9), t)

    t = time.time()
    table1 = run_table1(fig9=fig9)
    section("Table I averages", format_table1(table1), t)

    t = time.time()
    fig10 = run_fig10(Fig10Config(scale=scale, num_samples=args.samples))
    section("Fig. 10 perplexity", format_fig10(fig10), t)

    t = time.time()
    fig11_cfg = Fig11Config(scale=scale, decode_steps=8)
    fig11a = run_fig11_methods(fig11_cfg)
    section("Fig. 11a recall by method", format_fig11(fig11a, "[Fig. 11a]"), t)

    t = time.time()
    fig11b = run_fig11_ablation(fig11_cfg)
    section("Fig. 11b ClusterKV ablation", format_fig11(fig11b, "[Fig. 11b]"), t)

    t = time.time()
    fig12 = run_fig12(Fig12Config())
    section("Fig. 12 latency vs full KV", format_fig12(fig12), t)

    t = time.time()
    fig13 = format_fig13(run_fig13_infinigen(Fig13Config()), run_fig13_quest(Fig13Config()))
    section("Fig. 13 vs SoTA methods", fig13, t)

    t = time.time()
    cache = run_cache_study(CacheStudyConfig(scale=scale))
    section("Sec. V-C cache study", format_cache_study(cache), t)

    report = "\n".join(sections)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(report + "\n")
    print(report)
    return 0


if __name__ == "__main__":
    sys.exit(main())
