#!/usr/bin/env python
"""Docstring-coverage check for the public API under ``src/repro``.

Walks every module and reports public objects without docstrings:

* modules (the module-level docstring),
* public classes (name not starting with ``_``),
* public functions and methods (name not starting with ``_``; dunder
  methods other than ``__init__`` are exempt, as is any function nested
  inside another function).

Run directly (exits non-zero when coverage is incomplete)::

    python scripts/check_docs.py

or through the tier-1 suite via ``tests/test_docstring_coverage.py``, which
fails with the same listing.
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
SOURCE_ROOT = REPO_ROOT / "src" / "repro"


def _is_public(name: str) -> bool:
    return not name.startswith("_")


def _has_docstring(node: ast.AST) -> bool:
    return ast.get_docstring(node) is not None


def _check_function(
    node: ast.FunctionDef | ast.AsyncFunctionDef, scope: str, missing: list[str]
) -> None:
    name = node.name
    if name.startswith("__") and name.endswith("__"):
        return  # dunders document themselves through the data model
    if not _is_public(name):
        return
    if not _has_docstring(node):
        missing.append(f"{scope}.{name} (function)")


def _check_class(node: ast.ClassDef, scope: str, missing: list[str]) -> None:
    if not _is_public(node.name):
        return
    qualified = f"{scope}.{node.name}"
    if not _has_docstring(node):
        missing.append(f"{qualified} (class)")
    for child in node.body:
        if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
            _check_function(child, qualified, missing)


def check_module(path: Path, module_name: str) -> list[str]:
    """Return the missing-docstring entries of one module file."""
    tree = ast.parse(path.read_text(encoding="utf-8"), filename=str(path))
    missing: list[str] = []
    if not _has_docstring(tree):
        missing.append(f"{module_name} (module)")
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            _check_function(node, module_name, missing)
        elif isinstance(node, ast.ClassDef):
            _check_class(node, module_name, missing)
    return missing


def find_missing_docstrings(source_root: Path = SOURCE_ROOT) -> list[str]:
    """All public objects under ``source_root`` that lack a docstring."""
    missing: list[str] = []
    for path in sorted(source_root.rglob("*.py")):
        relative = path.relative_to(source_root.parent)
        module_name = ".".join(relative.with_suffix("").parts)
        if module_name.endswith(".__init__"):
            module_name = module_name[: -len(".__init__")]
        missing.extend(check_module(path, module_name))
    return missing


def main() -> int:
    """CLI entry point: print missing docstrings, exit 1 if any."""
    missing = find_missing_docstrings()
    if not missing:
        print(f"docstring coverage OK ({SOURCE_ROOT})")
        return 0
    print(f"{len(missing)} public object(s) lack docstrings:")
    for entry in missing:
        print(f"  - {entry}")
    return 1


if __name__ == "__main__":
    sys.exit(main())
