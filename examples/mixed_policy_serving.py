"""Mixed-policy serving: one batch, a different compression method per request.

One ``BatchedEngine.run()`` serves a burst of requests in which every
request carries its own KV compression policy — ClusterKV, Quest,
StreamingLLM and full KV side by side in the same continuous batch.  The
example then re-serves each request homogeneously (a batch containing only
its policy) and verifies the outputs are **bit-identical**: per-request
policies change what each request computes, never how its batch
neighbours decode.

It also shows the two declarative layers this flows through:

* policies are named through the registry (``repro.policies``) as
  ``PolicySpec`` strings, round-trippable to JSON — the same strings the
  CLI accepts via ``repro serve-bench --policy ... --mixed``;
* the ``repro.api.Session`` facade drives everything from one
  ``EngineSpec``.

Run with:  python examples/mixed_policy_serving.py
"""

from __future__ import annotations

import numpy as np

from repro.api import EngineSpec, Session
from repro.model import get_model_config

POLICIES = (
    "clusterkv:tokens_per_cluster=24,decode_window=24,decode_clusters=2,num_sink_tokens=8",
    "quest:page_size=16",
    "streaming_llm",
    "full",
)
NUM_REQUESTS = 8
PROMPT_LEN = 48

SPEC = EngineSpec(
    model="serve-sim",
    policy="full",  # session default; every request overrides it below
    budget=32,
    max_new_tokens=24,
    num_full_layers=1,
    num_sink_tokens=8,
    max_batch_size=NUM_REQUESTS,
    max_prefills_per_step=NUM_REQUESTS,
)


def make_prompts() -> list[np.ndarray]:
    """Deterministic random prompts shared by both serving modes."""
    rng = np.random.default_rng(7)
    vocab = get_model_config(SPEC.model).vocab_size
    return [
        rng.integers(4, vocab, size=PROMPT_LEN).astype(np.int64)
        for _ in range(NUM_REQUESTS)
    ]


def main() -> None:
    prompts = make_prompts()
    assignments = [POLICIES[i % len(POLICIES)] for i in range(NUM_REQUESTS)]

    # ------------------------------------------------------------------
    # 1. One heterogeneous batch: every request brings its own policy.
    # ------------------------------------------------------------------
    session = Session(SPEC)
    for i, (prompt, policy) in enumerate(zip(prompts, assignments)):
        session.submit(prompt, request_id=f"r{i}", policy=policy)
    report = session.run()

    print("mixed batch: one BatchedEngine.run(), four policies")
    print(f"  engine steps: {report.engine_steps}")
    print(f"  mean occupancy: {report.mean_batch_occupancy:.1f}")
    print(f"  tokens: {report.total_generated_tokens}")
    descriptions = report.policy_descriptions()
    for i in range(NUM_REQUESTS):
        name = descriptions[f"r{i}"]["name"]
        tokens = len(report.results()[f"r{i}"].output_ids)
        print(f"  r{i}: {name:14s} {tokens} tokens")

    # ------------------------------------------------------------------
    # 2. Homogeneous control runs: same prompts, one policy per engine.
    # ------------------------------------------------------------------
    mismatches = 0
    for policy in POLICIES:
        control = Session(SPEC)
        indices = [i for i, assigned in enumerate(assignments) if assigned == policy]
        for i in indices:
            control.submit(prompts[i], request_id=f"r{i}", policy=policy)
        control_results = control.run().results()
        for i in indices:
            mixed = report.results()[f"r{i}"]
            homogeneous = control_results[f"r{i}"]
            identical = (
                mixed.output_ids == homogeneous.output_ids
                and mixed.output_logprobs == homogeneous.output_logprobs
            )
            mismatches += 0 if identical else 1

    print()
    if mismatches:
        raise SystemExit(f"{mismatches} request(s) diverged between mixed and homogeneous runs")
    print(
        "verified: all requests are bit-identical (tokens and logprobs) to "
        "homogeneous runs of their policy"
    )
    print()
    print("same thing from the command line:")
    print(
        "  python -m repro serve-bench --mixed "
        + " ".join(f"--policy {policy.split(':')[0]}" for policy in POLICIES[:3])
    )


if __name__ == "__main__":
    main()
