"""Concurrent serving: many requests, one model, continuous batching.

The example submits a burst of generation requests with mixed prompt and
output lengths to the :class:`repro.serving.BatchedEngine`, serves them
under a tight global KV-memory budget with ClusterKV compression, and
prints the scheduling timeline (admission/finish steps, queue delays, batch
occupancy) plus the shared memory-tier accounting.  It then re-serves the
same requests one at a time to show the throughput gain and that every
request's output is unchanged by batching.

Run with:  python examples/concurrent_serving.py
"""

from __future__ import annotations

import time

import numpy as np

from repro import (
    BatchedEngine,
    ClusterKVConfig,
    ClusterKVSelector,
    GenerationConfig,
    InferenceEngine,
    SchedulerConfig,
    TransformerModel,
    get_model_config,
)

NUM_REQUESTS = 12
MAX_BATCH = 4
BUDGET = 48


def main() -> None:
    # 1. One model, one compression method, shared by all requests.
    model = TransformerModel(get_model_config("serve-sim"))
    generation_config = GenerationConfig(
        budget=BUDGET, max_new_tokens=32, num_full_layers=1, num_sink_tokens=8
    )

    def clusterkv() -> ClusterKVSelector:
        return ClusterKVSelector(
            ClusterKVConfig(
                tokens_per_cluster=32, decode_window=32, decode_clusters=2,
                num_sink_tokens=8,
            )
        )

    # 2. A burst of requests with mixed prompt/output lengths.  The KV
    #    budget of ~3 full-size requests is tighter than the 4 batch slots,
    #    so admission is gated by memory: later requests wait until earlier
    #    ones retire and release their KV buffers.
    rng = np.random.default_rng(0)
    prompts = [
        rng.integers(4, model.config.vocab_size, size=int(length)).astype(np.int64)
        for length in rng.integers(48, 128, size=NUM_REQUESTS)
    ]
    kv_per_token = model.config.kv_bytes_per_token()
    kv_budget = 3 * (128 + 32) * kv_per_token

    engine = BatchedEngine(
        model,
        clusterkv(),
        generation_config,
        SchedulerConfig(
            max_batch_size=MAX_BATCH, max_prefills_per_step=2,
            kv_budget_bytes=kv_budget,
        ),
    )
    for prompt in prompts:
        engine.submit(prompt)

    start = time.perf_counter()
    report = engine.run()
    batched_seconds = time.perf_counter() - start

    print(f"served {len(report.completed)} requests in {report.engine_steps} engine steps")
    print(f"mean batch occupancy : {report.mean_batch_occupancy:.2f} / {MAX_BATCH}")
    print(f"peak CPU-tier KV     : {report.peak_cpu_bytes / 1024:.1f} KiB "
          f"(budget {kv_budget / 1024:.1f} KiB)")
    print(f"bytes moved over PCIe: {report.ledger.total_bytes() / 1024:.1f} KiB")
    print()
    print("request  prompt  tokens  admitted  finished  queue-delay")
    for completed in report.completed:
        print(f"{completed.request.request_id:8s} "
              f"{completed.result.prompt_length:6d} "
              f"{len(completed.result.output_ids):7d} "
              f"{completed.admitted_at_step:9d} "
              f"{completed.finished_at_step:9d} "
              f"{completed.queue_delay_steps:12d}")

    # 3. Serve the same requests sequentially: same outputs, lower throughput.
    start = time.perf_counter()
    sequential = [
        InferenceEngine(model, clusterkv(), generation_config).generate(prompt)
        for prompt in prompts
    ]
    sequential_seconds = time.perf_counter() - start

    matches = sum(
        result.output_ids == report.results()[f"req-{index}"].output_ids
        for index, result in enumerate(sequential)
    )
    total_tokens = report.total_generated_tokens
    print()
    print(f"outputs identical to sequential runs: {matches}/{NUM_REQUESTS}")
    print(f"sequential throughput: {total_tokens / sequential_seconds:7.1f} tok/s")
    print(f"batched throughput   : {total_tokens / batched_seconds:7.1f} tok/s "
          f"({sequential_seconds / batched_seconds:.2f}x)")


if __name__ == "__main__":
    main()
