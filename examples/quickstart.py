"""Quickstart: compress the KV cache of a long-context question with ClusterKV.

The example builds the synthetic long-context model, generates a document
with a planted answer, and answers the question twice — once with the full
KV cache and once with ClusterKV under a small token budget — printing the
answers, the selection statistics and the bytes moved between memory tiers.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    ClusterKVConfig,
    ClusterKVSelector,
    FullKVSelector,
    GenerationConfig,
    InferenceEngine,
    SyntheticTokenizer,
    TransformerModel,
    get_model_config,
)
from repro.metrics import qa_f1_score
from repro.workloads import LONGBENCH_TASKS, LongBenchTaskGenerator, TopicModel

CONTEXT_LENGTH = 1024
BUDGET = 96


def main() -> None:
    # 1. Build the model substrate (deterministic synthetic weights).
    model_config = get_model_config("glm-sim")
    model = TransformerModel(model_config)
    tokenizer = SyntheticTokenizer(model_config.vocab_size)
    topic_model = TopicModel(tokenizer, seed=0)

    # 2. Generate a long document with a planted answer and a question.
    generator = LongBenchTaskGenerator(
        tokenizer, LONGBENCH_TASKS["multifieldqa"], topic_model=topic_model, seed=0
    )
    sample = generator.generate_sample(CONTEXT_LENGTH)
    print(f"context length : {sample.prompt_length} tokens")
    print(f"reference      : {sample.reference_answer}")

    # 3. Answer with the full KV cache.
    full_engine = InferenceEngine(
        model,
        FullKVSelector(),
        GenerationConfig(budget=None, max_new_tokens=sample.answer_length),
    )
    full_result = full_engine.generate(sample.prompt_ids)
    full_answer = tokenizer.decode(full_result.output_ids)
    print(f"full KV answer : {full_answer}"
          f"  (F1 {qa_f1_score(full_answer, sample.reference_answer):.2f})")

    # 4. Answer with ClusterKV under a small budget.
    clusterkv = ClusterKVSelector(
        ClusterKVConfig(tokens_per_cluster=20, decode_window=20, num_sink_tokens=4)
    )
    compressed_engine = InferenceEngine(
        model,
        clusterkv,
        GenerationConfig(budget=BUDGET, max_new_tokens=sample.answer_length,
                         num_full_layers=2, num_sink_tokens=4),
    )
    compressed_result = compressed_engine.generate(sample.prompt_ids)
    compressed_answer = tokenizer.decode(compressed_result.output_ids)
    print(f"ClusterKV (B={BUDGET}) : {compressed_answer}"
          f"  (F1 {qa_f1_score(compressed_answer, sample.reference_answer):.2f})")

    # 5. Inspect what the compression did.
    stats = compressed_result.selector_stats
    fetched = compressed_result.ledger.total_bytes()
    print()
    print("ClusterKV selection statistics")
    print(f"  selections served      : {stats.num_selections}")
    print(f"  tokens selected (total): {stats.selected_tokens}")
    print(f"  cluster-cache hit rate : {100 * compressed_result.cache_hit_rate:.1f}%")
    print(f"  bytes moved over PCIe  : {fetched / 1024:.1f} KiB")
    print(f"  KV cache footprint     : {compressed_result.kv_cache_bytes / 1024:.1f} KiB")
    budget_fraction = BUDGET / sample.prompt_length
    print(f"  attention budget       : {BUDGET} tokens"
          f" ({100 * budget_fraction:.1f}% of the context)")


if __name__ == "__main__":
    np.set_printoptions(precision=3, suppress=True)
    main()
