"""Traffic simulation: bursty arrivals, two replicas, SLO metrics.

The example builds a bursty open-loop workload that mixes ClusterKV and
full-KV requests, routes it across two serving replicas with
join-shortest-queue, and simulates it on the virtual perfmodel clock —
every engine step is priced on the analytical latency model at the
paper's true scale, so the numbers below are machine-independent and
bit-reproducible for a given seed.  It prints the TrafficReport table
(TTFT/TPOT/queue-wait/E2E percentiles, goodput under the SLO deadlines),
then demonstrates what queue-aware routing buys on a skewed workload
(one long-running request plus a light stream, served by capacity-1
replicas where queues are real), and finally saves/replays the workload
as a JSONL trace.

Run with:  python examples/traffic_simulation.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

import numpy as np

from repro import EngineSpec, SLOSpec, TrafficConfig, simulate
from repro.traffic import (
    OnOffArrivals,
    RequestShape,
    TrafficRequest,
    format_traffic_report,
    generate_traffic,
    load_trace,
    save_trace,
)

NUM_REQUESTS = 16
SEED = 0


def build_workload():
    """Bursty on/off arrivals over a 50/50 clusterkv / full-KV shape mix."""
    arrivals = OnOffArrivals(rate=0.5, burstiness=6.0, mean_burst=4.0)
    times = arrivals.times(NUM_REQUESTS, seed=SEED)
    shapes = [
        RequestShape(
            prompt_len_range=(48, 96),
            max_new_tokens=96,
            policy="clusterkv:tokens_per_cluster=32,decode_window=32,"
            "decode_clusters=2,num_sink_tokens=8",
        ),
        RequestShape(prompt_len_range=(48, 96), max_new_tokens=96, policy="full"),
    ]
    return generate_traffic(shapes, times, vocab_size=2048, seed=SEED)


def build_config(router: str) -> TrafficConfig:
    """Two serve-sim replicas behind the given routing strategy."""
    return TrafficConfig(
        engine=EngineSpec(
            model="serve-sim",
            policy="clusterkv",
            budget=48,
            max_new_tokens=96,
            num_full_layers=1,
            num_sink_tokens=8,
            max_batch_size=4,
            max_prefills_per_step=4,
        ),
        num_replicas=2,
        router=router,
        slo=SLOSpec(ttft_s=2.5, tpot_s=0.15),
    )


def skewed_workload() -> list[TrafficRequest]:
    """One long-decoding monster plus a paced stream of light requests."""
    rng = np.random.default_rng(7)
    requests = [
        TrafficRequest(
            request_id="monster",
            arrival_time_s=0.0,
            prompt_ids=rng.integers(4, 2048, size=48).astype(np.int64),
            max_new_tokens=400,
        )
    ]
    for index in range(10):
        requests.append(
            TrafficRequest(
                request_id=f"light{index}",
                arrival_time_s=0.3 + 1.5 * index,
                prompt_ids=rng.integers(4, 2048, size=48).astype(np.int64),
                max_new_tokens=24,
            )
        )
    return requests


def skewed_config(router: str) -> TrafficConfig:
    """Capacity-1 replicas: a request routed behind the monster queues."""
    return TrafficConfig(
        engine=EngineSpec(model="serve-sim", max_batch_size=1, max_prefills_per_step=1),
        num_replicas=2,
        router=router,
        slo=SLOSpec(ttft_s=2.5, tpot_s=0.08),
    )


def main() -> None:
    requests = build_workload()
    print(
        f"workload: {len(requests)} requests, bursty on/off arrivals over "
        f"{requests[-1].arrival_time_s:.1f}s, mixing clusterkv and full-KV policies"
    )
    print()

    # 1. Join-shortest-queue across two replicas on the virtual clock.
    jsq_report = simulate(requests, build_config("jsq"))
    print(format_traffic_report(jsq_report))
    print()

    # 2. Routing under skew: a monster request pins one capacity-1 replica;
    #    blind round-robin keeps queueing light requests behind it, while
    #    join-shortest-queue steers the stream to the free replica.
    skew_jsq = simulate(skewed_workload(), skewed_config("jsq"))
    skew_rr = simulate(skewed_workload(), skewed_config("round_robin"))
    print(
        "skewed trace (monster + light stream, capacity-1 replicas):\n"
        f"  jsq         goodput {skew_jsq.goodput_tokens_per_s:6.1f} tok/s, "
        f"attainment {skew_jsq.slo_attainment:.0%}\n"
        f"  round_robin goodput {skew_rr.goodput_tokens_per_s:6.1f} tok/s, "
        f"attainment {skew_rr.slo_attainment:.0%}"
    )
    print()

    # 3. Record the workload as a JSONL trace and replay it: byte-identical
    #    report, which is the reproducibility contract of the traffic layer.
    with tempfile.TemporaryDirectory() as tmp:
        trace_path = Path(tmp) / "bursty.jsonl"
        save_trace(trace_path, requests, include_prompt_ids=True)
        replayed = load_trace(trace_path, vocab_size=2048, seed=SEED)
        replay_report = simulate(replayed, build_config("jsq"))
        identical = replay_report.to_json() == jsq_report.to_json()
        print(
            f"trace replay from {trace_path.name}: "
            f"{'byte-identical report' if identical else 'MISMATCH'}"
        )
        assert identical


if __name__ == "__main__":
    main()
