"""Language modelling with a compressed KV cache (paper Fig. 10, miniature).

Scores a book-like synthetic corpus (the PG19 analogue) under every method
with a fixed KV budget and prints perplexity as a function of the input
length.  ClusterKV should track the full-KV curve closely; Quest should
deviate the most.

Run with:  python examples/language_modeling.py
"""

from __future__ import annotations

from repro.experiments import ContextScale, Fig10Config, format_fig10, run_fig10


def main() -> None:
    config = Fig10Config(
        paper_lengths=(8000, 16000, 32000),
        num_samples=2,
        scored_tokens=32,
        scale=ContextScale(32),
    )
    result = run_fig10(config)
    print(format_fig10(result))
    print()
    for method in ("clusterkv", "infinigen", "quest"):
        deviation = result.deviation_from_full(method)
        print(f"perplexity deviation of {method:10s} vs full KV: {deviation:+.3f}")


if __name__ == "__main__":
    main()
