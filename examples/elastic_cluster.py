"""Elastic cluster serving walkthrough: autoscaling, admission, failures.

Serves one seeded bursty workload four ways on the virtual perfmodel
clock and compares the outcomes:

1. a static minimum fleet (the baseline the autoscaler must beat);
2. the same fleet under the ``slo_attainment`` autoscaler, which boots
   replicas (paying the perfmodel's warm-up cost) while the completion
   window misses the SLO;
3. the static fleet with ``queue_deadline`` admission control, which
   rejects requests early instead of letting them blow p99;
4. the elastic fleet with a replica kill injected mid-run — the lost
   requests are re-dispatched from their prompts and reproduce their
   failure-free outputs exactly.

Run with::

    PYTHONPATH=src python examples/elastic_cluster.py
"""

from dataclasses import replace

from repro.cluster import (
    ClusterBenchConfig,
    ClusterSimulator,
    FailureEvent,
    FailurePlan,
    format_cluster_report,
    run_cluster_bench,
)
from repro.traffic.bench import build_bench_requests


def main() -> None:
    """Compare static, autoscaled, admission-gated and failure-injected runs."""
    base = ClusterBenchConfig(
        policies=("clusterkv",),
        rate=0.8,
        arrivals="onoff",
        burstiness=4.0,
        num_requests=18,
        min_replicas=1,
        max_replicas=4,
        autoscaler="slo_attainment",
        seed=1,
    )

    static = run_cluster_bench(replace(base, autoscaler="static", max_replicas=1))
    elastic = run_cluster_bench(base)
    admitted = run_cluster_bench(
        replace(
            base,
            autoscaler="static",
            max_replicas=1,
            admission="queue_deadline:deadline_s=2.5,service_tokens_per_s=60",
        )
    )

    print("=== static minimum fleet (1 replica) ===")
    print(format_cluster_report(static))
    print()
    print("=== elastic fleet (slo_attainment autoscaler, up to 4 replicas) ===")
    print(format_cluster_report(elastic))
    print()
    print("=== static fleet + queue_deadline admission control ===")
    print(format_cluster_report(admitted))
    print()
    ratio = elastic.goodput_tokens_per_s / max(static.goodput_tokens_per_s, 1e-9)
    print(
        f"autoscaling goodput gain: {ratio:.2f}x "
        f"({static.goodput_tokens_per_s:.1f} -> "
        f"{elastic.goodput_tokens_per_s:.1f} tok/s)"
    )
    print(
        f"admission control: {admitted.num_rejected} rejected, p99 TTFT "
        f"{admitted.latency_summary()['ttft_s']['p99']:.2f}s vs "
        f"{static.latency_summary()['ttft_s']['p99']:.2f}s unprotected"
    )

    # Failure injection: kill a replica mid-run; outputs do not change.
    requests = build_bench_requests(base)
    plan = FailurePlan(events=(FailureEvent(time_s=10.0, slot=0),))
    clean_sim = ClusterSimulator(base.cluster_config())
    clean_sim.run(requests)
    failed_config = replace(base, failures=plan)
    failed_sim = ClusterSimulator(failed_config.cluster_config())
    failed_report = failed_sim.run(requests)

    clean_tokens = {
        rid: list(c.result.output_ids) for rid, c in clean_sim.completed.items()
    }
    failed_tokens = {
        rid: list(c.result.output_ids) for rid, c in failed_sim.completed.items()
    }
    print()
    print("=== failure injection (kill one replica at t=10s) ===")
    for event in failed_report.failures:
        print(
            f"killed replica {event['replica']} at t={event['time_s']:.1f}s, "
            f"lost {event['lost_tokens']} decoded tokens, "
            f"retried {len(event['retried'])} request(s)"
        )
    print(
        "token sequences identical to the failure-free run:",
        clean_tokens == failed_tokens,
    )


if __name__ == "__main__":
    main()
