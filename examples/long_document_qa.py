"""Long-document QA: compare KV compression methods on LongBench analogues.

A miniature version of the paper's Fig. 9 / Table I experiment: every method
(Full KV, ClusterKV, Quest, InfiniGen) answers questions over long synthetic
documents under several KV budgets, and the per-task and average scores are
printed.

Run with:  python examples/long_document_qa.py
"""

from __future__ import annotations

from repro.experiments import (
    ContextScale,
    Fig9Config,
    format_fig9,
    format_table1,
    run_table1,
)

# Two representative tasks (one single-doc, one multi-hop) keep the example
# under a couple of minutes; add more task names from LONGBENCH_TASKS to
# reproduce the full figure.
TASKS = ("multifieldqa", "hotpotqa")


def main() -> None:
    config = Fig9Config(
        tasks=TASKS,
        paper_budgets=(256, 1024, 2048),
        num_samples=3,
        scale=ContextScale(32),
    )
    result = run_table1(config)

    print(format_fig9(result.fig9))
    print()
    print(format_table1(result))
    print()
    tight = min(result.averages["clusterkv"])
    print(
        "At the tightest budget ClusterKV scores "
        f"{result.averages['clusterkv'][tight]:.1f} vs. Quest "
        f"{result.averages['quest'][tight]:.1f} and InfiniGen "
        f"{result.averages['infinigen'][tight]:.1f} "
        f"(full KV: {result.averages['full'][tight]:.1f})."
    )


if __name__ == "__main__":
    main()
