"""Latency and throughput projection at the paper's true scale (Fig. 12/13).

Uses the analytical performance model to project end-to-end latency of
ClusterKV against the full KV cache, Quest and InfiniGen on Llama-3.1-8B and
OPT-6.7B class models running on an NVIDIA Ada 6000, over the same
prompt/decode/budget grid the paper evaluates.

Run with:  python examples/latency_projection.py
"""

from __future__ import annotations

from repro.experiments import (
    CacheStudyConfig,
    Fig12Config,
    Fig13Config,
    format_fig12,
    format_fig13,
    run_fig12,
    run_fig13_infinigen,
    run_fig13_quest,
)
from repro.model import get_reference_architecture
from repro.perfmodel import ADA_6000, LatencyModel


def main() -> None:
    fig12 = run_fig12(Fig12Config())
    print(format_fig12(fig12))
    print()
    print(format_fig13(run_fig13_infinigen(Fig13Config()), run_fig13_quest(Fig13Config())))
    print()

    # Caching study at the paper's hit rates (Sec. V-C).
    arch = get_reference_architecture("llama-3.1-8b")
    model = LatencyModel(arch, ADA_6000)
    no_cache = model.decode_step(
        "clusterkv", 32768, 1024, cache_hit_rate=0.0, cluster_cache_enabled=False
    )
    for history, hit_rate in ((1, 0.63), (2, 0.74)):
        cached = model.decode_step("clusterkv", 32768, 1024, cache_hit_rate=hit_rate)
        gain = no_cache["total"] / cached["total"]
        print(
            f"cluster cache R={history}: hit rate {hit_rate:.0%} -> "
            f"decode throughput x{gain:.2f} vs. direct CPU loading"
        )


if __name__ == "__main__":
    main()
