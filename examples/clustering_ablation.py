"""Ablation of ClusterKV's clustering choices (paper Fig. 11b, miniature).

Measures the recall rate of important tokens for different clustering
distance metrics (cosine vs. L2 vs. inner product) and for different numbers
of prefill clusters C0, on a long NarrativeQA-analogue sample.

Run with:  python examples/clustering_ablation.py
"""

from __future__ import annotations

from repro.experiments import (
    ContextScale,
    Fig11Config,
    format_fig11,
    run_fig11_ablation,
    run_fig11_methods,
)


def main() -> None:
    config = Fig11Config(
        scale=ContextScale(32),
        paper_budgets=(256, 1024, 2048),
        decode_steps=8,
        ablation_cluster_counts=(200, 400, 800),
    )
    methods = run_fig11_methods(config)
    print(format_fig11(methods, "[Fig. 11a] recall rate by method"))
    print()
    ablation = run_fig11_ablation(config)
    print(format_fig11(ablation, "[Fig. 11b] ClusterKV ablation"))
    print()
    largest = max(config.paper_budgets)
    best_metric = max(
        ("cosine", "l2", "ip"),
        key=lambda metric: ablation.curves[f"metric={metric}"][largest],
    )
    print(f"best clustering metric at budget {largest}: {best_metric}")


if __name__ == "__main__":
    main()
