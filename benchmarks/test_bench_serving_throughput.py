"""Serving throughput benchmark: tokens/sec vs. batch size.

Measures the continuous-batching :class:`repro.serving.BatchedEngine`
against one-at-a-time serving of the same requests through the
single-sequence engine, for the paper's method (ClusterKV) and two
baselines.

The acceptance bar is asserted on *step counts*, not wall time: one
engine step executes the per-token transformer matmuls once for the
whole batch, so sequential-over-batched engine steps is the deterministic
measure of what continuous batching amortises (>1.5x at batch 8 over
eight sequential runs).  Wall-clock throughput is still measured and
printed, but only sanity-checked for positivity — under a heavily loaded
host (e.g. the full suite running with parallel workers) wall-clock
ratios flake while the step ratio cannot.

A second benchmark sweeps the batch size to show throughput scaling,
again asserted on the deterministic tokens-per-engine-step.
"""

from conftest import run_once

from repro.serving import ServeBenchConfig, format_serve_bench, run_serve_bench


def test_bench_serving_throughput_batch8(benchmark):
    """Batch-8 continuous batching amortises >1.5x the engine steps."""
    config = ServeBenchConfig(repeats=3)
    results = run_once(benchmark, run_serve_bench, config)
    print()
    print(format_serve_bench(results))
    assert {item.method for item in results} == {"clusterkv", "streaming_llm", "full"}
    for item in results:
        # All requests fit one batch, so occupancy should be nearly full.
        assert item.mean_occupancy > config.max_batch_size * 0.9
        assert item.total_tokens == config.num_requests * config.max_new_tokens
        # Deterministic step accounting: 8 sequential runs take
        # num_requests * max_new_tokens per-token passes, the batch takes
        # ~max_new_tokens engine steps.
        assert item.sequential_engine_steps == (
            config.num_requests * config.max_new_tokens
        )
        assert item.step_speedup > 1.5, (
            f"{item.method}: batching only amortised {item.step_speedup:.2f}x steps"
        )
        # Wall-clock numbers are host-dependent; just require they exist.
        assert item.sequential_tokens_per_second > 0
        assert item.batched_tokens_per_second > 0


def test_bench_serving_batch_size_scaling(benchmark):
    """Tokens per engine step grow with batch size (1 -> 4 -> 8)."""

    def sweep():
        per_step = {}
        for batch in (1, 4, 8):
            config = ServeBenchConfig(
                methods=("clusterkv",),
                num_requests=batch,
                max_batch_size=batch,
                max_new_tokens=48,
                repeats=1,
            )
            item = run_serve_bench(config)[0]
            per_step[batch] = (
                item.tokens_per_batched_step,
                item.batched_tokens_per_second,
            )
        return per_step

    per_step = run_once(benchmark, sweep)
    print()
    for batch, (tokens_per_step, tps) in per_step.items():
        print(
            f"[serving-scaling] batch {batch}: "
            f"{tokens_per_step:.2f} tok/step, {tps:.1f} tok/s"
        )
    assert per_step[8][0] > per_step[4][0] > per_step[1][0]
