"""Serving throughput benchmark: tokens/sec vs. batch size.

Measures the continuous-batching :class:`repro.serving.BatchedEngine`
against one-at-a-time serving of the same requests through the
single-sequence engine, for the paper's method (ClusterKV) and two
baselines.  The acceptance bar is >1.5x generated-token throughput at batch
8 over eight sequential runs; both modes execute the same numerical code,
so the speedup isolates the batching of the per-token transformer matmuls.

A second benchmark sweeps the batch size to show throughput scaling.
"""

from conftest import run_once

from repro.serving import ServeBenchConfig, format_serve_bench, run_serve_bench


def test_bench_serving_throughput_batch8(benchmark):
    """Batch-8 continuous batching beats 8 sequential runs by >1.5x."""
    config = ServeBenchConfig(repeats=3)
    results = run_once(benchmark, run_serve_bench, config)
    print()
    print(format_serve_bench(results))
    assert {item.method for item in results} == {"clusterkv", "streaming_llm", "full"}
    for item in results:
        # All requests fit one batch, so occupancy should be nearly full.
        assert item.mean_occupancy > config.max_batch_size * 0.9
        assert item.total_tokens == config.num_requests * config.max_new_tokens
        assert item.speedup > 1.5, (
            f"{item.method}: batched serving only {item.speedup:.2f}x faster"
        )


def test_bench_serving_batch_size_scaling(benchmark):
    """Tokens/sec grows with batch size (1 -> 4 -> 8)."""

    def sweep():
        throughputs = {}
        for batch in (1, 4, 8):
            config = ServeBenchConfig(
                methods=("clusterkv",),
                num_requests=batch,
                max_batch_size=batch,
                max_new_tokens=48,
                repeats=1,
            )
            item = run_serve_bench(config)[0]
            throughputs[batch] = item.batched_tokens_per_second
        return throughputs

    throughputs = run_once(benchmark, sweep)
    print()
    for batch, tps in throughputs.items():
        print(f"[serving-scaling] batch {batch}: {tps:.1f} tok/s")
    assert throughputs[8] > throughputs[1]
