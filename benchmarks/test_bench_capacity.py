"""Capacity benchmark: the headline tiered-memory claim, pinned.

Under identical GPU→host→SSD tier budgets (``gpu=320KiB, host=448KiB,
ssd=4MiB``), the host-resident ClusterKV policy sustains the pinned
(context 192 × concurrency 3) serving point — paying for its SSD spills
in virtual-clock latency — while the dense ``full`` baseline cannot even
admit it: the GPU tier raises :class:`~repro.memory.CapacityExceeded` at
admission.  The whole sweep is seeded arithmetic on the perfmodel clock,
so the report is byte-reproducible and the checked-in
``BENCH_capacity.json`` (enforced by ``scripts/check_perf.py`` and CI)
pins every number in it.
"""

import json
from pathlib import Path

from conftest import run_once

from repro.capacity import (
    format_capacity_report,
    run_capacity_bench,
)

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_capacity.json"

# The pinned design point of the headline claim.
CONTEXT = 192
CONCURRENCY = 3


def test_bench_capacity_frontier(benchmark):
    """ClusterKV sustains the pinned point where ``full`` exhausts the GPU."""
    report = run_once(benchmark, run_capacity_bench)
    print()
    print(format_capacity_report(report))

    by_key = {
        (p.policy, p.context_tokens, p.concurrency): p for p in report.points
    }
    clusterkv = by_key[("clusterkv", CONTEXT, CONCURRENCY)]
    full = by_key[("full", CONTEXT, CONCURRENCY)]

    # The headline: same budgets, opposite verdicts.
    assert clusterkv.feasible
    assert not full.feasible
    assert full.failed_tier == "gpu"

    # The survivor paid for it: real SSD traffic in both directions,
    # priced into the virtual-clock latency of the run.
    assert clusterkv.transfers["h2s"] > 0
    assert clusterkv.transfers["s2h"] > 0
    assert clusterkv.duration_s > 0.0
    assert clusterkv.peak_bytes["ssd"] > 0

    # Tier peaks respect the configured budgets at every probed point.
    for point in report.points:
        assert point.peak_bytes["gpu"] <= 320 * 1024
        assert point.peak_bytes["cpu"] <= 448 * 1024
        assert point.peak_bytes["ssd"] <= 4 * 1024**2

    # Frontier semantics: clusterkv holds the full grid; full degrades
    # with concurrency.
    assert report.frontier["clusterkv"] == {"1": 192, "2": 192, "3": 192}
    assert report.frontier["full"] == {"1": 192, "2": 128, "3": 64}


def test_bench_capacity_byte_reproducible(benchmark):
    """Two sweeps emit byte-identical JSON, matching BENCH_capacity.json."""
    report = run_once(benchmark, run_capacity_bench)
    again = run_capacity_bench()
    assert report.to_json() == again.to_json()

    baseline = json.loads(BENCH_PATH.read_text(encoding="utf-8"))
    assert report.to_dict() == baseline["deterministic"]
