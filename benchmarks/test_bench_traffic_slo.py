"""Traffic SLO smoke benchmark: tail latency and routing under load.

Runs the open-loop traffic simulator on the tiny ``serve-sim`` model with
the virtual perfmodel clock (pure arithmetic — fast and deterministic) and
asserts the headline properties of the traffic and cluster layers:

* at a sustainable arrival rate, p99 TTFT stays under a generous bound
  and most requests meet the default SLO;
* on a skewed trace (bursts alternating heavy and light requests, a
  parity trap for load-blind routing) join-shortest-queue achieves at
  least the goodput of round-robin;
* under a seeded bursty trace, the ``slo_attainment`` autoscaler beats
  the static minimum fleet by a pinned goodput factor at equal
  per-replica configuration, byte-reproducibly.
"""

import numpy as np

from conftest import run_once

from repro.api import EngineSpec
from repro.traffic import (
    SLOSpec,
    TrafficBenchConfig,
    TrafficConfig,
    TrafficRequest,
    build_router,
    format_traffic_report,
    run_traffic_bench,
    simulate,
)


def test_bench_traffic_p99_ttft(benchmark):
    """Moderate Poisson load on 2 replicas keeps p99 TTFT bounded."""
    config = TrafficBenchConfig(
        num_requests=12,
        rate=0.5,
        num_replicas=2,
        router="jsq",
        seed=0,
    )
    report = run_once(benchmark, run_traffic_bench, config)
    print()
    print(format_traffic_report(report))
    assert report.num_requests == 12
    summary = report.latency_summary()
    # Prefill of a ~48-96 token prompt costs ~1s at paper scale; 4s is a
    # generous bound that still catches queueing pathologies.
    assert summary["ttft_s"]["p99"] < 4.0
    assert report.slo_attainment > 0.5
    assert report.goodput_tokens_per_s > 0.0


def _skewed_trace(vocab_size: int = 2048) -> list[TrafficRequest]:
    """One long-decoding monster plus a paced stream of light requests.

    The monster occupies its replica for hundreds of slow decode steps;
    the lights arrive just under one replica's service rate.  Blind
    round-robin keeps sending every other light behind the monster, where
    it queues for the monster's whole residual decode; queue-aware
    routing sees the backlog and steers the stream to the free replica.
    """
    rng = np.random.default_rng(7)
    requests = [
        TrafficRequest(
            request_id="monster",
            arrival_time_s=0.0,
            prompt_ids=rng.integers(4, vocab_size, size=48).astype(np.int64),
            max_new_tokens=400,
        )
    ]
    for index in range(10):
        requests.append(
            TrafficRequest(
                request_id=f"light{index}",
                arrival_time_s=0.3 + 1.5 * index,
                prompt_ids=rng.integers(4, vocab_size, size=48).astype(np.int64),
                max_new_tokens=24,
            )
        )
    return requests


def test_bench_jsq_goodput_vs_round_robin(benchmark):
    """Join-shortest-queue >= round-robin goodput on a skewed trace."""

    def compare():
        results = {}
        for router in ("round_robin", "jsq"):
            # Batch capacity 1 per replica makes queueing real: a request
            # routed behind the monster waits out its whole decode.
            config = TrafficConfig(
                engine=EngineSpec(max_batch_size=1, max_prefills_per_step=1),
                num_replicas=2,
                router=router,
                slo=SLOSpec(ttft_s=2.5, tpot_s=0.08),
            )
            results[router] = simulate(
                _skewed_trace(), config, router=build_router(router)
            )
        return results

    results = run_once(benchmark, compare)
    print()
    for router, report in results.items():
        print(f"--- router={router}")
        print(format_traffic_report(report))
    jsq = results["jsq"]
    rr = results["round_robin"]
    assert jsq.goodput_tokens_per_s >= rr.goodput_tokens_per_s
    # The skew costs round-robin real goodput, not a rounding error: JSQ
    # keeps the light stream off the monster's replica entirely.
    assert jsq.goodput_tokens_per_s > rr.goodput_tokens_per_s * 1.2
    assert jsq.slo_attainment > rr.slo_attainment


def test_bench_chunked_prefill_p99_ttft(benchmark):
    """Chunked prefill cuts p99 TTFT at equal goodput under Poisson load.

    A single replica serves a Poisson stream mixing short and long prompts
    (up to 512 simulated tokens — 32k at paper scale).  Monolithic prefill
    freezes the decode batch for every long arrival; with a 64-token
    per-step chunk budget the same workload interleaves prefill chunks with
    decode steps.  On the deterministic perfmodel clock the chunked run
    must strictly reduce p99 TTFT while giving up none of the goodput.
    """
    from dataclasses import replace

    base = TrafficBenchConfig(
        policies=("clusterkv",),
        rate=0.1,
        num_requests=16,
        num_replicas=1,
        router="round_robin",
        prompt_len_min=32,
        prompt_len_max=512,
        max_new_tokens=64,
        budget=48,
        slo=SLOSpec(ttft_s=20.0, tpot_s=0.35),
        seed=3,
    )

    def run_pair():
        monolithic = run_traffic_bench(replace(base, prefill_chunk=None))
        chunked = run_traffic_bench(replace(base, prefill_chunk=64))
        return monolithic, chunked

    monolithic, chunked = run_once(benchmark, run_pair)
    print()
    print("[monolithic]")
    print(format_traffic_report(monolithic))
    print("[chunked, 64 tokens/step]")
    print(format_traffic_report(chunked))

    mono_p99 = monolithic.latency_summary()["ttft_s"]["p99"]
    chunk_p99 = chunked.latency_summary()["ttft_s"]["p99"]
    assert chunk_p99 < mono_p99, (
        f"chunked prefill p99 TTFT {chunk_p99:.2f}s is not below the "
        f"monolithic {mono_p99:.2f}s"
    )
    # Equal goodput: chunking must not sacrifice SLO-attaining throughput.
    assert chunked.goodput_tokens_per_s >= monolithic.goodput_tokens_per_s
    # Identical workload either way: same tokens come out of both runs.
    assert chunked.total_output_tokens == monolithic.total_output_tokens


def _shared_preamble_trace(
    count: int = 16, preamble_tokens: int = 128, vocab_size: int = 2048
) -> list[TrafficRequest]:
    """A paced request stream whose prompts share one long preamble.

    Models the dominant production pattern for prefix caching: every
    request carries the same system prompt / few-shot preamble followed
    by a short unique question.  Pacing (one arrival per 0.8s) lets each
    leader finish prefilling before the next arrival matches the cache.
    """
    rng = np.random.default_rng(19)
    preamble = rng.integers(4, vocab_size, size=preamble_tokens).astype(np.int64)
    return [
        TrafficRequest(
            request_id=f"shared{index:03d}",
            arrival_time_s=0.8 * index,
            prompt_ids=np.concatenate(
                [preamble, rng.integers(4, vocab_size, size=17 + index).astype(np.int64)]
            ),
            max_new_tokens=16,
        )
        for index in range(count)
    ]


def test_bench_prefix_cache_ttft(benchmark):
    """Prefix caching strictly cuts mean TTFT on a shared-preamble trace.

    The same trace is served twice on one replica: once with the
    cross-request prefix cache (radix tree, 32-token blocks) and once
    without.  Every follower shares the 128-token preamble, so with the
    cache only the short unique suffix is prefilled — the attach is
    priced as a PCIe KV transfer on the perfmodel clock, orders of
    magnitude cheaper than the prefill GEMMs it replaces.  The cached run
    must report a hit rate of at least one half, emit exactly the same
    tokens, and land a strictly lower mean TTFT, byte-reproducibly.
    """

    def spec(cache_tokens):
        """Single-replica engine spec with the cache set to ``cache_tokens``."""
        return EngineSpec(
            max_batch_size=4,
            max_prefills_per_step=1,
            prefix_cache_tokens=cache_tokens,
            prefix_block_tokens=32,
        )

    def compare():
        trace = _shared_preamble_trace()
        cached = simulate(trace, TrafficConfig(engine=spec(8192), num_replicas=1))
        cached_again = simulate(trace, TrafficConfig(engine=spec(8192), num_replicas=1))
        plain = simulate(trace, TrafficConfig(engine=spec(None), num_replicas=1))
        return cached, cached_again, plain

    cached, cached_again, plain = run_once(benchmark, compare)
    print()
    print("--- prefix cache enabled (8192-token budget)")
    print(format_traffic_report(cached))
    print("--- prefix cache disabled")
    print(format_traffic_report(plain))

    # Byte-reproducible on the virtual clock, cache included.
    assert cached.to_json() == cached_again.to_json()
    # Same tokens out either way: caching is latency, never content.
    assert cached.total_output_tokens == plain.total_output_tokens

    stats = cached.prefix_cache
    assert stats["hit_rate"] >= 0.5
    # The attached preamble KV replaced real prefill work on every hit.
    assert stats["hit_tokens"] >= 128 * (len(cached.requests) - 1)

    cached_mean = float(np.mean([m.ttft_s for m in cached.requests]))
    plain_mean = float(np.mean([m.ttft_s for m in plain.requests]))
    assert cached_mean < plain_mean, (
        f"prefix-cache mean TTFT {cached_mean:.3f}s is not below the "
        f"uncached {plain_mean:.3f}s"
    )
    cached_p99 = cached.latency_summary()["ttft_s"]["p99"]
    plain_p99 = plain.latency_summary()["ttft_s"]["p99"]
    assert cached_p99 <= plain_p99


def test_bench_cluster_autoscaler_goodput(benchmark):
    """Elastic fleet >= 1.3x static-minimum goodput on a seeded bursty trace.

    The same on/off bursty workload is served twice at equal per-replica
    configuration: once by the static minimum fleet (one replica, the
    floor the autoscaler is never allowed to go below) and once by an
    elastic fleet whose ``slo_attainment`` autoscaler may grow to four
    replicas, paying the perfmodel's replica warm-up cost for each boot.
    During bursts the static replica queues requests past their TTFT
    deadlines, so its goodput (tokens from SLO-conforming requests only)
    collapses; the elastic fleet boots capacity as soon as the completion
    window shows misses and lands the later arrivals within the SLO.
    """
    from dataclasses import replace

    from repro.cluster import ClusterBenchConfig, format_cluster_report, run_cluster_bench

    base = ClusterBenchConfig(
        policies=("clusterkv",),
        rate=0.8,
        arrivals="onoff",
        burstiness=4.0,
        num_requests=18,
        min_replicas=1,
        max_replicas=4,
        autoscaler="slo_attainment",
        seed=1,
    )

    def compare():
        static = run_cluster_bench(replace(base, autoscaler="static", max_replicas=1))
        elastic = run_cluster_bench(base)
        elastic_again = run_cluster_bench(base)
        return static, elastic, elastic_again

    static, elastic, elastic_again = run_once(benchmark, compare)
    print()
    print("--- static minimum fleet (1 replica)")
    print(format_cluster_report(static))
    print("--- elastic fleet (slo_attainment, up to 4 replicas)")
    print(format_cluster_report(elastic))

    # The cluster-bench report is byte-identical across runs.
    assert elastic.to_json() == elastic_again.to_json()
    # Same workload served either way — elasticity changes when tokens
    # arrive, not which tokens come out.
    assert elastic.total_output_tokens == static.total_output_tokens
    assert elastic.num_requests == static.num_requests
    # The autoscaler actually scaled and it paid off where it counts.
    assert elastic.num_replicas > 1
    assert static.goodput_tokens_per_s > 0.0
    ratio = elastic.goodput_tokens_per_s / static.goodput_tokens_per_s
    assert ratio >= 1.3, (
        f"elastic goodput {elastic.goodput_tokens_per_s:.2f} tok/s is only "
        f"{ratio:.2f}x the static {static.goodput_tokens_per_s:.2f} tok/s"
    )
    assert elastic.slo_attainment > static.slo_attainment
