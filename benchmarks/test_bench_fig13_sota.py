"""Benchmark regenerating paper Fig. 13 (comparison with Quest and InfiniGen)."""

from conftest import run_once

from repro.experiments import (
    Fig13Config,
    format_fig13,
    run_fig13_infinigen,
    run_fig13_quest,
)


def test_bench_fig13a_vs_infinigen(benchmark):
    """ClusterKV vs. InfiniGen on an OPT-6.7B-class model (paper: ~2.3x)."""
    result = run_once(benchmark, run_fig13_infinigen, Fig13Config())
    quest_result = run_fig13_quest(Fig13Config())
    print()
    print(format_fig13(result, quest_result))
    assert result.mean_speedup("infinigen") > 1.8


def test_bench_fig13b_vs_quest(benchmark):
    """ClusterKV vs. Quest on a Llama-3.1-8B-class model (paper: within ~5%)."""
    result = run_once(benchmark, run_fig13_quest, Fig13Config())
    assert result.max_deviation("quest") < 0.08
