"""Benchmark for the ClusterKV design-choice ablation (DESIGN.md §5)."""

from conftest import run_once

from repro.experiments import (
    DesignAblationConfig,
    format_design_ablation,
    run_design_ablation,
)


def test_bench_ablation_design(benchmark, bench_scale):
    """Score/recall/hit-rate of ClusterKV variants (sinks, trimming, cache, C0)."""
    config = DesignAblationConfig(scale=bench_scale, num_samples=2, decode_steps=10)
    result = run_once(benchmark, run_design_ablation, config)
    print()
    print(format_design_ablation(result))

    assert "default" in result.variants
    # The cache depth must not affect accuracy (it only affects transfers).
    assert abs(result.score_of("cache R=2") - result.score_of("no-cache (R=0)")) < 0.35
    # All variants produce valid metric values.
    for variant in result.variants.values():
        assert 0.0 <= variant.score <= 1.0
        assert 0.0 <= variant.recall <= 1.0
        assert 0.0 <= variant.cache_hit_rate <= 1.0
