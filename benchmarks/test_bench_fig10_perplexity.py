"""Benchmark regenerating paper Fig. 10 (language-modelling perplexity)."""

from conftest import run_once

from repro.experiments import Fig10Config, format_fig10, run_fig10


def test_bench_fig10_perplexity(benchmark, bench_scale, bench_samples):
    """Perplexity of each method on the PG19 analogue under a fixed budget."""
    config = Fig10Config(
        scale=bench_scale,
        num_samples=bench_samples,
        paper_lengths=(8000, 16000, 32000),
        scored_tokens=32,
    )
    result = run_once(benchmark, run_fig10, config)
    print()
    print(format_fig10(result))

    # Shape check from the paper: ClusterKV tracks the full-KV perplexity more
    # closely than Quest does.
    clusterkv_dev = result.deviation_from_full("clusterkv")
    quest_dev = result.deviation_from_full("quest")
    assert clusterkv_dev <= quest_dev + 0.5
    assert clusterkv_dev >= -1.0  # compression should not beat full KV by much
