"""Benchmark regenerating paper Fig. 9 (LongBench scores per task and budget)."""

from conftest import run_once

from repro.experiments import Fig9Config, format_fig9, run_fig9


def test_bench_fig9_longbench(benchmark, bench_scale, bench_samples):
    """Scores of Full/ClusterKV/Quest/InfiniGen on the eight task analogues."""
    config = Fig9Config(scale=bench_scale, num_samples=bench_samples)
    result = run_once(benchmark, run_fig9, config)
    print()
    print(format_fig9(result))

    table = result.table
    budgets = table.budgets()
    # Shape checks: the full KV cache is an upper bound on average, and
    # ClusterKV improves (weakly) with larger budgets on average.
    full_avg = table.average_by_budget("full")
    clusterkv_avg = table.average_by_budget("clusterkv")
    quest_avg = table.average_by_budget("quest")
    assert full_avg[budgets[-1]] >= clusterkv_avg[budgets[-1]] - 0.1
    assert clusterkv_avg[budgets[-1]] >= clusterkv_avg[budgets[0]] - 0.1
    # At the tightest budget ClusterKV must beat Quest (the paper's headline).
    assert clusterkv_avg[budgets[0]] >= quest_avg[budgets[0]] - 0.05
