"""Shared configuration of the benchmark harness.

Every benchmark regenerates one table or figure of the paper and prints the
corresponding rows/series.  Two sizes are supported:

* the default (CI-friendly) size runs each experiment at a reduced context
  scale so the whole suite finishes in a few minutes on a CPU;
* setting the environment variable ``REPRO_BENCH_FULL=1`` switches the
  accuracy experiments to the default simulation scale used in
  EXPERIMENTS.md (about 16x more tokens, correspondingly slower).

The performance-model benchmarks (Fig. 12/13) always run at the paper's true
scale — they are analytic and fast.
"""

from __future__ import annotations

import os

import pytest

from repro.experiments import ContextScale

FULL_SIZE = os.environ.get("REPRO_BENCH_FULL", "0") not in ("0", "", "false")


@pytest.fixture(scope="session")
def bench_scale() -> ContextScale:
    """Context scale used by the accuracy benchmarks."""
    return ContextScale(16) if FULL_SIZE else ContextScale(64)


@pytest.fixture(scope="session")
def bench_samples() -> int:
    """Number of samples per task used by the accuracy benchmarks."""
    return 4 if FULL_SIZE else 2


def run_once(benchmark, func, *args, **kwargs):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(func, args=args, kwargs=kwargs, rounds=1, iterations=1)
