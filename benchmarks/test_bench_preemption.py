"""Preemption/migration benchmark: SLO-class scheduling beats FIFO.

Two headline differentials of the :mod:`repro.seqstate` layer, both on
the virtual perfmodel clock (pure arithmetic — byte-reproducible):

* on a mixed interactive/batch workload, checkpoint-preemption plus
  class-aware routing cuts the *interactive* p99 TTFT strictly below the
  FIFO baseline while completing exactly the same batch-class tokens —
  preempted batch work is parked state, never lost work;
* after a replica failure, resuming from periodic checkpoints loses
  strictly fewer decoded tokens than drain-and-retry from the prompt.
"""

import numpy as np

from conftest import run_once

from repro.api import EngineSpec
from repro.cluster import ClusterBenchConfig, FailureEvent, FailurePlan, run_cluster_bench
from repro.traffic import (
    SLOSpec,
    TrafficConfig,
    TrafficRequest,
    format_traffic_report,
    simulate,
)


def _mixed_class_trace(vocab_size: int = 2048) -> list[TrafficRequest]:
    """A long batch-class filler plus a paced interactive stream.

    The batch request occupies the lone replica for hundreds of decode
    steps; each interactive arrival then faces the choice the benchmark
    measures: wait out the residual batch decode (FIFO) or checkpoint the
    batch work out of the way (preemption).
    """
    rng = np.random.default_rng(13)
    requests = [
        TrafficRequest(
            request_id="filler",
            arrival_time_s=0.0,
            prompt_ids=rng.integers(4, vocab_size, size=48).astype(np.int64),
            max_new_tokens=300,
            slo_class="batch",
        )
    ]
    for index in range(8):
        requests.append(
            TrafficRequest(
                request_id=f"chat{index}",
                arrival_time_s=2.0 + 1.5 * index,
                prompt_ids=rng.integers(4, vocab_size, size=48).astype(np.int64),
                max_new_tokens=24,
                slo_class="interactive",
            )
        )
    return requests


def _class_config(preemption: bool) -> TrafficConfig:
    # One replica of batch capacity 1 makes the contention real: without
    # preemption an interactive request waits out the filler's residual
    # decode; with it the filler is checkpointed aside and resumed after.
    return TrafficConfig(
        engine=EngineSpec(
            max_batch_size=1, max_prefills_per_step=1, preemption=preemption
        ),
        num_replicas=1,
        router="slo_aware",
        slo=SLOSpec(ttft_s=2.5, tpot_s=None),
    )


def test_bench_preemption_cuts_interactive_p99(benchmark):
    """Preemption: interactive p99 TTFT strictly lower, batch tokens equal."""

    def compare():
        return {
            "fifo": simulate(_mixed_class_trace(), _class_config(preemption=False)),
            "preempt": simulate(_mixed_class_trace(), _class_config(preemption=True)),
        }

    results = run_once(benchmark, compare)
    print()
    for name, report in results.items():
        print(f"--- {name}")
        print(format_traffic_report(report))
    fifo = results["fifo"].class_summary()
    preempt = results["preempt"].class_summary()
    assert results["preempt"].num_preemptions > 0
    # The headline: the interactive tail collapses...
    assert preempt["interactive"]["ttft_s"]["p99"] < fifo["interactive"]["ttft_s"]["p99"]
    assert (
        preempt["interactive"]["slo_attainment"] >= fifo["interactive"]["slo_attainment"]
    )
    # ...at equal batch-class output — preempted work is parked, not lost.
    assert preempt["batch"]["output_tokens"] == fifo["batch"]["output_tokens"]
    assert preempt["batch"]["num_requests"] == fifo["batch"]["num_requests"]
    # Byte-reproducible: the preemption run is seeded arithmetic.
    repeat = simulate(_mixed_class_trace(), _class_config(preemption=True))
    assert repeat.to_json() == results["preempt"].to_json()


def test_bench_checkpoint_recovery_beats_retry(benchmark):
    """Periodic checkpoints lose strictly fewer tokens than retries."""
    kwargs = dict(
        num_requests=10,
        rate=4.0,
        min_replicas=2,
        max_replicas=2,
        autoscaler="static",
        failures=FailurePlan(events=(FailureEvent(time_s=6.0, slot=0),)),
    )

    def compare():
        return {
            "retry": run_cluster_bench(ClusterBenchConfig(**kwargs)),
            "recover": run_cluster_bench(
                ClusterBenchConfig(checkpoint_interval_s=2.0, **kwargs)
            ),
        }

    results = run_once(benchmark, compare)
    print()
    for name, report in results.items():
        print(f"--- {name}")
        print(
            f"{name}: retries={report.num_retries} "
            f"recoveries={report.num_recoveries} lost_tokens={report.lost_tokens}"
        )
    retry, recover = results["retry"], results["recover"]
    assert retry.num_retries > 0
    assert recover.num_recoveries > 0
    assert recover.lost_tokens < retry.lost_tokens
    # Both runs complete the full workload; the checkpointed run never
    # pays a second prefill for recovered requests, so its recovered tail
    # is no slower than the retry run's.
    assert recover.num_requests == retry.num_requests
    summary_retry = retry.latency_summary()
    summary_recover = recover.latency_summary()
    assert summary_recover["e2e_s"]["p99"] <= summary_retry["e2e_s"]["p99"]
