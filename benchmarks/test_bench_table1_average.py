"""Benchmark regenerating paper Table I (average score across the eight tasks)."""

from conftest import run_once

from repro.experiments import Fig9Config, format_table1, run_table1


def test_bench_table1_average(benchmark, bench_scale, bench_samples):
    """Average score per method and budget, next to the paper's values."""
    config = Fig9Config(
        scale=bench_scale,
        num_samples=bench_samples,
        tasks=("multifieldqa", "qasper", "hotpotqa", "triviaqa"),
    )
    result = run_once(benchmark, run_table1, config)
    print()
    print(format_table1(result))

    budgets = sorted(result.averages["clusterkv"])
    tightest, largest = budgets[0], budgets[-1]
    # Table I claims: ClusterKV > Quest at every budget and approaches full KV
    # at the largest budget.
    assert result.averages["clusterkv"][tightest] >= result.averages["quest"][tightest] - 5.0
    assert result.averages["clusterkv"][largest] >= result.averages["full"][largest] - 15.0
