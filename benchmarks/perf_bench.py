#!/usr/bin/env python
"""Regenerate ``BENCH_hotpaths.json``: the persistent hot-path benchmark.

Runs :func:`repro.perf.run_perf_bench` — prefill, decode stepping,
batched k-means and end-to-end serving throughput on pinned
configurations — prints the human-readable table and writes the JSON
payload (wall-clock timings, deterministic op counters, and the speedup
over the recorded pre-overhaul baseline) to the repository root.

    python benchmarks/perf_bench.py               # write BENCH_hotpaths.json
    python benchmarks/perf_bench.py --out FILE    # write elsewhere
    python benchmarks/perf_bench.py --counters-only   # skip timings

Equivalent to ``repro perf-bench --write BENCH_hotpaths.json``.  The
``deterministic`` section of the written file is the baseline enforced by
``scripts/check_perf.py`` / ``tests/test_perf_guard.py``.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
SOURCE_ROOT = REPO_ROOT / "src"
if str(SOURCE_ROOT) not in sys.path:
    sys.path.insert(0, str(SOURCE_ROOT))


def main(argv: list[str] | None = None) -> int:
    """Run the benchmark and write the payload; returns an exit code."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--out",
        type=str,
        default=str(REPO_ROOT / "BENCH_hotpaths.json"),
        help="output path of the JSON payload",
    )
    parser.add_argument(
        "--counters-only",
        action="store_true",
        help="skip wall-clock timings; only the deterministic counters",
    )
    args = parser.parse_args(argv)

    from repro.perf import format_perf_bench, run_perf_bench, write_bench_file

    payload = run_perf_bench(include_wall=not args.counters_only)
    write_bench_file(args.out, payload)
    print(format_perf_bench(payload))
    print(f"\nwrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
