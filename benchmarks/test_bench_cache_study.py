"""Benchmark regenerating the paper's Sec. V-C caching study."""

from conftest import run_once

from repro.experiments import CacheStudyConfig, format_cache_study, run_cache_study


def test_bench_cache_study(benchmark, bench_scale):
    """Cluster-cache hit rates for R=1/R=2 and the resulting throughput gain."""
    config = CacheStudyConfig(scale=bench_scale, decode_steps=16)
    result = run_once(benchmark, run_cache_study, config)
    print()
    print(format_cache_study(result))

    # Qualitative claims: a longer cache history hits at least as often, and
    # caching improves decoding throughput substantially over direct loading.
    assert result.hit_rates[2] >= result.hit_rates[1] - 1e-9
    assert result.throughput_gain_paper_hit[1] > 1.5
