"""Benchmark regenerating paper Fig. 11 (recall rate of important tokens)."""

from conftest import FULL_SIZE, run_once

from repro.experiments import (
    Fig11Config,
    format_fig11,
    run_fig11_ablation,
    run_fig11_methods,
)


def _config(bench_scale):
    return Fig11Config(
        scale=bench_scale,
        paper_budgets=(256, 512, 1024, 2048),
        decode_steps=12 if FULL_SIZE else 8,
        ablation_cluster_counts=(200, 400, 800),
    )


def test_bench_fig11a_methods(benchmark, bench_scale):
    """Recall rate of ClusterKV vs. Quest vs. InfiniGen across budgets."""
    result = run_once(benchmark, run_fig11_methods, _config(bench_scale))
    print()
    print(format_fig11(result, "[Fig. 11a] recall rate by method"))

    clusterkv = result.curves["clusterkv"]
    quest = result.curves["quest"]
    budgets = sorted(clusterkv)
    # ClusterKV recalls more important tokens than Quest at the larger budgets
    # and its recall grows with the budget (paper Fig. 11a).
    assert clusterkv[budgets[-1]] >= quest[budgets[-1]]
    assert clusterkv[budgets[-1]] > clusterkv[budgets[0]] - 0.02


def test_bench_fig11b_ablation(benchmark, bench_scale):
    """Ablation of the clustering distance metric and the cluster count C0."""
    result = run_once(benchmark, run_fig11_ablation, _config(bench_scale))
    print()
    print(format_fig11(result, "[Fig. 11b] ClusterKV ablation"))

    budgets = sorted(result.curves["metric=cosine"])
    largest = budgets[-1]
    cosine = result.curves["metric=cosine"][largest]
    l2 = result.curves["metric=l2"][largest]
    ip = result.curves["metric=ip"][largest]
    # Cosine clustering is the paper's choice; it should not lose to both
    # alternatives at the largest budget.
    assert cosine >= min(l2, ip) - 0.05
    assert all(series in result.curves for series in ("C0=200", "C0=400", "C0=800"))
