"""Micro-benchmarks of ClusterKV's algorithmic kernels.

These do not correspond to a specific paper figure; they measure the cost of
the building blocks the paper optimises with custom CUDA kernels (clustering,
selection/indexing, cache lookup) so that regressions in the Python
implementation are visible.
"""

import numpy as np
import pytest

from repro.core import ClusterKVConfig, ClusterMetadata, kmeans_cluster, select_clusters
from repro.core.clusterkv import ClusterKVLayerState


@pytest.fixture(scope="module")
def keys():
    rng = np.random.default_rng(0)
    return rng.normal(size=(2048, 64))


def test_bench_kmeans_clustering(benchmark, keys):
    """K-means over 2048 keys into 2048/80 clusters (one head, one layer)."""
    result = benchmark(kmeans_cluster, keys, 2048 // 80, "cosine", 10, 0)
    assert result.n_clusters == 2048 // 80


def test_bench_cluster_selection(benchmark, keys):
    """Centroid scoring + prefix-sum indexing for one query."""
    clustering = kmeans_cluster(keys, 2048 // 80, seed=0)
    metadata = ClusterMetadata(head_dim=64)
    metadata.append_clustering(clustering, token_offset=0)
    query = np.random.default_rng(1).normal(size=64)

    outcome = benchmark(select_clusters, query, metadata, 256)
    assert outcome.token_indices.shape[0] == 256


def test_bench_layer_state_decode_step(benchmark, keys):
    """A full per-layer ClusterKV decode step: observe + select for 4 kv heads."""
    config = ClusterKVConfig(tokens_per_cluster=80, decode_window=64, num_sink_tokens=16)
    state = ClusterKVLayerState(0, 4, 64, config)
    rng = np.random.default_rng(2)
    state.observe_prefill(rng.normal(size=(4, 2048, 64)))
    queries = rng.normal(size=(4, 2, 64))

    def step():
        state.observe_decode(rng.normal(size=(4, 1, 64)))
        return state.select(queries, budget=256, step=0)

    selections = benchmark(step)
    assert len(selections) == 4
