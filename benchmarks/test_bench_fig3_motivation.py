"""Benchmark regenerating paper Fig. 3 (motivation analyses)."""

from conftest import run_once

from repro.experiments import Fig3Config, format_fig3, run_fig3


def test_bench_fig3_motivation(benchmark, bench_scale):
    """Token-importance fluctuation (3a) and page fragmentation (3b)."""
    config = Fig3Config(scale=bench_scale, decode_steps=24)
    result = run_once(benchmark, run_fig3, config)
    print()
    print(format_fig3(result))

    # Fig. 3a: importance rankings fluctuate across decoding steps.
    assert result.mean_rank_variation > 0
    # Fig. 3b: pages of 16 tokens hold only a few important tokens each, so
    # page-granularity recall loads many useless tokens per useful one.
    assert result.fragmentation.important_per_occupied_page < 8.0
    assert result.fragmentation.waste_factor > 2.0
