"""Benchmark regenerating paper Fig. 12 (latency vs. full KV cache)."""

from conftest import run_once

from repro.experiments import Fig12Config, format_fig12, run_fig12


def test_bench_fig12_latency(benchmark):
    """ClusterKV vs. full KV latency over the paper's P/D/budget grid."""
    result = run_once(benchmark, run_fig12, Fig12Config())
    print()
    print(format_fig12(result))

    # Shape checks from the paper: speedup grows with the prompt length and
    # reaches well above 1.4x at 32k; prefill clustering overhead is small.
    assert result.speedup(32768, 1024, 1024) > result.speedup(8192, 1024, 1024)
    assert result.speedup(32768, 1024, 1024) > 1.4
    assert result.throughput_ratio(32768, 1024, 1024) > 1.7
    assert result.prefill_overhead_fraction(32768, 1024, 1024) < 0.10
