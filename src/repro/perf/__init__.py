"""Persistent performance harness: op counters and the hot-path benchmark.

Two pieces:

* :mod:`repro.perf.counters` — zero-overhead-when-disabled counters of
  deterministic hot-path events (GEMM launches, k-means iterations), the
  basis of the ``scripts/check_perf.py`` regression guard;
* :mod:`repro.perf.hotpaths` — the ``repro perf-bench`` benchmark that
  times prefill, decode stepping, clustering and serving throughput on
  pinned configurations and writes ``BENCH_hotpaths.json``.
"""

from . import counters
from .counters import OpCounter, count_ops, record
from .hotpaths import (
    PerfBenchConfig,
    deterministic_counters,
    format_perf_bench,
    run_perf_bench,
    write_bench_file,
)

__all__ = [
    "OpCounter",
    "count_ops",
    "record",
    "PerfBenchConfig",
    "deterministic_counters",
    "run_perf_bench",
    "format_perf_bench",
    "write_bench_file",
]
