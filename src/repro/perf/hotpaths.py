"""The ``repro perf-bench`` hot-path benchmark.

Times the four hot paths the serving stack lives in — prefill, decode
stepping, k-means clustering, and end-to-end continuous-batching serving —
on pinned configurations, and collects the *deterministic* operation
counters (engine steps, GEMM launches via :mod:`repro.perf.counters`,
k-means iterations) alongside the wall-clock numbers.

The deterministic section is machine-independent: it depends only on
configuration and control flow.  ``scripts/check_perf.py`` recomputes it
and compares against the checked-in ``BENCH_hotpaths.json``, so a hot-path
regression that multiplies GEMM launches (e.g. a per-head loop creeping
back into attention) fails tier-1 even though outputs are unchanged.  Wall
times are informational — they seed the bench trajectory and record the
measured speedup over the pre-overhaul baseline.

Heavy imports happen inside functions: :mod:`repro.perf` is imported by
the hot-path modules themselves (for the counters), so this module must
not import them at module scope.
"""

from __future__ import annotations

import json
import time
from dataclasses import asdict, dataclass

from .counters import count_ops

__all__ = [
    "PerfBenchConfig",
    "deterministic_counters",
    "run_perf_bench",
    "format_perf_bench",
    "write_bench_file",
]

# Batched decode throughput of `repro serve-bench` (batch 8, serve-sim,
# repeats=3) measured on the engine as it stood before the hot-path
# vectorisation overhaul, recorded once so every later run reports its
# speedup against the same anchor.  Wall-clock numbers from the machine the
# overhaul was developed on; the speedup column, not the absolute numbers,
# is the meaningful quantity.
PRE_PR_BASELINE_TOKENS_PER_S = {
    "clusterkv": 468.5,
    "streaming_llm": 803.7,
    "full": 905.7,
}


@dataclass(frozen=True)
class PerfBenchConfig:
    """Pinned workload shapes of the hot-path benchmark.

    The defaults match the ``serve-sim`` serving benchmark (prompt 64,
    decode 96, budget 48, batch 8) plus standalone prefill/clustering
    shapes large enough for the timings to be meaningful on a CPU.
    """

    model: str = "serve-sim"
    prefill_prompt_len: int = 512
    decode_prompt_len: int = 64
    decode_steps: int = 64
    budget: int = 48
    num_sink_tokens: int = 8
    num_full_layers: int = 1
    clustering_heads: int = 4
    clustering_tokens: int = 1024
    clustering_dim: int = 16
    clustering_clusters: int = 64
    serve_requests: int = 8
    serve_batch: int = 8
    serve_prompt_len: int = 64
    serve_new_tokens: int = 96
    parallel_replicas: int = 4
    parallel_requests: int = 8
    parallel_new_tokens: int = 16
    repeats: int = 3
    seed: int = 0

    def __post_init__(self) -> None:
        if self.repeats <= 0:
            raise ValueError("repeats must be positive")
        if self.decode_steps <= 0 or self.prefill_prompt_len <= 0:
            raise ValueError("decode_steps and prefill_prompt_len must be positive")


def _clusterkv_engine(config: PerfBenchConfig, max_new_tokens: int):
    """Fresh single-sequence engine under the serving-tuned ClusterKV policy."""
    from ..model import GenerationConfig, InferenceEngine, TransformerModel, get_model_config
    from ..policies import build_policy
    from ..serving.bench import serving_policy_spec

    model = TransformerModel(get_model_config(config.model))
    selector = build_policy(serving_policy_spec("clusterkv", config.num_sink_tokens))
    gen = GenerationConfig(
        budget=config.budget,
        max_new_tokens=max_new_tokens,
        num_full_layers=config.num_full_layers,
        num_sink_tokens=config.num_sink_tokens,
    )
    return InferenceEngine(model, selector, gen)


def _bench_prompt(config: PerfBenchConfig, length: int):
    import numpy as np

    from ..model import get_model_config

    vocab = get_model_config(config.model).vocab_size
    rng = np.random.default_rng(config.seed)
    return rng.integers(4, vocab, size=length).astype(np.int64)


def _prefill_section(config: PerfBenchConfig) -> dict[str, object]:
    """Time one exact prefill (plus ClusterKV build) of a long prompt."""
    import numpy as np

    prompt = _bench_prompt(config, config.prefill_prompt_len)
    best = float("inf")
    counter_snapshot: dict[str, int] = {}
    for _ in range(config.repeats):
        engine = _clusterkv_engine(config, max_new_tokens=1)
        with count_ops() as ops:
            start = time.perf_counter()
            engine._core.prefill(engine._sequence, np.asarray(prompt))
            best = min(best, time.perf_counter() - start)
        counter_snapshot = ops.as_dict()
    return {
        "wall_seconds": best,
        "prompt_tokens": config.prefill_prompt_len,
        "counters": counter_snapshot,
    }


def _decode_section(config: PerfBenchConfig) -> dict[str, object]:
    """Time steady-state single-sequence decode stepping under ClusterKV."""
    best = float("inf")
    counter_snapshot: dict[str, int] = {}
    for _ in range(config.repeats):
        engine = _clusterkv_engine(config, max_new_tokens=config.decode_steps)
        prompt = _bench_prompt(config, config.decode_prompt_len)
        core, seq = engine._core, engine._sequence
        distribution = core.prefill(seq, prompt)
        token = core.pick_token(seq, distribution)
        with count_ops() as ops:
            start = time.perf_counter()
            for step in range(config.decode_steps - 1):
                distribution = core.decode_step_batch([seq], [token], [step])[0]
                token = core.pick_token(seq, distribution)
            best = min(best, time.perf_counter() - start)
        counter_snapshot = ops.as_dict()
    steps = config.decode_steps - 1
    return {
        "wall_seconds": best,
        "decode_steps": steps,
        "tokens_per_second": steps / best if best > 0 else 0.0,
        "counters": counter_snapshot,
    }


def _clustering_section(config: PerfBenchConfig) -> dict[str, object]:
    """Time batched k-means over every head of one pinned key tensor."""
    import numpy as np

    from ..core.clustering import kmeans_cluster_batch

    rng = np.random.default_rng(config.seed + 1)
    keys = rng.normal(
        size=(config.clustering_heads, config.clustering_tokens, config.clustering_dim)
    )
    best = float("inf")
    results = []
    counter_snapshot: dict[str, int] = {}
    for _ in range(config.repeats):
        with count_ops() as ops:
            start = time.perf_counter()
            results = kmeans_cluster_batch(
                keys, config.clustering_clusters, metric="cosine", seed=config.seed
            )
            best = min(best, time.perf_counter() - start)
        counter_snapshot = ops.as_dict()
    return {
        "wall_seconds": best,
        "heads": config.clustering_heads,
        "tokens": config.clustering_tokens,
        "n_iters": [r.n_iters for r in results],
        "converged": [bool(r.converged) for r in results],
        "counters": counter_snapshot,
    }


def _serve_section(config: PerfBenchConfig) -> dict[str, object]:
    """End-to-end continuous-batching throughput on the serve-sim config."""
    from ..serving.bench import ServeBenchConfig, run_serve_bench

    bench = ServeBenchConfig(
        model=config.model,
        methods=tuple(PRE_PR_BASELINE_TOKENS_PER_S),
        num_requests=config.serve_requests,
        max_batch_size=config.serve_batch,
        prompt_len=config.serve_prompt_len,
        max_new_tokens=config.serve_new_tokens,
        budget=config.budget,
        num_sink_tokens=config.num_sink_tokens,
        num_full_layers=config.num_full_layers,
        repeats=config.repeats,
        seed=config.seed,
    )
    rows = run_serve_bench(bench)
    section: dict[str, object] = {}
    for row in rows:
        baseline = PRE_PR_BASELINE_TOKENS_PER_S.get(row.method)
        section[row.method] = {
            "batched_tokens_per_second": row.batched_tokens_per_second,
            "sequential_tokens_per_second": row.sequential_tokens_per_second,
            "batched_engine_steps": row.batched_engine_steps,
            "total_tokens": row.total_tokens,
            "pre_pr_baseline_tokens_per_second": baseline,
            "speedup_vs_pre_pr": (
                row.batched_tokens_per_second / baseline if baseline else None
            ),
        }
    return section


def _parallel_bench_config(config: PerfBenchConfig, workers: int | None = None):
    """The pinned multi-replica traffic workload of the parallel-serve bench."""
    from ..traffic.bench import TrafficBenchConfig

    return TrafficBenchConfig(
        model=config.model,
        policies=("clusterkv",),
        num_requests=config.parallel_requests,
        num_replicas=config.parallel_replicas,
        rate=2.0,
        prompt_len_min=32,
        prompt_len_max=48,
        max_new_tokens=config.parallel_new_tokens,
        budget=config.budget,
        num_sink_tokens=config.num_sink_tokens,
        num_full_layers=config.num_full_layers,
        seed=config.seed,
        workers=workers,
    )


def _parallel_serve_section(config: PerfBenchConfig) -> dict[str, object]:
    """Wall-clock speedup of the multiprocess backend over serial stepping.

    Runs the pinned ``parallel_serve`` workload once on the serial
    backend and once over ``min(parallel_replicas, cpu_count)`` worker
    processes, and records both walls plus their ratio.  The reports are
    byte-compared as a side effect (``reports_identical``).  Speedup is
    machine-dependent: it approaches the worker count on a box with that
    many free cores and can drop below 1.0 on a single-core host, where
    the IPC overhead has no parallelism to pay for it (the recorded
    ``cpu_count`` says which regime produced the numbers).
    """
    import os

    from ..traffic.bench import build_bench_requests
    from ..traffic.simulator import TrafficSimulator

    serial_config = _parallel_bench_config(config)
    requests = build_bench_requests(serial_config)
    with TrafficSimulator(serial_config.traffic_config()) as sim:
        start = time.perf_counter()
        serial_report = sim.run(requests)
        serial_s = time.perf_counter() - start

    workers = max(1, min(config.parallel_replicas, os.cpu_count() or 1))
    parallel_config = _parallel_bench_config(config, workers=workers)
    with TrafficSimulator(parallel_config.traffic_config()) as sim:
        start = time.perf_counter()
        parallel_report = sim.run(requests)
        parallel_s = time.perf_counter() - start

    return {
        "serial_s": serial_s,
        "parallel_s": parallel_s,
        "speedup": serial_s / parallel_s if parallel_s > 0 else 0.0,
        "workers": workers,
        "cpu_count": os.cpu_count() or 1,
        "replicas": config.parallel_replicas,
        "reports_identical": serial_report.to_json() == parallel_report.to_json(),
    }


def deterministic_counters(config: PerfBenchConfig | None = None) -> dict[str, object]:
    """Machine-independent hot-path counters on small pinned scenarios.

    The regression-guard section of ``BENCH_hotpaths.json``: engine steps
    and GEMM-launch counts of a short ClusterKV serving run, plus the
    k-means iteration counts of a pinned clustering problem.  Every value
    is a pure function of configuration and code structure — comparing
    against the checked-in baseline catches vectorisation regressions
    without timing anything.
    """
    import numpy as np

    from ..core.clustering import kmeans_cluster_batch
    from ..model import GenerationConfig, TransformerModel, get_model_config
    from ..policies import build_policy
    from ..serving import BatchedEngine, SchedulerConfig
    from ..serving.bench import serving_policy_spec

    config = config or PerfBenchConfig()
    model = TransformerModel(get_model_config(config.model))
    rng = np.random.default_rng(config.seed)
    prompts = [
        rng.integers(4, model.config.vocab_size, size=24).astype(np.int64)
        for _ in range(4)
    ]
    gen = GenerationConfig(
        budget=16,
        max_new_tokens=8,
        num_full_layers=config.num_full_layers,
        num_sink_tokens=4,
    )
    selector = build_policy(serving_policy_spec("clusterkv", 4))
    engine = BatchedEngine(
        model,
        selector,
        gen,
        SchedulerConfig(max_batch_size=4, max_prefills_per_step=4),
    )
    for prompt in prompts:
        engine.submit(prompt)
    with count_ops() as serve_ops:
        report = engine.run()

    keys = np.random.default_rng(config.seed + 1).normal(size=(2, 96, 8))
    with count_ops() as kmeans_ops:
        results = kmeans_cluster_batch(keys, 8, metric="cosine", seed=config.seed)

    # Prefix-cache scenario: four prompts sharing a 16-token preamble served
    # one prefill per step through a cache-enabled engine, so the later three
    # attach the preamble instead of prefilling it.  The attention_prefill
    # GEMM count (vs. the cache-off `serve` section's per-token costs) and
    # the attached-token counter pin the prefill work the cache saves.
    prefix_rng = np.random.default_rng(config.seed + 2)
    preamble = prefix_rng.integers(4, model.config.vocab_size, size=16).astype(np.int64)
    shared_prompts = [
        np.concatenate(
            [preamble, prefix_rng.integers(4, model.config.vocab_size, size=8)]
        ).astype(np.int64)
        for _ in range(4)
    ]
    prefix_engine = BatchedEngine(
        model,
        selector,
        gen,
        SchedulerConfig(
            max_batch_size=4,
            max_prefills_per_step=1,
            prefix_cache_tokens=1024,
            prefix_block_tokens=8,
        ),
    )
    for prompt in shared_prompts:
        prefix_engine.submit(prompt)
    with count_ops() as prefix_ops:
        prefix_report = prefix_engine.run()
    prefix_stats = prefix_engine.prefix_cache_stats()

    # Migration scenario: the serve workload again, but every active
    # request is checkpoint-migrated to a second engine mid-decode
    # (repro.seqstate).  The pinned invariant is the differential:
    # migrated_prefill_gemms == baseline_prefill_gemms — a migration moves
    # KV and never replays a prefill.  A regression that re-prefills on
    # restore (or drops the migrated-in fast path) breaks the equality.
    def _migration_engine():
        return BatchedEngine(
            model,
            selector,
            gen,
            SchedulerConfig(max_batch_size=4, max_prefills_per_step=4),
        )

    baseline_engine = _migration_engine()
    for prompt in prompts:
        baseline_engine.submit(prompt)
    with count_ops() as baseline_ops:
        baseline_report = baseline_engine.run()

    source, target = _migration_engine(), _migration_engine()
    for prompt in prompts:
        source.submit(prompt)
    with count_ops() as migration_ops:
        migrated_report = None
        for _ in range(3):  # prefill, then a couple of decode steps
            source.step()
        for request_id in list(source.active_request_ids):
            target.restore_request(source.checkpoint_request(request_id, keep=False))
        migrated_report = target.run()

    # Parallel-serve scenario: the pinned 4-replica traffic workload of the
    # wall-clock section, run on the serial backend.  The multiprocess
    # backend is byte-identical by construction (tests/test_execbackend.py),
    # so guarding the serial counters pins both: a drift in step scheduling
    # or GEMM launches on either backend shows up here.
    from ..traffic.bench import run_traffic_bench

    parallel_config = _parallel_bench_config(config)
    with count_ops() as parallel_ops:
        parallel_report = run_traffic_bench(parallel_config)

    # Speculative-decoding scenario: a repetitive 4-request workload whose
    # greedy output the ngram drafter predicts near-perfectly, served
    # plainly and then with k=4 speculation.  The pinned invariants: the
    # spec-on run emits the same token total in strictly fewer engine
    # steps, and the drafted/accepted/rejected counters conserve exactly —
    # a drift in draft clipping, acceptance or rollback moves them.
    from ..specdec import SpeculationConfig

    spec_prompts = [
        np.tile(np.array([5, 6, 7, 8], dtype=np.int64), 16) for _ in range(4)
    ]
    spec_gen = GenerationConfig(
        budget=48,
        max_new_tokens=32,
        num_full_layers=config.num_full_layers,
        num_sink_tokens=4,
    )

    def _spec_engine(speculation):
        return BatchedEngine(
            model,
            build_policy("full"),
            spec_gen,
            SchedulerConfig(max_batch_size=4, max_prefills_per_step=4),
            speculation=speculation,
        )

    spec_baseline_engine = _spec_engine(None)
    for prompt in spec_prompts:
        spec_baseline_engine.submit(prompt)
    spec_baseline_report = spec_baseline_engine.run()

    spec_engine = _spec_engine(SpeculationConfig(drafter="ngram", k=4))
    for prompt in spec_prompts:
        spec_engine.submit(prompt)
    with count_ops() as spec_ops:
        spec_report = spec_engine.run()
    spec_accounting = spec_report.speculation()

    return {
        "serve": {
            "engine_steps": report.engine_steps,
            "total_tokens": report.total_generated_tokens,
            "counters": serve_ops.as_dict(),
        },
        "prefix_serve": {
            "engine_steps": prefix_report.engine_steps,
            "total_tokens": prefix_report.total_generated_tokens,
            "cache_hits": prefix_stats["hits"],
            "cache_hit_tokens": prefix_stats["hit_tokens"],
            "counters": prefix_ops.as_dict(),
        },
        "kmeans": {
            "n_iters": [r.n_iters for r in results],
            "counters": kmeans_ops.as_dict(),
        },
        "migration_serve": {
            "baseline_prefill_gemms": baseline_ops.get("gemm.attention_prefill"),
            "migrated_prefill_gemms": migration_ops.get("gemm.attention_prefill"),
            "migrated_in": migration_ops.get("seqstate.migrated_in"),
            "baseline_tokens": baseline_report.total_generated_tokens,
            "migrated_tokens": migrated_report.total_generated_tokens,
            "counters": migration_ops.as_dict(),
        },
        "parallel_serve": {
            "engine_steps": parallel_report.engine_steps,
            "total_tokens": parallel_report.total_output_tokens,
            "num_replicas": config.parallel_replicas,
            "counters": parallel_ops.as_dict(),
        },
        "spec_serve": {
            "baseline_engine_steps": spec_baseline_report.engine_steps,
            "spec_engine_steps": spec_report.engine_steps,
            "baseline_tokens": spec_baseline_report.total_generated_tokens,
            "spec_tokens": spec_report.total_generated_tokens,
            "drafted_tokens": int(spec_accounting["drafted_tokens"]),
            "accepted_tokens": int(spec_accounting["accepted_tokens"]),
            "rejected_tokens": int(spec_accounting["rejected_tokens"]),
            "counters": spec_ops.as_dict(),
        },
    }


def run_perf_bench(
    config: PerfBenchConfig | None = None, include_wall: bool = True
) -> dict[str, object]:
    """Run the hot-path benchmark and return the ``BENCH_hotpaths`` payload.

    ``include_wall=False`` skips the timed sections and produces only the
    deterministic regression-guard counters (what ``scripts/check_perf.py``
    recomputes in tier-1).
    """
    config = config or PerfBenchConfig()
    payload: dict[str, object] = {
        "schema": "repro.perf/hotpaths/v1",
        "config": asdict(config),
        "deterministic": deterministic_counters(config),
    }
    if include_wall:
        payload["wall"] = {
            "prefill": _prefill_section(config),
            "decode": _decode_section(config),
            "clustering": _clustering_section(config),
            "serve": _serve_section(config),
            "parallel_serve": _parallel_serve_section(config),
        }
    return payload


def format_perf_bench(payload: dict[str, object]) -> str:
    """Human-readable summary of one :func:`run_perf_bench` payload."""
    lines = ["[perf-bench] hot-path timings and deterministic op counters"]
    wall = payload.get("wall")
    if isinstance(wall, dict):
        prefill = wall["prefill"]
        decode = wall["decode"]
        clustering = wall["clustering"]
        lines.append(
            f"prefill     {prefill['prompt_tokens']:5d} tokens   "
            f"{prefill['wall_seconds'] * 1e3:8.2f} ms"
        )
        lines.append(
            f"decode      {decode['decode_steps']:5d} steps    "
            f"{decode['wall_seconds'] * 1e3:8.2f} ms   "
            f"{decode['tokens_per_second']:8.1f} tok/s"
        )
        lines.append(
            f"clustering  {clustering['tokens']:5d} tokens   "
            f"{clustering['wall_seconds'] * 1e3:8.2f} ms   "
            f"iters={clustering['n_iters']}"
        )
        lines.append(
            f"{'serve method':14s} {'batch tok/s':>12s} {'pre-PR tok/s':>13s} {'speedup':>8s}"
        )
        for method, row in wall["serve"].items():
            speedup = row["speedup_vs_pre_pr"]
            lines.append(
                f"{method:14s} {row['batched_tokens_per_second']:12.1f} "
                f"{row['pre_pr_baseline_tokens_per_second']:13.1f} "
                f"{(f'{speedup:.2f}x' if speedup else 'n/a'):>8s}"
            )
        parallel = wall.get("parallel_serve")
        if parallel:
            lines.append(
                f"parallel-serve {parallel['replicas']} replicas x "
                f"{parallel['workers']} workers ({parallel['cpu_count']} cores): "
                f"serial {parallel['serial_s'] * 1e3:.1f} ms, "
                f"multiprocess {parallel['parallel_s'] * 1e3:.1f} ms, "
                f"speedup {parallel['speedup']:.2f}x, "
                f"identical={parallel['reports_identical']}"
            )
    deterministic = payload["deterministic"]
    serve = deterministic["serve"]
    lines.append(
        f"deterministic: serve steps={serve['engine_steps']} "
        f"tokens={serve['total_tokens']} gemm={serve['counters']} "
        f"kmeans iters={deterministic['kmeans']['n_iters']}"
    )
    migration = deterministic.get("migration_serve")
    if migration:
        lines.append(
            f"migration: prefill gemms baseline/migrated "
            f"{migration['baseline_prefill_gemms']}"
            f"/{migration['migrated_prefill_gemms']} "
            f"(migrated_in={migration['migrated_in']}, "
            f"tokens {migration['baseline_tokens']}"
            f"/{migration['migrated_tokens']})"
        )
    return "\n".join(lines)


def write_bench_file(path: str, payload: dict[str, object]) -> None:
    """Write the payload as pretty-printed JSON to ``path``."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(json.dumps(payload, indent=2, sort_keys=True) + "\n")
