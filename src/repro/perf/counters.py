"""Lightweight deterministic operation counters for the hot paths.

The hot-path modules (:mod:`repro.model.attention`,
:mod:`repro.core.clustering`, :mod:`repro.core.selection`, the inference
engine) report named events — GEMM launches, k-means iterations,
instrumentation scoring — through :func:`record`.  When no counter is
installed the call is a single global check and costs nothing measurable;
inside a :func:`count_ops` block every event is tallied into an
:class:`OpCounter`.

The counts are *deterministic*: they depend only on configuration and
control flow, never on wall time or host load, which is what lets
``scripts/check_perf.py`` pin them against a checked-in baseline
(``BENCH_hotpaths.json``) as a machine-independent performance-regression
guard.  A vectorisation regression — say, the per-head attention loop
creeping back in — multiplies the GEMM count and fails tier-1 even though
every output token is unchanged.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator

__all__ = ["OpCounter", "count_ops", "record"]


class OpCounter:
    """Tally of named hot-path events recorded while installed."""

    def __init__(self) -> None:
        self.counts: dict[str, int] = {}

    def record(self, name: str, n: int = 1) -> None:
        """Add ``n`` occurrences of event ``name``."""
        self.counts[name] = self.counts.get(name, 0) + n

    def get(self, name: str) -> int:
        """Count of event ``name`` (0 when never recorded)."""
        return self.counts.get(name, 0)

    def as_dict(self) -> dict[str, int]:
        """Sorted plain-dict snapshot of all counts."""
        return {name: self.counts[name] for name in sorted(self.counts)}


# The installed counter, or None.  A plain module global (not a contextvar):
# the engine is single-threaded and the None check must stay free.
_ACTIVE: OpCounter | None = None


def record(name: str, n: int = 1) -> None:
    """Record ``n`` events named ``name`` on the installed counter, if any."""
    if _ACTIVE is not None:
        _ACTIVE.record(name, n)


@contextmanager
def count_ops() -> Iterator[OpCounter]:
    """Install a fresh :class:`OpCounter` for the duration of the block.

    Blocks nest: the innermost counter receives the events, and the outer
    one is restored on exit.
    """
    global _ACTIVE
    previous = _ACTIVE
    counter = OpCounter()
    _ACTIVE = counter
    try:
        yield counter
    finally:
        _ACTIVE = previous
