"""Configuration of the cross-request prefix KV cache."""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["PrefixCacheConfig"]


@dataclass(frozen=True)
class PrefixCacheConfig:
    """Knobs of the radix prefix cache.

    Attributes
    ----------
    block_tokens:
        Granularity of sharing: prompts are cached in fixed-size blocks of
        this many token ids, one radix-tree node per block.  A request can
        only reuse whole blocks, so larger blocks mean fewer tree nodes
        but coarser matches.
    capacity_tokens:
        KV budget of the cache in *tokens* (summed over cached blocks, not
        per layer — every cached token carries its KV entries for all
        layers).  When an insert pushes the cache over this budget,
        least-recently-used unreferenced leaves are evicted until it fits
        again; ``None`` never evicts.
    semantic_reuse:
        Whether to also store and restore per-policy semantic state
        (ClusterKV's per-segment cluster assignments and centroids)
        alongside the raw KV blocks.  Semantic snapshots are keyed by the
        full policy signature and only ever reused by requests running the
        *same* policy configuration; policies that do not export segment
        state (the default) are unaffected either way.
    """

    block_tokens: int = 32
    capacity_tokens: int | None = None
    semantic_reuse: bool = True

    def __post_init__(self) -> None:
        if self.block_tokens <= 0:
            raise ValueError("block_tokens must be positive")
        if self.capacity_tokens is not None and self.capacity_tokens < self.block_tokens:
            raise ValueError(
                "capacity_tokens must be at least block_tokens when set "
                f"(got {self.capacity_tokens} < {self.block_tokens})"
            )
