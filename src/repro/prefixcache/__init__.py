"""Cross-request prefix/KV caching for the serving engine.

Production traffic shares system prompts and few-shot preambles across
requests, yet a stock engine prefills every prompt from token zero.  This
package caches the KV entries (and, for ClusterKV, the semantic
clustering state) of prefilled prompt prefixes in a refcounted radix tree
(:class:`RadixPrefixCache`) so later requests attach to the shared prefix
and prefill only their suffix — the same lever as vLLM's block-level
prompt caching and SGLang's RadixAttention, extended with
semantic-state reuse.

The cache is engine-local (one per :class:`~repro.serving.BatchedEngine`
replica) and is enabled through
:class:`~repro.serving.SchedulerConfig` ``prefix_cache_tokens`` /
``prefix_block_tokens`` / ``prefix_semantic_reuse`` — equivalently the
same fields on :class:`repro.api.EngineSpec`, or ``--prefix-cache`` /
``--prefix-block`` on the ``traffic-bench`` and ``cluster-bench`` CLI
commands.  Exactness is structural: causal attention makes a prefix's KV
independent of the suffix, so cache-on decoding is token-identical to
cache-off for every registered policy (the differential suite in
``tests/test_prefix_cache.py`` pins this).
"""

from .cache import PrefixMatch, RadixPrefixCache
from .config import PrefixCacheConfig

__all__ = ["PrefixCacheConfig", "PrefixMatch", "RadixPrefixCache"]
