"""Radix-tree prefix cache over token-id sequences.

The cache stores the KV entries of previously prefilled prompts in a
radix (prefix) tree: one node per fixed-size block of token ids, children
keyed by the raw bytes of the next block.  A new request walks the tree
from the root and reuses the KV of the longest chain of matching blocks,
so requests sharing a system prompt or few-shot preamble skip the
quadratic prefill of the shared part entirely.

Three properties make the cache safe inside the deterministic serving
engine:

* **Exactness** — causal attention means the KV entry of position ``p``
  depends only on tokens ``[0, p]``, so a cached block is bit-identical
  to what a fresh prefill of the same prompt prefix would produce.  KV
  blocks are *copied* at insert and attach time (copy-on-write at the
  divergence point: the suffix appends after the copied prefix without
  touching shared state), so the growable per-request KV buffers never
  alias the tree.
* **Refcounting** — matching acquires one reference on every node along
  the matched path; eviction only ever removes unreferenced leaves, so
  KV blocks in use by an in-flight request cannot disappear under it.
* **Determinism** — recency is a logical access counter, not wall time,
  so eviction order (and therefore every downstream report) is a pure
  function of the request sequence.

Semantic state (ClusterKV's per-segment clustering results) piggybacks on
the same nodes, keyed by the exporting policy's full signature, and is
dropped together with the node on eviction.
"""

from __future__ import annotations

import numpy as np

from .config import PrefixCacheConfig

__all__ = ["PrefixMatch", "RadixPrefixCache"]

# Key of one exported semantic segment: (layer index, segment start,
# segment end) in absolute token positions.
SegmentKey = tuple[int, int, int]


class _RadixNode:
    """One cached block of tokens with its per-layer KV slices."""

    __slots__ = (
        "key",
        "parent",
        "children",
        "kv",
        "semantic",
        "refcount",
        "last_access",
    )

    def __init__(
        self,
        key: bytes,
        parent: "_RadixNode | None",
        kv: list[tuple[np.ndarray, np.ndarray]],
    ) -> None:
        self.key = key
        self.parent = parent
        self.children: dict[bytes, _RadixNode] = {}
        self.kv = kv
        # policy signature -> {(layer_idx, seg_start, seg_end): payload}
        self.semantic: dict[str, dict[SegmentKey, object]] = {}
        self.refcount = 0
        self.last_access = 0


class PrefixMatch:
    """Handle on a matched prefix: the nodes whose KV a request reuses.

    Holding a match holds one reference on every node of the path, so the
    blocks survive eviction until :meth:`RadixPrefixCache.release` is
    called (the engine releases at request retirement).
    """

    def __init__(self, nodes: tuple[_RadixNode, ...], block_tokens: int) -> None:
        self._nodes = nodes
        self._block_tokens = block_tokens
        self.released = False

    @property
    def num_tokens(self) -> int:
        """Length of the matched prefix in tokens."""
        return len(self._nodes) * self._block_tokens

    @property
    def num_blocks(self) -> int:
        """Number of matched radix-tree nodes."""
        return len(self._nodes)

    def keys(self, layer_idx: int) -> np.ndarray:
        """Cached prefix keys of one layer, shape ``(n_kv_heads, H, head_dim)``."""
        return np.concatenate([node.kv[layer_idx][0] for node in self._nodes], axis=1)

    def values(self, layer_idx: int) -> np.ndarray:
        """Cached prefix values of one layer, shape ``(n_kv_heads, H, head_dim)``."""
        return np.concatenate([node.kv[layer_idx][1] for node in self._nodes], axis=1)

    def semantic_segments(self, signature: str) -> dict[SegmentKey, object]:
        """All semantic segments stored under ``signature`` along the path.

        Segments are attached to the node containing their last token, so
        every returned segment lies entirely within the matched prefix.
        """
        merged: dict[SegmentKey, object] = {}
        for node in self._nodes:
            merged.update(node.semantic.get(signature, {}))
        return merged


class RadixPrefixCache:
    """Refcounted, LRU-evicting radix tree of prefilled prompt prefixes."""

    def __init__(self, config: PrefixCacheConfig | None = None) -> None:
        self.config = config or PrefixCacheConfig()
        self._root = _RadixNode(b"", None, [])
        self._clock = 0
        self._cached_tokens = 0
        self._num_nodes = 0
        self._hits = 0
        self._misses = 0
        self._hit_tokens = 0
        self._inserted_tokens = 0
        self._evicted_tokens = 0
        self._evictions = 0

    # ------------------------------------------------------------------
    # lookup / insert / release
    # ------------------------------------------------------------------
    def _block_keys(self, prompt_ids: np.ndarray, num_tokens: int) -> list[bytes]:
        """Byte keys of the full blocks covering ``prompt_ids[:num_tokens]``."""
        block = self.config.block_tokens
        ids = np.ascontiguousarray(np.asarray(prompt_ids[:num_tokens], dtype=np.int64))
        return [ids[start : start + block].tobytes() for start in range(0, num_tokens, block)]

    def match(self, prompt_ids: np.ndarray) -> PrefixMatch | None:
        """Longest cached prefix of ``prompt_ids``, as a refcounted match.

        The match is capped at the largest whole-block multiple strictly
        below the prompt length, so at least one prompt token is always
        left to prefill (the engine needs a final prefill chunk to compute
        the first output distribution and observe the full prompt keys).
        Returns ``None`` — and counts a miss — when not even the first
        block is cached.
        """
        length = int(np.asarray(prompt_ids).shape[0])
        block = self.config.block_tokens
        limit = ((length - 1) // block) * block if length > 1 else 0
        nodes: list[_RadixNode] = []
        if limit > 0:
            node = self._root
            for key in self._block_keys(prompt_ids, limit):
                child = node.children.get(key)
                if child is None:
                    break
                nodes.append(child)
                node = child
        if not nodes:
            self._misses += 1
            return None
        self._clock += 1
        for node in nodes:
            node.refcount += 1
            node.last_access = self._clock
        self._hits += 1
        self._hit_tokens += len(nodes) * block
        return PrefixMatch(tuple(nodes), block)

    def insert(
        self,
        prompt_ids: np.ndarray,
        layer_kv: list[tuple[np.ndarray, np.ndarray]],
        semantic: dict[str, dict[SegmentKey, object]] | None = None,
    ) -> int:
        """Cache the full blocks of a prefilled prompt; returns new tokens cached.

        ``layer_kv`` holds one ``(keys, values)`` pair per model layer,
        each of shape ``(n_kv_heads, >= L, head_dim)``, as produced by the
        request's prefill.  Blocks already present are skipped — causal
        determinism guarantees their stored KV is identical — so repeated
        inserts only ever *extend* the tree.  ``semantic`` optionally maps
        a policy signature to exported segment payloads; each segment is
        attached to the node containing its last token.  Inserting may
        evict unreferenced LRU leaves to stay within the capacity budget.
        """
        length = int(np.asarray(prompt_ids).shape[0])
        block = self.config.block_tokens
        whole = (length // block) * block
        if whole <= 0:
            return 0
        self._clock += 1
        node = self._root
        added = 0
        for index, key in enumerate(self._block_keys(prompt_ids, whole)):
            child = node.children.get(key)
            if child is None:
                start = index * block
                kv = [
                    (
                        np.array(keys[:, start : start + block, :], dtype=np.float64),
                        np.array(values[:, start : start + block, :], dtype=np.float64),
                    )
                    for keys, values in layer_kv
                ]
                child = _RadixNode(key, node, kv)
                node.children[key] = child
                self._num_nodes += 1
                self._cached_tokens += block
                added += block
            child.last_access = self._clock
            node = child
        self._inserted_tokens += added
        if semantic:
            self._attach_semantic(prompt_ids, whole, semantic)
        self._evict_to_capacity()
        return added

    def _attach_semantic(
        self,
        prompt_ids: np.ndarray,
        whole: int,
        semantic: dict[str, dict[SegmentKey, object]],
    ) -> None:
        """Store exported segment payloads on the nodes holding their end token."""
        block = self.config.block_tokens
        path: list[_RadixNode] = []
        node = self._root
        for key in self._block_keys(prompt_ids, whole):
            node = node.children[key]
            path.append(node)
        for signature, segments in semantic.items():
            for seg_key, payload in segments.items():
                _, _, seg_end = seg_key
                if seg_end <= 0 or seg_end > whole:
                    continue
                owner = path[(seg_end - 1) // block]
                owner.semantic.setdefault(signature, {})[seg_key] = payload

    def release(self, match: PrefixMatch) -> None:
        """Drop the references held by a match (idempotent per match)."""
        if match.released:
            return
        match.released = True
        for node in match._nodes:
            node.refcount -= 1
            if node.refcount < 0:
                raise RuntimeError("prefix-cache refcount went negative")

    # ------------------------------------------------------------------
    # eviction
    # ------------------------------------------------------------------
    def _evict_to_capacity(self) -> None:
        """Evict unreferenced LRU leaves until within the capacity budget."""
        capacity = self.config.capacity_tokens
        if capacity is None:
            return
        while self._cached_tokens > capacity:
            victim = self._lru_unreferenced_leaf()
            if victim is None:
                return  # everything over budget is in use; nothing to do
            self._evict(victim)

    def _lru_unreferenced_leaf(self) -> _RadixNode | None:
        """The least recently used leaf with no live references, if any."""
        best: _RadixNode | None = None
        stack = list(self._root.children.values())
        while stack:
            node = stack.pop()
            if node.children:
                stack.extend(node.children.values())
            elif node.refcount == 0:
                if best is None or node.last_access < best.last_access:
                    best = node
        return best

    def _evict(self, node: _RadixNode) -> None:
        """Remove one unreferenced leaf node from the tree."""
        assert node.refcount == 0 and not node.children
        parent = node.parent
        assert parent is not None
        del parent.children[node.key]
        node.parent = None
        self._num_nodes -= 1
        self._cached_tokens -= self.config.block_tokens
        self._evicted_tokens += self.config.block_tokens
        self._evictions += 1

    # ------------------------------------------------------------------
    # accounting
    # ------------------------------------------------------------------
    @property
    def cached_tokens(self) -> int:
        """Tokens currently held in the tree (blocks times block size)."""
        return self._cached_tokens

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups that matched at least one block."""
        total = self._hits + self._misses
        return self._hits / total if total else 0.0

    def stats(self) -> dict[str, object]:
        """Deterministic accounting snapshot (all logical counters)."""
        return {
            "block_tokens": self.config.block_tokens,
            "capacity_tokens": self.config.capacity_tokens,
            "cached_tokens": self._cached_tokens,
            "num_nodes": self._num_nodes,
            "hits": self._hits,
            "misses": self._misses,
            "hit_rate": self.hit_rate,
            "hit_tokens": self._hit_tokens,
            "inserted_tokens": self._inserted_tokens,
            "evicted_tokens": self._evicted_tokens,
            "evictions": self._evictions,
        }

    # ------------------------------------------------------------------
    # invariants (exercised by the property tests)
    # ------------------------------------------------------------------
    def check_invariants(self) -> None:
        """Raise ``AssertionError`` if a structural invariant is violated."""
        seen_tokens = 0
        stack = [(self._root, True)]
        while stack:
            node, is_root = stack.pop()
            if not is_root:
                seen_tokens += self.config.block_tokens
                assert node.refcount >= 0, "negative refcount"
                assert node.parent is not None and node.parent.children.get(node.key) is node
            for child in node.children.values():
                stack.append((child, False))
        assert seen_tokens == self._cached_tokens, (
            f"cached_tokens accounting drifted: walked {seen_tokens}, "
            f"recorded {self._cached_tokens}"
        )
        assert self._inserted_tokens - self._evicted_tokens == self._cached_tokens
