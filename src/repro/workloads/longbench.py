"""Synthetic LongBench-analogue task suite.

The paper evaluates model accuracy on eight LongBench datasets (2WikiMQA,
TriviaQA, HotpotQA, MultiFieldQA, MuSiQue, NarrativeQA, Qasper, GovReport)
covering single-document QA, multi-document/multi-hop QA, few-shot QA and
summarisation, scored with F1 (ROUGE-L for GovReport).  The datasets are not
available offline, so this module generates synthetic analogues with the
same *task structure*:

* a long, topically structured document,
* one or more planted evidence chains (cue tokens → optional bridge tokens →
  answer tokens) that the model must retrieve to answer,
* distractor spans that reuse part of the cue and lead to wrong answers, and
* a trailing question that repeats the cue.

A sample is answerable by the synthetic retrieval model under full attention
(the pointer head resolves the evidence chain), and becomes unanswerable
exactly when KV compression fails to recall the evidence positions — the
quantity the paper's accuracy experiments measure.  The per-task parameters
(number of hops, distractors, answer length, metric) mirror the relative
difficulty of the original datasets.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass

import numpy as np

from ..model.tokenizer import SyntheticTokenizer
from .synthetic_text import DocumentBuilder, TopicModel

__all__ = ["LongBenchTaskSpec", "LongBenchSample", "LongBenchTaskGenerator", "LONGBENCH_TASKS"]


@dataclass(frozen=True)
class LongBenchTaskSpec:
    """Static description of one synthetic LongBench-analogue task.

    Attributes
    ----------
    name:
        Task identifier (matches the paper's dataset names, lower-cased).
    category:
        Task family: ``"single_doc_qa"``, ``"multi_doc_qa"``, ``"few_shot"``
        or ``"summarization"``.
    hops:
        Number of retrieval hops in the evidence chain (1 for single-hop).
    cue_length:
        Number of cue tokens shared between the question and the evidence.
    answer_length:
        Number of answer tokens to generate.
    num_distractors:
        Number of distractor spans reusing the final cue token.
    num_hard_distractors:
        Distractors that reuse the full cue bigram (genuinely ambiguous even
        with full attention; controls the task's ceiling).
    metric:
        ``"f1"`` or ``"rouge_l"``.
    paper_full_kv_score:
        The score the paper reports for the full-KV configuration on the
        original dataset (used for reporting in EXPERIMENTS.md, not for any
        computation).
    """

    name: str
    category: str
    hops: int
    cue_length: int
    answer_length: int
    num_distractors: int
    num_hard_distractors: int
    metric: str
    paper_full_kv_score: float

    def __post_init__(self) -> None:
        if self.hops < 1:
            raise ValueError("hops must be at least 1")
        if self.cue_length < 2:
            raise ValueError("cue_length must be at least 2 (bigram anchoring)")
        if self.metric not in ("f1", "rouge_l"):
            raise ValueError("metric must be 'f1' or 'rouge_l'")


LONGBENCH_TASKS: dict[str, LongBenchTaskSpec] = {
    "2wikimqa": LongBenchTaskSpec(
        name="2wikimqa",
        category="multi_doc_qa",
        hops=2,
        cue_length=3,
        answer_length=6,
        num_distractors=3,
        num_hard_distractors=0,
        metric="f1",
        paper_full_kv_score=49.0,
    ),
    "triviaqa": LongBenchTaskSpec(
        name="triviaqa",
        category="few_shot",
        hops=1,
        cue_length=3,
        answer_length=5,
        num_distractors=1,
        num_hard_distractors=0,
        metric="f1",
        paper_full_kv_score=88.0,
    ),
    "hotpotqa": LongBenchTaskSpec(
        name="hotpotqa",
        category="multi_doc_qa",
        hops=2,
        cue_length=3,
        answer_length=6,
        num_distractors=2,
        num_hard_distractors=0,
        metric="f1",
        paper_full_kv_score=58.0,
    ),
    "multifieldqa": LongBenchTaskSpec(
        name="multifieldqa",
        category="single_doc_qa",
        hops=1,
        cue_length=3,
        answer_length=6,
        num_distractors=3,
        num_hard_distractors=0,
        metric="f1",
        paper_full_kv_score=52.0,
    ),
    "musique": LongBenchTaskSpec(
        name="musique",
        category="multi_doc_qa",
        hops=3,
        cue_length=3,
        answer_length=6,
        num_distractors=3,
        num_hard_distractors=1,
        metric="f1",
        paper_full_kv_score=32.0,
    ),
    "narrativeqa": LongBenchTaskSpec(
        name="narrativeqa",
        category="single_doc_qa",
        hops=2,
        cue_length=3,
        answer_length=8,
        num_distractors=4,
        num_hard_distractors=1,
        metric="f1",
        paper_full_kv_score=25.0,
    ),
    "qasper": LongBenchTaskSpec(
        name="qasper",
        category="single_doc_qa",
        hops=1,
        cue_length=3,
        answer_length=7,
        num_distractors=3,
        num_hard_distractors=1,
        metric="f1",
        paper_full_kv_score=42.0,
    ),
    "govreport": LongBenchTaskSpec(
        name="govreport",
        category="summarization",
        hops=1,
        cue_length=3,
        answer_length=16,
        num_distractors=1,
        num_hard_distractors=0,
        metric="rouge_l",
        paper_full_kv_score=31.0,
    ),
}


@dataclass
class LongBenchSample:
    """One generated QA/summarisation sample."""

    task: str
    prompt_ids: np.ndarray
    reference_answer: str
    answer_length: int
    metric: str
    evidence_positions: np.ndarray
    context_length: int

    @property
    def prompt_length(self) -> int:
        """Number of prompt tokens."""
        return int(self.prompt_ids.shape[0])


class LongBenchTaskGenerator:
    """Generates samples of one synthetic LongBench-analogue task."""

    def __init__(
        self,
        tokenizer: SyntheticTokenizer,
        spec: LongBenchTaskSpec,
        topic_model: TopicModel | None = None,
        seed: int = 0,
        protected_prefix: int = 16,
    ) -> None:
        self.tokenizer = tokenizer
        self.spec = spec
        self.seed = seed
        self.protected_prefix = protected_prefix
        self.topic_model = topic_model or TopicModel(tokenizer, seed=seed)

    # ------------------------------------------------------------------
    # sample generation
    # ------------------------------------------------------------------
    def generate_sample(self, context_length: int, index: int = 0) -> LongBenchSample:
        """Generate one sample with a context of roughly ``context_length`` tokens."""
        if context_length <= 4 * self.protected_prefix:
            raise ValueError("context_length too small for the protected prefix")
        # zlib.crc32 rather than hash(): Python string hashing is randomised
        # per process, which silently made every sample stream (and thus all
        # accuracy numbers) vary between runs.
        rng = np.random.default_rng(
            (self.seed * 1_000_003 + index * 97 + zlib.crc32(self.spec.name.encode()) % 10_007)
            % (2**32)
        )
        spec = self.spec

        background = self.topic_model.sample_background(context_length, rng)
        builder = DocumentBuilder(background, protected_prefix=self.protected_prefix)

        # Rare tokens for the evidence chain: cue, one two-token bridge per
        # extra hop, and the answer span.  Two-token bridges are needed so
        # that the bigram pointer can follow the chain from one evidence span
        # to the next.
        used: set[int] = set()
        cue = self.topic_model.sample_reserved(spec.cue_length, rng, exclude=used)
        used.update(int(token) for token in cue)
        num_bridges = max(0, spec.hops - 1)
        bridge_tokens = self.topic_model.sample_reserved(2 * num_bridges, rng, exclude=used)
        used.update(int(token) for token in bridge_tokens)
        bridges = [bridge_tokens[2 * i : 2 * i + 2] for i in range(num_bridges)]
        answer = self.topic_model.sample_reserved(spec.answer_length, rng, exclude=used)
        used.update(int(token) for token in answer)

        # Plant the evidence chain: cue -> bridge_1 -> ... -> answer.  Each
        # hop span starts with the previous link (so the pointer can hand
        # over) and ends with the next link or the answer.
        chain_heads = [cue] + bridges
        chain_tails = bridges + [answer]
        for head, tail in zip(chain_heads, chain_tails):
            builder.plant(np.concatenate([head, tail]), rng, kind="evidence")

        # Weak distractors reuse only the *last* cue token (so their bigram
        # signature differs); hard distractors reuse the full cue and lead to
        # a wrong continuation, capping the achievable score even with the
        # full KV cache.
        for _ in range(spec.num_distractors):
            junk = self.topic_model.sample_reserved(spec.answer_length, rng, exclude=used)
            builder.plant(
                np.concatenate([cue[-1:], junk]), rng, kind="distractor"
            )
        for _ in range(spec.num_hard_distractors):
            junk = self.topic_model.sample_reserved(spec.answer_length, rng, exclude=used)
            builder.plant(np.concatenate([cue, junk]), rng, kind="hard_distractor")

        document = builder.build()
        question = np.concatenate(
            [np.asarray([self.tokenizer.bos_id], dtype=np.int64), cue]
        )
        prompt_ids = np.concatenate([document, question])
        reference_answer = self.tokenizer.decode(answer)

        # Multi-hop chains emit the intermediate bridge tokens before the
        # answer, so the generation length leaves room for them.
        generation_length = spec.answer_length + 2 * num_bridges

        return LongBenchSample(
            task=spec.name,
            prompt_ids=prompt_ids.astype(np.int64),
            reference_answer=reference_answer,
            answer_length=generation_length,
            metric=spec.metric,
            evidence_positions=builder.evidence_positions(),
            context_length=int(prompt_ids.shape[0]),
        )

    def generate_dataset(
        self, context_length: int, num_samples: int
    ) -> list[LongBenchSample]:
        """Generate ``num_samples`` independent samples."""
        if num_samples <= 0:
            raise ValueError("num_samples must be positive")
        return [self.generate_sample(context_length, index) for index in range(num_samples)]
