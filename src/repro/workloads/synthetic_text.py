"""Synthetic long-context text generation.

The offline environment has no access to LongBench or PG19, so the
reproduction generates synthetic long documents with the two properties that
drive the paper's accuracy results:

* **Topical structure** — the vocabulary is partitioned into topics and a
  document is a sequence of topic segments.  Tokens of the same topic have
  correlated embeddings usage, so their keys form groups in the semantic
  space — the structure ClusterKV's clustering exploits.
* **Planted evidence** — question answering samples plant short evidence
  spans (cue tokens followed by answer tokens) at random positions.  The
  model can only produce the correct answer if the evidence positions are
  recallable at decoding time, which is exactly the quantity the paper's
  accuracy experiments measure.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..model.tokenizer import SyntheticTokenizer

__all__ = ["TopicModel", "PlantedSpan", "DocumentBuilder"]


class TopicModel:
    """Partition of the vocabulary into topics.

    Topics are *contiguous* token-id blocks, which aligns them with the
    clustered token embeddings of :mod:`repro.model.weights` (token ids in
    the same block share an embedding cluster centre).  A trailing fraction
    of the vocabulary is reserved for "rare" tokens that never appear in
    background text; evidence spans draw their cue and link tokens from this
    reserved pool so that pointer-style retrieval has unambiguous anchors
    (distractors reuse them deliberately).
    """

    def __init__(
        self,
        tokenizer: SyntheticTokenizer,
        num_topics: int = 16,
        reserved_fraction: float = 0.25,
        seed: int = 0,
    ) -> None:
        if num_topics <= 0:
            raise ValueError("num_topics must be positive")
        if not 0.0 < reserved_fraction < 1.0:
            raise ValueError("reserved_fraction must lie in (0, 1)")
        self.tokenizer = tokenizer
        self.num_topics = num_topics
        self.seed = seed
        vocab = np.arange(
            tokenizer.num_special_tokens, tokenizer.vocab_size, dtype=np.int64
        )
        num_reserved = max(num_topics, int(len(vocab) * reserved_fraction))
        background = vocab[: len(vocab) - num_reserved]
        self.reserved_tokens = vocab[len(vocab) - num_reserved :]
        if background.size < num_topics:
            raise ValueError("vocabulary too small for the requested number of topics")
        boundaries = np.linspace(0, background.size, num_topics + 1).astype(int)
        self.topics = [
            background[boundaries[t] : boundaries[t + 1]] for t in range(num_topics)
        ]

    def sample_topic_segment(
        self, topic: int, length: int, rng: np.random.Generator
    ) -> np.ndarray:
        """Sample a segment of ``length`` tokens from one topic."""
        if topic < 0 or topic >= self.num_topics:
            raise IndexError(f"topic {topic} out of range")
        return rng.choice(self.topics[topic], size=length, replace=True)

    def sample_background(
        self, length: int, rng: np.random.Generator, segment_length: int = 32
    ) -> np.ndarray:
        """Sample ``length`` tokens of topic-structured background text."""
        pieces = []
        remaining = length
        while remaining > 0:
            topic = int(rng.integers(0, self.num_topics))
            seg_len = int(min(remaining, segment_length))
            pieces.append(self.sample_topic_segment(topic, seg_len, rng))
            remaining -= seg_len
        return np.concatenate(pieces) if pieces else np.zeros(0, dtype=np.int64)

    def sample_reserved(
        self, count: int, rng: np.random.Generator, exclude: set[int] | None = None
    ) -> np.ndarray:
        """Sample distinct rare tokens (used for cues, links and answers)."""
        exclude = exclude or set()
        candidates = np.array(
            [token for token in self.reserved_tokens if int(token) not in exclude],
            dtype=np.int64,
        )
        if candidates.size < count:
            raise ValueError("not enough reserved tokens available")
        return rng.choice(candidates, size=count, replace=False)


@dataclass(frozen=True)
class PlantedSpan:
    """A contiguous token span planted into a document at a known position."""

    tokens: np.ndarray
    position: int
    kind: str = "evidence"

    @property
    def end(self) -> int:
        """Exclusive end position of the span in the document."""
        return self.position + len(self.tokens)


@dataclass
class DocumentBuilder:
    """Assembles a background document and plants spans into it.

    Spans overwrite the background tokens at their position; the builder
    guarantees that planted spans never overlap each other or the
    attention-sink prefix.
    """

    background: np.ndarray
    protected_prefix: int = 16
    spans: list[PlantedSpan] = field(default_factory=list)

    def __post_init__(self) -> None:
        self.background = np.asarray(self.background, dtype=np.int64).copy()
        if self.protected_prefix >= len(self.background):
            raise ValueError("protected prefix longer than the document")

    @property
    def length(self) -> int:
        """Number of tokens in the document being built."""
        return int(self.background.shape[0])

    def _occupied(self) -> list[tuple[int, int]]:
        return [(span.position, span.end) for span in self.spans]

    def plant(
        self,
        tokens: np.ndarray,
        rng: np.random.Generator,
        kind: str = "evidence",
        region: tuple[int, int] | None = None,
        max_attempts: int = 200,
    ) -> PlantedSpan:
        """Plant ``tokens`` at a random non-overlapping position.

        Parameters
        ----------
        tokens:
            Span to plant.
        rng:
            Random generator controlling the position.
        kind:
            Label stored on the span (``"evidence"``, ``"distractor"``, ...).
        region:
            Optional ``(low, high)`` bounds for the span start position.
        """
        tokens = np.asarray(tokens, dtype=np.int64)
        span_len = tokens.shape[0]
        low = self.protected_prefix if region is None else max(region[0], self.protected_prefix)
        high = self.length - span_len if region is None else min(region[1], self.length - span_len)
        if high <= low:
            raise ValueError("no room to plant the span in the requested region")
        occupied = self._occupied()
        for _ in range(max_attempts):
            position = int(rng.integers(low, high))
            end = position + span_len
            if all(end <= start or position >= stop for start, stop in occupied):
                self.background[position:end] = tokens
                span = PlantedSpan(tokens=tokens.copy(), position=position, kind=kind)
                self.spans.append(span)
                return span
        raise RuntimeError("failed to find a non-overlapping position for the span")

    def build(self) -> np.ndarray:
        """Return the document token ids."""
        return self.background.copy()

    def evidence_positions(self) -> np.ndarray:
        """Token positions covered by evidence spans (for analyses)."""
        positions: list[int] = []
        for span in self.spans:
            if span.kind == "evidence":
                positions.extend(range(span.position, span.end))
        return np.asarray(sorted(positions), dtype=np.int64)
