"""Synthetic long-context workloads (LongBench and PG19 analogues)."""

from .longbench import (
    LONGBENCH_TASKS,
    LongBenchSample,
    LongBenchTaskGenerator,
    LongBenchTaskSpec,
)
from .pg19 import PG19Config, PG19Generator, PG19Sample
from .synthetic_text import DocumentBuilder, PlantedSpan, TopicModel

__all__ = [
    "TopicModel",
    "DocumentBuilder",
    "PlantedSpan",
    "LONGBENCH_TASKS",
    "LongBenchTaskSpec",
    "LongBenchTaskGenerator",
    "LongBenchSample",
    "PG19Config",
    "PG19Generator",
    "PG19Sample",
]
