"""Synthetic PG19-analogue language modelling corpus.

The paper measures language-modelling perplexity on the PG19 test set with
input lengths from 1 to 32 000 tokens (paper Fig. 10).  PG19 is not
available offline, so this module generates book-like token streams with the
property that makes KV compression matter for language modelling: **long
range repetition**.  A document interleaves fresh topical background text
with recurrences of previously seen "motifs" (multi-token phrases).  A model
with a pointer head predicts the continuation of a recurring motif well —
but only if the motif's earlier occurrence is recallable at decoding time.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..model.tokenizer import SyntheticTokenizer
from .synthetic_text import TopicModel

__all__ = ["PG19Config", "PG19Sample", "PG19Generator"]


@dataclass(frozen=True)
class PG19Config:
    """Parameters of the synthetic book generator.

    Attributes
    ----------
    num_motifs:
        Number of distinct recurring phrases in a document.
    motif_length:
        Length of each motif in tokens.
    motif_fraction:
        Approximate fraction of the document covered by motif recurrences.
    segment_length:
        Length of background topic segments between motif insertions.
    """

    num_motifs: int = 24
    motif_length: int = 12
    motif_fraction: float = 0.35
    segment_length: int = 24

    def __post_init__(self) -> None:
        if self.num_motifs <= 0 or self.motif_length <= 1:
            raise ValueError("num_motifs and motif_length must be positive (length > 1)")
        if not 0.0 < self.motif_fraction < 1.0:
            raise ValueError("motif_fraction must lie in (0, 1)")


@dataclass
class PG19Sample:
    """One synthetic book excerpt."""

    token_ids: np.ndarray
    motif_positions: np.ndarray  # start position of every motif occurrence

    @property
    def length(self) -> int:
        """Number of tokens in the sample."""
        return int(self.token_ids.shape[0])


class PG19Generator:
    """Generates book-like token streams with long-range repetition."""

    def __init__(
        self,
        tokenizer: SyntheticTokenizer,
        config: PG19Config | None = None,
        topic_model: TopicModel | None = None,
        seed: int = 0,
    ) -> None:
        self.tokenizer = tokenizer
        self.config = config or PG19Config()
        self.seed = seed
        self.topic_model = topic_model or TopicModel(tokenizer, seed=seed)

    def generate_sample(self, length: int, index: int = 0) -> PG19Sample:
        """Generate a document of exactly ``length`` tokens."""
        if length <= self.config.motif_length + 2:
            raise ValueError("length too small for the configured motif length")
        rng = np.random.default_rng((self.seed * 7_919 + index * 104_729) % (2**32))
        config = self.config

        # Motifs are drawn from the reserved vocabulary so that their tokens
        # are rare in the background (their recurrences are therefore
        # genuinely predictive events).
        motifs = [
            self.topic_model.sample_reserved(config.motif_length, rng)
            for _ in range(config.num_motifs)
        ]

        pieces: list[np.ndarray] = [
            np.asarray([self.tokenizer.bos_id], dtype=np.int64)
        ]
        motif_positions: list[int] = []
        current_length = 1
        while current_length < length:
            insert_motif = rng.random() < config.motif_fraction and current_length > (
                length // 20
            )
            if insert_motif:
                motif = motifs[int(rng.integers(0, config.num_motifs))]
                take = min(len(motif), length - current_length)
                motif_positions.append(current_length)
                pieces.append(np.asarray(motif[:take], dtype=np.int64))
                current_length += take
            else:
                seg_len = int(min(config.segment_length, length - current_length))
                pieces.append(self.topic_model.sample_background(seg_len, rng))
                current_length += seg_len

        token_ids = np.concatenate(pieces)[:length]
        return PG19Sample(
            token_ids=token_ids.astype(np.int64),
            motif_positions=np.asarray(motif_positions, dtype=np.int64),
        )

    def generate_dataset(self, length: int, num_samples: int) -> list[PG19Sample]:
        """Generate ``num_samples`` independent documents."""
        if num_samples <= 0:
            raise ValueError("num_samples must be positive")
        return [self.generate_sample(length, index) for index in range(num_samples)]
