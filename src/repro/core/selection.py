"""Selection at the granularity of semantic clusters (paper Sec. III-C, IV-C).

Given the query vector of the current decoding step and the per-head cluster
metadata, the selection procedure:

1. scores every cluster centroid against the query (inner product, matching
   the attention-weight computation),
2. sorts clusters by score in descending order,
3. gathers cluster sizes in that order and computes their prefix sum,
4. selects clusters until the cumulative size reaches the token budget, and
5. trims the last selected cluster when the cumulative size overshoots.

The output is the set of selected token indices ``I_T`` together with the
labels of the selected clusters (needed by the cluster-granularity cache) and
the bookkeeping the performance model uses to charge the selection overhead.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .metadata import ClusterMetadata

__all__ = [
    "ClusterSelection",
    "select_clusters",
    "selection_from_order",
    "score_centroids",
]


@dataclass
class ClusterSelection:
    """Result of one per-head cluster selection.

    Attributes
    ----------
    token_indices:
        Sorted absolute indices of the selected tokens.
    selected_labels:
        Labels of the selected clusters, in descending score order.
    trimmed_label:
        Label of the cluster that was trimmed to fit the budget, or ``None``.
    num_trimmed:
        Number of tokens dropped from the trimmed cluster.
    score_flops:
        FLOPs spent scoring centroids (``2 * C * d``).
    selected_sizes:
        Post-trim token count contributed by each selected label, aligned
        with ``selected_labels`` (what the cluster cache charges per label).
    """

    token_indices: np.ndarray
    selected_labels: np.ndarray
    trimmed_label: int | None
    num_trimmed: int
    score_flops: int
    selected_sizes: list[int] | None = None


def score_centroids(
    query: np.ndarray,
    centroids: np.ndarray,
    metric: str = "ip",
    centroid_norms: np.ndarray | None = None,
) -> np.ndarray:
    """Score cluster centroids against the query.

    The paper scores with the inner product ``q·mu`` because it aligns with
    attention-weight computation (Sec. III-C); cosine scoring is available
    for ablations.  ``centroid_norms`` optionally supplies precomputed L2
    norms for the cosine metric (``ClusterMetadata.centroid_norms``), so
    static prefill centroids are not renormalised on every decode step.
    """
    query = np.asarray(query, dtype=np.float64)
    centroids = np.asarray(centroids, dtype=np.float64)
    if centroids.size == 0:
        return np.zeros(0)
    if metric == "ip":
        return centroids @ query
    if metric == "cosine":
        q_norm = np.linalg.norm(query)
        c_norms = (
            np.linalg.norm(centroids, axis=1)
            if centroid_norms is None
            else np.asarray(centroid_norms, dtype=np.float64)
        )
        safe = np.where(c_norms == 0.0, 1.0, c_norms) * (q_norm if q_norm else 1.0)
        return (centroids @ query) / safe
    raise ValueError(f"unknown score metric {metric!r}")


def _trim_cluster(
    tokens: np.ndarray,
    keep: int,
    centroid: np.ndarray,
    keys: np.ndarray | None,
    policy: str,
) -> np.ndarray:
    """Keep ``keep`` tokens of a cluster according to the trim policy."""
    if keep >= tokens.shape[0]:
        return tokens
    if keep <= 0:
        return tokens[:0]
    if policy == "centroid" and keys is not None:
        member_keys = keys[tokens]
        scores = member_keys @ centroid
        order = np.argsort(-scores, kind="stable")[:keep]
        return tokens[np.sort(order)]
    return tokens[:keep]


def select_clusters(
    query: np.ndarray,
    metadata: ClusterMetadata,
    budget: int,
    score_metric: str = "ip",
    trim_policy: str = "order",
    keys: np.ndarray | None = None,
    scores: np.ndarray | None = None,
) -> ClusterSelection:
    """Select clusters for one head until the token budget is met.

    Parameters
    ----------
    query:
        Query vector of shape ``(d,)`` (grouped query heads are merged by the
        caller).
    metadata:
        Cluster metadata of this head.
    budget:
        Maximum number of tokens to select from clustered tokens.
    score_metric:
        Metric for scoring centroids (``"ip"`` by default).
    trim_policy:
        ``"order"`` or ``"centroid"`` (see :class:`ClusterKVConfig`).
    keys:
        Full ``(L, d)`` key array of this head; only required by the
        ``"centroid"`` trim policy.
    scores:
        Optional precomputed centroid scores of shape ``(num_clusters,)``.
        The ClusterKV layer state scores all kv heads in one batched GEMM
        and hands each head its slice here, skipping the per-head
        :func:`score_centroids` call (the charged ``score_flops`` are
        identical — the same products are computed either way).

    Returns
    -------
    ClusterSelection
    """
    if budget < 0:
        raise ValueError(f"budget must be non-negative, got {budget}")
    num_clusters = metadata.num_clusters
    if num_clusters == 0 or budget == 0:
        return ClusterSelection(
            token_indices=np.zeros(0, dtype=np.int64),
            selected_labels=np.zeros(0, dtype=np.int64),
            trimmed_label=None,
            num_trimmed=0,
            score_flops=0,
        )

    if scores is None:
        scores = score_centroids(
            query, metadata.centroids, score_metric, metadata.centroid_norms
        )
    score_flops = int(2 * num_clusters * metadata.head_dim)

    # Sort clusters from the closest to the farthest (descending score).
    order = np.argsort(-scores, kind="stable")
    ordered_sizes = metadata.cluster_sizes[order]
    cumulative = np.cumsum(ordered_sizes)
    # Number of clusters needed to reach the budget.
    cutoff = int(np.searchsorted(cumulative, budget, side="left"))
    return selection_from_order(
        metadata, order, cumulative, cutoff, budget, trim_policy, keys, score_flops
    )


def selection_from_order(
    metadata: ClusterMetadata,
    order: np.ndarray,
    cumulative: np.ndarray,
    cutoff: int,
    budget: int,
    trim_policy: str,
    keys: np.ndarray | None,
    score_flops: int,
) -> ClusterSelection:
    """Assemble a :class:`ClusterSelection` from a precomputed cluster order.

    The tail of :func:`select_clusters`, split out so the ClusterKV layer
    state can run the scoring/sorting/prefix-sum front half for *all* kv
    heads in batched NumPy calls and hand each head's ``order``/
    ``cumulative`` row here — the outputs are identical to per-head
    :func:`select_clusters` calls by construction.
    """
    num_clusters = order.shape[0]
    if cutoff >= num_clusters:
        selected_order = order
        overshoot = 0
    else:
        selected_order = order[: cutoff + 1]
        overshoot = int(cumulative[cutoff] - budget)

    selected_labels = selected_order.astype(np.int64)
    num_selected = len(selected_labels)
    pieces: list[np.ndarray] = []
    selected_sizes: list[int] = []
    trimmed_label: int | None = None
    num_trimmed = 0
    for rank, label in enumerate(selected_labels):
        tokens = metadata.cluster_tokens(int(label))
        if rank == num_selected - 1 and overshoot > 0:
            keep = tokens.shape[0] - overshoot
            tokens = _trim_cluster(
                tokens, keep, metadata.centroids[int(label)], keys, trim_policy
            )
            trimmed_label = int(label)
            num_trimmed = overshoot
        pieces.append(tokens)
        selected_sizes.append(tokens.shape[0])

    if not pieces:
        token_indices = np.zeros(0, dtype=np.int64)
    elif len(pieces) == 1:
        # A cluster's token list is already sorted (append order within the
        # block is preserved by the stable label sort), so a single-cluster
        # selection needs neither the concatenate nor the sort.
        token_indices = pieces[0]
    else:
        token_indices = np.sort(np.concatenate(pieces))
    return ClusterSelection(
        token_indices=token_indices,
        selected_labels=selected_labels,
        trimmed_label=trimmed_label,
        num_trimmed=num_trimmed,
        score_flops=score_flops,
        selected_sizes=selected_sizes,
    )
