"""Selection at the granularity of semantic clusters (paper Sec. III-C, IV-C).

Given the query vector of the current decoding step and the per-head cluster
metadata, the selection procedure:

1. scores every cluster centroid against the query (inner product, matching
   the attention-weight computation),
2. sorts clusters by score in descending order,
3. gathers cluster sizes in that order and computes their prefix sum,
4. selects clusters until the cumulative size reaches the token budget, and
5. trims the last selected cluster when the cumulative size overshoots.

The output is the set of selected token indices ``I_T`` together with the
labels of the selected clusters (needed by the cluster-granularity cache) and
the bookkeeping the performance model uses to charge the selection overhead.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .metadata import ClusterMetadata

__all__ = ["ClusterSelection", "select_clusters", "score_centroids"]


@dataclass
class ClusterSelection:
    """Result of one per-head cluster selection.

    Attributes
    ----------
    token_indices:
        Sorted absolute indices of the selected tokens.
    selected_labels:
        Labels of the selected clusters, in descending score order.
    trimmed_label:
        Label of the cluster that was trimmed to fit the budget, or ``None``.
    num_trimmed:
        Number of tokens dropped from the trimmed cluster.
    score_flops:
        FLOPs spent scoring centroids (``2 * C * d``).
    """

    token_indices: np.ndarray
    selected_labels: np.ndarray
    trimmed_label: int | None
    num_trimmed: int
    score_flops: int


def score_centroids(
    query: np.ndarray, centroids: np.ndarray, metric: str = "ip"
) -> np.ndarray:
    """Score cluster centroids against the query.

    The paper scores with the inner product ``q·mu`` because it aligns with
    attention-weight computation (Sec. III-C); cosine scoring is available
    for ablations.
    """
    query = np.asarray(query, dtype=np.float64)
    centroids = np.asarray(centroids, dtype=np.float64)
    if centroids.size == 0:
        return np.zeros(0)
    if metric == "ip":
        return centroids @ query
    if metric == "cosine":
        q_norm = np.linalg.norm(query)
        c_norms = np.linalg.norm(centroids, axis=1)
        safe = np.where(c_norms == 0.0, 1.0, c_norms) * (q_norm if q_norm else 1.0)
        return (centroids @ query) / safe
    raise ValueError(f"unknown score metric {metric!r}")


def _trim_cluster(
    tokens: np.ndarray,
    keep: int,
    centroid: np.ndarray,
    keys: np.ndarray | None,
    policy: str,
) -> np.ndarray:
    """Keep ``keep`` tokens of a cluster according to the trim policy."""
    if keep >= tokens.shape[0]:
        return tokens
    if keep <= 0:
        return tokens[:0]
    if policy == "centroid" and keys is not None:
        member_keys = keys[tokens]
        scores = member_keys @ centroid
        order = np.argsort(-scores, kind="stable")[:keep]
        return tokens[np.sort(order)]
    return tokens[:keep]


def select_clusters(
    query: np.ndarray,
    metadata: ClusterMetadata,
    budget: int,
    score_metric: str = "ip",
    trim_policy: str = "order",
    keys: np.ndarray | None = None,
) -> ClusterSelection:
    """Select clusters for one head until the token budget is met.

    Parameters
    ----------
    query:
        Query vector of shape ``(d,)`` (grouped query heads are merged by the
        caller).
    metadata:
        Cluster metadata of this head.
    budget:
        Maximum number of tokens to select from clustered tokens.
    score_metric:
        Metric for scoring centroids (``"ip"`` by default).
    trim_policy:
        ``"order"`` or ``"centroid"`` (see :class:`ClusterKVConfig`).
    keys:
        Full ``(L, d)`` key array of this head; only required by the
        ``"centroid"`` trim policy.

    Returns
    -------
    ClusterSelection
    """
    if budget < 0:
        raise ValueError(f"budget must be non-negative, got {budget}")
    num_clusters = metadata.num_clusters
    if num_clusters == 0 or budget == 0:
        return ClusterSelection(
            token_indices=np.zeros(0, dtype=np.int64),
            selected_labels=np.zeros(0, dtype=np.int64),
            trimmed_label=None,
            num_trimmed=0,
            score_flops=0,
        )

    scores = score_centroids(query, metadata.centroids, score_metric)
    score_flops = int(2 * num_clusters * metadata.head_dim)

    # Sort clusters from the closest to the farthest (descending score).
    order = np.argsort(-scores, kind="stable")
    ordered_sizes = metadata.cluster_sizes[order]
    cumulative = np.cumsum(ordered_sizes)

    # Number of clusters needed to reach the budget.
    cutoff = int(np.searchsorted(cumulative, budget, side="left"))
    if cutoff >= num_clusters:
        selected_order = order
        overshoot = 0
    else:
        selected_order = order[: cutoff + 1]
        overshoot = int(cumulative[cutoff] - budget)

    selected_labels = selected_order.astype(np.int64)
    pieces: list[np.ndarray] = []
    trimmed_label: int | None = None
    num_trimmed = 0
    for rank, label in enumerate(selected_labels):
        tokens = metadata.cluster_tokens(int(label))
        is_last = rank == len(selected_labels) - 1
        if is_last and overshoot > 0:
            keep = tokens.shape[0] - overshoot
            tokens = _trim_cluster(
                tokens, keep, metadata.centroids[int(label)], keys, trim_policy
            )
            trimmed_label = int(label)
            num_trimmed = overshoot
        pieces.append(tokens)

    token_indices = (
        np.sort(np.concatenate(pieces)) if pieces else np.zeros(0, dtype=np.int64)
    )
    return ClusterSelection(
        token_indices=token_indices,
        selected_labels=selected_labels,
        trimmed_label=trimmed_label,
        num_trimmed=num_trimmed,
        score_flops=score_flops,
    )
