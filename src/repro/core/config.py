"""Configuration of the ClusterKV method."""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["ClusterKVConfig", "DistanceMetric"]

# Supported semantic-distance metrics for clustering (paper Fig. 11b ablation).
DistanceMetric = str
_VALID_METRICS = ("cosine", "l2", "ip")
_VALID_TRIM = ("order", "centroid")


@dataclass(frozen=True)
class ClusterKVConfig:
    """Hyper-parameters of ClusterKV (paper Sec. III and IV).

    Attributes
    ----------
    tokens_per_cluster:
        Average number of tokens per prefill cluster; the paper sets the
        number of prefill clusters to ``C0 = L / 80`` (Sec. III-B), i.e.
        ``tokens_per_cluster = 80``.
    min_clusters:
        Lower bound on the number of prefill clusters (guards very short
        prompts).
    max_clusters:
        Optional upper bound on the number of prefill clusters.
    decode_window:
        ``m``: decoded tokens are clustered in groups of this size
        (paper uses 320).
    decode_clusters:
        ``C+``: number of clusters created per decode window (paper uses 4).
    num_sink_tokens:
        Number of initial attention-sink tokens always retained and excluded
        from clustering (paper uses 16).
    distance_metric:
        Metric used during clustering: ``"cosine"`` (paper default),
        ``"l2"`` or ``"ip"`` (inner product), for the Fig. 11b ablation.
    max_kmeans_iters:
        Iteration cap of the K-means loop (converges earlier when the
        assignment stabilises).
    kmeans_seed:
        Seed of the centroid initialisation.
    cache_history:
        ``R``: number of recent decoding steps whose selected clusters are
        kept in the GPU-side cluster cache (paper uses 1).
    trim_policy:
        How the last selected cluster is trimmed to the budget:
        ``"order"`` keeps tokens in stored order (cheapest, the default) and
        ``"centroid"`` keeps the tokens closest to the cluster centroid.
    score_metric:
        Metric used to score centroids against the query at selection time;
        the paper uses the inner product (Sec. III-C).
    prefill_segment_tokens:
        When set, prompt keys are clustered in independent segments of
        this many tokens (each seeded by its absolute position) instead of
        one whole-prompt k-means.  Segmented clustering is
        *prefix-compositional*: the clusters of a shared prompt prefix do
        not depend on the suffix, which is what lets the cross-request
        prefix cache (:mod:`repro.prefixcache`) restore a cached prefix's
        cluster assignments and centroids and re-cluster only the suffix.
        ``None`` (the default) keeps the paper's whole-prompt clustering.
    """

    tokens_per_cluster: int = 80
    min_clusters: int = 1
    max_clusters: int | None = None
    decode_window: int = 320
    decode_clusters: int = 4
    num_sink_tokens: int = 16
    distance_metric: DistanceMetric = "cosine"
    max_kmeans_iters: int = 20
    kmeans_seed: int = 0
    cache_history: int = 1
    trim_policy: str = "order"
    score_metric: str = "ip"
    prefill_segment_tokens: int | None = None

    def __post_init__(self) -> None:
        if self.tokens_per_cluster <= 0:
            raise ValueError("tokens_per_cluster must be positive")
        if self.min_clusters <= 0:
            raise ValueError("min_clusters must be positive")
        if self.max_clusters is not None and self.max_clusters < self.min_clusters:
            raise ValueError("max_clusters must be >= min_clusters")
        if self.decode_window <= 0:
            raise ValueError("decode_window must be positive")
        if self.decode_clusters <= 0:
            raise ValueError("decode_clusters must be positive")
        if self.num_sink_tokens < 0:
            raise ValueError("num_sink_tokens must be non-negative")
        if self.distance_metric not in _VALID_METRICS:
            raise ValueError(
                f"distance_metric must be one of {_VALID_METRICS}, "
                f"got {self.distance_metric!r}"
            )
        if self.score_metric not in ("ip", "cosine"):
            raise ValueError("score_metric must be 'ip' or 'cosine'")
        if self.max_kmeans_iters <= 0:
            raise ValueError("max_kmeans_iters must be positive")
        if self.cache_history < 0:
            raise ValueError("cache_history must be non-negative")
        if self.trim_policy not in _VALID_TRIM:
            raise ValueError(f"trim_policy must be one of {_VALID_TRIM}")
        if self.prefill_segment_tokens is not None and self.prefill_segment_tokens <= 0:
            raise ValueError("prefill_segment_tokens must be positive when set")

    def num_prefill_clusters(self, num_clusterable_tokens: int) -> int:
        """Number of prefill clusters ``C0`` for the given token count.

        Implements the paper's ``C0 = L / 80`` rule, clamped to
        ``[min_clusters, max_clusters]`` and never more than the number of
        tokens to cluster.
        """
        if num_clusterable_tokens <= 0:
            return 0
        c0 = max(self.min_clusters, num_clusterable_tokens // self.tokens_per_cluster)
        if self.max_clusters is not None:
            c0 = min(c0, self.max_clusters)
        return min(c0, num_clusterable_tokens)
