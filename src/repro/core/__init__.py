"""ClusterKV core: semantic clustering, selection, indexing and caching.

This package implements the paper's primary contribution.  The public entry
point is :class:`ClusterKVSelector`, a selector factory usable with the
inference engine in :mod:`repro.model.generation`; the building blocks
(clustering, metadata, selection, cache) are exported for direct use and for
the ablation experiments.
"""

from .cache import ClusterCache, ClusterCacheLookup
from .clustering import ClusteringResult, cluster_heads, kmeans_cluster, pairwise_scores
from .config import ClusterKVConfig
from .clusterkv import ClusterKVLayerState, ClusterKVSelector
from .metadata import ClusterMetadata
from .selection import ClusterSelection, score_centroids, select_clusters

__all__ = [
    "ClusterKVConfig",
    "ClusterKVSelector",
    "ClusterKVLayerState",
    "ClusterCache",
    "ClusterCacheLookup",
    "ClusterMetadata",
    "ClusteringResult",
    "ClusterSelection",
    "cluster_heads",
    "kmeans_cluster",
    "pairwise_scores",
    "score_centroids",
    "select_clusters",
]
