"""ClusterKV: recallable KV cache compression at semantic-cluster granularity.

This module ties together the pieces of the paper's contribution:

* clustering of prompt keys after prefill and of decoded keys every
  ``m`` steps (:mod:`repro.core.clustering`, paper Sec. III-B),
* per-head cluster metadata for constant-time indexing
  (:mod:`repro.core.metadata`, paper Sec. IV-C),
* selection of the closest clusters until the token budget is met
  (:mod:`repro.core.selection`, paper Sec. III-C), and
* the cluster-granularity GPU cache that avoids re-fetching recently
  selected clusters from CPU memory (:mod:`repro.core.cache`,
  paper Sec. IV-D).

The class implements the generic :class:`repro.baselines.base.LayerSelectorState`
interface so the inference engine treats ClusterKV exactly like any baseline.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from ..baselines.base import (
    KVSelectorFactory,
    LayerSelectorState,
    clip_budget,
    merge_group_queries,
)
from ..memory import TierKind
from ..policies.registry import register_policy
from .cache import ClusterCache
from .clustering import clustering_flops, kmeans_cluster
from .config import ClusterKVConfig
from .metadata import ClusterMetadata
from .selection import select_clusters

__all__ = ["ClusterKVLayerState", "ClusterKVSelector"]


class ClusterKVLayerState(LayerSelectorState):
    """Per-layer ClusterKV state: clusters, metadata and cache for every kv head."""

    def __init__(
        self,
        layer_idx: int,
        n_kv_heads: int,
        head_dim: int,
        config: ClusterKVConfig,
        num_sink_tokens: int | None = None,
    ) -> None:
        super().__init__(layer_idx, n_kv_heads, head_dim)
        self.config = config
        self.num_sink_tokens = (
            config.num_sink_tokens if num_sink_tokens is None else num_sink_tokens
        )
        self.metadata = [ClusterMetadata(head_dim) for _ in range(n_kv_heads)]
        self.caches = [ClusterCache(config.cache_history) for _ in range(n_kv_heads)]
        # Full per-head key history; needed for decode-window clustering and
        # the "centroid" trim policy.  Kept as a list of blocks, concatenated
        # lazily.
        self._key_blocks: list[np.ndarray] = []
        self._num_tokens = 0
        self._num_sinks_held = 0
        self._pending_start = 0  # absolute index of the first unclustered decode token
        self._prefilled = False

    # ------------------------------------------------------------------
    # observation
    # ------------------------------------------------------------------
    def observe_prefill(self, keys: np.ndarray) -> None:
        """Cluster the prompt keys into semantic clusters (paper Sec. III-B)."""
        keys = self._validate_keys(keys)
        if self._prefilled:
            raise RuntimeError("observe_prefill called twice")
        length = keys.shape[1]
        self._key_blocks.append(keys)
        self._num_tokens = length
        self._prefilled = True

        self._num_sinks_held = min(self.num_sink_tokens, length)
        clusterable = length - self._num_sinks_held
        n_clusters = self.config.num_prefill_clusters(clusterable)
        if n_clusters > 0:
            for head in range(self.n_kv_heads):
                result = kmeans_cluster(
                    keys[head, self._num_sinks_held :, :],
                    n_clusters,
                    metric=self.config.distance_metric,
                    max_iters=self.config.max_kmeans_iters,
                    seed=self.config.kmeans_seed + self.layer_idx * 131 + head,
                )
                self.metadata[head].append_clustering(result, self._num_sinks_held)
                self.stats.build_flops += clustering_flops(
                    clusterable, n_clusters, self.head_dim, result.n_iters
                )
        self._pending_start = length
        self._refresh_aux_bytes()

    def observe_decode(self, keys: np.ndarray) -> None:
        """Buffer decoded keys; cluster them every ``decode_window`` tokens."""
        keys = self._validate_keys(keys)
        if not self._prefilled:
            raise RuntimeError("observe_decode called before observe_prefill")
        self._key_blocks.append(keys)
        self._num_tokens += keys.shape[1]
        if self._num_tokens - self._pending_start >= self.config.decode_window:
            self._cluster_pending_window()

    def _cluster_pending_window(self) -> None:
        """Cluster the buffered decode tokens into ``C+`` new clusters."""
        start = self._pending_start
        end = self._num_tokens
        window = end - start
        if window <= 0:
            return
        all_keys = self._all_keys()
        n_clusters = min(self.config.decode_clusters, window)
        for head in range(self.n_kv_heads):
            result = kmeans_cluster(
                all_keys[head, start:end, :],
                n_clusters,
                metric=self.config.distance_metric,
                max_iters=self.config.max_kmeans_iters,
                seed=self.config.kmeans_seed + self.layer_idx * 131 + head + 7919 * end,
            )
            self.metadata[head].append_clustering(result, start)
            self.stats.build_flops += clustering_flops(
                window, n_clusters, self.head_dim, result.n_iters
            )
        self._pending_start = end
        self._refresh_aux_bytes()

    # ------------------------------------------------------------------
    # selection
    # ------------------------------------------------------------------
    def select(
        self, queries: np.ndarray, budget: int, step: int
    ) -> list[np.ndarray]:
        """Select the clusters closest to the query until the budget is met (paper Sec. III-C)."""
        merged = merge_group_queries(queries)
        if merged.shape != (self.n_kv_heads, self.head_dim):
            raise ValueError(
                f"expected merged queries of shape ({self.n_kv_heads}, {self.head_dim}),"
                f" got {merged.shape}"
            )
        budget = clip_budget(budget, self._num_tokens)
        all_keys = (
            self._all_keys() if self.config.trim_policy == "centroid" else None
        )

        # Tokens that are always attended: the attention sinks and the decode
        # tokens that have not been clustered yet (they still live on the GPU).
        sinks = np.arange(self._num_sinks_held, dtype=np.int64)
        pending = np.arange(self._pending_start, self._num_tokens, dtype=np.int64)
        cluster_budget = max(0, budget - sinks.shape[0] - pending.shape[0])

        selections: list[np.ndarray] = []
        for head in range(self.n_kv_heads):
            outcome = select_clusters(
                merged[head],
                self.metadata[head],
                cluster_budget,
                score_metric=self.config.score_metric,
                trim_policy=self.config.trim_policy,
                keys=all_keys[head] if all_keys is not None else None,
            )
            tokens_per_label = self._selected_tokens_per_label(head, outcome)
            lookup = self.caches[head].lookup(outcome.selected_labels, tokens_per_label)
            self.caches[head].update(outcome.selected_labels)

            # Clusters only ever cover [num_sinks_held, pending_start) and
            # cluster token lists are disjoint and sorted, so the three
            # segments concatenate into a sorted, unique int64 index array
            # without an O(B log B) np.unique on the decode hot path.
            indices = np.concatenate([sinks, outcome.token_indices, pending])
            selections.append(indices)

            self.stats.score_flops += outcome.score_flops
            self.stats.selected_tokens += int(indices.shape[0])
            self.stats.cache_hit_tokens += lookup.hit_tokens
            self.stats.cache_miss_tokens += lookup.miss_tokens
            self.stats.fetched_tokens += lookup.miss_tokens
        self.stats.num_selections += 1
        return selections

    def _selected_tokens_per_label(self, head: int, outcome) -> dict[int, int]:
        sizes = self.metadata[head].cluster_sizes
        tokens_per_label = {
            int(label): int(sizes[int(label)]) for label in outcome.selected_labels
        }
        if outcome.trimmed_label is not None:
            tokens_per_label[outcome.trimmed_label] = max(
                0, tokens_per_label[outcome.trimmed_label] - outcome.num_trimmed
            )
        return tokens_per_label

    # ------------------------------------------------------------------
    # helpers and introspection
    # ------------------------------------------------------------------
    @property
    def context_length(self) -> int:
        """Number of tokens observed so far (prefill plus decode)."""
        return self._num_tokens

    @property
    def num_pending_decode_tokens(self) -> int:
        """Decode tokens buffered but not yet clustered."""
        return self._num_tokens - self._pending_start

    def num_clusters(self, head: int = 0) -> int:
        """Number of clusters currently tracked for a head."""
        return self.metadata[head].num_clusters

    def cache_hit_rate(self) -> float:
        """Token-level cluster-cache hit rate averaged over heads."""
        rates = [cache.hit_rate for cache in self.caches]
        return float(np.mean(rates)) if rates else 0.0

    def _validate_keys(self, keys: np.ndarray) -> np.ndarray:
        keys = np.asarray(keys, dtype=np.float64)
        if keys.ndim != 3 or keys.shape[0] != self.n_kv_heads or keys.shape[2] != self.head_dim:
            raise ValueError(
                f"expected keys of shape ({self.n_kv_heads}, t, {self.head_dim}), "
                f"got {keys.shape}"
            )
        return keys

    def _all_keys(self) -> np.ndarray:
        if len(self._key_blocks) > 1:
            self._key_blocks = [np.concatenate(self._key_blocks, axis=1)]
        return self._key_blocks[0]

    def _refresh_aux_bytes(self) -> None:
        self.stats.aux_bytes = sum(meta.metadata_nbytes() for meta in self.metadata)


@register_policy(
    "clusterkv",
    config_cls=ClusterKVConfig,
    summary="semantic-cluster recall (the paper's method), KV offloaded to CPU",
)
class ClusterKVSelector(KVSelectorFactory):
    """Factory creating :class:`ClusterKVLayerState` instances.

    ClusterKV offloads the bulk KV cache to CPU memory and stages only the
    selected clusters on the GPU, so ``kv_residency`` is the CPU tier.
    """

    name = "clusterkv"
    kv_residency = TierKind.CPU

    def __init__(self, config: ClusterKVConfig | None = None) -> None:
        self.config = config or ClusterKVConfig()

    def create_layer_state(
        self,
        layer_idx: int,
        n_kv_heads: int,
        head_dim: int,
        num_sink_tokens: int,
    ) -> ClusterKVLayerState:
        """Create the ClusterKV clustering state of one layer."""
        return ClusterKVLayerState(
            layer_idx,
            n_kv_heads,
            head_dim,
            self.config,
            num_sink_tokens=num_sink_tokens,
        )

    def describe(self) -> dict[str, object]:
        """Method configuration: every :class:`ClusterKVConfig` field."""
        description = super().describe()
        description.update(dataclasses.asdict(self.config))
        return description
