"""ClusterKV: recallable KV cache compression at semantic-cluster granularity.

This module ties together the pieces of the paper's contribution:

* clustering of prompt keys after prefill and of decoded keys every
  ``m`` steps (:mod:`repro.core.clustering`, paper Sec. III-B),
* per-head cluster metadata for constant-time indexing
  (:mod:`repro.core.metadata`, paper Sec. IV-C),
* selection of the closest clusters until the token budget is met
  (:mod:`repro.core.selection`, paper Sec. III-C), and
* the cluster-granularity GPU cache that avoids re-fetching recently
  selected clusters from CPU memory (:mod:`repro.core.cache`,
  paper Sec. IV-D).

The class implements the generic :class:`repro.baselines.base.LayerSelectorState`
interface so the inference engine treats ClusterKV exactly like any baseline.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from ..baselines.base import (
    KVSelectorFactory,
    LayerSelectorState,
    clip_budget,
    merge_group_queries,
)
from ..memory import TierKind
from ..perf import counters
from ..policies.registry import register_policy
from .cache import ClusterCache
from .clustering import clustering_flops, kmeans_cluster_batch
from .config import ClusterKVConfig
from .metadata import ClusterMetadata
from .selection import ClusterSelection, select_clusters, selection_from_order

__all__ = ["ClusterKVLayerState", "ClusterKVSelector"]


class ClusterKVLayerState(LayerSelectorState):
    """Per-layer ClusterKV state: clusters, metadata and cache for every kv head."""

    def __init__(
        self,
        layer_idx: int,
        n_kv_heads: int,
        head_dim: int,
        config: ClusterKVConfig,
        num_sink_tokens: int | None = None,
    ) -> None:
        super().__init__(layer_idx, n_kv_heads, head_dim)
        self.config = config
        self.num_sink_tokens = (
            config.num_sink_tokens if num_sink_tokens is None else num_sink_tokens
        )
        self.metadata = [ClusterMetadata(head_dim) for _ in range(n_kv_heads)]
        self.caches = [ClusterCache(config.cache_history) for _ in range(n_kv_heads)]
        # Stacked (n_kv_heads, C, d) centroid tensor + norms + cluster
        # sizes, rebuilt lazily after clustering appends; lets select()
        # score, sort and prefix-sum every head's clusters in batched NumPy
        # calls instead of per-head loops.
        self._stacked_centroids: np.ndarray | None = None
        self._stacked_norms: np.ndarray | None = None
        self._stacked_sizes: np.ndarray | None = None
        self._sink_indices = np.zeros(0, dtype=np.int64)
        # Full per-head key history; needed for decode-window clustering and
        # the "centroid" trim policy.  Kept in one growable (n_kv_heads,
        # capacity, head_dim) buffer with doubling growth so the decode path
        # appends by slice assignment instead of re-concatenating blocks.
        self._key_buffer: np.ndarray | None = None
        self._key_capacity = 0
        self._num_tokens = 0
        self._num_sinks_held = 0
        self._pending_start = 0  # absolute index of the first unclustered decode token
        self._prefilled = False
        # Segmented-prefill bookkeeping for the cross-request prefix cache:
        # full segments clustered (or adopted) by this state, and segments
        # restored from a cached prefix ahead of observe_prefill.  Both map
        # absolute (seg_start, seg_end) to per-head ClusteringResult tuples.
        self._prefill_segments: dict[tuple[int, int], tuple] = {}
        self._restored_segments: dict[tuple[int, int], tuple] = {}

    # ------------------------------------------------------------------
    # observation
    # ------------------------------------------------------------------
    def observe_prefill(self, keys: np.ndarray) -> None:
        """Cluster the prompt keys into semantic clusters (paper Sec. III-B)."""
        keys = self._validate_keys(keys)
        if self._prefilled:
            raise RuntimeError("observe_prefill called twice")
        length = keys.shape[1]
        self._append_keys(keys)
        self._prefilled = True

        self._num_sinks_held = min(self.num_sink_tokens, length)
        self._sink_indices = np.arange(self._num_sinks_held, dtype=np.int64)
        if self.config.prefill_segment_tokens is not None:
            self._observe_prefill_segmented(keys, length)
        else:
            clusterable = length - self._num_sinks_held
            n_clusters = self.config.num_prefill_clusters(clusterable)
            if n_clusters > 0:
                # All heads in one batched k-means; head h runs under seed
                # base + h, matching the historical per-head calls bit for bit.
                results = kmeans_cluster_batch(
                    keys[:, self._num_sinks_held :, :],
                    n_clusters,
                    metric=self.config.distance_metric,
                    max_iters=self.config.max_kmeans_iters,
                    seed=self.config.kmeans_seed + self.layer_idx * 131,
                )
                for head, result in enumerate(results):
                    self.metadata[head].append_clustering(result, self._num_sinks_held)
                    self.stats.build_flops += clustering_flops(
                        clusterable, n_clusters, self.head_dim, result.n_iters
                    )
                self._stacked_centroids = None
        self._pending_start = length
        self._refresh_aux_bytes()

    def _observe_prefill_segmented(self, keys: np.ndarray, length: int) -> None:
        """Cluster the prompt in absolute-position segments (prefix-compositional).

        Each segment ``[sinks + i*S, sinks + (i+1)*S)`` is clustered
        independently under a seed derived from its absolute start, so a
        segment's clusters depend only on its own keys and position —
        never on what follows.  Segments restored from the prefix cache
        (via :meth:`restore_prefix_state`) are adopted verbatim, skipping
        their k-means entirely; the remaining segments are computed and
        are bit-identical to what a cache-off run produces.
        """
        segment = self.config.prefill_segment_tokens
        assert segment is not None
        for seg_start in range(self._num_sinks_held, length, segment):
            seg_end = min(seg_start + segment, length)
            window = seg_end - seg_start
            restored = self._restored_segments.get((seg_start, seg_end))
            if restored is not None:
                results = restored
            else:
                n_clusters = self.config.num_prefill_clusters(window)
                if n_clusters <= 0:
                    continue
                results = tuple(
                    kmeans_cluster_batch(
                        keys[:, seg_start:seg_end, :],
                        n_clusters,
                        metric=self.config.distance_metric,
                        max_iters=self.config.max_kmeans_iters,
                        seed=self.config.kmeans_seed
                        + self.layer_idx * 131
                        + 7919 * seg_start,
                    )
                )
            for head, result in enumerate(results):
                self.metadata[head].append_clustering(result, seg_start)
                if restored is None:
                    self.stats.build_flops += clustering_flops(
                        window, result.centroids.shape[0], self.head_dim, result.n_iters
                    )
            if window == segment:
                self._prefill_segments[(seg_start, seg_end)] = tuple(results)
            self._stacked_centroids = None
        self._restored_segments = {}

    # ------------------------------------------------------------------
    # prefix-cache hooks
    # ------------------------------------------------------------------
    def export_prefix_state(self, prefix_len: int) -> dict[tuple[int, int], object]:
        """Full prefill segments ending within ``prefix_len``, for the cache.

        Only segmented-prefill states export anything: whole-prompt
        clustering depends on the suffix and cannot be reused.  Partial
        trailing segments are withheld — they would not recur at the same
        boundaries in a longer prompt.
        """
        if self.config.prefill_segment_tokens is None:
            return {}
        return {
            span: results
            for span, results in self._prefill_segments.items()
            if span[1] <= prefix_len
        }

    def restore_prefix_state(self, segments: dict[tuple[int, int], object]) -> None:
        """Adopt cached prefill segments; consumed by ``observe_prefill``."""
        if self._prefilled:
            raise RuntimeError("restore_prefix_state called after observe_prefill")
        if self.config.prefill_segment_tokens is None:
            return
        self._restored_segments = dict(segments)  # type: ignore[arg-type]

    def observe_decode(self, keys: np.ndarray) -> None:
        """Buffer decoded keys; cluster them every ``decode_window`` tokens."""
        keys = self._validate_keys(keys)
        if not self._prefilled:
            raise RuntimeError("observe_decode called before observe_prefill")
        self._append_keys(keys)
        if self._num_tokens - self._pending_start >= self.config.decode_window:
            self._cluster_pending_window()

    def _cluster_pending_window(self) -> None:
        """Cluster the buffered decode tokens into ``C+`` new clusters."""
        start = self._pending_start
        end = self._num_tokens
        window = end - start
        if window <= 0:
            return
        all_keys = self._all_keys()
        n_clusters = min(self.config.decode_clusters, window)
        results = kmeans_cluster_batch(
            all_keys[:, start:end, :],
            n_clusters,
            metric=self.config.distance_metric,
            max_iters=self.config.max_kmeans_iters,
            seed=self.config.kmeans_seed + self.layer_idx * 131 + 7919 * end,
        )
        for head, result in enumerate(results):
            self.metadata[head].append_clustering(result, start)
            self.stats.build_flops += clustering_flops(
                window, n_clusters, self.head_dim, result.n_iters
            )
        self._stacked_centroids = None
        self._pending_start = end
        self._refresh_aux_bytes()

    # ------------------------------------------------------------------
    # selection
    # ------------------------------------------------------------------
    def select(
        self, queries: np.ndarray, budget: int, step: int
    ) -> list[np.ndarray]:
        """Select the clusters closest to the query until the budget is met (paper Sec. III-C)."""
        merged = merge_group_queries(queries)
        if merged.shape != (self.n_kv_heads, self.head_dim):
            raise ValueError(
                f"expected merged queries of shape ({self.n_kv_heads}, {self.head_dim}),"
                f" got {merged.shape}"
            )
        budget = clip_budget(budget, self._num_tokens)
        all_keys = (
            self._all_keys() if self.config.trim_policy == "centroid" else None
        )

        # Tokens that are always attended: the attention sinks and the decode
        # tokens that have not been clustered yet (they still live on the GPU).
        sinks = self._sink_indices
        pending = np.arange(self._pending_start, self._num_tokens, dtype=np.int64)
        cluster_budget = max(0, budget - sinks.shape[0] - pending.shape[0])

        outcomes = self._select_all_heads(merged, cluster_budget, all_keys)
        selections: list[np.ndarray] = []
        score_flops = 0
        selected_tokens = 0
        hit_tokens = 0
        miss_tokens = 0
        for head, outcome in enumerate(outcomes):
            sizes = outcome.selected_sizes
            if sizes is None:
                sizes = list(self._selected_tokens_per_label(head, outcome).values())
            hits, misses = self.caches[head].access_counts(
                outcome.selected_labels, sizes
            )

            # Clusters only ever cover [num_sinks_held, pending_start) and
            # cluster token lists are disjoint and sorted, so the three
            # segments concatenate into a sorted, unique int64 index array
            # without an O(B log B) np.unique on the decode hot path.
            indices = np.concatenate([sinks, outcome.token_indices, pending])
            selections.append(indices)

            score_flops += outcome.score_flops
            selected_tokens += indices.shape[0]
            hit_tokens += hits
            miss_tokens += misses
        stats = self.stats
        stats.score_flops += score_flops
        stats.selected_tokens += int(selected_tokens)
        stats.cache_hit_tokens += hit_tokens
        stats.cache_miss_tokens += miss_tokens
        stats.fetched_tokens += miss_tokens
        stats.num_selections += 1
        return selections

    def _centroid_stack(self) -> tuple[np.ndarray, np.ndarray, np.ndarray] | None:
        """Stacked ``(n_kv_heads, C, d)`` centroids, norms and cluster sizes.

        Every clustering run appends the same number of clusters to every
        head, so the per-head centroid tensors always stack; the stack is
        rebuilt lazily after appends.  Returns ``None`` in the (defensive)
        case of per-head cluster counts diverging.
        """
        if self._stacked_centroids is None:
            # Clustering appends null the cache, so a non-None stack is
            # current; the uniformity check runs only on rebuild.
            counts = {meta.num_clusters for meta in self.metadata}
            if len(counts) != 1 or 0 in counts:
                return None
            self._stacked_centroids = np.stack(
                [meta.centroids for meta in self.metadata]
            )
            self._stacked_norms = np.stack(
                [meta.centroid_norms for meta in self.metadata]
            )
            self._stacked_sizes = np.stack(
                [meta.cluster_sizes for meta in self.metadata]
            )
        assert self._stacked_norms is not None and self._stacked_sizes is not None
        return self._stacked_centroids, self._stacked_norms, self._stacked_sizes

    def _score_all_heads(
        self, merged: np.ndarray, centroids: np.ndarray, norms: np.ndarray
    ) -> np.ndarray | None:
        """Centroid scores of every kv head in one batched GEMM.

        ``merged`` is the ``(n_kv_heads, d)`` group-merged query.  The
        returned ``(n_kv_heads, C)`` rows equal the per-head
        :func:`~repro.core.selection.score_centroids` results; cosine reads
        the cached :attr:`~repro.core.ClusterMetadata.centroid_norms`
        instead of renormalising static centroids every step.
        """
        scores = np.matmul(centroids, merged[:, :, None])[..., 0]
        counters.record("gemm.selection_score", 1)
        if self.config.score_metric == "ip":
            return scores
        if self.config.score_metric == "cosine":
            q_norms = np.linalg.norm(merged, axis=1)
            safe = np.where(norms == 0.0, 1.0, norms) * np.where(
                q_norms == 0.0, 1.0, q_norms
            )[:, None]
            return scores / safe
        # Unknown metric: let select_clusters raise its usual error.
        return None

    def _select_all_heads(
        self,
        merged: np.ndarray,
        cluster_budget: int,
        all_keys: np.ndarray | None,
    ) -> list[ClusterSelection]:
        """Cluster selection of every kv head, front half batched.

        Scoring (one batched GEMM), the descending stable sort and the
        size prefix sums run for all heads in single NumPy calls; each
        head's row is then assembled by
        :func:`~repro.core.selection.selection_from_order`.  Outcomes are
        identical to per-head :func:`~repro.core.selection.select_clusters`
        calls (the trivial/edge cases fall back to exactly those).
        """
        stack = self._centroid_stack() if cluster_budget > 0 else None
        batched_scores = (
            self._score_all_heads(merged, stack[0], stack[1])
            if stack is not None
            else None
        )
        if batched_scores is None:
            return [
                select_clusters(
                    merged[head],
                    self.metadata[head],
                    cluster_budget,
                    score_metric=self.config.score_metric,
                    trim_policy=self.config.trim_policy,
                    keys=all_keys[head] if all_keys is not None else None,
                )
                for head in range(self.n_kv_heads)
            ]
        assert stack is not None
        sizes = stack[2]
        num_clusters = sizes.shape[1]
        score_flops = int(2 * num_clusters * self.head_dim)
        order = np.argsort(-batched_scores, axis=1, kind="stable")
        ordered_sizes = sizes[
            np.arange(sizes.shape[0])[:, None], order
        ]  # take_along_axis without its shape machinery
        cumulative = np.cumsum(ordered_sizes, axis=1)
        # Per-head np.searchsorted(cumulative, budget, "left"), vectorised:
        # the count of prefix sums strictly below the budget.
        cutoffs = (cumulative < cluster_budget).sum(axis=1)
        if self.config.trim_policy != "order":
            return [
                selection_from_order(
                    self.metadata[head],
                    order[head],
                    cumulative[head],
                    int(cutoffs[head]),
                    cluster_budget,
                    self.config.trim_policy,
                    all_keys[head] if all_keys is not None else None,
                    score_flops,
                )
                for head in range(self.n_kv_heads)
            ]
        # Inline assembly for the default "order" trim policy: identical to
        # selection_from_order (the general path above and the equivalence
        # tests pin it), with the per-head token segments sliced directly
        # out of the metadata index arrays.
        outcomes: list[ClusterSelection] = []
        for head in range(self.n_kv_heads):
            meta = self.metadata[head]
            sorted_indices = meta.sorted_indices
            prefix = meta.prefix_sum
            head_sizes = sizes[head]
            cutoff = int(cutoffs[head])
            if cutoff >= num_clusters:
                labels = order[head]
                overshoot = 0
            else:
                labels = order[head, : cutoff + 1]
                overshoot = int(cumulative[head, cutoff] - cluster_budget)
            pieces: list[np.ndarray] = []
            selected_sizes: list[int] = []
            trimmed_label: int | None = None
            last = len(labels) - 1
            for rank, label in enumerate(labels.tolist()):
                start = prefix[label]
                size = int(head_sizes[label])
                if rank == last and overshoot > 0:
                    size = max(0, size - overshoot)
                    trimmed_label = label
                tokens = sorted_indices[start : start + size]
                pieces.append(tokens)
                selected_sizes.append(size)
            if not pieces:
                token_indices = np.zeros(0, dtype=np.int64)
            elif len(pieces) == 1:
                token_indices = pieces[0]
            else:
                token_indices = np.sort(np.concatenate(pieces))
            outcomes.append(
                ClusterSelection(
                    token_indices=token_indices,
                    selected_labels=labels,
                    trimmed_label=trimmed_label,
                    num_trimmed=overshoot if trimmed_label is not None else 0,
                    score_flops=score_flops,
                    selected_sizes=selected_sizes,
                )
            )
        return outcomes

    def _selected_tokens_per_label(self, head: int, outcome) -> dict[int, int]:
        sizes = self.metadata[head].cluster_sizes
        tokens_per_label = {
            int(label): int(sizes[int(label)]) for label in outcome.selected_labels
        }
        if outcome.trimmed_label is not None:
            tokens_per_label[outcome.trimmed_label] = max(
                0, tokens_per_label[outcome.trimmed_label] - outcome.num_trimmed
            )
        return tokens_per_label

    # ------------------------------------------------------------------
    # helpers and introspection
    # ------------------------------------------------------------------
    @property
    def context_length(self) -> int:
        """Number of tokens observed so far (prefill plus decode)."""
        return self._num_tokens

    @property
    def num_pending_decode_tokens(self) -> int:
        """Decode tokens buffered but not yet clustered."""
        return self._num_tokens - self._pending_start

    def num_clusters(self, head: int = 0) -> int:
        """Number of clusters currently tracked for a head."""
        return self.metadata[head].num_clusters

    def cache_hit_rate(self) -> float:
        """Token-level cluster-cache hit rate averaged over heads."""
        # Plain-Python mean: this is read per request per engine step by the
        # serving trace, so the numpy dispatch overhead is avoided (summing
        # a handful of floats left to right matches np.mean bit for bit
        # below the pairwise-summation threshold).
        rates = [cache.hit_rate for cache in self.caches]
        return sum(rates) / len(rates) if rates else 0.0

    def _validate_keys(self, keys: np.ndarray) -> np.ndarray:
        keys = np.asarray(keys, dtype=np.float64)
        if keys.ndim != 3 or keys.shape[0] != self.n_kv_heads or keys.shape[2] != self.head_dim:
            raise ValueError(
                f"expected keys of shape ({self.n_kv_heads}, t, {self.head_dim}), "
                f"got {keys.shape}"
            )
        return keys

    def _append_keys(self, keys: np.ndarray) -> None:
        """Append a validated key block to the growable history buffer."""
        t = keys.shape[1]
        needed = self._num_tokens + t
        if needed > self._key_capacity:
            capacity = max(64, self._key_capacity)
            while capacity < needed:
                capacity *= 2
            grown = np.zeros((self.n_kv_heads, capacity, self.head_dim))
            if self._key_buffer is not None and self._num_tokens:
                grown[:, : self._num_tokens, :] = self._key_buffer[
                    :, : self._num_tokens, :
                ]
            self._key_buffer = grown
            self._key_capacity = capacity
        assert self._key_buffer is not None
        self._key_buffer[:, self._num_tokens : needed, :] = keys
        self._num_tokens = needed

    def _all_keys(self) -> np.ndarray:
        if self._key_buffer is None:
            return np.zeros((self.n_kv_heads, 0, self.head_dim))
        return self._key_buffer[:, : self._num_tokens, :]

    def _refresh_aux_bytes(self) -> None:
        self.stats.aux_bytes = sum(meta.metadata_nbytes() for meta in self.metadata)


@register_policy(
    "clusterkv",
    config_cls=ClusterKVConfig,
    summary="semantic-cluster recall (the paper's method), KV offloaded to CPU",
)
class ClusterKVSelector(KVSelectorFactory):
    """Factory creating :class:`ClusterKVLayerState` instances.

    ClusterKV offloads the bulk KV cache to CPU memory and stages only the
    selected clusters on the GPU, so ``kv_residency`` is the CPU tier.
    """

    name = "clusterkv"
    kv_residency = TierKind.CPU

    def __init__(self, config: ClusterKVConfig | None = None) -> None:
        self.config = config or ClusterKVConfig()

    def create_layer_state(
        self,
        layer_idx: int,
        n_kv_heads: int,
        head_dim: int,
        num_sink_tokens: int,
    ) -> ClusterKVLayerState:
        """Create the ClusterKV clustering state of one layer."""
        return ClusterKVLayerState(
            layer_idx,
            n_kv_heads,
            head_dim,
            self.config,
            num_sink_tokens=num_sink_tokens,
        )

    def describe(self) -> dict[str, object]:
        """Method configuration: every :class:`ClusterKVConfig` field."""
        description = super().describe()
        description.update(dataclasses.asdict(self.config))
        return description
