"""Cluster-granularity cache of selected KV entries (paper Sec. IV-D).

During decoding ClusterKV keeps the KV of the clusters selected in the last
``R`` decoding steps on the GPU.  At the current step, the labels of the
newly selected clusters are compared against the cached labels; only the KV
of clusters that are *not* cached needs to be loaded from CPU memory.

The cache works purely on cluster labels and token counts — the actual
tensors stay in the :class:`repro.model.kv_cache.KVCacheStore` — because the
quantity the experiments need is the hit rate and the number of bytes saved.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

import numpy as np

__all__ = ["ClusterCacheLookup", "ClusterCache"]


@dataclass
class ClusterCacheLookup:
    """Outcome of probing the cache with the clusters selected at one step.

    Attributes
    ----------
    hit_labels / miss_labels:
        Selected cluster labels that were (respectively were not) present in
        the cache.
    hit_tokens / miss_tokens:
        The same split expressed in token counts, using the *selected* token
        counts per cluster (i.e. after budget trimming).
    """

    hit_labels: np.ndarray
    miss_labels: np.ndarray
    hit_tokens: int
    miss_tokens: int

    @property
    def hit_rate(self) -> float:
        """Token-level hit rate of this lookup."""
        total = self.hit_tokens + self.miss_tokens
        if total == 0:
            return 0.0
        return self.hit_tokens / total


class ClusterCache:
    """Per-head cache of the clusters selected during the last ``R`` steps."""

    def __init__(self, history: int = 1) -> None:
        if history < 0:
            raise ValueError("history must be non-negative")
        self.history = history
        self._recent: deque[set[int]] = deque(maxlen=max(history, 1))
        self._enabled = history > 0
        self.total_hit_tokens = 0
        self.total_miss_tokens = 0
        self.num_lookups = 0

    @property
    def cached_labels(self) -> set[int]:
        """Union of cluster labels cached from the retained steps."""
        if not self._enabled:
            return set()
        cached: set[int] = set()
        for step_labels in self._recent:
            cached |= step_labels
        return cached

    def lookup(
        self, selected_labels: np.ndarray, tokens_per_label: dict[int, int]
    ) -> ClusterCacheLookup:
        """Split the selected clusters into cache hits and misses.

        Parameters
        ----------
        selected_labels:
            Labels of the clusters selected at the current step.
        tokens_per_label:
            Number of selected tokens contributed by each label (after
            trimming), used for token-level accounting.
        """
        labels = np.asarray(selected_labels, dtype=np.int64).tolist()
        sizes = [tokens_per_label.get(label, 0) for label in labels]
        return self._lookup_core(labels, sizes, update=False)

    def access(
        self, selected_labels: np.ndarray, selected_sizes: list[int]
    ) -> ClusterCacheLookup:
        """Fused lookup-then-update for the decode hot path.

        ``selected_sizes`` is the post-trim token count per label, aligned
        with ``selected_labels`` (``ClusterSelection.selected_sizes``).
        Equivalent to :meth:`lookup` followed by :meth:`update`, without
        the per-label dict round-trip.
        """
        labels = np.asarray(selected_labels, dtype=np.int64).tolist()
        return self._lookup_core(labels, selected_sizes, update=True)

    def access_counts(
        self, selected_labels: np.ndarray, selected_sizes: list[int]
    ) -> tuple[int, int]:
        """Allocation-free :meth:`access`: returns ``(hit, miss)`` tokens only.

        The decode hot path needs nothing but the token split (the label
        arrays of :class:`ClusterCacheLookup` exist for tests and
        analyses), so this variant skips building them.  Accounting is
        identical to :meth:`access`.
        """
        labels = selected_labels.tolist()
        if not self._enabled:
            cached: set[int] | tuple = ()
        elif len(self._recent) == 1:
            cached = self._recent[0]
        else:
            cached = self.cached_labels
        hit_tokens = 0
        miss_tokens = 0
        for label, tokens in zip(labels, selected_sizes):
            if label in cached:
                hit_tokens += tokens
            else:
                miss_tokens += tokens
        self.total_hit_tokens += hit_tokens
        self.total_miss_tokens += miss_tokens
        self.num_lookups += 1
        if self._enabled:
            self._recent.append(set(labels))
        return hit_tokens, miss_tokens

    def _lookup_core(
        self, labels: list[int], sizes: list[int], update: bool
    ) -> ClusterCacheLookup:
        """Shared hit/miss split of :meth:`lookup` and :meth:`access`."""
        # Membership-only view of the cached labels; with a single retained
        # step (the common configuration) the set is used directly instead
        # of copying it through the ``cached_labels`` union.
        if not self._enabled:
            cached: set[int] = set()
        elif len(self._recent) == 1:
            cached = self._recent[0]
        else:
            cached = self.cached_labels
        hits: list[int] = []
        misses: list[int] = []
        hit_tokens = 0
        miss_tokens = 0
        for label, tokens in zip(labels, sizes):
            if label in cached:
                hits.append(label)
                hit_tokens += tokens
            else:
                misses.append(label)
                miss_tokens += tokens
        hit_labels = np.asarray(hits, dtype=np.int64)
        miss_labels = np.asarray(misses, dtype=np.int64)
        self.total_hit_tokens += hit_tokens
        self.total_miss_tokens += miss_tokens
        self.num_lookups += 1
        if update and self._enabled:
            self._recent.append(set(labels))
        return ClusterCacheLookup(
            hit_labels=hit_labels,
            miss_labels=miss_labels,
            hit_tokens=hit_tokens,
            miss_tokens=miss_tokens,
        )

    def update(self, selected_labels: np.ndarray) -> None:
        """Record the clusters selected at the current step."""
        if not self._enabled:
            return
        self._recent.append({int(label) for label in np.asarray(selected_labels)})

    @property
    def hit_rate(self) -> float:
        """Token-level hit rate accumulated over all lookups."""
        total = self.total_hit_tokens + self.total_miss_tokens
        if total == 0:
            return 0.0
        return self.total_hit_tokens / total

    def reset(self) -> None:
        """Clear cached labels and statistics."""
        self._recent.clear()
        self.total_hit_tokens = 0
        self.total_miss_tokens = 0
        self.num_lookups = 0
