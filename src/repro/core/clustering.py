"""Semantic clustering of key vectors (paper Sec. III-B).

Tokens are clustered in the "semantic space" of their key vectors using
K-means.  The paper motivates cosine similarity as the distance metric
because key vectors have outlier channels with large magnitudes that distort
L2 and inner-product distances; both alternatives are implemented as well to
support the Fig. 11b ablation.

The clustering is performed independently per attention (kv) head — the
batched helper :func:`cluster_heads` mirrors the batched GPU kernels of the
paper's implementation (Sec. IV-B) at the functional level.  Since this
PR's hot-path overhaul it does so *literally*: :func:`kmeans_cluster_batch`
runs the assignment step of every head in one broadcast GEMM + argmax over
a ``(n_kv_heads, L, C)`` score tensor (heads that converge early are frozen
and skipped), producing labels and centroids bit-identical to the per-head
:func:`kmeans_cluster` loop — pinned by ``tests/test_hotpath_equivalence.py``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..perf import counters

__all__ = [
    "ClusteringResult",
    "pairwise_scores",
    "kmeans_cluster",
    "kmeans_cluster_batch",
    "cluster_heads",
]


@dataclass
class ClusteringResult:
    """Outcome of clustering one head's key vectors.

    Attributes
    ----------
    labels:
        Cluster label of every input key, shape ``(L,)``, values in
        ``[0, n_clusters)``.
    centroids:
        Cluster representations, shape ``(n_clusters, d)``.
    n_iters:
        Number of K-means iterations performed.
    converged:
        Whether the assignment stabilised before the iteration cap.
    """

    labels: np.ndarray
    centroids: np.ndarray
    n_iters: int
    converged: bool

    @property
    def n_clusters(self) -> int:
        """Number of clusters in this result."""
        return self.centroids.shape[0]

    def cluster_sizes(self) -> np.ndarray:
        """Number of tokens per cluster, shape ``(n_clusters,)``."""
        return np.bincount(self.labels, minlength=self.n_clusters)


def _normalise(vectors: np.ndarray) -> np.ndarray:
    norms = np.linalg.norm(vectors, axis=-1, keepdims=True)
    safe = np.where(norms == 0.0, 1.0, norms)
    return vectors / safe


def pairwise_scores(
    keys: np.ndarray,
    centroids: np.ndarray,
    metric: str,
    centroid_norms: np.ndarray | None = None,
) -> np.ndarray:
    """Similarity of every key to every centroid; larger is closer.

    Parameters
    ----------
    keys:
        ``(L, d)`` key vectors.
    centroids:
        ``(C, d)`` centroids.
    metric:
        ``"cosine"``, ``"l2"`` or ``"ip"``.
    centroid_norms:
        Optional precomputed ``(C,)`` L2 norms of ``centroids`` for the
        cosine metric.  Scoring against *static* centroids (the prefill
        clusters queried at every decode step) should pass the cached norms
        from :attr:`repro.core.ClusterMetadata.centroid_norms` instead of
        renormalising the same centroids on every call.

    Returns
    -------
    numpy.ndarray
        ``(L, C)`` similarity matrix.  For ``"l2"`` the *negative* squared
        distance is returned so that ``argmax`` picks the nearest centroid
        under every metric.
    """
    keys = np.asarray(keys, dtype=np.float64)
    centroids = np.asarray(centroids, dtype=np.float64)
    if metric == "cosine":
        if centroid_norms is None:
            normed_centroids = _normalise(centroids)
        else:
            safe = np.where(centroid_norms == 0.0, 1.0, centroid_norms)
            normed_centroids = centroids / safe[:, None]
        return _normalise(keys) @ normed_centroids.T
    if metric == "ip":
        return keys @ centroids.T
    if metric == "l2":
        # -(|k|^2 - 2 k·c + |c|^2); constant |k|^2 kept for exactness in tests.
        sq_keys = np.sum(keys**2, axis=1, keepdims=True)
        sq_centroids = np.sum(centroids**2, axis=1)[None, :]
        return -(sq_keys - 2.0 * keys @ centroids.T + sq_centroids)
    raise ValueError(f"unknown clustering metric {metric!r}")


def _init_centroids(
    keys: np.ndarray, n_clusters: int, rng: np.random.Generator
) -> np.ndarray:
    """Sample initial centroids from the keys without replacement."""
    num_keys = keys.shape[0]
    chosen = rng.choice(num_keys, size=n_clusters, replace=False)
    return keys[chosen].copy()


def _update_centroids(
    keys: np.ndarray,
    labels: np.ndarray,
    n_clusters: int,
    previous: np.ndarray,
) -> np.ndarray:
    """Mean of the keys assigned to each cluster (paper's update step).

    Empty clusters keep their previous centroid; they are repaired by
    :func:`_repair_empty_clusters` before the next assignment.
    """
    d = keys.shape[1]
    sums = np.zeros((n_clusters, d))
    np.add.at(sums, labels, keys)
    counts = np.bincount(labels, minlength=n_clusters).astype(np.float64)
    centroids = previous.copy()
    non_empty = counts > 0
    centroids[non_empty] = sums[non_empty] / counts[non_empty, None]
    return centroids


def _repair_empty_clusters(
    keys: np.ndarray,
    labels: np.ndarray,
    centroids: np.ndarray,
    metric: str,
) -> tuple[np.ndarray, np.ndarray]:
    """Reassign each empty cluster to the key farthest from its centroid.

    A deterministic variant of the standard empty-cluster fix: the key with
    the lowest similarity to its own centroid is split off to seed the empty
    cluster.
    """
    n_clusters = centroids.shape[0]
    counts = np.bincount(labels, minlength=n_clusters)
    empty = np.flatnonzero(counts == 0)
    if empty.size == 0:
        return labels, centroids
    labels = labels.copy()
    centroids = centroids.copy()
    scores = pairwise_scores(keys, centroids, metric)
    own_scores = scores[np.arange(keys.shape[0]), labels]
    order = np.argsort(own_scores)  # ascending: worst-fitting keys first
    cursor = 0
    for cluster in empty:
        while cursor < order.size:
            candidate = int(order[cursor])
            cursor += 1
            # Do not steal the only member of another cluster.
            if counts[labels[candidate]] > 1:
                counts[labels[candidate]] -= 1
                labels[candidate] = cluster
                counts[cluster] += 1
                centroids[cluster] = keys[candidate]
                break
        else:
            break
    return labels, centroids


def kmeans_cluster(
    keys: np.ndarray,
    n_clusters: int,
    metric: str = "cosine",
    max_iters: int = 20,
    seed: int = 0,
) -> ClusteringResult:
    """Cluster one head's key vectors with K-means (paper Fig. 4).

    The algorithm follows the paper: centroids are initialised by randomly
    sampling key vectors; the assignment step assigns every key to the most
    similar centroid under ``metric``; the update step replaces each centroid
    with the mean of its assigned keys; iteration stops when the assignment
    no longer changes or ``max_iters`` is reached.
    """
    keys = np.asarray(keys, dtype=np.float64)
    if keys.ndim != 2:
        raise ValueError(f"expected (L, d) keys, got shape {keys.shape}")
    num_keys = keys.shape[0]
    if num_keys == 0:
        return ClusteringResult(
            labels=np.zeros(0, dtype=np.int64),
            centroids=np.zeros((0, keys.shape[1])),
            n_iters=0,
            converged=True,
        )
    if n_clusters <= 0:
        raise ValueError(f"n_clusters must be positive, got {n_clusters}")
    n_clusters = min(n_clusters, num_keys)

    rng = np.random.default_rng(seed)
    centroids = _init_centroids(keys, n_clusters, rng)
    labels = np.full(num_keys, -1, dtype=np.int64)
    converged = False
    n_iters = 0
    for n_iters in range(1, max_iters + 1):
        scores = pairwise_scores(keys, centroids, metric)
        new_labels = np.argmax(scores, axis=1).astype(np.int64)
        if np.array_equal(new_labels, labels):
            converged = True
            break
        labels = new_labels
        centroids = _update_centroids(keys, labels, n_clusters, centroids)
        labels, centroids = _repair_empty_clusters(keys, labels, centroids, metric)
    return ClusteringResult(
        labels=labels, centroids=centroids, n_iters=n_iters, converged=converged
    )


def _batched_assignment_scores(
    keys: np.ndarray,
    centroids: np.ndarray,
    metric: str,
    normed_keys: np.ndarray | None,
    sq_keys: np.ndarray | None,
) -> np.ndarray:
    """Scores of every key against its head's centroids, all heads at once.

    ``keys``/``centroids`` are ``(H, L, d)``/``(H, C, d)``; the result is
    ``(H, L, C)``.  ``normed_keys``/``sq_keys`` are the loop-invariant key
    terms, precomputed once per clustering run instead of per iteration.
    Each head's slice equals :func:`pairwise_scores` of that head bit for
    bit (a broadcast ``matmul`` runs the same BLAS kernel per slice).
    """
    if metric == "cosine":
        assert normed_keys is not None
        return np.matmul(normed_keys, np.swapaxes(_normalise(centroids), 1, 2))
    if metric == "ip":
        return np.matmul(keys, np.swapaxes(centroids, 1, 2))
    if metric == "l2":
        assert sq_keys is not None
        sq_centroids = np.sum(centroids**2, axis=2)[:, None, :]
        cross = np.matmul(keys, np.swapaxes(centroids, 1, 2))
        return -(sq_keys - 2.0 * cross + sq_centroids)
    raise ValueError(f"unknown clustering metric {metric!r}")


def kmeans_cluster_batch(
    keys: np.ndarray,
    n_clusters: int,
    metric: str = "cosine",
    max_iters: int = 20,
    seed: int = 0,
) -> list[ClusteringResult]:
    """K-means over every kv head of a layer, assignment step batched.

    ``keys`` has shape ``(n_kv_heads, L, d)``; head ``h`` is clustered with
    seed ``seed + h`` exactly like a :func:`kmeans_cluster` call on that
    head alone.  The O(L·C·d) assignment scoring of all still-running heads
    is fused into one broadcast GEMM + argmax per iteration; the cheap
    update/repair steps reuse the per-head helpers unchanged, and heads
    that converge early are frozen (their labels, centroids and iteration
    counts match the solo runs).  Returns one :class:`ClusteringResult` per
    head, bit-identical to the per-head loop.
    """
    keys = np.asarray(keys, dtype=np.float64)
    if keys.ndim != 3:
        raise ValueError(f"expected (n_kv_heads, L, d) keys, got shape {keys.shape}")
    n_heads, num_keys, dim = keys.shape
    if n_clusters <= 0:
        raise ValueError(f"n_clusters must be positive, got {n_clusters}")
    if num_keys == 0 or n_heads == 0:
        return [
            ClusteringResult(
                labels=np.zeros(0, dtype=np.int64),
                centroids=np.zeros((0, dim)),
                n_iters=0,
                converged=True,
            )
            for _ in range(n_heads)
        ]
    n_clusters = min(n_clusters, num_keys)

    # Loop-invariant key terms, computed once instead of per iteration.
    normed_keys = _normalise(keys) if metric == "cosine" else None
    sq_keys = (
        np.sum(keys**2, axis=2, keepdims=True) if metric == "l2" else None
    )

    centroids = np.empty((n_heads, n_clusters, dim))
    for head in range(n_heads):
        rng = np.random.default_rng(seed + head)
        centroids[head] = _init_centroids(keys[head], n_clusters, rng)
    labels = np.full((n_heads, num_keys), -1, dtype=np.int64)
    converged = np.zeros(n_heads, dtype=bool)
    n_iters = np.zeros(n_heads, dtype=np.int64)

    for iteration in range(1, max_iters + 1):
        active = np.flatnonzero(~converged)
        if active.size == 0:
            break
        whole = active.size == n_heads
        scores = _batched_assignment_scores(
            keys if whole else keys[active],
            centroids if whole else centroids[active],
            metric,
            normed_keys if whole or normed_keys is None else normed_keys[active],
            sq_keys if whole or sq_keys is None else sq_keys[active],
        )
        counters.record("gemm.kmeans_assign", 1)
        new_labels = np.argmax(scores, axis=2).astype(np.int64)
        n_iters[active] = iteration
        unchanged = (new_labels == labels[active]).all(axis=1)
        converged[active[unchanged]] = True
        live = active[~unchanged]
        if live.size == 0:
            continue
        live_labels = new_labels[~unchanged]
        labels[live] = live_labels

        # Batched update step: one np.add.at / bincount over all still-
        # moving heads (per-(head, cluster) accumulation order equals the
        # per-head _update_centroids call, so centroids are bit-identical).
        offsets = np.arange(live.size, dtype=np.int64)[:, None] * n_clusters
        flat = (live_labels + offsets).ravel()
        sums = np.zeros((live.size * n_clusters, dim))
        np.add.at(sums, flat, keys[live].reshape(-1, dim))
        counts = np.bincount(flat, minlength=live.size * n_clusters).reshape(
            live.size, n_clusters
        )
        sums = sums.reshape(live.size, n_clusters, dim)
        non_empty = counts > 0
        for slot, head in enumerate(live):
            updated = centroids[head]
            mask = non_empty[slot]
            updated[mask] = sums[slot][mask] / counts[slot][mask, None].astype(
                np.float64
            )
            if not mask.all():
                labels[head], centroids[head] = _repair_empty_clusters(
                    keys[head], labels[head], updated, metric
                )
    return [
        ClusteringResult(
            labels=labels[head].copy(),
            centroids=centroids[head].copy(),
            n_iters=int(n_iters[head]),
            converged=bool(converged[head]),
        )
        for head in range(n_heads)
    ]


def cluster_heads(
    keys: np.ndarray,
    n_clusters: int,
    metric: str = "cosine",
    max_iters: int = 20,
    seed: int = 0,
) -> list[ClusteringResult]:
    """Cluster every kv head of a layer independently.

    ``keys`` has shape ``(n_kv_heads, L, d)``.  Heads are processed with
    distinct seeds derived from ``seed`` so that centroid initialisation does
    not accidentally correlate across heads.  Delegates to
    :func:`kmeans_cluster_batch`, whose per-head results are bit-identical
    to calling :func:`kmeans_cluster` head by head.
    """
    keys = np.asarray(keys, dtype=np.float64)
    if keys.ndim != 3:
        raise ValueError(f"expected (n_kv_heads, L, d) keys, got shape {keys.shape}")
    return kmeans_cluster_batch(
        keys, n_clusters, metric=metric, max_iters=max_iters, seed=seed
    )


def clustering_flops(
    num_tokens: int, n_clusters: int, head_dim: int, n_iters: int
) -> int:
    """FLOPs of the K-means loop: ``O(n_iters * C * L * d)`` (paper Sec. III-D)."""
    return int(2 * num_tokens * n_clusters * head_dim * max(1, n_iters))
