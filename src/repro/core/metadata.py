"""Cluster metadata: sizes, prefix sums and sorted token indices.

After clustering, ClusterKV stores — per kv head — the cluster centroids
and the metadata needed for constant-time indexing at decode time
(paper Sec. IV-C and Fig. 8):

* the size of every cluster,
* the token indices sorted by cluster label (so that all members of one
  cluster are contiguous), and
* the exclusive prefix sum of cluster sizes giving every cluster's offset
  into the sorted index array.

The metadata supports appending new clusters created from decode windows
(paper Sec. III-B: every ``m`` generated tokens are clustered into ``C+``
new clusters); appended clusters get fresh labels so that labels remain
stable identifiers for the cluster-granularity cache.
"""

from __future__ import annotations

import numpy as np

from .clustering import ClusteringResult

__all__ = ["ClusterMetadata"]


class ClusterMetadata:
    """Per-head cluster metadata with append support."""

    def __init__(self, head_dim: int) -> None:
        self.head_dim = head_dim
        self.centroids = np.zeros((0, head_dim))
        self._centroid_norms = np.zeros(0)
        self._cluster_sizes = np.zeros(0, dtype=np.int64)
        # Token indices grouped by cluster; cluster ``c`` occupies
        # ``sorted_indices[prefix_sum[c] : prefix_sum[c] + cluster_sizes[c]]``.
        self._sorted_indices = np.zeros(0, dtype=np.int64)
        self._prefix_sum = np.zeros(0, dtype=np.int64)
        self._num_tokens = 0

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def append_clustering(
        self, result: ClusteringResult, token_offset: int
    ) -> np.ndarray:
        """Append the clusters of a new clustering run.

        Parameters
        ----------
        result:
            Clustering of a contiguous block of tokens.
        token_offset:
            Absolute position of the first token of that block.

        Returns
        -------
        numpy.ndarray
            The global labels assigned to the appended clusters.
        """
        if result.n_clusters == 0:
            return np.zeros(0, dtype=np.int64)
        if result.centroids.shape[1] != self.head_dim:
            raise ValueError(
                f"centroid dimension {result.centroids.shape[1]} does not match "
                f"metadata head_dim {self.head_dim}"
            )
        label_offset = self.num_clusters
        local_sizes = result.cluster_sizes()

        # Sort the block's token indices by local label so that members of a
        # cluster are contiguous (paper Fig. 8, "Sort" step).
        order = np.argsort(result.labels, kind="stable")
        sorted_global = order.astype(np.int64) + token_offset

        self.centroids = np.concatenate([self.centroids, result.centroids], axis=0)
        # Norms are maintained incrementally: centroids are immutable once
        # appended, so cosine scoring at decode time reads this cache instead
        # of renormalising the same (mostly prefill-static) centroids at
        # every step.
        self._centroid_norms = np.concatenate(
            [self._centroid_norms, np.linalg.norm(result.centroids, axis=1)]
        )
        self._cluster_sizes = np.concatenate(
            [self._cluster_sizes, local_sizes.astype(np.int64)]
        )
        self._sorted_indices = np.concatenate([self._sorted_indices, sorted_global])
        self._prefix_sum = np.concatenate(
            [np.zeros(1, dtype=np.int64), np.cumsum(self._cluster_sizes)]
        )[:-1]
        self._num_tokens += int(result.labels.shape[0])
        return np.arange(label_offset, label_offset + result.n_clusters, dtype=np.int64)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @property
    def num_clusters(self) -> int:
        """Total number of clusters recorded so far."""
        return int(self._cluster_sizes.shape[0])

    @property
    def num_tokens(self) -> int:
        """Total number of clustered tokens."""
        return self._num_tokens

    @property
    def centroid_norms(self) -> np.ndarray:
        """Cached L2 norms of all centroids, shape ``(num_clusters,)``.

        Maintained incrementally by :meth:`append_clustering`; cosine
        scoring (:func:`repro.core.selection.score_centroids`,
        :func:`repro.core.clustering.pairwise_scores`) passes this cache so
        static prefill centroids are not renormalised every decode step.
        """
        return self._centroid_norms

    @property
    def cluster_sizes(self) -> np.ndarray:
        """Sizes of all clusters, shape ``(num_clusters,)``."""
        return self._cluster_sizes

    @property
    def prefix_sum(self) -> np.ndarray:
        """Exclusive prefix sum of cluster sizes (offsets into the index array)."""
        return self._prefix_sum

    @property
    def sorted_indices(self) -> np.ndarray:
        """Token indices grouped by cluster."""
        return self._sorted_indices

    def cluster_tokens(self, label: int) -> np.ndarray:
        """Token indices belonging to cluster ``label``."""
        if label < 0 or label >= self.num_clusters:
            raise IndexError(f"cluster label {label} out of range")
        start = self._prefix_sum[label]
        return self._sorted_indices[start : start + self._cluster_sizes[label]]

    def tokens_of_clusters(self, labels: np.ndarray) -> np.ndarray:
        """Concatenated token indices of several clusters, in label order."""
        labels = np.asarray(labels, dtype=np.int64)
        pieces = [self.cluster_tokens(int(label)) for label in labels]
        if not pieces:
            return np.zeros(0, dtype=np.int64)
        return np.concatenate(pieces)

    def labels_of_tokens(self) -> np.ndarray:
        """Cluster label of every clustered token, indexed by *rank in sorted order*.

        Primarily a consistency helper for tests: returns an array ``labels``
        such that ``labels[i]`` is the cluster of ``sorted_indices[i]``.
        """
        labels = np.zeros(self._num_tokens, dtype=np.int64)
        for cluster in range(self.num_clusters):
            start = self._prefix_sum[cluster]
            labels[start : start + self._cluster_sizes[cluster]] = cluster
        return labels

    def metadata_nbytes(self, bytes_per_element: int = 2) -> int:
        """Approximate GPU footprint of centroids plus indexing metadata."""
        # Centroid norms are device-resident alongside the centroids (the
        # cosine scoring fast path reads them every step), so they count.
        centroid_bytes = (
            self.centroids.size + self._centroid_norms.size
        ) * bytes_per_element
        index_bytes = (
            self._cluster_sizes.size + self._prefix_sum.size + self._sorted_indices.size
        ) * 4  # int32 on device
        return int(centroid_bytes + index_bytes)
