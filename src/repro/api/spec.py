"""Declarative engine configuration for the public session API.

An :class:`EngineSpec` gathers everything needed to stand up a serving
session — model name, default compression policy, KV budget, decoding and
scheduler knobs — in one frozen, JSON-round-trippable object.  It is the
config-file / service-deployment counterpart of the imperative
constructors: ``Session(spec)`` (or ``Session(model=..., policy=...,
budget=...)``, which builds a spec internally) is the single entry point
the README quick-start uses.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, fields
from typing import Mapping

from ..memory import TierBudgets
from ..model import GenerationConfig, TransformerModel, get_model_config
from ..policies import PolicySpec, build_policy, resolve_policy_spec
from ..serving import SchedulerConfig
from ..specdec import SpeculationConfig, drafter_names

__all__ = ["EngineSpec"]


@dataclass(frozen=True)
class EngineSpec:
    """One serialisable description of a complete serving engine.

    Attributes
    ----------
    model:
        Name of the model configuration
        (:func:`repro.model.get_model_config`).
    policy:
        Default KV compression policy of the session; requests can still
        override it individually.  Accepts a :class:`PolicySpec` or a
        policy string (``"quest"``, ``"clusterkv:tokens_per_cluster=32"``),
        normalised to a spec at construction.
    budget:
        KV cache budget ``B`` in tokens per head; ``None`` disables
        compression.
    max_new_tokens / num_full_layers / num_sink_tokens / greedy /
    temperature / seed:
        Decoding configuration, see
        :class:`~repro.model.config.GenerationConfig`.
    max_batch_size / max_prefills_per_step / kv_budget_bytes /
    prefill_chunk_tokens:
        Scheduler configuration, see
        :class:`~repro.serving.SchedulerConfig`; ``prefill_chunk_tokens``
        enables chunked prefill (per-step prompt-token budget).
    prefix_cache_tokens / prefix_block_tokens / prefix_semantic_reuse:
        Cross-request prefix-cache configuration, also part of
        :class:`~repro.serving.SchedulerConfig`.  ``prefix_cache_tokens``
        sets the replica-local cache capacity in cached prompt tokens
        (``None`` disables prefix caching); ``prefix_block_tokens`` is the
        block granularity of sharing; ``prefix_semantic_reuse`` also
        restores per-policy semantic state (ClusterKV cluster segments)
        for cached prefixes.
    kv_capacity_tokens:
        Declared per-replica serving capacity in projected KV tokens
        (prompt plus decode length summed over admitted requests), read
        by the cluster layer's admission control
        (:class:`repro.cluster.TokenBudgetAdmission`).  ``None`` lets the
        cluster derive a capacity from ``kv_budget_bytes`` (when set) or
        a batch-slot heuristic; the serving engine itself never reads
        this field.
    preemption:
        Whether replicas may checkpoint-preempt ``batch``-class requests
        to unblock an ``interactive``-class queue head, also part of
        :class:`~repro.serving.SchedulerConfig`.
    tiers:
        Optional :class:`~repro.memory.TierBudgets` bounding the
        GPU/host/SSD memory hierarchy of every engine built from this
        spec (capacity mode — see :class:`repro.serving.BatchedEngine`).
        Accepts a budgets object, its dict form, or the CLI string
        ``"gpu=320KiB,host=448KiB,ssd=4MiB"``; ``None`` keeps all tiers
        unbounded.
    backend:
        Execution backend engines built from this spec run on:
        ``"serial"`` (in-process, the default) or ``"multiprocess"``
        (persistent worker pool sharing one read-only weight arena, see
        :mod:`repro.execbackend`).  Virtual-clock results are
        byte-identical across backends; only wall-clock changes.
    speculate_k:
        Speculative-decoding draft length ``k``: each engine step the
        drafter proposes up to ``k`` candidate tokens per decoding
        request and one batched verify round scores them
        (:mod:`repro.specdec`).  ``0`` (the default) decodes plainly;
        greedy outputs are bit-identical either way.
    drafter:
        Registered name of the drafter used when ``speculate_k > 0``
        (:func:`repro.specdec.build_drafter`); the default ``"ngram"``
        self-drafter needs no second model.
    """

    model: str = "serve-sim"
    policy: PolicySpec | str = field(default_factory=lambda: PolicySpec("full"))
    budget: int | None = None
    max_new_tokens: int = 32
    num_full_layers: int = 2
    num_sink_tokens: int = 16
    greedy: bool = True
    temperature: float = 1.0
    seed: int = 0
    max_batch_size: int = 8
    max_prefills_per_step: int = 2
    kv_budget_bytes: int | None = None
    prefill_chunk_tokens: int | None = None
    prefix_cache_tokens: int | None = None
    prefix_block_tokens: int = 32
    prefix_semantic_reuse: bool = True
    kv_capacity_tokens: int | None = None
    preemption: bool = False
    tiers: TierBudgets | None = None
    backend: str = "serial"
    speculate_k: int = 0
    drafter: str = "ngram"

    def __post_init__(self) -> None:
        if self.backend not in ("serial", "multiprocess"):
            raise ValueError(
                f"unknown execution backend {self.backend!r}; "
                "expected 'serial' or 'multiprocess'"
            )
        if self.speculate_k < 0:
            raise ValueError("speculate_k must be >= 0 (0 disables speculation)")
        if self.speculate_k > 0 and self.drafter not in drafter_names():
            raise ValueError(
                f"unknown drafter {self.drafter!r}; "
                f"registered drafters: {', '.join(drafter_names())}"
            )
        object.__setattr__(self, "policy", resolve_policy_spec(self.policy))
        if isinstance(self.tiers, str):
            object.__setattr__(self, "tiers", TierBudgets.parse(self.tiers))
        elif isinstance(self.tiers, Mapping):
            object.__setattr__(self, "tiers", TierBudgets.from_dict(self.tiers))

    # ------------------------------------------------------------------
    # builders
    # ------------------------------------------------------------------
    def build_model(self) -> TransformerModel:
        """Instantiate the transformer this spec names."""
        return TransformerModel(get_model_config(self.model))

    def build_policy(self):
        """Instantiate the default selector factory through the registry."""
        return build_policy(self.policy)

    def generation_config(self) -> GenerationConfig:
        """The :class:`GenerationConfig` slice of this spec."""
        return GenerationConfig(
            budget=self.budget,
            max_new_tokens=self.max_new_tokens,
            num_full_layers=self.num_full_layers,
            num_sink_tokens=self.num_sink_tokens,
            greedy=self.greedy,
            temperature=self.temperature,
            seed=self.seed,
        )

    def scheduler_config(self) -> SchedulerConfig:
        """The :class:`SchedulerConfig` slice of this spec."""
        return SchedulerConfig(
            max_batch_size=self.max_batch_size,
            max_prefills_per_step=self.max_prefills_per_step,
            kv_budget_bytes=self.kv_budget_bytes,
            prefill_chunk_tokens=self.prefill_chunk_tokens,
            prefix_cache_tokens=self.prefix_cache_tokens,
            prefix_block_tokens=self.prefix_block_tokens,
            prefix_semantic_reuse=self.prefix_semantic_reuse,
            preemption=self.preemption,
        )

    def speculation_config(self) -> SpeculationConfig | None:
        """The :class:`~repro.specdec.SpeculationConfig` slice of this spec.

        ``None`` when ``speculate_k == 0``, which is what keeps engines
        built from a default spec on the plain (non-speculative) decode
        path, bit for bit.
        """
        if self.speculate_k <= 0:
            return None
        return SpeculationConfig(drafter=self.drafter, k=self.speculate_k)

    # ------------------------------------------------------------------
    # dict / JSON round-trip
    # ------------------------------------------------------------------
    def to_dict(self) -> dict[str, object]:
        """Plain-dict form; the policy is embedded as its flat dict."""
        payload: dict[str, object] = {
            spec_field.name: getattr(self, spec_field.name) for spec_field in fields(self)
        }
        payload["policy"] = self.policy.to_dict()  # type: ignore[union-attr]
        if self.tiers is not None:
            payload["tiers"] = self.tiers.to_dict()
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "EngineSpec":
        """Rebuild a spec from :meth:`to_dict` output."""
        data = dict(payload)
        policy = data.get("policy")
        if isinstance(policy, Mapping):
            data["policy"] = PolicySpec.from_dict(policy)
        return cls(**data)

    def to_json(self) -> str:
        """JSON form of :meth:`to_dict`."""
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "EngineSpec":
        """Rebuild a spec from :meth:`to_json` output."""
        payload = json.loads(text)
        if not isinstance(payload, dict):
            raise ValueError("engine spec JSON must be an object")
        return cls.from_dict(payload)
