"""Public session API: the stable facade over the whole reproduction.

``repro.api`` is the entry point applications should use:

* :class:`EngineSpec` — one declarative, JSON-round-trippable config
  object describing model, default policy, budget, decoding and scheduler
  knobs.
* :class:`Session` — built from an ``EngineSpec`` (or its fields as
  keyword arguments); exposes ``generate()`` for one-shot calls,
  ``submit()``/``step()``/``run()`` for batched serving, and ``stream()``
  yielding per-token :class:`TokenEvent` objects.

Compression methods are referred to declaratively through
:mod:`repro.policies`; every request can carry its own policy, so a single
session serves heterogeneous traffic.
"""

from .session import Session, TokenEvent
from .spec import EngineSpec

__all__ = ["EngineSpec", "Session", "TokenEvent"]
