"""Public session API: the stable facade over the whole reproduction.

``repro.api`` is the entry point applications should use:

* :class:`EngineSpec` — one declarative, JSON-round-trippable config
  object describing model, default policy, budget, decoding and scheduler
  knobs, including the cross-request prefix cache
  (``prefix_cache_tokens`` capacity, ``prefix_block_tokens`` radix block
  size, ``prefix_semantic_reuse`` for ClusterKV cluster-state reuse —
  see :mod:`repro.prefixcache`).
* :class:`Session` — built from an ``EngineSpec`` (or its fields as
  keyword arguments); exposes ``generate()`` for one-shot calls,
  ``submit()``/``step()``/``run()`` for batched serving, and ``stream()``
  yielding per-token :class:`TokenEvent` objects.
* :func:`simulate` — open-loop traffic simulation: a workload from
  :mod:`repro.traffic` served over one or more replicas (each described
  by an ``EngineSpec``) on a virtual clock, returning a
  :class:`~repro.traffic.TrafficReport` of TTFT/TPOT percentiles and
  SLO goodput.

Compression methods are referred to declaratively through
:mod:`repro.policies`; every request can carry its own policy, so a single
session serves heterogeneous traffic.
"""

from .session import Session, TokenEvent
from .spec import EngineSpec

__all__ = ["EngineSpec", "Session", "TokenEvent", "simulate", "simulate_cluster"]


def simulate(
    requests,
    config=None,
    router=None,
    clock=None,
    *,
    autoscaler=None,
    admission=None,
    failures=None,
    min_replicas=None,
    max_replicas=None,
    max_retries=None,
    workers=None,
):
    """Run one open-loop traffic simulation, static or elastic.

    With only the base arguments this forwards to
    :func:`repro.traffic.simulate`: a fixed fleet of
    ``config.num_replicas`` replicas, every request admitted.  Passing
    any cluster knob switches to the elastic
    :class:`~repro.cluster.ClusterSimulator`:

    * ``autoscaler`` / ``admission`` — control-plane policies, as
      instances or compact spec strings (``"queue_depth:high=2"``,
      ``"token_budget"``);
    * ``failures`` — a :class:`~repro.cluster.FailurePlan` of replica
      kills;
    * ``min_replicas`` / ``max_replicas`` — provisioning bounds
      (defaults: ``config.num_replicas`` and twice that);
    * ``max_retries`` — failure re-dispatch budget per request.

    ``workers`` selects the multiprocess execution backend with that many
    worker processes (see :mod:`repro.execbackend`) — valid for both the
    static and elastic paths; reports are byte-identical to the serial
    default.

    Imported lazily because :mod:`repro.traffic` and
    :mod:`repro.cluster` build their replicas from this module's
    :class:`EngineSpec`.
    """
    cluster_knobs = (autoscaler, admission, failures, min_replicas, max_replicas, max_retries)
    if all(knob is None for knob in cluster_knobs):
        from ..traffic import simulate as _simulate

        return _simulate(requests, config, router=router, clock=clock, workers=workers)

    from ..cluster import ClusterConfig, simulate_cluster as _simulate_cluster
    from ..traffic import TrafficConfig

    base = config or TrafficConfig()
    floor = base.num_replicas if min_replicas is None else min_replicas
    ceiling = max(floor, 2 * floor) if max_replicas is None else max_replicas
    cluster_config = ClusterConfig(
        engine=base.engine,
        min_replicas=floor,
        max_replicas=ceiling,
        autoscaler=autoscaler if autoscaler is not None else "static",
        admission=admission if admission is not None else "always",
        router=base.router,
        clock=base.clock,
        arch=base.arch,
        context_scale=base.context_scale,
        slo=base.slo,
        failures=failures if failures is not None else _empty_failure_plan(),
        max_retries=max_retries if max_retries is not None else 3,
        workers=base.workers,
    )
    return _simulate_cluster(
        requests, cluster_config, router=router, clock=clock, workers=workers
    )


def simulate_cluster(requests, config=None, router=None, clock=None, *, workers=None):
    """Run one elastic cluster simulation (see :func:`repro.cluster.simulate_cluster`).

    Takes a full :class:`~repro.cluster.ClusterConfig`; for the common
    cases the cluster knobs of :func:`simulate` are more convenient.
    """
    from ..cluster import simulate_cluster as _simulate_cluster

    return _simulate_cluster(requests, config, router=router, clock=clock, workers=workers)


def _empty_failure_plan():
    """A fresh empty :class:`~repro.cluster.FailurePlan` (lazy import)."""
    from ..cluster import FailurePlan

    return FailurePlan()
