"""Public session API: the stable facade over the whole reproduction.

``repro.api`` is the entry point applications should use:

* :class:`EngineSpec` — one declarative, JSON-round-trippable config
  object describing model, default policy, budget, decoding and scheduler
  knobs.
* :class:`Session` — built from an ``EngineSpec`` (or its fields as
  keyword arguments); exposes ``generate()`` for one-shot calls,
  ``submit()``/``step()``/``run()`` for batched serving, and ``stream()``
  yielding per-token :class:`TokenEvent` objects.
* :func:`simulate` — open-loop traffic simulation: a workload from
  :mod:`repro.traffic` served over one or more replicas (each described
  by an ``EngineSpec``) on a virtual clock, returning a
  :class:`~repro.traffic.TrafficReport` of TTFT/TPOT percentiles and
  SLO goodput.

Compression methods are referred to declaratively through
:mod:`repro.policies`; every request can carry its own policy, so a single
session serves heterogeneous traffic.
"""

from .session import Session, TokenEvent
from .spec import EngineSpec

__all__ = ["EngineSpec", "Session", "TokenEvent", "simulate"]


def simulate(requests, config=None, router=None, clock=None):
    """Run one open-loop traffic simulation (see :func:`repro.traffic.simulate`).

    Thin forwarding wrapper so applications can drive the whole stack —
    sessions for closed-loop calls, ``simulate`` for latency-under-load
    experiments — from :mod:`repro.api` alone.  Imported lazily because
    :mod:`repro.traffic` builds its replicas from this module's
    :class:`EngineSpec`.
    """
    from ..traffic import simulate as _simulate

    return _simulate(requests, config, router=router, clock=clock)
