"""The public session facade: one object from prompt to tokens.

:class:`Session` wraps the whole stack — model construction, the policy
registry, the continuous-batching engine — behind three usage styles:

* **one-shot**: ``session.generate(prompt)`` returns the finished
  :class:`~repro.model.generation.GenerationResult`;
* **streaming**: ``for event in session.stream(prompt): ...`` yields one
  :class:`TokenEvent` per generated token, as the engine produces it;
* **batched**: ``session.submit(...)`` several requests (each optionally
  with its own compression policy), then ``session.step()`` manually or
  ``session.run()`` to drain the queue.

All three drive the same :class:`~repro.serving.BatchedEngine`, so a
streamed request decodes the very same tokens as a one-shot call, and
one-shot calls issued while other requests are queued simply join the
batch.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Iterator
from dataclasses import dataclass

import numpy as np

from ..model import GenerationResult, SyntheticTokenizer
from ..policies import PolicySpec
from ..serving import BatchedEngine, CompletedRequest, ServeReport, ServeRequest
from .spec import EngineSpec

__all__ = ["TokenEvent", "Session"]


@dataclass(frozen=True)
class TokenEvent:
    """One generated token, as yielded by :meth:`Session.stream`.

    Attributes
    ----------
    request_id:
        Id of the request the token belongs to.
    index:
        Zero-based position of the token in the request's output.
    token_id:
        The sampled token id.
    logprob:
        Log-probability of the token under the output distribution it was
        sampled from.
    text:
        The token decoded through the session tokenizer (empty for special
        tokens).
    finished:
        ``True`` on the last token of the request.
    """

    request_id: str
    index: int
    token_id: int
    logprob: float
    text: str
    finished: bool


class Session:
    """High-level serving session built from one :class:`EngineSpec`.

    Parameters
    ----------
    spec:
        Complete engine description; defaults to ``EngineSpec()``.
    **overrides:
        Any :class:`EngineSpec` field as a keyword argument, applied on top
        of ``spec`` — so ``Session(model="serve-sim", policy="clusterkv",
        budget=48)`` works without building a spec first.

    Examples
    --------
    >>> session = Session(model="serve-sim", policy="clusterkv", budget=48)
    >>> result = session.generate("where is the answer hidden")
    >>> for event in session.stream([5, 6, 7, 8], policy="quest"):
    ...     print(event.token_id, event.text)
    """

    def __init__(self, spec: EngineSpec | None = None, **overrides: object) -> None:
        base = spec if spec is not None else EngineSpec()
        if overrides:
            base = dataclasses.replace(base, **overrides)  # type: ignore[arg-type]
        self.spec = base
        self.model = base.build_model()
        self.tokenizer = SyntheticTokenizer(self.model.config.vocab_size)
        self.engine = BatchedEngine(
            self.model,
            selector=base.build_policy(),
            generation_config=base.generation_config(),
            scheduler_config=base.scheduler_config(),
            tiers=base.tiers,
            speculation=base.speculation_config(),
        )
        self._completed: list[CompletedRequest] = []
        self._completed_by_id: dict[str, CompletedRequest] = {}
        # Requests with a live stream() iterator; their results survive
        # clear_completed() until the iterator finishes.
        self._streaming_ids: set[str] = set()

    # ------------------------------------------------------------------
    # submission / stepping
    # ------------------------------------------------------------------
    def submit(
        self,
        prompt: str | np.ndarray | list[int],
        request_id: str | None = None,
        max_new_tokens: int | None = None,
        seed: int | None = None,
        policy: PolicySpec | str | None = None,
        arrival_time_s: float = 0.0,
    ) -> ServeRequest:
        """Enqueue a request; string prompts are tokenized by the session.

        ``policy`` overrides the session's default compression policy for
        this request only, so one session serves mixed-policy traffic.
        ``arrival_time_s`` stamps the request's arrival instant for the
        latency metrics surfaced by ``ServeReport.request_timings()``.
        """
        return self.engine.submit(
            self._encode(prompt),
            request_id=request_id,
            max_new_tokens=max_new_tokens,
            seed=seed,
            policy=policy,
            arrival_time_s=arrival_time_s,
        )

    def step(self) -> list[CompletedRequest]:
        """Run one engine step; returns the requests that finished."""
        completed = self.engine.step()
        self._record_completed(completed)
        return completed

    def run(self) -> ServeReport:
        """Drain the queue and return the aggregate :class:`ServeReport`."""
        report = self.engine.run()
        self._record_completed(report.completed)
        return report

    @property
    def completed(self) -> list[CompletedRequest]:
        """Every request finished through this session, in retirement order."""
        return list(self._completed)

    def results(self) -> dict[str, GenerationResult]:
        """Results of all finished requests, keyed by request id."""
        return {rid: c.result for rid, c in self._completed_by_id.items()}

    def prefix_cache_stats(self) -> dict[str, object]:
        """Accounting snapshot of the engine's cross-request prefix cache.

        Hits, misses, hit rate and token counters of the
        :class:`~repro.prefixcache.RadixPrefixCache` built when the
        session's spec sets ``prefix_cache_tokens``; empty when the cache
        is disabled.
        """
        return self.engine.prefix_cache_stats()

    def clear_completed(self) -> None:
        """Drop retained results of finished requests.

        Finished requests are otherwise retained for the session lifetime
        (so :meth:`results` keeps working); long-lived sessions serving
        many requests should call this periodically once results have been
        consumed, to bound memory.  Requests whose :meth:`stream` iterator
        is still being consumed are retained so the iterator can finish
        replaying their tokens.
        """
        retained = [
            c for c in self._completed if c.request.request_id in self._streaming_ids
        ]
        self._completed = retained
        self._completed_by_id = {c.request.request_id: c for c in retained}

    # ------------------------------------------------------------------
    # one-shot and streaming
    # ------------------------------------------------------------------
    def generate(
        self,
        prompt: str | np.ndarray | list[int],
        request_id: str | None = None,
        max_new_tokens: int | None = None,
        seed: int | None = None,
        policy: PolicySpec | str | None = None,
    ) -> GenerationResult:
        """Generate to completion and return the request's result.

        The request joins the session's batch like any other; previously
        queued requests keep decoding (and may finish) while this one runs.
        """
        request = self.submit(
            prompt,
            request_id=request_id,
            max_new_tokens=max_new_tokens,
            seed=seed,
            policy=policy,
        )
        for completed in self._step_until_finished(request.request_id):
            pass
        return self._completed_by_id[request.request_id].result

    def stream(
        self,
        prompt: str | np.ndarray | list[int],
        request_id: str | None = None,
        max_new_tokens: int | None = None,
        seed: int | None = None,
        policy: PolicySpec | str | None = None,
    ) -> Iterator[TokenEvent]:
        """Generate while yielding one :class:`TokenEvent` per token.

        Token for token equivalent to :meth:`generate` under the same
        session configuration: the iterator merely observes the in-flight
        result between engine steps, it does not alter decoding.

        Submission (and thus policy/budget validation) happens eagerly in
        this call, before the iterator is first advanced — a typo fails
        here, not at the first ``next()``.  If the returned iterator is
        abandoned mid-stream, the request stays queued/active and is
        finished by the session's subsequent stepping (it still appears in
        :meth:`results`).
        """
        request = self.submit(
            prompt,
            request_id=request_id,
            max_new_tokens=max_new_tokens,
            seed=seed,
            policy=policy,
        )
        self._streaming_ids.add(request.request_id)
        return _TokenStream(self, request.request_id)

    def _stream_events(self, rid: str) -> Iterator[TokenEvent]:
        """Inner generator of :meth:`stream`; the request is already queued."""
        try:
            yield from self._stream_events_inner(rid)
        finally:
            # Runs on normal exhaustion and on abandonment (GeneratorExit),
            # releasing the clear_completed() retention hold.  An iterator
            # abandoned before its first step is released by _TokenStream,
            # whose close()/__del__ always fire.
            self._streaming_ids.discard(rid)

    def _stream_events_inner(self, rid: str) -> Iterator[TokenEvent]:
        """Token-event loop of :meth:`stream`, wrapped for cleanup."""
        emitted = 0
        for finished_result in self._step_until_finished(rid):
            result = (
                finished_result
                if finished_result is not None
                else self.engine.in_flight_result(rid)
            )
            if result is None:  # not admitted yet
                continue
            total = len(result.output_ids)
            is_last_batch = finished_result is not None
            while emitted < total:
                token_id = result.output_ids[emitted]
                yield TokenEvent(
                    request_id=rid,
                    index=emitted,
                    token_id=token_id,
                    logprob=result.output_logprobs[emitted],
                    text=self.tokenizer.decode([token_id]),
                    finished=is_last_batch and emitted == total - 1,
                )
                emitted += 1

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _step_until_finished(self, request_id: str) -> Iterator[GenerationResult | None]:
        """Step the engine until ``request_id`` retires.

        Yields ``None`` after every intermediate step and the finished
        :class:`GenerationResult` once, then stops.  A request that
        already retired — e.g. because another stream or ``run()`` stepped
        the engine in the meantime — is recognised without stepping.
        Raises if the engine goes idle without finishing the request
        (cannot happen through :meth:`submit`, which validates
        admissibility).
        """
        while True:
            item = self._completed_by_id.get(request_id)
            if item is not None:
                yield item.result
                return
            if not self.engine.queue and not self.engine.num_active:
                raise RuntimeError(
                    f"engine went idle before request {request_id!r} finished"
                )
            self.step()
            yield None

    def _record_completed(self, completed: list[CompletedRequest]) -> None:
        """Retain finished requests for :meth:`results` lookups."""
        self._completed.extend(completed)
        for item in completed:
            self._completed_by_id[item.request.request_id] = item

    def _encode(self, prompt: str | np.ndarray | list[int]) -> np.ndarray:
        """Tokenize string prompts; pass token id sequences through."""
        if isinstance(prompt, str):
            return np.asarray(self.tokenizer.encode(prompt), dtype=np.int64)
        return np.asarray(prompt, dtype=np.int64)


class _TokenStream:
    """Iterator over a stream's :class:`TokenEvent` objects with cleanup.

    Wraps the session's event generator so the ``clear_completed()``
    retention hold taken at :meth:`Session.stream` time is released even
    when the iterator is abandoned before its first step (a never-started
    generator's ``finally`` would not run; this wrapper's ``close`` always
    does, at the latest on garbage collection).
    """

    def __init__(self, session: Session, request_id: str) -> None:
        self._session = session
        self._request_id = request_id
        self._events = session._stream_events(request_id)

    def __iter__(self) -> "_TokenStream":
        return self

    def __next__(self) -> TokenEvent:
        return next(self._events)

    def close(self) -> None:
        """Release the retention hold and close the underlying generator."""
        self._session._streaming_ids.discard(self._request_id)
        self._events.close()

    def __del__(self) -> None:
        try:
            self.close()
        except Exception:  # pragma: no cover - interpreter-shutdown noise
            pass
