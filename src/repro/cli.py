"""Command-line interface for running the reproduction experiments.

Examples
--------
List the available experiments::

    python -m repro list

Run the performance-model experiments (fast, paper-scale)::

    python -m repro fig12
    python -m repro fig13
    python -m repro cache-study --scale 64

Run an accuracy experiment at a reduced context scale::

    python -m repro fig9 --scale 64 --samples 2
    python -m repro fig11 --scale 64
"""

from __future__ import annotations

import argparse
import sys
from collections.abc import Sequence

from . import experiments as exp

__all__ = ["main", "build_parser"]


def _parse_bench_policies(args: argparse.Namespace) -> "tuple | None":
    """Collect ``--policy``/``--policy-json`` flags into policy specs."""
    import json

    from .policies import PolicySpec

    specs: list[PolicySpec] = []
    for text in args.policy or ():
        specs.append(PolicySpec.parse(text))
    if args.policy_json:
        payload = json.loads(args.policy_json)
        items = payload if isinstance(payload, list) else [payload]
        for item in items:
            if isinstance(item, str):
                specs.append(PolicySpec.parse(item))
            elif isinstance(item, dict):
                specs.append(PolicySpec.from_dict(item))
            else:
                raise ValueError(
                    "--policy-json entries must be policy objects like "
                    '{"name": "quest", "page_size": 32} or name strings, '
                    f"got {item!r}"
                )
    return tuple(specs) if specs else None


def _run_serve_bench(args: argparse.Namespace) -> str:
    from .serving import (
        ServeBenchConfig,
        format_mixed_serve_bench,
        format_serve_bench,
        run_mixed_serve_bench,
        run_serve_bench,
    )

    config = ServeBenchConfig(
        model=args.model,
        methods=tuple(args.methods),
        policies=_parse_bench_policies(args),
        num_requests=args.requests,
        max_batch_size=args.batch,
        prompt_len=args.prompt_len,
        max_new_tokens=args.new_tokens,
        budget=args.budget,
        repeats=args.repeats,
        speculate_k=args.speculate,
        drafter=args.drafter,
    )
    if args.mixed:
        return format_mixed_serve_bench(run_mixed_serve_bench(config))
    return format_serve_bench(run_serve_bench(config))


def _workload_kwargs(args: argparse.Namespace) -> dict:
    """The TrafficBenchConfig kwargs shared by traffic- and cluster-bench."""
    from .policies import PolicySpec
    from .traffic import SLOSpec

    policies = tuple(PolicySpec.parse(text) for text in args.policy or ()) or (
        "clusterkv",
    )
    return dict(
        model=args.model,
        policies=policies,
        rate=args.rate,
        arrivals=args.arrivals,
        burstiness=args.burstiness,
        num_requests=args.requests,
        router=args.router,
        clock=args.clock,
        arch=args.arch,
        context_scale=args.context_scale,
        prompt_len_min=args.prompt_len_min,
        prompt_len_max=args.prompt_len_max,
        max_new_tokens=args.new_tokens,
        budget=args.budget,
        prefill_chunk=None if args.prefill_chunk <= 0 else args.prefill_chunk,
        prefix_cache=None if args.prefix_cache <= 0 else args.prefix_cache,
        prefix_block=args.prefix_block,
        slo_class_mix=None if args.slo_class_mix < 0 else args.slo_class_mix,
        preemption=args.preempt,
        slo=SLOSpec(
            ttft_s=None if args.slo_ttft <= 0 else args.slo_ttft,
            tpot_s=None if args.slo_tpot <= 0 else args.slo_tpot,
        ),
        seed=args.seed,
        trace=args.trace,
        backend=args.backend,
        workers=None if args.workers <= 0 else args.workers,
        speculate_k=args.speculate,
        drafter=args.drafter,
    )


def _run_traffic_bench(args: argparse.Namespace) -> str:
    from .traffic import TrafficBenchConfig, format_traffic_report, run_traffic_bench

    config = TrafficBenchConfig(num_replicas=args.replicas, **_workload_kwargs(args))
    report = run_traffic_bench(config)
    if args.json:
        return report.to_json()
    return format_traffic_report(report)


def _parse_failure_plan(args: argparse.Namespace):
    """Build the FailurePlan from --kill and/or --failure-* flags."""
    from .cluster import FailureEvent, FailurePlan

    events = []
    num_zones = args.failure_zones
    for text in args.kill or ():
        time_text, _, target_text = text.partition("@")
        try:
            if target_text.startswith("zone"):
                events.append(
                    FailureEvent(time_s=float(time_text), zone=int(target_text[4:]))
                )
            else:
                events.append(
                    FailureEvent(
                        time_s=float(time_text),
                        slot=int(target_text) if target_text else 0,
                    )
                )
        except ValueError as error:
            raise ValueError(
                f"malformed --kill {text!r}; expected TIME, TIME@SLOT or TIME@zoneZ"
            ) from error
    if args.failure_count > 0:
        seeded = FailurePlan.seeded(
            seed=args.failure_seed,
            num_failures=args.failure_count,
            horizon_s=args.failure_horizon,
        )
        events.extend(seeded.events)
    return FailurePlan(events=tuple(events), num_zones=num_zones)


def _run_cluster_bench(args: argparse.Namespace) -> str:
    from .cluster import ClusterBenchConfig, format_cluster_report, run_cluster_bench

    config = ClusterBenchConfig(
        min_replicas=args.min_replicas,
        max_replicas=args.max_replicas,
        autoscaler=args.autoscaler,
        admission=args.admission,
        failures=_parse_failure_plan(args),
        max_retries=args.max_retries,
        migrate_on_drain=args.migrate_on_drain,
        checkpoint_interval_s=(
            None if args.checkpoint_interval <= 0 else args.checkpoint_interval
        ),
        **_workload_kwargs(args),
    )
    report = run_cluster_bench(config)
    if args.json:
        return report.to_json()
    return format_cluster_report(report)


def _run_capacity_bench(args: argparse.Namespace) -> str:
    from .capacity import (
        CapacityBenchConfig,
        CapacityScenarioConfig,
        format_capacity_report,
        run_capacity_bench,
    )
    from .policies import PolicySpec
    from .traffic import SLOSpec

    policies = tuple(PolicySpec.parse(text) for text in args.policy or ()) or (
        "clusterkv",
        "full",
    )
    try:
        lo_text, hi_text, step_text = args.sweep.split(":")
        context_min, context_max, context_step = (
            int(lo_text),
            int(hi_text),
            int(step_text),
        )
    except ValueError as error:
        raise ValueError(
            f"malformed --sweep {args.sweep!r}; expected MIN:MAX:STEP token counts"
        ) from error
    config = CapacityBenchConfig(
        scenario=args.scenario,
        config=CapacityScenarioConfig(
            model=args.model,
            policies=policies,
            tiers=args.tiers,
            budget=args.budget,
            max_new_tokens=args.new_tokens,
            concurrencies=tuple(args.concurrency or (1, 2, 3)),
            context_min=context_min,
            context_max=context_max,
            context_step=context_step,
            rates=tuple(args.rates),
            num_requests=args.requests,
            arch=args.arch,
            context_scale=args.context_scale,
            slo=SLOSpec(
                ttft_s=None if args.slo_ttft <= 0 else args.slo_ttft,
                tpot_s=None if args.slo_tpot <= 0 else args.slo_tpot,
            ),
            slo_floor=args.slo_floor,
            seed=args.seed,
            backend=args.backend,
            workers=None if args.workers <= 0 else args.workers,
        ),
    )
    report = run_capacity_bench(config)
    if args.json:
        return report.to_json()
    return format_capacity_report(report)


def _run_perf_bench(args: argparse.Namespace) -> str:
    from .perf import format_perf_bench, run_perf_bench, write_bench_file

    payload = run_perf_bench(include_wall=not args.counters_only)
    if args.write:
        write_bench_file(args.write, payload)
    return format_perf_bench(payload)


def _run_fig3(args: argparse.Namespace) -> str:
    result = exp.run_fig3(exp.Fig3Config(scale=exp.ContextScale(args.scale)))
    return exp.format_fig3(result)


def _run_fig9(args: argparse.Namespace) -> str:
    config = exp.Fig9Config(
        scale=exp.ContextScale(args.scale), num_samples=args.samples
    )
    result = exp.run_table1(config)
    return exp.format_fig9(result.fig9) + "\n\n" + exp.format_table1(result)


def _run_fig10(args: argparse.Namespace) -> str:
    config = exp.Fig10Config(
        scale=exp.ContextScale(args.scale), num_samples=args.samples
    )
    return exp.format_fig10(exp.run_fig10(config))


def _run_fig11(args: argparse.Namespace) -> str:
    config = exp.Fig11Config(scale=exp.ContextScale(args.scale))
    methods = exp.run_fig11_methods(config)
    ablation = exp.run_fig11_ablation(config)
    return (
        exp.format_fig11(methods, "[Fig. 11a] recall rate by method")
        + "\n\n"
        + exp.format_fig11(ablation, "[Fig. 11b] ClusterKV ablation")
    )


def _run_fig12(args: argparse.Namespace) -> str:
    return exp.format_fig12(exp.run_fig12(exp.Fig12Config()))


def _run_fig13(args: argparse.Namespace) -> str:
    config = exp.Fig13Config()
    return exp.format_fig13(exp.run_fig13_infinigen(config), exp.run_fig13_quest(config))


def _run_cache_study(args: argparse.Namespace) -> str:
    config = exp.CacheStudyConfig(scale=exp.ContextScale(args.scale))
    return exp.format_cache_study(exp.run_cache_study(config))


def _run_design_ablation(args: argparse.Namespace) -> str:
    config = exp.DesignAblationConfig(
        scale=exp.ContextScale(args.scale), num_samples=args.samples
    )
    return exp.format_design_ablation(exp.run_design_ablation(config))


_EXPERIMENTS = {
    "fig3": ("Fig. 3 motivation analyses", _run_fig3),
    "fig9": ("Fig. 9 / Table I LongBench-analogue accuracy", _run_fig9),
    "fig10": ("Fig. 10 language-modelling perplexity", _run_fig10),
    "fig11": ("Fig. 11 recall rate and ablations", _run_fig11),
    "fig12": ("Fig. 12 latency vs. full KV (perf model)", _run_fig12),
    "fig13": ("Fig. 13 vs. Quest / InfiniGen (perf model)", _run_fig13),
    "cache-study": ("Sec. V-C cluster-cache effectiveness", _run_cache_study),
    "design-ablation": ("ClusterKV design-choice ablation", _run_design_ablation),
}

# Commands with their own argument sets (not the shared experiment flags).
# ``build_parser`` registers their subparsers; ``main`` dispatches and
# ``list`` prints both registries, so adding a command means one entry here
# plus its subparser setup.
_SERVING_COMMANDS = {
    "serve-bench": (
        "continuous-batching serving throughput vs. sequential runs",
        _run_serve_bench,
    ),
    "traffic-bench": (
        "open-loop traffic simulation: routing, replicas, SLO latency metrics",
        _run_traffic_bench,
    ),
    "cluster-bench": (
        "elastic cluster simulation: autoscaling, admission control, "
        "failure injection",
        _run_cluster_bench,
    ),
    "capacity-bench": (
        "sweep-to-failure capacity scenarios over GPU/host/SSD tier budgets",
        _run_capacity_bench,
    ),
    "perf-bench": (
        "hot-path benchmark: prefill/decode/clustering/serving timings + "
        "deterministic op counters (BENCH_hotpaths.json)",
        _run_perf_bench,
    ),
}


def _format_listing() -> str:
    """The ``repro list`` output: every subcommand plus every policy.

    Commands come from the experiment and serving command registries;
    policies come from the policy registry, so third-party selectors that
    registered themselves show up here automatically.
    """
    from .policies import available_policies

    lines = ["commands:"]
    commands = {
        **_EXPERIMENTS,
        **_SERVING_COMMANDS,
        "list": ("list all subcommands and registered compression policies", None),
    }
    for name, (description, _) in commands.items():
        lines.append(f"  {name:16s} {description}")
    lines.append("")
    lines.append("policies (use with --policy NAME[:KEY=VAL,...] or --methods NAME):")
    for name, entry in available_policies().items():
        lines.append(f"  {name:16s} {entry.summary}")
    from .cluster import admission_names, autoscaler_names
    from .traffic import arrival_names, router_names

    lines.append("")
    lines.append("traffic routers (use with traffic-bench --router NAME):")
    lines.append("  " + ", ".join(router_names()))
    lines.append(
        "prefix cache (traffic-/cluster-bench --prefix-cache TOKENS "
        "[--prefix-block N]; EngineSpec prefix_cache_tokens/"
        "prefix_block_tokens/prefix_semantic_reuse):"
    )
    lines.append(
        "  per-replica radix cache of prompt-prefix KV; pair with "
        "--router prefix_affine"
    )
    from .capacity import scenario_names

    lines.append(
        "capacity scenarios (capacity-bench --scenario NAME "
        "--tiers gpu=SIZE,host=SIZE,ssd=SIZE --sweep MIN:MAX:STEP):"
    )
    lines.append("  " + ", ".join(scenario_names()))
    lines.append("arrival processes (traffic-bench --arrivals NAME):")
    lines.append("  " + ", ".join(arrival_names()))
    lines.append("autoscalers (cluster-bench --autoscaler NAME[:KEY=VAL,...]):")
    lines.append("  " + ", ".join(autoscaler_names()))
    lines.append("admission policies (cluster-bench --admission NAME[:KEY=VAL,...]):")
    lines.append("  " + ", ".join(admission_names()))
    lines.append(
        "sequence state (traffic-/cluster-bench --slo-class-mix FRAC --preempt; "
        "cluster-bench --migrate-on-drain --checkpoint-interval S "
        "[--failure-zones N, --kill TIME@zoneZ]):"
    )
    lines.append(
        "  repro.seqstate checkpoints: SLO-class preemption, live KV "
        "migration off draining replicas, periodic-checkpoint failure recovery"
    )
    lines.append(
        "execution backends (traffic-/cluster-/capacity-bench "
        "--backend {serial,multiprocess} [--workers N]):"
    )
    lines.append(
        "  repro.execbackend replica workers: --workers N runs engines in N "
        "worker processes sharing read-only weights; reports byte-identical "
        "to serial, wall-clock scales with cores"
    )
    from .specdec import drafter_names

    lines.append(
        "speculative decoding (serve-/traffic-/cluster-bench --speculate K "
        "[--drafter NAME]; EngineSpec speculate_k/drafter):"
    )
    lines.append(
        "  repro.specdec draft-then-verify decoding; drafters: "
        + ", ".join(drafter_names())
    )
    return "\n".join(lines)


def build_parser() -> argparse.ArgumentParser:
    """Build the argument parser of the ``repro`` CLI."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="ClusterKV reproduction: regenerate the paper's tables and figures.",
    )
    subparsers = parser.add_subparsers(dest="command")
    subparsers.add_parser(
        "list", help="list all subcommands and registered compression policies"
    )
    for name, (description, _) in _EXPERIMENTS.items():
        sub = subparsers.add_parser(name, help=description)
        sub.add_argument(
            "--scale",
            type=int,
            default=64,
            help="context down-scale factor for accuracy experiments (default 64)",
        )
        sub.add_argument(
            "--samples", type=int, default=2, help="samples per task (default 2)"
        )
        sub.add_argument("--out", type=str, default=None, help="write output to a file")

    serve = subparsers.add_parser(
        "serve-bench", help=_SERVING_COMMANDS["serve-bench"][0]
    )
    serve.add_argument(
        "--model", type=str, default="serve-sim", help="model config (default serve-sim)"
    )
    serve.add_argument(
        "--methods",
        type=str,
        nargs="+",
        default=["clusterkv", "streaming_llm", "full"],
        help="KV selection methods to benchmark",
    )
    serve.add_argument(
        "--policy",
        action="append",
        metavar="NAME[:KEY=VAL,...]",
        help="policy spec, repeatable (e.g. clusterkv:tokens_per_cluster=32); "
        "overrides --methods. A bare name uses the same serving-tuned "
        "config as --methods; a spec with any explicit key is used "
        "verbatim (unspecified keys take the method's registered "
        "defaults, not the serving-tuned base)",
    )
    serve.add_argument(
        "--policy-json",
        type=str,
        default=None,
        help="JSON policy spec or list of specs, e.g. "
        '\'{"name": "quest", "page_size": 32}\'; overrides --methods',
    )
    serve.add_argument(
        "--mixed",
        action="store_true",
        help="serve ONE batch mixing the policies across its requests "
        "instead of benchmarking each policy separately",
    )
    serve.add_argument("--requests", type=int, default=8, help="number of requests")
    serve.add_argument("--batch", type=int, default=8, help="max concurrent requests")
    serve.add_argument("--prompt-len", type=int, default=64, help="prompt tokens")
    serve.add_argument("--new-tokens", type=int, default=96, help="decode tokens")
    serve.add_argument("--budget", type=int, default=48, help="KV budget per head")
    serve.add_argument("--repeats", type=int, default=2, help="timing repeats")
    serve.add_argument(
        "--speculate",
        type=int,
        default=0,
        metavar="K",
        help="speculative decoding: draft up to K tokens per request per "
        "step and verify them in one batched pass (0 disables; greedy "
        "outputs are identical either way)",
    )
    serve.add_argument(
        "--drafter",
        type=str,
        default="ngram",
        help="registered drafter used with --speculate (default ngram, "
        "a self-drafting prompt-lookup drafter)",
    )
    serve.add_argument("--out", type=str, default=None, help="write output to a file")

    traffic = subparsers.add_parser(
        "traffic-bench", help=_SERVING_COMMANDS["traffic-bench"][0]
    )
    traffic.add_argument("--replicas", type=int, default=2, help="engine replicas")
    _add_workload_flags(traffic)

    cluster = subparsers.add_parser(
        "cluster-bench", help=_SERVING_COMMANDS["cluster-bench"][0]
    )
    cluster.add_argument(
        "--min-replicas", type=int, default=1, help="fleet floor (always provisioned)"
    )
    cluster.add_argument(
        "--max-replicas", type=int, default=4, help="fleet ceiling for scale-up"
    )
    cluster.add_argument(
        "--autoscaler", type=str, default="slo_attainment",
        metavar="NAME[:KEY=VAL,...]",
        help="autoscaler spec, resolved through the registry "
        "(see `repro list`; e.g. queue_depth:high=2,low=0.25)",
    )
    cluster.add_argument(
        "--admission", type=str, default="always",
        metavar="NAME[:KEY=VAL,...]",
        help="admission-control spec, resolved through the registry "
        "(see `repro list`; e.g. queue_deadline:deadline_s=2.5)",
    )
    cluster.add_argument(
        "--kill", action="append", metavar="TIME[@SLOT|@zoneZ]",
        help="kill a replica at TIME seconds (optional live-replica slot), "
        "or with @zoneZ every replica of failure zone Z; repeatable",
    )
    cluster.add_argument(
        "--failure-zones", type=int, default=0,
        help="number of correlated failure zones replicas stripe across "
        "(0 disables zone-targeted kills)",
    )
    cluster.add_argument(
        "--failure-count", type=int, default=0,
        help="number of seeded random replica kills (0 disables)",
    )
    cluster.add_argument(
        "--failure-seed", type=int, default=0, help="seed of the random kills"
    )
    cluster.add_argument(
        "--failure-horizon", type=float, default=60.0,
        help="random kills are drawn uniform over [0, HORIZON) seconds",
    )
    cluster.add_argument(
        "--max-retries", type=int, default=3,
        help="failure re-dispatches a request may consume before giving up",
    )
    cluster.add_argument(
        "--migrate-on-drain", action="store_true",
        help="checkpoint-migrate in-flight requests off draining replicas "
        "(repro.seqstate) instead of waiting for them to finish",
    )
    cluster.add_argument(
        "--checkpoint-interval", type=float, default=0.0,
        help="periodic per-replica checkpoint interval in seconds for "
        "failure recovery (<= 0 disables; failures then retry from scratch)",
    )
    _add_workload_flags(cluster)

    capacity = subparsers.add_parser(
        "capacity-bench", help=_SERVING_COMMANDS["capacity-bench"][0]
    )
    capacity.add_argument(
        "--scenario", type=str, default="capacity_frontier",
        help="sweep strategy, resolved through the scenario registry "
        "(see `repro list`)",
    )
    capacity.add_argument(
        "--model", type=str, default="serve-sim", help="model config (default serve-sim)"
    )
    capacity.add_argument(
        "--policy",
        action="append",
        metavar="NAME[:KEY=VAL,...]",
        help="policy spec, repeatable; each is swept independently "
        "(default: serving-tuned clusterkv and full)",
    )
    capacity.add_argument(
        "--tiers", type=str, default="gpu=320KiB,host=448KiB,ssd=4MiB",
        metavar="gpu=SIZE,host=SIZE,ssd=SIZE",
        help="per-tier capacity budgets (binary/decimal size suffixes; "
        "'none' leaves a tier unbounded)",
    )
    capacity.add_argument(
        "--sweep", type=str, default="64:192:64", metavar="MIN:MAX:STEP",
        help="context-length grid swept by the scenario, in prompt tokens",
    )
    capacity.add_argument(
        "--concurrency", type=int, action="append", default=None,
        help="concurrency level to probe, repeatable (default 1 2 3)",
    )
    capacity.add_argument(
        "--rates", type=float, nargs="+", default=[0.25, 0.5, 1.0, 2.0],
        help="offered request rates swept by latency_curve",
    )
    capacity.add_argument(
        "--requests", type=int, default=12,
        help="requests per latency_curve probe",
    )
    capacity.add_argument("--new-tokens", type=int, default=16, help="decode tokens")
    capacity.add_argument("--budget", type=int, default=48, help="KV budget per head")
    capacity.add_argument(
        "--arch", type=str, default="llama-3.1-8b",
        help="reference architecture priced by the perfmodel clock",
    )
    capacity.add_argument(
        "--context-scale", type=int, default=64,
        help="factor mapping simulated token counts to paper scale",
    )
    capacity.add_argument(
        "--slo-ttft", type=float, default=8.0,
        help="TTFT deadline in seconds (<= 0 disables)",
    )
    capacity.add_argument(
        "--slo-tpot", type=float, default=0.5,
        help="TPOT deadline in seconds (<= 0 disables)",
    )
    capacity.add_argument(
        "--slo-floor", type=float, default=0.5,
        help="latency_curve stops once SLO attainment drops below this",
    )
    capacity.add_argument("--seed", type=int, default=0, help="workload seed")
    _add_backend_flags(capacity)
    capacity.add_argument(
        "--json", action="store_true",
        help="print the CapacityReport as canonical JSON instead of a table",
    )
    capacity.add_argument("--out", type=str, default=None, help="write output to a file")

    perf = subparsers.add_parser("perf-bench", help=_SERVING_COMMANDS["perf-bench"][0])
    perf.add_argument(
        "--write", type=str, default=None,
        help="write the full JSON payload (e.g. BENCH_hotpaths.json)",
    )
    perf.add_argument(
        "--counters-only", action="store_true",
        help="skip wall-clock timings; only the deterministic counters",
    )
    perf.add_argument("--out", type=str, default=None, help="write output to a file")
    return parser


def _add_workload_flags(traffic: argparse.ArgumentParser) -> None:
    """Register the workload/SLO flags shared by traffic- and cluster-bench."""
    traffic.add_argument(
        "--model", type=str, default="serve-sim", help="model config (default serve-sim)"
    )
    traffic.add_argument(
        "--policy",
        action="append",
        metavar="NAME[:KEY=VAL,...]",
        help="per-request policy spec, repeatable; several specs are mixed "
        "across the workload by an equal-weight seeded draw "
        "(default: serving-tuned clusterkv)",
    )
    traffic.add_argument(
        "--rate", type=float, default=0.5,
        help="mean arrival rate in requests per second of simulated time",
    )
    traffic.add_argument(
        "--arrivals", type=str, default="poisson",
        help="arrival process name, resolved through the registry — see "
        "`repro list` (use --trace to replay a JSONL trace instead)",
    )
    traffic.add_argument(
        "--burstiness", type=float, default=4.0,
        help="peak-to-mean rate ratio of the onoff process",
    )
    traffic.add_argument(
        "--trace", type=str, default=None,
        help="replay arrivals/shapes from a JSONL trace file",
    )
    traffic.add_argument("--requests", type=int, default=16, help="number of requests")
    traffic.add_argument(
        "--router", type=str, default="jsq",
        help="routing strategy (see `repro list` for registered routers)",
    )
    traffic.add_argument(
        "--clock", type=str, default="perfmodel", choices=("perfmodel", "wall"),
        help="step clock: perfmodel (virtual, bit-reproducible) or wall",
    )
    traffic.add_argument(
        "--arch", type=str, default="llama-3.1-8b",
        help="reference architecture priced by the perfmodel clock",
    )
    traffic.add_argument(
        "--context-scale", type=int, default=64,
        help="factor mapping simulated token counts to paper scale",
    )
    traffic.add_argument(
        "--prompt-len-min", type=int, default=48, help="minimum prompt tokens"
    )
    traffic.add_argument(
        "--prompt-len-max", type=int, default=96, help="maximum prompt tokens"
    )
    traffic.add_argument("--new-tokens", type=int, default=48, help="decode tokens")
    traffic.add_argument("--budget", type=int, default=48, help="KV budget per head")
    traffic.add_argument(
        "--prefill-chunk", type=int, default=0,
        help="chunked-prefill token budget per engine step (<= 0 keeps "
        "monolithic prefill)",
    )
    traffic.add_argument(
        "--prefix-cache", type=int, default=0,
        help="per-replica cross-request prefix-cache capacity in KV tokens "
        "(<= 0 disables; pair with --router prefix_affine)",
    )
    traffic.add_argument(
        "--prefix-block", type=int, default=32,
        help="radix-block size of the prefix cache, in tokens",
    )
    traffic.add_argument(
        "--slo-class-mix", type=float, default=-1.0,
        help="fraction of interactive-class traffic, the rest batch-class "
        "(< 0 keeps everything interactive; pair with --router slo_aware)",
    )
    traffic.add_argument(
        "--preempt", action="store_true",
        help="let replicas checkpoint-preempt batch-class work for an "
        "interactive queue head (repro.seqstate)",
    )
    traffic.add_argument(
        "--speculate", type=int, default=0, metavar="K",
        help="speculative decoding: draft up to K tokens per request per "
        "engine step and verify them in one batched pass (0 disables)",
    )
    traffic.add_argument(
        "--drafter", type=str, default="ngram",
        help="registered drafter used with --speculate (default ngram)",
    )
    traffic.add_argument(
        "--slo-ttft", type=float, default=2.5,
        help="TTFT deadline in seconds (<= 0 disables)",
    )
    traffic.add_argument(
        "--slo-tpot", type=float, default=0.15,
        help="TPOT deadline in seconds (<= 0 disables)",
    )
    traffic.add_argument("--seed", type=int, default=0, help="workload seed")
    _add_backend_flags(traffic)
    traffic.add_argument(
        "--json", action="store_true",
        help="print the TrafficReport as canonical JSON instead of a table",
    )
    traffic.add_argument("--out", type=str, default=None, help="write output to a file")


def _add_backend_flags(command: argparse.ArgumentParser) -> None:
    """Register the execution-backend flags (traffic/cluster/capacity-bench)."""
    command.add_argument(
        "--backend", type=str, default="serial", choices=("serial", "multiprocess"),
        help="execution backend replicas run on: serial (in-process) or "
        "multiprocess (worker pool with shared read-only weights); "
        "reports are byte-identical either way",
    )
    command.add_argument(
        "--workers", type=int, default=0,
        help="worker-process count for the multiprocess backend (implies "
        "--backend multiprocess; <= 0 derives min(replicas, cpu_count))",
    )


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command is None:
        parser.print_help()
        return 2
    if args.command == "list":
        print(_format_listing())
        return 0
    _, runner = {**_EXPERIMENTS, **_SERVING_COMMANDS}[args.command]
    output = runner(args)
    if getattr(args, "out", None):
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(output + "\n")
    print(output)
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__.py
    sys.exit(main())
