"""Batched multi-request serving with continuous scheduling.

This subsystem turns the single-sequence reproduction into a small serving
engine: a :class:`RequestQueue` of pending prompts, a
:class:`ContinuousBatchingScheduler` that admits prefills under batch-slot
and global KV-memory budgets, and a :class:`BatchedEngine` that interleaves
per-step decodes across all active sequences, retiring requests as they
finish.  Every request can carry its own compression policy (a
:class:`~repro.policies.PolicySpec`, resolved through the policy registry
at submission), so one engine serves heterogeneous traffic — each
request's output is bit-identical to serving it under that policy alone.
All requests share one transformer, one
:class:`~repro.memory.OffloadManager` (so tier usage and transfer traffic
are accounted globally) and one
:class:`~repro.model.generation.EngineCore`, whose batched decode path is
also the single-sequence path — a batch of one is bit-identical to
:class:`repro.model.InferenceEngine`.
"""

from .bench import (
    MethodThroughput,
    MixedServeResult,
    ServeBenchConfig,
    format_mixed_serve_bench,
    format_serve_bench,
    run_mixed_serve_bench,
    run_serve_bench,
)
from .engine import (
    BatchedEngine,
    EngineSnapshot,
    ServeReport,
    StepRequestTrace,
    StepTrace,
    serve_prompts,
)
from .queue import RequestQueue
from .request import (
    SLO_CLASSES,
    ActiveRequest,
    CompletedRequest,
    RequestStatus,
    ServeRequest,
)
from .scheduler import ContinuousBatchingScheduler, SchedulerConfig

__all__ = [
    "SLO_CLASSES",
    "BatchedEngine",
    "EngineSnapshot",
    "ServeReport",
    "StepTrace",
    "StepRequestTrace",
    "serve_prompts",
    "RequestQueue",
    "ServeRequest",
    "ActiveRequest",
    "CompletedRequest",
    "RequestStatus",
    "ContinuousBatchingScheduler",
    "SchedulerConfig",
    "ServeBenchConfig",
    "MethodThroughput",
    "MixedServeResult",
    "run_serve_bench",
    "run_mixed_serve_bench",
    "format_serve_bench",
    "format_mixed_serve_bench",
]
