"""Continuous-batching scheduler: admission under slot and memory budgets.

The scheduler decides, at each engine step, which queued requests join the
decode batch.  Policy is strict first-come-first-served: requests are
admitted in arrival order and the head of the queue blocks admission when it
does not fit — a later, smaller request never jumps ahead.  This sacrifices
a little utilisation for a hard no-starvation guarantee, which is the
fairness property the tests assert.

Two resources gate admission:

* **slots** — at most ``max_batch_size`` requests decode concurrently, and
  at most ``max_prefills_per_step`` are prefilled in one engine step (a
  prefill runs exact quadratic attention over the whole prompt and would
  otherwise stall the decode batch, the classic continuous-batching
  trade-off);
* **KV memory** — the sum over in-flight requests of their *projected* KV
  footprint (prompt plus full decode length, across all layers) must stay
  within ``kv_budget_bytes``.  Projections are conservative: a request is
  only admitted if it can run to completion without evicting others, so the
  engine never deadlocks mid-decode.  Actual usage is tracked by the shared
  :class:`~repro.memory.OffloadManager` tier ledger.
"""

from __future__ import annotations

from dataclasses import dataclass

from .queue import RequestQueue
from .request import ServeRequest

__all__ = ["SchedulerConfig", "ContinuousBatchingScheduler"]


@dataclass(frozen=True)
class SchedulerConfig:
    """Admission policy knobs of the continuous-batching scheduler.

    Attributes
    ----------
    max_batch_size:
        Maximum number of concurrently decoding requests.
    max_prefills_per_step:
        Maximum number of requests prefilled in one engine step.
    kv_budget_bytes:
        Global KV memory budget across all in-flight requests, in bytes of
        fp16 K/V entries summed over layers; ``None`` disables the memory
        gate (slots only).
    prefill_chunk_tokens:
        Per-step prompt-token budget of chunked prefill.  When set, each
        engine step advances the admitted-but-still-prefilling requests by
        at most this many prompt tokens in total, interleaved with the
        decode batch — a long prompt no longer stalls every in-flight
        decode for one monolithic step.  ``None`` (the default) prefills
        every admitted request whole in its admission step (monolithic
        prefill, the historical behaviour).
    prefix_cache_tokens:
        Capacity (in cached prompt tokens) of the engine's cross-request
        prefix KV cache (:class:`repro.prefixcache.RadixPrefixCache`).
        When set, admitted requests attach to the longest cached prefix of
        their prompt and prefill only the suffix.  ``None`` (the default)
        disables prefix caching entirely.
    prefix_block_tokens:
        Sharing granularity of the prefix cache: prompts are cached and
        matched in blocks of this many tokens.
    prefix_semantic_reuse:
        Whether the prefix cache also stores and restores per-policy
        semantic state (ClusterKV's per-segment clustering), see
        :class:`repro.prefixcache.PrefixCacheConfig`.
    preemption:
        Whether the engine may preempt ``batch``-class in-flight requests
        to make room for an ``interactive``-class request blocked at the
        head of the queue.  A preempted request is checkpointed
        (:mod:`repro.seqstate`), its slot and KV reservation freed, and it
        resumes bit-identically once capacity frees up — so interactive
        latency is bought without discarding batch work.  Off by default:
        preemption reorders completions, which the strict-FCFS fairness
        tests assert never happens unless asked for.
    """

    max_batch_size: int = 8
    max_prefills_per_step: int = 2
    kv_budget_bytes: int | None = None
    prefill_chunk_tokens: int | None = None
    prefix_cache_tokens: int | None = None
    prefix_block_tokens: int = 32
    prefix_semantic_reuse: bool = True
    preemption: bool = False

    def __post_init__(self) -> None:
        if self.max_batch_size <= 0:
            raise ValueError("max_batch_size must be positive")
        if self.max_prefills_per_step <= 0:
            raise ValueError("max_prefills_per_step must be positive")
        if self.kv_budget_bytes is not None and self.kv_budget_bytes <= 0:
            raise ValueError("kv_budget_bytes must be positive when set")
        if self.prefill_chunk_tokens is not None and self.prefill_chunk_tokens <= 0:
            raise ValueError("prefill_chunk_tokens must be positive when set")
        if self.prefix_block_tokens <= 0:
            raise ValueError("prefix_block_tokens must be positive")
        if (
            self.prefix_cache_tokens is not None
            and self.prefix_cache_tokens < self.prefix_block_tokens
        ):
            raise ValueError(
                "prefix_cache_tokens must be at least prefix_block_tokens when set"
            )


class ContinuousBatchingScheduler:
    """FCFS admission of queued requests into the decode batch."""

    def __init__(self, config: SchedulerConfig | None = None) -> None:
        self.config = config or SchedulerConfig()

    @staticmethod
    def projected_bytes_for(
        prompt_length: int, max_new_tokens: int, kv_bytes_per_token: int
    ) -> int:
        """Worst-case KV footprint of one request over its whole lifetime.

        ``(prompt length + decode length) * kv_bytes_per_token`` where
        ``kv_bytes_per_token`` spans all layers (see
        :meth:`repro.model.config.ModelConfig.kv_bytes_per_token`).  The
        single source of the projection formula: used by admission here and
        by :meth:`repro.serving.BatchedEngine.submit`'s early rejection, so
        the two gates cannot drift.
        """
        return (prompt_length + max_new_tokens) * kv_bytes_per_token

    def projected_bytes(
        self,
        request: ServeRequest,
        kv_bytes_per_token: int,
        default_max_new_tokens: int,
    ) -> int:
        """Projected KV footprint of a queued request (see ``projected_bytes_for``)."""
        max_new = (
            request.max_new_tokens
            if request.max_new_tokens is not None
            else default_max_new_tokens
        )
        return self.projected_bytes_for(
            request.prompt_length(), max_new, kv_bytes_per_token
        )

    def admit(
        self,
        queue: RequestQueue,
        num_active: int,
        reserved_bytes: int,
        kv_bytes_per_token: int,
        default_max_new_tokens: int,
    ) -> list[ServeRequest]:
        """Pop the queued requests to prefill at this engine step.

        Parameters
        ----------
        queue:
            The pending-request queue (popped in place).
        num_active:
            Requests currently decoding.
        reserved_bytes:
            Sum of the projected KV footprints of the in-flight requests.
        kv_bytes_per_token:
            Per-token KV size across all layers of the served model.
        default_max_new_tokens:
            Engine-level decode length used when a request has no override.

        Returns
        -------
        list of ServeRequest
            Admitted requests in arrival order (possibly empty).  Admission
            stops at the first head-of-queue request that does not fit, so
            arrival order is preserved unconditionally.
        """
        admitted: list[ServeRequest] = []
        budget = self.config.kv_budget_bytes
        while queue:
            if num_active + len(admitted) >= self.config.max_batch_size:
                break
            if len(admitted) >= self.config.max_prefills_per_step:
                break
            head = queue.peek()
            assert head is not None
            projected = self.projected_bytes(
                head, kv_bytes_per_token, default_max_new_tokens
            )
            if budget is not None:
                if projected > budget:
                    # The head can never fit.  Only raise when nothing was
                    # popped this call, so already-admitted requests are
                    # returned (and served) rather than lost; the next
                    # admission call reports the unservable head cleanly.
                    if admitted:
                        break
                    raise ValueError(
                        f"request {head.request_id!r} needs {projected} bytes of KV, "
                        f"more than the whole budget of {budget} bytes"
                    )
                if reserved_bytes + projected > budget:
                    break
            admitted.append(queue.pop())
            reserved_bytes += projected
        return admitted
