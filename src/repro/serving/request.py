"""Request objects of the batched serving engine.

A :class:`ServeRequest` is what a client submits: a prompt plus optional
per-request overrides — including its own KV compression policy as a
declarative :class:`~repro.policies.PolicySpec`, so one engine can serve a
batch mixing ClusterKV, Quest, StreamingLLM and full-KV traffic.  While a
request is in flight the engine wraps it in an :class:`ActiveRequest` that
carries the mutable decoding state (the
:class:`~repro.model.generation.SequenceState`); once it retires the engine
emits a :class:`CompletedRequest` pairing the original request with its
:class:`~repro.model.generation.GenerationResult` and scheduling timeline.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

import numpy as np

from ..model.generation import GenerationResult, SequenceState
from ..policies import PolicySpec

__all__ = [
    "SLO_CLASSES",
    "RequestStatus",
    "ServeRequest",
    "ActiveRequest",
    "CompletedRequest",
]


class RequestStatus(enum.Enum):
    """Lifecycle stage of a serving request."""

    QUEUED = "queued"
    PREFILLING = "prefilling"
    DECODING = "decoding"
    PREEMPTED = "preempted"
    FINISHED = "finished"


#: Valid values of :attr:`ServeRequest.slo_class`.
SLO_CLASSES = ("interactive", "batch")


@dataclass(frozen=True)
class ServeRequest:
    """One client request to the batched serving engine.

    Attributes
    ----------
    request_id:
        Unique identifier; assigned by the engine at submission when the
        caller does not provide one.
    prompt_ids:
        Prompt token ids, shape ``(L,)``, dtype int64.
    max_new_tokens:
        Per-request decode length; ``None`` falls back to the engine's
        :class:`~repro.model.config.GenerationConfig.max_new_tokens`.
    seed:
        Per-request sampling seed; ``None`` falls back to the engine
        configuration (only relevant for non-greedy decoding).
    policy:
        Per-request KV compression policy as a declarative
        :class:`~repro.policies.PolicySpec`; ``None`` falls back to the
        engine's default selector.  :meth:`repro.serving.BatchedEngine.
        submit` resolves and validates the spec through the policy
        registry eagerly (typos fail at submission); only requests
        enqueued directly on the queue, bypassing ``submit``, are resolved
        later, at prefill.
    arrival_order:
        Monotonically increasing submission index, assigned by the queue.
        The FCFS scheduler admits strictly in this order.
    arrival_time_s:
        Arrival timestamp in seconds on the caller's clock (the virtual
        clock of the :mod:`repro.traffic` simulator, or wall time).  The
        engine never reads it; it flows through to
        :class:`CompletedRequest` so latency metrics (TTFT, queue wait)
        can be computed against the arrival instant.  Defaults to 0.0 for
        closed-loop callers that do not track time.
    slo_class:
        Service class of the request: ``"interactive"`` (latency-bound,
        never preempted) or ``"batch"`` (throughput work that a preempting
        scheduler may checkpoint under KV pressure and resume later).
        Class-aware admission, routing and autoscaling read it in the
        cluster layer.
    """

    request_id: str
    prompt_ids: np.ndarray
    max_new_tokens: int | None = None
    seed: int | None = None
    policy: PolicySpec | None = None
    arrival_order: int = 0
    arrival_time_s: float = 0.0
    slo_class: str = "interactive"

    def __post_init__(self) -> None:
        prompt = np.asarray(self.prompt_ids, dtype=np.int64)
        if prompt.ndim != 1 or prompt.shape[0] == 0:
            raise ValueError("prompt_ids must be a non-empty 1-D array")
        object.__setattr__(self, "prompt_ids", prompt)
        if self.max_new_tokens is not None and self.max_new_tokens <= 0:
            raise ValueError("max_new_tokens must be positive when set")
        if self.slo_class not in SLO_CLASSES:
            raise ValueError(
                f"slo_class must be one of {SLO_CLASSES}, got {self.slo_class!r}"
            )

    def prompt_length(self) -> int:
        """Number of prompt tokens."""
        return int(self.prompt_ids.shape[0])


@dataclass
class ActiveRequest:
    """A request currently holding a slot in the decode batch.

    Attributes
    ----------
    request:
        The originating :class:`ServeRequest`.
    sequence:
        Per-request decoding state (KV store, selector states, RNG).
    max_new_tokens:
        Resolved decode length of this request.
    current_token:
        Most recently sampled token, fed back at the next decode step.
    decode_step:
        Zero-based index of the next decode step of *this* request (requests
        admitted at different engine steps sit at different decode steps).
    admitted_at_step:
        Engine step at which the request was admitted (prefilled).
    first_token_step:
        Engine step at which the first token was sampled.  Monolithic
        prefill samples the first token in the admission step, so there it
        equals ``admitted_at_step``; under chunked prefill the last chunk
        may land several steps later and the two diverge.
    prefill_pos:
        Number of prompt tokens prefilled so far (chunked prefill advances
        this until it reaches the prompt length; monolithic prefill jumps
        it in one step).
    status:
        Current lifecycle stage.
    """

    request: ServeRequest
    sequence: SequenceState
    max_new_tokens: int
    current_token: int = -1
    decode_step: int = 0
    admitted_at_step: int = 0
    first_token_step: int = -1
    prefill_pos: int = 0
    status: RequestStatus = RequestStatus.PREFILLING

    @property
    def tokens_generated(self) -> int:
        """Number of tokens emitted so far."""
        return len(self.sequence.result.output_ids)

    @property
    def is_finished(self) -> bool:
        """Whether the request has emitted all its tokens."""
        return self.tokens_generated >= self.max_new_tokens


@dataclass
class CompletedRequest:
    """A retired request together with its result and scheduling timeline.

    ``queue_delay_steps`` counts engine steps between submission and
    admission — the head-of-line latency the fairness tests assert on.
    ``first_token_step`` and ``finish_step`` are the step-resolution timing
    points the traffic layer converts into TTFT/TPOT seconds.
    """

    request: ServeRequest
    result: GenerationResult
    admitted_at_step: int
    finished_at_step: int
    submitted_at_step: int = 0
    first_token_step: int = 0
    extra: dict[str, float] = field(default_factory=dict)

    @property
    def queue_delay_steps(self) -> int:
        """Engine steps the request spent waiting in the queue."""
        return self.admitted_at_step - self.submitted_at_step

    @property
    def finish_step(self) -> int:
        """Engine step at which the request retired (= ``finished_at_step``)."""
        return self.finished_at_step

    @property
    def arrival_time_s(self) -> float:
        """Arrival timestamp of the originating request (seconds)."""
        return self.request.arrival_time_s
