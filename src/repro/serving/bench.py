"""Serving throughput benchmark: continuous batching vs. sequential runs.

Measures generated-token throughput of the :class:`~repro.serving.engine.
BatchedEngine` against the same requests served one at a time by the
single-sequence :class:`~repro.model.generation.InferenceEngine`.  Both
paths execute the same numerical code (see
:class:`~repro.model.generation.EngineCore`), so the speedup isolates what
continuous batching amortises: the per-token transformer matmuls that are
shared across the batch, while KV selection and attention remain
per-request.

Used by the ``repro serve-bench`` CLI command and by
``benchmarks/test_bench_serving_throughput.py``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from ..baselines import FullKVSelector, KVSelectorFactory, StreamingLLMSelector
from ..core import ClusterKVConfig, ClusterKVSelector
from ..model import (
    GenerationConfig,
    InferenceEngine,
    TransformerModel,
    get_model_config,
)
from .engine import BatchedEngine
from .scheduler import SchedulerConfig

__all__ = [
    "ServeBenchConfig",
    "MethodThroughput",
    "build_serving_selector",
    "run_serve_bench",
    "format_serve_bench",
]

# Methods exercised by the serving benchmark: the paper's method plus the
# two baselines whose decode paths bracket it (no selection at all, and
# selection with trivial scoring cost).
SERVE_BENCH_METHODS = ("clusterkv", "streaming_llm", "full")


@dataclass(frozen=True)
class ServeBenchConfig:
    """Workload shape of the serving throughput benchmark.

    The defaults describe a decode-heavy chat-style workload on the
    ``serve-sim`` model: short prompts, long generations, a KV budget of 48
    tokens per head and a batch of eight concurrent requests — the regime
    where continuous batching amortises the per-token matmuls.
    """

    model: str = "serve-sim"
    methods: tuple[str, ...] = SERVE_BENCH_METHODS
    num_requests: int = 8
    max_batch_size: int = 8
    prompt_len: int = 64
    max_new_tokens: int = 96
    budget: int = 48
    num_sink_tokens: int = 8
    num_full_layers: int = 1
    repeats: int = 2
    seed: int = 0

    def __post_init__(self) -> None:
        if self.num_requests <= 0 or self.max_batch_size <= 0:
            raise ValueError("num_requests and max_batch_size must be positive")
        if self.prompt_len <= 0 or self.max_new_tokens <= 0:
            raise ValueError("prompt_len and max_new_tokens must be positive")
        if self.repeats <= 0:
            raise ValueError("repeats must be positive")


@dataclass
class MethodThroughput:
    """Throughput of one method under sequential and batched serving."""

    method: str
    num_requests: int
    batch_size: int
    total_tokens: int
    sequential_seconds: float
    batched_seconds: float
    mean_occupancy: float = 0.0
    extra: dict[str, float] = field(default_factory=dict)

    @property
    def sequential_tokens_per_second(self) -> float:
        """Throughput of one-at-a-time serving."""
        return self.total_tokens / self.sequential_seconds

    @property
    def batched_tokens_per_second(self) -> float:
        """Throughput of continuous-batching serving."""
        return self.total_tokens / self.batched_seconds

    @property
    def speedup(self) -> float:
        """Batched over sequential tokens/sec."""
        return self.sequential_seconds / self.batched_seconds


def build_serving_selector(name: str, config: ServeBenchConfig) -> KVSelectorFactory:
    """Selector factory used by the serving benchmark for ``name``.

    ClusterKV uses a serving-tuned configuration (larger clusters and a
    longer re-clustering window than the accuracy experiments) so that the
    per-step selection overhead matches a throughput-oriented deployment.
    """
    if name == "clusterkv":
        return ClusterKVSelector(
            ClusterKVConfig(
                tokens_per_cluster=32,
                decode_window=32,
                decode_clusters=2,
                num_sink_tokens=config.num_sink_tokens,
            )
        )
    if name == "streaming_llm":
        return StreamingLLMSelector()
    if name == "full":
        return FullKVSelector()
    from ..experiments.methods import build_selector  # fallback: shared registry

    return build_selector(name)


def _generation_config(name: str, config: ServeBenchConfig) -> GenerationConfig:
    budget = None if name == "full" else config.budget
    return GenerationConfig(
        budget=budget,
        max_new_tokens=config.max_new_tokens,
        num_full_layers=config.num_full_layers,
        num_sink_tokens=config.num_sink_tokens,
    )


def run_serve_bench(config: ServeBenchConfig | None = None) -> list[MethodThroughput]:
    """Measure sequential vs. batched throughput for every configured method.

    Each method is timed ``repeats`` times and the best (lowest-noise)
    timing of each mode is kept.  Sequential and batched runs serve the
    same prompts and produce the same number of tokens.
    """
    config = config or ServeBenchConfig()
    model = TransformerModel(get_model_config(config.model))
    rng = np.random.default_rng(config.seed)
    prompts = [
        rng.integers(4, model.config.vocab_size, size=config.prompt_len).astype(np.int64)
        for _ in range(config.num_requests)
    ]

    results: list[MethodThroughput] = []
    for name in config.methods:
        gen = _generation_config(name, config)
        # One stateless factory per method, shared by both modes (per-request
        # selector states are created inside each engine, inside the timers).
        selector = build_serving_selector(name, config)
        # Warm the BLAS/allocator before timing.
        InferenceEngine(model, selector, gen).generate(prompts[0])
        best_sequential = float("inf")
        best_batched = float("inf")
        occupancy = 0.0
        total_tokens = 0
        for _ in range(config.repeats):
            # Both timed regions cover engine construction, per-request state
            # setup, prefill and decode, so the speedup isolates batching.
            start = time.perf_counter()
            sequential_tokens = 0
            for prompt in prompts:
                engine = InferenceEngine(model, selector, gen)
                sequential_tokens += len(engine.generate(prompt).output_ids)
            best_sequential = min(best_sequential, time.perf_counter() - start)

            start = time.perf_counter()
            batched = BatchedEngine(
                model,
                selector,
                gen,
                SchedulerConfig(
                    max_batch_size=config.max_batch_size,
                    max_prefills_per_step=config.max_batch_size,
                ),
            )
            for prompt in prompts:
                batched.submit(prompt)
            report = batched.run()
            best_batched = min(best_batched, time.perf_counter() - start)
            occupancy = report.mean_batch_occupancy
            total_tokens = report.total_generated_tokens
            if total_tokens != sequential_tokens:
                raise RuntimeError(
                    "sequential and batched runs generated different token counts"
                )
        results.append(
            MethodThroughput(
                method=name,
                num_requests=config.num_requests,
                batch_size=config.max_batch_size,
                total_tokens=total_tokens,
                sequential_seconds=best_sequential,
                batched_seconds=best_batched,
                mean_occupancy=occupancy,
            )
        )
    return results


def format_serve_bench(results: list[MethodThroughput]) -> str:
    """Human-readable table of the serving benchmark results."""
    lines = [
        "[serve-bench] continuous batching vs. sequential single-request serving",
        f"{'method':14s} {'tokens':>7s} {'seq tok/s':>10s} {'batch tok/s':>12s} "
        f"{'speedup':>8s} {'occupancy':>10s}",
    ]
    for item in results:
        lines.append(
            f"{item.method:14s} {item.total_tokens:7d} "
            f"{item.sequential_tokens_per_second:10.1f} "
            f"{item.batched_tokens_per_second:12.1f} "
            f"{item.speedup:7.2f}x {item.mean_occupancy:10.1f}"
        )
    return "\n".join(lines)
