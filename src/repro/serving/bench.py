"""Serving throughput benchmark: continuous batching vs. sequential runs.

Measures generated-token throughput of the :class:`~repro.serving.engine.
BatchedEngine` against the same requests served one at a time by the
single-sequence :class:`~repro.model.generation.InferenceEngine`.  Both
paths execute the same numerical code (see
:class:`~repro.model.generation.EngineCore`), so the speedup isolates what
continuous batching amortises: the per-token transformer matmuls that are
shared across the batch, while KV selection and attention remain
per-request.

Methods are addressed declaratively through the policy registry: the
benchmark accepts arbitrary :class:`~repro.policies.PolicySpec` entries
(``--policy`` on the CLI), and :func:`run_mixed_serve_bench` serves one
heterogeneous batch in which every request carries its own policy — the
mixed-workload scenario a single-factory engine could not express.

Used by the ``repro serve-bench`` CLI command and by
``benchmarks/test_bench_serving_throughput.py``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from ..baselines import KVSelectorFactory
from ..model import (
    GenerationConfig,
    InferenceEngine,
    TransformerModel,
    get_model_config,
)
from ..policies import PolicySpec, build_policy
from ..specdec import SpeculationConfig
from .engine import BatchedEngine
from .scheduler import SchedulerConfig

__all__ = [
    "ServeBenchConfig",
    "MethodThroughput",
    "MixedServeResult",
    "serving_policy_spec",
    "build_serving_selector",
    "run_serve_bench",
    "run_mixed_serve_bench",
    "format_serve_bench",
    "format_mixed_serve_bench",
]

# Methods exercised by the serving benchmark: the paper's method plus the
# two baselines whose decode paths bracket it (no selection at all, and
# selection with trivial scoring cost).
SERVE_BENCH_METHODS = ("clusterkv", "streaming_llm", "full")


@dataclass(frozen=True)
class ServeBenchConfig:
    """Workload shape of the serving throughput benchmark.

    The defaults describe a decode-heavy chat-style workload on the
    ``serve-sim`` model: short prompts, long generations, a KV budget of 48
    tokens per head and a batch of eight concurrent requests — the regime
    where continuous batching amortises the per-token matmuls.

    ``policies`` optionally replaces the ``methods`` name list with fully
    configured :class:`~repro.policies.PolicySpec` entries (the CLI's
    ``--policy``/``--policy-json`` path); when unset, each name in
    ``methods`` resolves through :func:`serving_policy_spec`.

    ``speculate_k > 0`` switches the *batched* mode to speculative
    decoding with the named ``drafter`` (the sequential baseline always
    decodes plainly — greedy outputs are bit-identical either way, so the
    token-count guard still holds and the step ratio additionally shows
    what speculation saves).
    """

    model: str = "serve-sim"
    methods: tuple[str, ...] = SERVE_BENCH_METHODS
    policies: tuple[PolicySpec, ...] | None = None
    num_requests: int = 8
    max_batch_size: int = 8
    prompt_len: int = 64
    max_new_tokens: int = 96
    budget: int = 48
    num_sink_tokens: int = 8
    num_full_layers: int = 1
    repeats: int = 2
    seed: int = 0
    speculate_k: int = 0
    drafter: str = "ngram"

    def __post_init__(self) -> None:
        if self.speculate_k < 0:
            raise ValueError("speculate_k must be >= 0 (0 disables speculation)")
        if self.num_requests <= 0 or self.max_batch_size <= 0:
            raise ValueError("num_requests and max_batch_size must be positive")
        if self.prompt_len <= 0 or self.max_new_tokens <= 0:
            raise ValueError("prompt_len and max_new_tokens must be positive")
        if self.repeats <= 0:
            raise ValueError("repeats must be positive")
        if self.policies is not None and not self.policies:
            raise ValueError("policies must be non-empty when set (or None)")
        if self.policies is None and not self.methods:
            raise ValueError("methods must be non-empty")

    def resolved_policies(self) -> tuple[PolicySpec, ...]:
        """The policy specs this benchmark runs (explicit or from names).

        Bare-name specs (no kwargs) resolve through
        :func:`serving_policy_spec`, so ``--policy clusterkv`` benchmarks
        the same serving-tuned configuration as ``--methods clusterkv``;
        a spec with explicit kwargs is used verbatim.
        """
        if self.policies is not None:
            return tuple(
                spec
                if spec.kwargs
                else serving_policy_spec(spec.name, self.num_sink_tokens)
                for spec in self.policies
            )
        return tuple(
            serving_policy_spec(name, self.num_sink_tokens) for name in self.methods
        )

    def speculation_config(self) -> SpeculationConfig | None:
        """Speculation of the batched mode; ``None`` when disabled."""
        if self.speculate_k <= 0:
            return None
        return SpeculationConfig(drafter=self.drafter, k=self.speculate_k)


@dataclass
class MethodThroughput:
    """Throughput of one method under sequential and batched serving.

    Besides the wall-clock timings the row carries the *step counts* of
    both modes: one engine step executes one batched per-token pass, so
    ``step_speedup`` — sequential steps over batched steps — is the
    deterministic, machine-independent measure of what continuous
    batching amortises.  The benchmark tests assert on it (wall-clock
    ratios flake under heavy parallel load); the wall-clock columns stay
    for humans reading the table.
    """

    method: str
    num_requests: int
    batch_size: int
    total_tokens: int
    sequential_seconds: float
    batched_seconds: float
    mean_occupancy: float = 0.0
    sequential_engine_steps: int = 0
    batched_engine_steps: int = 0
    policy: dict[str, object] = field(default_factory=dict)
    extra: dict[str, float] = field(default_factory=dict)

    @property
    def sequential_tokens_per_second(self) -> float:
        """Throughput of one-at-a-time serving."""
        return self.total_tokens / self.sequential_seconds

    @property
    def batched_tokens_per_second(self) -> float:
        """Throughput of continuous-batching serving."""
        return self.total_tokens / self.batched_seconds

    @property
    def speedup(self) -> float:
        """Batched over sequential tokens/sec (wall clock, host-dependent)."""
        return self.sequential_seconds / self.batched_seconds

    @property
    def step_speedup(self) -> float:
        """Sequential over batched engine steps (deterministic).

        Each engine step runs the per-token transformer matmuls once for
        the whole batch, so the step ratio measures the amortisation
        continuous batching provides independent of host load.
        """
        if self.batched_engine_steps <= 0:
            return 0.0
        return self.sequential_engine_steps / self.batched_engine_steps

    @property
    def tokens_per_batched_step(self) -> float:
        """Generated tokens per batched engine step (deterministic)."""
        if self.batched_engine_steps <= 0:
            return 0.0
        return self.total_tokens / self.batched_engine_steps


@dataclass
class MixedServeResult:
    """Outcome of one heterogeneous batch with per-request policies.

    ``per_request`` lists ``(request_id, policy_cli_string, tokens)`` in
    retirement order; ``policy_descriptions`` embeds each request's full
    selector configuration for reproducibility.
    """

    policies: tuple[PolicySpec, ...]
    num_requests: int
    total_tokens: int
    wall_seconds: float
    mean_occupancy: float
    per_request: list[tuple[str, str, int]] = field(default_factory=list)
    policy_descriptions: dict[str, dict[str, object]] = field(default_factory=dict)

    @property
    def tokens_per_second(self) -> float:
        """Generated-token throughput of the mixed batch."""
        if self.wall_seconds <= 0.0:
            return 0.0
        return self.total_tokens / self.wall_seconds


def _spec_label(spec: PolicySpec) -> str:
    """Display label of a spec; safe for kwargs the CLI form cannot carry."""
    try:
        return spec.to_cli()
    except ValueError:
        return f"{spec.name}:<non-CLI kwargs>"


def serving_policy_spec(name: str, num_sink_tokens: int = 8) -> PolicySpec:
    """Serving-tuned policy spec for a method name.

    ClusterKV uses a serving-tuned configuration (larger clusters and a
    longer re-clustering window than the accuracy experiments) so that the
    per-step selection overhead matches a throughput-oriented deployment;
    every other method uses its registered defaults.  The single source of
    these constants: both ``serve-bench`` and ``traffic-bench`` resolve
    bare policy names through this function.
    """
    if name == "clusterkv":
        return PolicySpec(
            name,
            {
                "tokens_per_cluster": 32,
                "decode_window": 32,
                "decode_clusters": 2,
                "num_sink_tokens": num_sink_tokens,
            },
        )
    return PolicySpec(name)


def build_serving_selector(name: str, config: ServeBenchConfig) -> KVSelectorFactory:
    """Selector factory used by the serving benchmark for ``name``.

    Resolves :func:`serving_policy_spec` through the policy registry, so
    any registered method (including third-party ones) benchmarks without
    code changes here.
    """
    return build_policy(serving_policy_spec(name, config.num_sink_tokens))


def _generation_config(name: str, config: ServeBenchConfig) -> GenerationConfig:
    budget = None if name == "full" else config.budget
    return GenerationConfig(
        budget=budget,
        max_new_tokens=config.max_new_tokens,
        num_full_layers=config.num_full_layers,
        num_sink_tokens=config.num_sink_tokens,
    )


def _bench_prompts(config: ServeBenchConfig, model: TransformerModel) -> list[np.ndarray]:
    rng = np.random.default_rng(config.seed)
    return [
        rng.integers(4, model.config.vocab_size, size=config.prompt_len).astype(np.int64)
        for _ in range(config.num_requests)
    ]


def run_serve_bench(config: ServeBenchConfig | None = None) -> list[MethodThroughput]:
    """Measure sequential vs. batched throughput for every configured policy.

    Each policy is timed ``repeats`` times and the best (lowest-noise)
    timing of each mode is kept.  Sequential and batched runs serve the
    same prompts and produce the same number of tokens.
    """
    config = config or ServeBenchConfig()
    model = TransformerModel(get_model_config(config.model))
    prompts = _bench_prompts(config, model)

    specs = config.resolved_policies()
    name_counts: dict[str, int] = {}
    for spec in specs:
        name_counts[spec.name] = name_counts.get(spec.name, 0) + 1

    results: list[MethodThroughput] = []
    labels_used: set[str] = set()
    for idx, spec in enumerate(specs):
        # Rows are labelled by bare name unless the run benchmarks several
        # configurations of the same method — then the full spec string
        # disambiguates them (and a positional suffix covers specs whose
        # strings still collide, e.g. literally identical entries).
        label = spec.name
        if name_counts[spec.name] > 1:
            label = _spec_label(spec)
        if label in labels_used:
            label = f"{label}#{idx}"
        labels_used.add(label)
        gen = _generation_config(spec.name, config)
        # One stateless factory per method, shared by both modes (per-request
        # selector states are created inside each engine, inside the timers).
        selector = build_policy(spec)
        # Warm the BLAS/allocator before timing.
        InferenceEngine(model, selector, gen).generate(prompts[0])
        best_sequential = float("inf")
        best_batched = float("inf")
        occupancy = 0.0
        total_tokens = 0
        batched_steps = 0
        sequential_steps = 0
        for _ in range(config.repeats):
            # Both timed regions cover engine construction, per-request state
            # setup, prefill and decode, so the speedup isolates batching.
            start = time.perf_counter()
            sequential_tokens = 0
            sequential_steps = 0
            for prompt in prompts:
                engine = InferenceEngine(model, selector, gen)
                result = engine.generate(prompt)
                sequential_tokens += len(result.output_ids)
                # One prefill pass plus decode_steps per-token passes: the
                # step count of serving this request alone.
                sequential_steps += 1 + result.decode_steps
            best_sequential = min(best_sequential, time.perf_counter() - start)

            start = time.perf_counter()
            batched = BatchedEngine(
                model,
                selector,
                gen,
                SchedulerConfig(
                    max_batch_size=config.max_batch_size,
                    max_prefills_per_step=config.max_batch_size,
                ),
                speculation=config.speculation_config(),
            )
            for prompt in prompts:
                batched.submit(prompt)
            report = batched.run()
            best_batched = min(best_batched, time.perf_counter() - start)
            occupancy = report.mean_batch_occupancy
            total_tokens = report.total_generated_tokens
            batched_steps = report.engine_steps
            speculation = report.speculation()
            if total_tokens != sequential_tokens:
                raise RuntimeError(
                    "sequential and batched runs generated different token counts"
                )
        extra: dict[str, float] = {}
        if config.speculate_k > 0:
            extra = dict(speculation)
        results.append(
            MethodThroughput(
                method=label,
                num_requests=config.num_requests,
                batch_size=config.max_batch_size,
                total_tokens=total_tokens,
                sequential_seconds=best_sequential,
                batched_seconds=best_batched,
                mean_occupancy=occupancy,
                sequential_engine_steps=sequential_steps,
                batched_engine_steps=batched_steps,
                policy=dict(selector.describe()),
                extra=extra,
            )
        )
    return results


def run_mixed_serve_bench(config: ServeBenchConfig | None = None) -> MixedServeResult:
    """Serve one batch mixing the configured policies across its requests.

    Request ``i`` gets policy ``i mod len(policies)``, so every method is
    exercised in the same continuous batch (the result's ``policies``
    lists only the specs that actually served a request — with fewer
    requests than policies, the tail specs are unused).  The KV budget
    applies to every compressed request; ``full`` requests simply select
    everything.  Like :func:`run_serve_bench`, the engine is warmed before
    timing and the best of ``repeats`` timed runs is reported (outputs
    are deterministic, so every repeat serves identical tokens).
    """
    config = config or ServeBenchConfig()
    specs = config.resolved_policies()
    model = TransformerModel(get_model_config(config.model))
    prompts = _bench_prompts(config, model)
    gen = GenerationConfig(
        budget=config.budget,
        max_new_tokens=config.max_new_tokens,
        num_full_layers=config.num_full_layers,
        num_sink_tokens=config.num_sink_tokens,
    )
    assignments = [specs[idx % len(specs)] for idx in range(len(prompts))]
    # Warm the BLAS/allocator before timing, as in run_serve_bench.
    InferenceEngine(model, build_policy(assignments[0]), gen).generate(prompts[0])

    best_wall = float("inf")
    report = None
    for _ in range(config.repeats):
        engine = BatchedEngine(
            model,
            generation_config=gen,
            scheduler_config=SchedulerConfig(
                max_batch_size=config.max_batch_size,
                max_prefills_per_step=config.max_batch_size,
            ),
        )
        for idx, prompt in enumerate(prompts):
            engine.submit(prompt, request_id=f"mixed-{idx}", policy=assignments[idx])
        start = time.perf_counter()
        report = engine.run()
        best_wall = min(best_wall, time.perf_counter() - start)

    assignment_by_id = {
        f"mixed-{idx}": spec for idx, spec in enumerate(assignments)
    }
    per_request = [
        (
            completed.request.request_id,
            _spec_label(assignment_by_id[completed.request.request_id]),
            len(completed.result.output_ids),
        )
        for completed in report.completed
    ]
    return MixedServeResult(
        # Only the specs that actually served a request; with fewer
        # requests than policies the round-robin never reaches the tail.
        policies=tuple(dict.fromkeys(assignments)),
        num_requests=config.num_requests,
        total_tokens=report.total_generated_tokens,
        wall_seconds=best_wall,
        mean_occupancy=report.mean_batch_occupancy,
        per_request=per_request,
        policy_descriptions=report.policy_descriptions(),
    )


def format_serve_bench(results: list[MethodThroughput]) -> str:
    """Human-readable table of the serving benchmark results."""
    lines = [
        "[serve-bench] continuous batching vs. sequential single-request serving",
        f"{'method':14s} {'tokens':>7s} {'seq tok/s':>10s} {'batch tok/s':>12s} "
        f"{'speedup':>8s} {'step x':>8s} {'occupancy':>10s}",
    ]
    for item in results:
        lines.append(
            f"{item.method:14s} {item.total_tokens:7d} "
            f"{item.sequential_tokens_per_second:10.1f} "
            f"{item.batched_tokens_per_second:12.1f} "
            f"{item.speedup:7.2f}x {item.step_speedup:7.2f}x "
            f"{item.mean_occupancy:10.1f}"
        )
        if "acceptance_rate" in item.extra:
            lines.append(
                f"{'':14s} speculation: "
                f"acceptance {item.extra['acceptance_rate']:.2f}  "
                f"mean run {item.extra['mean_accepted_run_length']:.2f}  "
                f"drafted {int(item.extra['drafted_tokens'])}  "
                f"accepted {int(item.extra['accepted_tokens'])}"
            )
    return "\n".join(lines)


def format_mixed_serve_bench(result: MixedServeResult) -> str:
    """Human-readable summary of one mixed-policy batch."""
    lines = [
        "[serve-bench --mixed] one continuous batch, per-request policies",
        f"policies: {', '.join(_spec_label(spec) for spec in result.policies)}",
        f"requests: {result.num_requests}  tokens: {result.total_tokens}  "
        f"throughput: {result.tokens_per_second:.1f} tok/s  "
        f"occupancy: {result.mean_occupancy:.1f}",
        f"{'request':12s} {'policy':40s} {'tokens':>7s}",
    ]
    for request_id, policy, tokens in result.per_request:
        shown = policy if len(policy) <= 40 else policy[:37] + "..."
        lines.append(f"{request_id:12s} {shown:40s} {tokens:7d}")
    return "\n".join(lines)
