"""FIFO admission queue of the serving engine.

The queue assigns each submitted request a monotonically increasing
``arrival_order`` and hands requests to the scheduler strictly in that
order.  Keeping the queue dumb (no reordering, no priorities) makes the
scheduler the single place where admission policy lives.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from ..policies import PolicySpec
from .request import ServeRequest

__all__ = ["RequestQueue"]


class RequestQueue:
    """First-come-first-served queue of pending :class:`ServeRequest`."""

    def __init__(self) -> None:
        self._pending: deque[ServeRequest] = deque()
        self._next_arrival = 0
        self._next_auto_id = 0
        self._issued_ids: set[str] = set()

    def __len__(self) -> int:
        return len(self._pending)

    def __bool__(self) -> bool:
        return bool(self._pending)

    def submit(
        self,
        prompt_ids: np.ndarray | list[int],
        request_id: str | None = None,
        max_new_tokens: int | None = None,
        seed: int | None = None,
        policy: PolicySpec | None = None,
        arrival_time_s: float = 0.0,
        slo_class: str = "interactive",
    ) -> ServeRequest:
        """Enqueue a new request and return it.

        The queue is the sole issuer of request ids: ``request_id`` defaults
        to ``"req-<n>"`` with a counter that skips already-issued ids, and an
        explicit id that was ever issued through this queue is rejected —
        ids key KV buffer names and report entries downstream, so uniqueness
        is load-bearing and enforced for the queue's whole lifetime.

        Raises
        ------
        ValueError
            If ``request_id`` was already issued through this queue.
        """
        if request_id is None:
            while f"req-{self._next_auto_id}" in self._issued_ids:
                self._next_auto_id += 1
            request_id = f"req-{self._next_auto_id}"
            self._next_auto_id += 1
        elif request_id in self._issued_ids:
            raise ValueError(f"request id {request_id!r} was already submitted")
        self._issued_ids.add(request_id)
        request = ServeRequest(
            request_id=request_id,
            prompt_ids=np.asarray(prompt_ids, dtype=np.int64),
            max_new_tokens=max_new_tokens,
            seed=seed,
            policy=policy,
            arrival_order=self._next_arrival,
            arrival_time_s=arrival_time_s,
            slo_class=slo_class,
        )
        self._next_arrival += 1
        self._pending.append(request)
        return request

    def reserve_id(self, request_id: str) -> None:
        """Mark ``request_id`` as issued without enqueueing anything.

        The restore path of the serving engine re-creates a request from a
        :class:`repro.seqstate.SequenceCheckpoint` directly into the active
        set, bypassing :meth:`submit`; reserving the id here keeps the
        queue the single authority on id uniqueness — a later explicit
        submission of the same id is still rejected.  Reserving an id that
        is already issued is a no-op (a request resumed on the engine that
        originally issued it keeps its id).
        """
        self._issued_ids.add(request_id)

    def peek(self) -> ServeRequest | None:
        """The request at the head of the queue, without removing it."""
        return self._pending[0] if self._pending else None

    def pop(self) -> ServeRequest:
        """Remove and return the request at the head of the queue."""
        if not self._pending:
            raise IndexError("pop from an empty request queue")
        return self._pending.popleft()

    def pending(self) -> list[ServeRequest]:
        """Snapshot of the queued requests in arrival order."""
        return list(self._pending)
