"""Batched multi-request serving engine with continuous batching.

:class:`BatchedEngine` drives N concurrent generation requests through the
shared :class:`~repro.model.generation.EngineCore`:

* each engine step first asks the
  :class:`~repro.serving.scheduler.ContinuousBatchingScheduler` which queued
  requests to admit (bounded by batch slots and the global KV memory
  budget), prefills them and samples their first token;
* then one decode step runs for *all* active requests at once —
  :meth:`~repro.model.generation.EngineCore.decode_step_batch` batches the
  per-token transformer blocks across requests while KV selection and
  attention remain per-request (each request has its own cache length,
  selector state and budget accounting);
* finished requests retire immediately, releasing their KV buffers from the
  shared :class:`~repro.memory.OffloadManager` so the freed memory is
  available to the very next admission decision.

Because admitted requests join the decode batch mid-flight and retire
mid-flight, the batch composition changes continuously — no request waits
for a "generation round" to end (continuous batching, as opposed to static
batching).  A batch of size one executes exactly the operations of
:class:`~repro.model.generation.InferenceEngine`, token for token and bit
for bit.
"""

from __future__ import annotations

import dataclasses
import json
import time
from dataclasses import dataclass, field

import numpy as np

from ..baselines.base import KVSelectorFactory
from ..baselines.full import FullKVSelector
from ..memory import OffloadManager, TierBudgets, TierKind, TransferLedger
from ..model.config import GenerationConfig
from ..model.generation import EngineCore, GenerationResult, SequenceState
from ..model.transformer import TransformerModel
from ..perf import counters
from ..policies import PolicySpec, build_policy, resolve_policy_spec
from ..prefixcache import PrefixCacheConfig, PrefixMatch, RadixPrefixCache
from ..seqstate import SequenceCheckpoint
from ..specdec import Drafter, SpeculationConfig
from .queue import RequestQueue
from .request import ActiveRequest, CompletedRequest, RequestStatus, ServeRequest
from .scheduler import ContinuousBatchingScheduler, SchedulerConfig

__all__ = [
    "StepRequestTrace",
    "StepTrace",
    "EngineSnapshot",
    "ServeReport",
    "BatchedEngine",
    "serve_prompts",
]


@dataclass(frozen=True)
class EngineSnapshot:
    """Point-in-time inventory of an engine's queued and in-flight work.

    The snapshot is the failure/drain hook of the cluster layer: it carries
    exactly what is needed to re-dispatch every request the engine holds —
    the original :class:`~repro.serving.request.ServeRequest` objects
    (prompt, per-request policy, seed, decode length, arrival instant) plus
    how many tokens each active request had already decoded, which is the
    work lost if the replica dies.  Because decoding is deterministic given
    the request alone, resubmitting a snapshot entry from its prompt
    reproduces the original output token for token.

    Attributes
    ----------
    queued:
        Requests admitted to the engine queue but not yet prefilled.
    active:
        ``(request, tokens_generated)`` pairs for the in-flight requests,
        in admission order.
    """

    queued: tuple[ServeRequest, ...] = ()
    active: tuple[tuple[ServeRequest, int], ...] = ()

    @property
    def request_ids(self) -> tuple[str, ...]:
        """Ids of every request held by the engine, queued first."""
        return tuple(r.request_id for r in self.queued) + tuple(
            r.request_id for r, _ in self.active
        )

    @property
    def tokens_in_flight(self) -> int:
        """Decoded tokens the active requests hold (lost on a kill)."""
        return sum(tokens for _, tokens in self.active)


@dataclass(frozen=True)
class StepRequestTrace:
    """Per-request slice of one engine step, for step-cost accounting.

    Attributes
    ----------
    request_id:
        The request this entry belongs to.
    policy_name:
        Name of the selector factory actually serving the request
        (``"clusterkv"``, ``"full"``, ...), which is what a cost model
        needs to charge the right selection/transfer overheads.
    context_length:
        For a prefill entry, the *total* prompt length; for a decode
        entry, the KV context length attended at this step (after
        appending the new token).
    budget:
        The KV budget the request decodes under (``None`` when the request
        attends the full context — either the engine has no budget or the
        request's policy is ``full``).
    cache_hit_rate:
        Live token-level hit rate of the request's cluster caches
        (``None`` for selectors without a cache), so step costs can charge
        only the cache-missed KV transfer bytes.
    chunk_start / chunk_tokens:
        For a prefill entry under chunked prefill, the prompt range
        ``[chunk_start, chunk_start + chunk_tokens)`` processed at this
        step; a monolithic prefill carries ``(0, context_length)``.
        Decode entries leave ``chunk_tokens`` as ``None``.
    """

    request_id: str
    policy_name: str
    context_length: int
    budget: int | None
    cache_hit_rate: float | None
    chunk_start: int = 0
    chunk_tokens: int | None = None


@dataclass
class StepTrace:
    """What happened during one :meth:`BatchedEngine.step` call.

    The trace is the engine's per-step timing hook: it carries enough
    information — who was prefilled at which prompt length, who decoded at
    which context length under which policy — for an external clock (the
    :mod:`repro.traffic` virtual-clock simulator charging
    :class:`repro.perfmodel.StepCostModel` costs, or a wall-clock fallback)
    to assign the step a duration without re-deriving engine state.
    """

    engine_step: int
    prefills: list[StepRequestTrace] = field(default_factory=list)
    decodes: list[StepRequestTrace] = field(default_factory=list)
    # Prefix-cache attaches of this step: one entry per admitted request
    # that adopted cached KV, with ``context_length`` equal to the number
    # of attached tokens (priced as a KV transfer, not as prefill compute).
    attaches: list[StepRequestTrace] = field(default_factory=list)
    wall_seconds: float = 0.0
    # KV tokens the host->SSD pager moved during this step (capacity mode
    # only; zero otherwise).  The perfmodel clock prices them at NVMe
    # bandwidth on top of the step's compute and PCIe costs.
    spilled_tokens: int = 0
    recalled_tokens: int = 0


@dataclass
class ServeReport:
    """Aggregate outcome of draining the request queue once.

    Attributes
    ----------
    completed:
        Retired requests in retirement order, each with its
        :class:`~repro.model.generation.GenerationResult`.
    engine_steps:
        Number of engine steps executed (admission + batched decode).
    total_generated_tokens:
        Tokens emitted across all requests.
    occupancy:
        Decode-batch size at every engine step; its mean is the
        continuous-batching utilisation.
    ledger:
        The shared transfer ledger covering all requests.
    peak_gpu_bytes / peak_cpu_bytes / peak_ssd_bytes:
        High-water marks of the shared memory tiers.
    wall_time_seconds:
        Wall-clock duration of the :meth:`BatchedEngine.run` call.
    prefix_cache:
        Accounting snapshot of the engine's cross-request prefix cache
        (:meth:`repro.prefixcache.RadixPrefixCache.stats`); empty when
        prefix caching is disabled.
    """

    completed: list[CompletedRequest] = field(default_factory=list)
    engine_steps: int = 0
    total_generated_tokens: int = 0
    occupancy: list[int] = field(default_factory=list)
    ledger: TransferLedger | None = None
    peak_gpu_bytes: int = 0
    peak_cpu_bytes: int = 0
    peak_ssd_bytes: int = 0
    wall_time_seconds: float = 0.0
    prefix_cache: dict[str, object] = field(default_factory=dict)

    @property
    def mean_batch_occupancy(self) -> float:
        """Average number of requests decoding per engine step."""
        if not self.occupancy:
            return 0.0
        return float(np.mean(self.occupancy))

    @property
    def tokens_per_second(self) -> float:
        """Generated-token throughput of the run (0 when untimed)."""
        if self.wall_time_seconds <= 0.0:
            return 0.0
        return self.total_generated_tokens / self.wall_time_seconds

    def results(self) -> dict[str, GenerationResult]:
        """Per-request results keyed by request id."""
        return {c.request.request_id: c.result for c in self.completed}

    def queue_waits(self) -> dict[str, int]:
        """Per-request queue wait in engine steps, keyed by request id."""
        return {c.request.request_id: c.queue_delay_steps for c in self.completed}

    def request_timings(self) -> dict[str, dict[str, float]]:
        """Per-request timing points, keyed by request id.

        Each entry carries the request's ``arrival_time_s`` (seconds, as
        stamped at submission) and its step-resolution lifecycle points:
        ``submitted_step``, ``admitted_step``, ``first_token_step``,
        ``finish_step`` and the derived ``queue_wait_steps``.  The traffic
        simulator converts these step indices into seconds on its virtual
        clock; callers of plain ``serve-bench`` read them as step counts.
        """
        return {
            c.request.request_id: {
                "arrival_time_s": c.request.arrival_time_s,
                "submitted_step": float(c.submitted_at_step),
                "admitted_step": float(c.admitted_at_step),
                "first_token_step": float(c.first_token_step),
                "finish_step": float(c.finished_at_step),
                "queue_wait_steps": float(c.queue_delay_steps),
            }
            for c in self.completed
        }

    def policy_descriptions(self) -> dict[str, dict[str, object]]:
        """Full selector configuration of every request, keyed by id.

        Each value is the ``describe()`` output of the selector factory
        that actually served the request (engine default or per-request
        policy), embedded for reproducibility: the report alone suffices
        to rebuild every request's policy —
        ``build_policy(policy_spec_from_description(description))``
        (both in :mod:`repro.policies`).
        """
        return {c.request.request_id: c.result.method_config for c in self.completed}

    def speculation(self) -> dict[str, float]:
        """Aggregate speculative-decoding accounting over the run.

        Sums the per-request draft/accept/reject counters carried on every
        :class:`~repro.model.generation.GenerationResult` and derives the
        two headline metrics: ``acceptance_rate`` (accepted / drafted) and
        ``mean_accepted_run_length`` (accepted tokens per speculation
        round).  ``accepted_tokens + rejected_tokens == drafted_tokens``
        holds by construction.  All zeros when the run decoded without
        speculation.
        """
        rounds = sum(c.result.spec_rounds for c in self.completed)
        drafted = sum(c.result.spec_drafted_tokens for c in self.completed)
        accepted = sum(c.result.spec_accepted_tokens for c in self.completed)
        rejected = sum(c.result.spec_rejected_tokens for c in self.completed)
        return {
            "rounds": float(rounds),
            "drafted_tokens": float(drafted),
            "accepted_tokens": float(accepted),
            "rejected_tokens": float(rejected),
            "acceptance_rate": accepted / drafted if drafted else 0.0,
            "mean_accepted_run_length": accepted / rounds if rounds else 0.0,
        }


class BatchedEngine:
    """Serves many generation requests concurrently over one model.

    Parameters
    ----------
    model:
        The shared transformer (weights are read-only across requests).
    selector:
        Default KV compression method: a factory instance, a
        :class:`~repro.policies.PolicySpec` or a policy string resolved
        through the registry.  Used for requests submitted without their
        own ``policy``; fresh per-layer selector states are created for
        every request, so one factory serves all of them.
    generation_config:
        Engine-wide decoding configuration.  ``max_new_tokens`` and ``seed``
        can be overridden per request at submission.
    scheduler_config:
        Admission policy (batch slots, prefill rate, global KV budget).
    offload:
        Shared memory-tier manager; defaults to a fresh
        :class:`~repro.memory.OffloadManager`.  All requests register their
        KV buffers here, which is what makes the scheduler's KV budget and
        the report's peak-bytes numbers global rather than per-request.
    tiers:
        Optional :class:`~repro.memory.TierBudgets` switching the engine
        into *capacity mode*: the offload manager is built with bounded
        GPU/host/SSD tiers, CPU-resident requests additionally reserve a
        GPU staging allocation for the KV they recall each step, a
        host->SSD pager spills cold cluster pages under host pressure, and
        a step that genuinely cannot fit raises
        :class:`~repro.memory.CapacityExceeded` instead of silently
        growing.  ``None`` (the default) keeps the historical unbounded
        behaviour bit for bit.
    speculation:
        Optional :class:`~repro.specdec.SpeculationConfig` switching the
        decode batch into *speculative decoding*: each engine step the
        configured drafter proposes up to ``k`` candidate tokens per
        decoding request and one verify round
        (:meth:`~repro.model.generation.EngineCore.speculative_round`)
        scores them all, accepting a prefix and rolling the rest back.
        Accepted runs retire several tokens per engine step, so a
        predictable workload finishes in fewer steps.  Greedy outputs
        (tokens and log-probabilities) are bit-identical to running with
        ``speculation=None``.  Speculation rounds complete within a
        single :meth:`step` call and the drafter is stateless, so
        checkpoint/restore (:meth:`checkpoint_request`) never observes
        in-flight draft state.
    """

    def __init__(
        self,
        model: TransformerModel,
        selector: KVSelectorFactory | PolicySpec | str | None = None,
        generation_config: GenerationConfig | None = None,
        scheduler_config: SchedulerConfig | None = None,
        offload: OffloadManager | None = None,
        tiers: TierBudgets | None = None,
        speculation: SpeculationConfig | None = None,
    ) -> None:
        self.model = model
        if selector is None:
            self.selector: KVSelectorFactory = FullKVSelector()
        elif isinstance(selector, KVSelectorFactory):
            self.selector = selector
        else:
            self.selector = build_policy(selector)
        self.generation_config = generation_config or GenerationConfig()
        self.tiers = tiers
        if offload is None and tiers is not None:
            offload = tiers.build_manager()
        self.offload = offload if offload is not None else OffloadManager()
        self.spill = None
        if tiers is not None:
            # Imported lazily: repro.capacity sits above repro.serving in
            # the layering, so a module-level import would be circular.
            from ..capacity.spill import HostSpillManager

            self.spill = HostSpillManager(
                self.offload, page_tokens=tiers.spill_page_tokens
            )
        # GPU staging reservations of CPU-resident requests, by request id.
        self._staging: dict[str, int] = {}
        self.scheduler = ContinuousBatchingScheduler(scheduler_config)
        self.queue = RequestQueue()
        self.core = EngineCore(model, self.generation_config)
        self.speculation = speculation
        self._drafter: Drafter | None = (
            speculation.build_drafter() if speculation is not None else None
        )
        self._active: list[ActiveRequest] = []
        self._reserved_bytes: dict[str, int] = {}
        self._submitted_at_step: dict[str, int] = {}
        # Per-request selector factories, built (and validated) at submit
        # time from each request's PolicySpec; popped at prefill.
        self._request_selectors: dict[str, KVSelectorFactory] = {}
        self._engine_step = 0
        self._last_occupancy = 0
        # Per-step timing hook: refreshed by every step() call, consumed by
        # external clocks (repro.traffic simulator, wall-clock fallback).
        self.last_step_trace: StepTrace | None = None
        self._kv_bytes_per_token = model.config.kv_bytes_per_token()
        self._draining = False
        # Cross-request prefix cache (engine-local): admitted requests
        # attach to the longest cached prefix of their prompt and prefill
        # only the suffix.  Disabled (None) unless the scheduler config
        # sets a capacity.
        scheduler_cfg = self.scheduler.config
        self.prefix_cache: RadixPrefixCache | None = None
        if scheduler_cfg.prefix_cache_tokens is not None:
            self.prefix_cache = RadixPrefixCache(
                PrefixCacheConfig(
                    block_tokens=scheduler_cfg.prefix_block_tokens,
                    capacity_tokens=scheduler_cfg.prefix_cache_tokens,
                    semantic_reuse=scheduler_cfg.prefix_semantic_reuse,
                )
            )
        # Live matches of in-flight requests; released at retirement so the
        # cache never evicts blocks a request still reads.
        self._prefix_matches: dict[str, PrefixMatch] = {}
        # Checkpoints of preempted batch-class requests, FIFO; resumed by
        # _resume_preempted once slots and KV budget free up.
        self._preempted: list[SequenceCheckpoint] = []
        # Lifetime preemption count of this engine (the cluster report
        # sums it over replicas).
        self.num_preemptions_total = 0

    # ------------------------------------------------------------------
    # submission
    # ------------------------------------------------------------------
    def submit(
        self,
        prompt_ids: np.ndarray | list[int],
        request_id: str | None = None,
        max_new_tokens: int | None = None,
        seed: int | None = None,
        policy: PolicySpec | str | None = None,
        arrival_time_s: float = 0.0,
        slo_class: str = "interactive",
    ) -> ServeRequest:
        """Enqueue a generation request; it runs at the next :meth:`step`.

        ``policy`` gives the request its own KV compression method — a
        :class:`~repro.policies.PolicySpec` or a policy string such as
        ``"quest"`` or ``"clusterkv:tokens_per_cluster=32"`` — resolved
        through the policy registry.  ``None`` uses the engine's default
        selector.  One batch can mix policies freely; each request's
        outputs are bit-identical to serving it under that policy alone.

        ``arrival_time_s`` stamps the request with its arrival instant on
        the caller's clock (virtual or wall); the engine carries it through
        to the report so latency metrics can be computed against it.
        ``slo_class`` tags the request ``"interactive"`` or ``"batch"``;
        under :attr:`SchedulerConfig.preemption` only batch-class requests
        may be preempted.

        Raises
        ------
        RuntimeError
            If the engine is draining (:meth:`drain` was called): a
            draining engine finishes the work it holds but accepts
            nothing new.
        ValueError
            If ``request_id`` was already submitted to this engine (the
            queue is the sole id issuer; ids key the shared KV buffers and
            the report), if ``policy`` names an unregistered method or has
            invalid configuration keys, or if the request's projected KV
            footprint exceeds the scheduler's whole memory budget (such a
            request could never be admitted).
        """
        if self._draining:
            raise RuntimeError(
                "engine is draining and no longer accepts submissions"
            )
        # Resolve the policy eagerly so a typo fails at submission, not
        # mid-batch at admission time.
        policy_spec: PolicySpec | None = None
        selector = self.selector
        if policy is not None:
            policy_spec = resolve_policy_spec(policy)
            selector = build_policy(policy_spec)
        budget = self.scheduler.config.kv_budget_bytes
        if budget is not None:
            prompt_length = int(np.asarray(prompt_ids).shape[0])
            resolved_max_new = (
                max_new_tokens
                if max_new_tokens is not None
                else self.generation_config.max_new_tokens
            )
            projected = self.scheduler.projected_bytes_for(
                prompt_length, resolved_max_new, self._kv_bytes_per_token
            )
            if projected > budget:
                raise ValueError(
                    f"request {request_id if request_id is not None else '<auto>'} "
                    f"needs {projected} bytes of KV, "
                    f"more than the whole budget of {budget} bytes"
                )
        request = self.queue.submit(
            prompt_ids,
            request_id=request_id,
            max_new_tokens=max_new_tokens,
            seed=seed,
            policy=policy_spec,
            arrival_time_s=arrival_time_s,
            slo_class=slo_class,
        )
        self._submitted_at_step[request.request_id] = self._engine_step
        self._request_selectors[request.request_id] = selector
        return request

    @property
    def num_active(self) -> int:
        """Requests currently holding a decode slot."""
        return len(self._active)

    @property
    def num_preempted(self) -> int:
        """Preempted requests parked as checkpoints, awaiting resume."""
        return len(self._preempted)

    @property
    def preempted_request_ids(self) -> list[str]:
        """Ids of the parked preempted requests, in preemption order."""
        return [c.request_id for c in self._preempted]

    @property
    def active_request_ids(self) -> list[str]:
        """Ids of the in-flight requests, in admission order."""
        return [a.request.request_id for a in self._active]

    def reserved_kv_bytes(self) -> int:
        """Projected KV bytes reserved by the in-flight requests."""
        return sum(self._reserved_bytes.values())

    def queued_kv_bytes(self) -> int:
        """Projected KV bytes of the queued (not yet admitted) requests.

        Uses the same projection formula as admission, so
        ``reserved_kv_bytes() + queued_kv_bytes()`` is the engine's total
        committed-plus-pending KV demand — what a size-aware router needs
        to compare replicas while a burst is still sitting in the queues.
        """
        return sum(
            self.scheduler.projected_bytes(
                request, self._kv_bytes_per_token, self.generation_config.max_new_tokens
            )
            for request in self.queue.pending()
        )

    @property
    def is_draining(self) -> bool:
        """Whether :meth:`drain` was called on this engine."""
        return self._draining

    def drain(self) -> None:
        """Stop accepting new requests; in-flight work runs to completion.

        Draining is the graceful half of elasticity: a replica picked for
        scale-down keeps stepping until its queued and active requests
        retire normally, and only then may its owner discard it.  The
        engine itself only flips the submission gate — stepping (and who
        decides the engine is empty) stays with the caller, so the hook
        composes with any control loop.
        """
        self._draining = True

    def snapshot(self) -> EngineSnapshot:
        """Inventory the engine's queued and in-flight work (see
        :class:`EngineSnapshot`).

        The failure-injection path of the cluster layer calls this on the
        victim replica to learn which requests die with it and how much
        decoded work is lost; the same inventory serves checkpoint-style
        inspection in tests.
        """
        return EngineSnapshot(
            queued=tuple(self.queue.pending()),
            active=tuple(
                (active.request, active.tokens_generated) for active in self._active
            ),
        )

    def pop_preempted(self) -> list[SequenceCheckpoint]:
        """Take ownership of the parked preempted checkpoints.

        Empties the engine's preempted list and returns the checkpoints in
        preemption order.  The cluster layer calls this when the replica is
        drained-with-migration or killed: parked checkpoints are exactly as
        mobile as freshly taken ones, so they restore on another replica
        with no work lost.
        """
        taken = list(self._preempted)
        self._preempted.clear()
        return taken

    # ------------------------------------------------------------------
    # checkpoint / restore (migration, preemption, failure recovery)
    # ------------------------------------------------------------------
    def checkpoint_request(
        self, request_id: str, *, keep: bool = True
    ) -> SequenceCheckpoint:
        """Checkpoint one in-flight request into a mobile, restorable object.

        The returned :class:`~repro.seqstate.SequenceCheckpoint` carries the
        full request identity and progress; :meth:`restore_request` on this
        engine or any compatible one (same model, generation configuration
        and policy configuration) resumes it bit-identically to never having
        been interrupted.  With ``keep=False`` the request is simultaneously
        removed from the engine — its decode slot, KV buffers and budget
        reservation are released (the checkpoint owns copies), which is the
        migrate-out and preempt primitive.

        Raises
        ------
        ValueError
            If ``request_id`` is not in flight.  Queued requests need no
            checkpoint — they re-dispatch from their
            :class:`~repro.serving.request.ServeRequest` unchanged.
        """
        active = next(
            (a for a in self._active if a.request.request_id == request_id), None
        )
        if active is None:
            raise ValueError(f"request {request_id!r} is not in flight on this engine")
        if self.spill is not None and self.spill.managed(request_id):
            # A checkpoint copies the live KV; recall any SSD-resident
            # pages first so the copy is the true cache content.
            self.spill.recall_all(request_id, step=self._engine_step)
        request = active.request
        checkpoint = dataclasses.replace(
            self.core.checkpoint_request(active.sequence),
            request_id=request.request_id,
            prompt_ids=request.prompt_ids,
            max_new_tokens=active.max_new_tokens,
            seed=request.seed,
            policy=request.policy,
            arrival_order=request.arrival_order,
            arrival_time_s=request.arrival_time_s,
            slo_class=request.slo_class,
            current_token=active.current_token,
            decode_step=active.decode_step,
            prefill_pos=active.prefill_pos,
            first_token_step=active.first_token_step,
            status=active.status.value,
        )
        if not keep:
            self._active.remove(active)
            active.status = RequestStatus.PREEMPTED
            self._release_capacity(request_id)
            active.sequence.release()
            self._reserved_bytes.pop(request_id, None)
            match = self._prefix_matches.pop(request_id, None)
            if match is not None and self.prefix_cache is not None:
                self.prefix_cache.release(match)
        return checkpoint

    def restore_request(self, checkpoint: SequenceCheckpoint) -> ServeRequest:
        """Resume a checkpointed request directly into the active set.

        The request bypasses the queue (it was already admitted once — its
        id is reserved with the queue so uniqueness stays enforced) and
        rejoins exactly where it left off: a mid-prefill checkpoint
        continues its remaining chunks, a decoding one rejoins the decode
        batch.  The checkpoint's policy is rebuilt from its spec and
        validated against the captured policy signature; its KV registers
        on *this* engine's offload manager, which is what makes restoring
        on another replica a migration.

        Raises
        ------
        ValueError
            If the checkpoint carries no request id (engine-level
            checkpoints need the identity fields filled by
            :meth:`checkpoint_request`), if a request with the same id is
            already in flight here, or if the checkpoint is incompatible
            with this engine (model / generation config / policy signature
            mismatch).
        """
        request_id = checkpoint.request_id
        if not request_id:
            raise ValueError("checkpoint carries no request identity")
        if any(a.request.request_id == request_id for a in self._active):
            raise ValueError(f"request {request_id!r} is already in flight")
        assert checkpoint.prompt_ids is not None and checkpoint.max_new_tokens is not None
        self.queue.reserve_id(request_id)
        request = ServeRequest(
            request_id=request_id,
            prompt_ids=checkpoint.prompt_ids,
            max_new_tokens=checkpoint.max_new_tokens,
            seed=checkpoint.seed,
            policy=checkpoint.policy,
            arrival_order=checkpoint.arrival_order,
            arrival_time_s=checkpoint.arrival_time_s,
            slo_class=checkpoint.slo_class,
        )
        selector = (
            build_policy(checkpoint.policy)
            if checkpoint.policy is not None
            else self.selector
        )
        sequence = self.core.restore_request(
            checkpoint, selector, self.offload, buffer_prefix=f"{request_id}/"
        )
        active = ActiveRequest(
            request=request,
            sequence=sequence,
            max_new_tokens=checkpoint.max_new_tokens,
            current_token=checkpoint.current_token,
            decode_step=checkpoint.decode_step,
            admitted_at_step=self._engine_step,
            first_token_step=checkpoint.first_token_step,
            prefill_pos=checkpoint.prefill_pos,
            status=RequestStatus(checkpoint.status),
        )
        self._reserved_bytes[request_id] = self.scheduler.projected_bytes(
            request, self._kv_bytes_per_token, self.generation_config.max_new_tokens
        )
        self._register_capacity(active)
        self._submitted_at_step.setdefault(request_id, self._engine_step)
        self._active.append(active)
        counters.record("seqstate.migrated_in", 1)
        return request

    def _preempt_for_queue_head(self) -> None:
        """Checkpoint batch-class requests until the interactive head fits.

        Only runs under :attr:`SchedulerConfig.preemption`, and only for an
        ``interactive`` head blocked on slots or KV budget.  Victims are the
        most recently admitted batch-class requests (LIFO — the least sunk
        work), checkpointed with ``keep=False`` and parked on the engine;
        :meth:`_resume_preempted` restores them once pressure clears.
        """
        config = self.scheduler.config
        if not config.preemption or not self.queue:
            return
        head = self.queue.peek()
        assert head is not None
        if head.slo_class != "interactive":
            return
        projected = self.scheduler.projected_bytes(
            head, self._kv_bytes_per_token, self.generation_config.max_new_tokens
        )
        budget = config.kv_budget_bytes
        while True:
            fits_slots = len(self._active) < config.max_batch_size
            fits_bytes = (
                budget is None or self.reserved_kv_bytes() + projected <= budget
            )
            if fits_slots and fits_bytes:
                return
            victim = next(
                (
                    a
                    for a in reversed(self._active)
                    if a.request.slo_class == "batch"
                ),
                None,
            )
            if victim is None:
                return
            checkpoint = self.checkpoint_request(
                victim.request.request_id, keep=False
            )
            self._preempted.append(checkpoint)
            self.num_preemptions_total += 1
            counters.record("seqstate.preemptions", 1)

    def _resume_preempted(self) -> None:
        """Restore parked preempted requests that fit again, FIFO.

        Queued requests take precedence: as long as anything is waiting for
        first admission, parked batch work stays parked (its KV is free, so
        it costs nothing to hold), keeping interactive latency first.
        """
        config = self.scheduler.config
        while self._preempted and not self.queue:
            checkpoint = self._preempted[0]
            if len(self._active) >= config.max_batch_size:
                return
            budget = config.kv_budget_bytes
            if budget is not None:
                assert checkpoint.prompt_ids is not None
                assert checkpoint.max_new_tokens is not None
                projected = self.scheduler.projected_bytes_for(
                    int(checkpoint.prompt_ids.shape[0]),
                    checkpoint.max_new_tokens,
                    self._kv_bytes_per_token,
                )
                if self.reserved_kv_bytes() + projected > budget:
                    return
            self._preempted.pop(0)
            self.restore_request(checkpoint)
            counters.record("seqstate.resumes", 1)

    def in_flight_result(self, request_id: str) -> GenerationResult | None:
        """Partial result of an in-flight request, ``None`` when not active.

        The returned object is the live result under construction — its
        ``output_ids``/``output_logprobs`` grow as the engine steps.  The
        :meth:`repro.api.Session.stream` iterator reads it to emit tokens
        as they are generated.
        """
        for active in self._active:
            if active.request.request_id == request_id:
                return active.sequence.result
        return None

    # ------------------------------------------------------------------
    # stepping
    # ------------------------------------------------------------------
    def step(self) -> list[CompletedRequest]:
        """Run one engine step: admit, prefill, batched decode, retire.

        Returns the requests that retired during this step.  Also refreshes
        :attr:`last_step_trace` with what the step did (prefilled prompts,
        decode batch composition, wall time), the hook external clocks use
        to assign the step a duration.
        """
        step_start = time.perf_counter()
        trace = StepTrace(engine_step=self._engine_step)
        self._resume_preempted()
        self._preempt_for_queue_head()
        admitted = self.scheduler.admit(
            self.queue,
            num_active=len(self._active),
            reserved_bytes=self.reserved_kv_bytes(),
            kv_bytes_per_token=self._kv_bytes_per_token,
            default_max_new_tokens=self.generation_config.max_new_tokens,
        )
        for request in admitted:
            self._admit_request(request, trace)
        self._advance_prefills(trace)

        batch = [
            a
            for a in self._active
            if a.status is RequestStatus.DECODING and not a.is_finished
        ]
        if batch:
            if self._drafter is not None:
                self._speculative_decode(batch, trace)
            else:
                distributions = self.core.decode_step_batch(
                    [a.sequence for a in batch],
                    [a.current_token for a in batch],
                    [a.decode_step for a in batch],
                )
                for active, distribution in zip(batch, distributions):
                    token = self.core.pick_token(active.sequence, distribution)
                    self.core.record_output(active.sequence, token, distribution)
                    active.sequence.result.decode_steps += 1
                    active.current_token = token
                    active.decode_step += 1
                for active in batch:
                    # sequence.position was advanced by the decode step and
                    # now equals the KV context length attended at this step.
                    trace.decodes.append(
                        self._trace_entry(active, active.sequence.position)
                    )
        self._last_occupancy = len(batch)

        completed = self._retire_finished()
        self._engine_step += 1
        trace.wall_seconds = time.perf_counter() - step_start
        if self.spill is not None:
            trace.spilled_tokens, trace.recalled_tokens = (
                self.spill.drain_step_counters()
            )
        self.last_step_trace = trace
        return completed

    def _trace_entry(
        self,
        active: ActiveRequest,
        context_length: int,
        chunk_start: int = 0,
        chunk_tokens: int | None = None,
    ) -> StepRequestTrace:
        """Build the :class:`StepRequestTrace` of one request at this step."""
        selector_name = active.sequence.selector.name
        budget = self.generation_config.budget
        if selector_name == "full":
            budget = None
        hit_rates = [
            state.cache_hit_rate()
            for state in active.sequence.layer_states
            if state is not None and hasattr(state, "cache_hit_rate")
        ]
        return StepRequestTrace(
            request_id=active.request.request_id,
            policy_name=selector_name,
            context_length=context_length,
            budget=budget,
            cache_hit_rate=sum(hit_rates) / len(hit_rates) if hit_rates else None,
            chunk_start=chunk_start,
            chunk_tokens=chunk_tokens,
        )

    def _speculative_decode(
        self, batch: list[ActiveRequest], trace: StepTrace
    ) -> None:
        """One speculative decode round over the whole decode batch.

        For every decoding request the drafter proposes up to
        ``min(k, remaining - 1)`` candidate tokens from the request's own
        token history (prompt plus emitted output — self-drafting needs no
        second model); the clip guarantees a fully accepted draft plus its
        bonus token never overshoots ``max_new_tokens``.  A request whose
        draft comes back empty (cold history, or one token remaining)
        rides the same round as a plain single-position decode.  One
        :meth:`~repro.model.generation.EngineCore.speculative_round` call
        verifies every candidate and rolls rejected positions back, so
        after this method each request's KV length, selector state and
        ledger reflect exactly its accepted tokens.

        The step trace records one decode entry per *fed* position
        (accepted or not) at the KV context length that position attended
        — rejected verify work is real work, and the virtual clock prices
        the whole round as a single fused batched pass over those entries.
        """
        assert self.speculation is not None and self._drafter is not None
        drafts: list[list[int]] = []
        positions0: list[int] = []
        for active in batch:
            remaining = active.max_new_tokens - active.tokens_generated
            k_eff = min(self.speculation.k, remaining - 1)
            draft: list[int] = []
            if k_eff >= 1:
                history = active.request.prompt_ids.tolist() + list(
                    active.sequence.result.output_ids
                )
                draft = self._drafter.propose(history, k_eff)
            drafts.append(draft)
            positions0.append(active.sequence.position)
        emitted_all = self.core.speculative_round(
            [a.sequence for a in batch],
            [a.current_token for a in batch],
            [a.decode_step for a in batch],
            drafts,
        )
        for active, draft, emitted, position0 in zip(
            batch, drafts, emitted_all, positions0
        ):
            active.current_token = emitted[-1]
            active.decode_step += len(emitted)
            active.sequence.result.decode_steps += len(emitted)
            for offset in range(len(draft) + 1):
                trace.decodes.append(
                    self._trace_entry(active, position0 + offset + 1)
                )

    def run(self) -> ServeReport:
        """Drain the queue: step until no request is queued or in flight."""
        report = ServeReport()
        start = time.perf_counter()
        while self.queue or self._active or self._preempted:
            completed = self.step()
            report.completed.extend(completed)
            report.occupancy.append(self._last_occupancy)
            report.engine_steps += 1
        report.wall_time_seconds = time.perf_counter() - start
        report.total_generated_tokens = sum(
            len(c.result.output_ids) for c in report.completed
        )
        report.ledger = self.offload.ledger
        report.peak_gpu_bytes = self.offload.gpu.peak_bytes
        report.peak_cpu_bytes = self.offload.cpu.peak_bytes
        report.peak_ssd_bytes = self.offload.ssd.peak_bytes
        report.prefix_cache = self.prefix_cache_stats()
        return report

    def prefix_cache_stats(self) -> dict[str, object]:
        """Accounting snapshot of the prefix cache; empty when disabled."""
        if self.prefix_cache is None:
            return {}
        return self.prefix_cache.stats()

    # ------------------------------------------------------------------
    # capacity mode (bounded memory tiers)
    # ------------------------------------------------------------------
    def _staging_nbytes(self, active: ActiveRequest) -> int:
        """Projected GPU working set of one CPU-resident request.

        Full-attention layers stage their whole projected context on the
        GPU every step; compressed layers stage at most the KV budget
        (the whole context when the engine runs without a budget).  This
        is what makes the GPU frontier honest for host-resident policies:
        admission fails when the *recall* working sets no longer fit, not
        only when whole caches do.
        """
        store = active.sequence.kv_store
        per_layer_token = store.token_nbytes()
        n_layers = self.model.config.n_layers
        full_layers = min(self.generation_config.num_full_layers, n_layers)
        projected = int(active.request.prompt_ids.shape[0]) + active.max_new_tokens
        budget = self.generation_config.budget
        selected = projected if budget is None else min(budget, projected)
        return per_layer_token * (
            full_layers * projected + (n_layers - full_layers) * selected
        )

    def _register_capacity(self, active: ActiveRequest) -> None:
        """Reserve GPU staging and enable SSD paging for one request.

        No-op outside capacity mode and for GPU-resident policies (their
        whole KV already counts against the GPU tier).  Raises
        :class:`~repro.memory.CapacityExceeded` when the GPU tier cannot
        hold the request's staging working set — the admission-time
        capacity wall.
        """
        if self.tiers is None:
            return
        store = active.sequence.kv_store
        if store.residency is not TierKind.CPU:
            return
        request_id = active.request.request_id
        nbytes = self._staging_nbytes(active)
        self.offload.register(f"{request_id}/staging", nbytes, TierKind.GPU)
        self._staging[request_id] = nbytes
        if self.spill is not None:
            eligible = tuple(
                range(
                    min(self.generation_config.num_full_layers, self.model.config.n_layers),
                    self.model.config.n_layers,
                )
            )
            self.spill.manage(request_id, store, eligible)

    def _release_capacity(self, request_id: str) -> None:
        """Drop a request's staging reservation and pager registration."""
        if self.tiers is None:
            return
        if self._staging.pop(request_id, None) is not None:
            self.offload.release(f"{request_id}/staging")
        if self.spill is not None:
            self.spill.unmanage(request_id)

    def check_memory_invariants(self) -> dict[str, int]:
        """Reconcile tier accounting against the engine's live KV buffers.

        Delegates to :meth:`repro.memory.OffloadManager.check_invariants`
        with the active requests' stores and the engine's staging
        reservations: every live buffer registered at its true size, no
        orphan registrations, tiers internally consistent.  Returns the
        per-tier used-byte totals; raises
        :class:`~repro.memory.MemoryLedgerDrift` on any discrepancy.
        """
        stores = [active.sequence.kv_store for active in self._active]
        staging = {
            f"{request_id}/staging": nbytes
            for request_id, nbytes in self._staging.items()
        }
        return self.offload.check_invariants(stores, extra_allocations=staging)

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _admit_request(self, request: ServeRequest, trace: StepTrace) -> None:
        """Create the decoding state of an admitted request (no prefill yet).

        With the prefix cache enabled, the request is matched against the
        radix tree here: on a hit the cached KV of the longest shared
        prefix is attached (and, under semantic reuse, the prefix's
        per-policy segment state restored), so the subsequent
        :meth:`_advance_prefills` only prefills the prompt suffix.  The
        attach is recorded on ``trace.attaches`` for the step-cost model.
        """
        selector = self._request_selectors.pop(request.request_id, None)
        if selector is None:
            # Requests enqueued directly on ``self.queue`` (bypassing
            # submit) still resolve their policy here.
            selector = (
                build_policy(request.policy)
                if request.policy is not None
                else self.selector
            )
        sequence = SequenceState(
            self.model,
            selector,
            self.generation_config,
            self.offload,
            buffer_prefix=f"{request.request_id}/",
            seed=request.seed,
        )
        max_new_tokens = (
            request.max_new_tokens
            if request.max_new_tokens is not None
            else self.generation_config.max_new_tokens
        )
        active = ActiveRequest(
            request=request,
            sequence=sequence,
            max_new_tokens=max_new_tokens,
            admitted_at_step=self._engine_step,
            status=RequestStatus.PREFILLING,
        )
        self._reserved_bytes[request.request_id] = self.scheduler.projected_bytes(
            request, self._kv_bytes_per_token, self.generation_config.max_new_tokens
        )
        self._register_capacity(active)
        if self.prefix_cache is not None:
            match = self.prefix_cache.match(request.prompt_ids)
            if match is not None:
                n_layers = self.model.config.n_layers
                self.core.attach_prefix(
                    sequence,
                    request.prompt_ids,
                    [match.keys(layer_idx) for layer_idx in range(n_layers)],
                    [match.values(layer_idx) for layer_idx in range(n_layers)],
                )
                if self.prefix_cache.config.semantic_reuse:
                    self._restore_semantic(sequence, match)
                active.prefill_pos = match.num_tokens
                self._prefix_matches[request.request_id] = match
                trace.attaches.append(self._trace_entry(active, match.num_tokens))
                counters.record("prefix_cache.attached_tokens", match.num_tokens)
        self._active.append(active)

    def _policy_signature(self, selector: KVSelectorFactory) -> str:
        """Canonical signature of a selector's full configuration.

        Semantic snapshots in the prefix cache are keyed by this string so
        state is only ever reused by requests running the *same* policy
        configuration (two ClusterKV requests with different segment sizes
        never share clusters).
        """
        return json.dumps(selector.describe(), sort_keys=True, default=str)

    def _restore_semantic(self, sequence: SequenceState, match: PrefixMatch) -> None:
        """Hand cached per-policy segment state to the sequence's selectors."""
        segments = match.semantic_segments(self._policy_signature(sequence.selector))
        if not segments:
            return
        per_layer: dict[int, dict[tuple[int, int], object]] = {}
        for (layer_idx, seg_start, seg_end), payload in segments.items():
            per_layer.setdefault(layer_idx, {})[(seg_start, seg_end)] = payload
        for layer_idx, spans in per_layer.items():
            state = sequence.layer_states[layer_idx]
            if state is not None:
                state.restore_prefix_state(spans)

    def _cache_insert(self, sequence: SequenceState, prompt_ids: np.ndarray) -> None:
        """Insert a freshly prefilled prompt's whole blocks into the cache.

        Called when the final prefill chunk lands — the KV store holds
        exactly the prompt's KV at that instant.  Under semantic reuse the
        selectors' exportable segment state rides along, keyed by the
        request's policy signature.
        """
        assert self.prefix_cache is not None
        length = int(prompt_ids.shape[0])
        block = self.prefix_cache.config.block_tokens
        whole = (length // block) * block
        if whole <= 0:
            return
        layer_kv = [
            (
                sequence.kv_store.keys(layer_idx)[:, :whole, :],
                sequence.kv_store.values(layer_idx)[:, :whole, :],
            )
            for layer_idx in range(self.model.config.n_layers)
        ]
        semantic = None
        if self.prefix_cache.config.semantic_reuse:
            exported: dict[tuple[int, int, int], object] = {}
            for layer_idx, state in enumerate(sequence.layer_states):
                if state is None:
                    continue
                for (seg_start, seg_end), payload in state.export_prefix_state(
                    whole
                ).items():
                    exported[(layer_idx, seg_start, seg_end)] = payload
            if exported:
                semantic = {self._policy_signature(sequence.selector): exported}
        self.prefix_cache.insert(prompt_ids, layer_kv, semantic=semantic)

    def _advance_prefills(self, trace: StepTrace) -> None:
        """Advance every still-prefilling request within the chunk budget.

        Without a ``prefill_chunk_tokens`` budget each admitted request is
        prefilled whole (monolithic prefill, the historical behaviour).
        With a budget, at most that many prompt tokens are processed per
        engine step across the prefilling requests, in admission order —
        so a long prompt is spread over several steps and interleaves with
        the decode batch instead of stalling it.  A request whose last
        chunk lands samples its first token and joins the decode batch in
        the same step.
        """
        remaining = self.scheduler.config.prefill_chunk_tokens
        for active in self._active:
            if active.status is not RequestStatus.PREFILLING:
                continue
            if remaining is not None and remaining <= 0:
                break
            prompt = active.request.prompt_ids
            length = int(prompt.shape[0])
            start = active.prefill_pos
            take = length - start if remaining is None else min(remaining, length - start)
            end = start + take
            distribution = self.core.prefill_chunk(active.sequence, prompt, start, end)
            active.prefill_pos = end
            if remaining is not None:
                remaining -= take
            trace.prefills.append(
                self._trace_entry(
                    active, length, chunk_start=start, chunk_tokens=take
                )
            )
            if distribution is None:
                continue
            if self.prefix_cache is not None:
                self._cache_insert(active.sequence, prompt)
            token = self.core.pick_token(active.sequence, distribution)
            self.core.record_output(active.sequence, token, distribution)
            active.current_token = token
            active.first_token_step = self._engine_step
            active.status = RequestStatus.DECODING

    def _retire_finished(self) -> list[CompletedRequest]:
        """Finalise finished requests and release their KV memory."""
        completed: list[CompletedRequest] = []
        still_active: list[ActiveRequest] = []
        for active in self._active:
            if not active.is_finished:
                still_active.append(active)
                continue
            active.status = RequestStatus.FINISHED
            result = self.core.finalise(active.sequence)
            self._release_capacity(active.request.request_id)
            active.sequence.release()
            self._reserved_bytes.pop(active.request.request_id, None)
            match = self._prefix_matches.pop(active.request.request_id, None)
            if match is not None and self.prefix_cache is not None:
                self.prefix_cache.release(match)
            completed.append(
                CompletedRequest(
                    request=active.request,
                    result=result,
                    admitted_at_step=active.admitted_at_step,
                    finished_at_step=self._engine_step,
                    submitted_at_step=self._submitted_at_step.pop(
                        active.request.request_id, 0
                    ),
                    first_token_step=active.first_token_step,
                )
            )
        self._active = still_active
        return completed


def serve_prompts(
    model: TransformerModel,
    prompts: list[np.ndarray],
    selector: KVSelectorFactory | PolicySpec | str | None = None,
    generation_config: GenerationConfig | None = None,
    scheduler_config: SchedulerConfig | None = None,
    policies: list[PolicySpec | str | None] | None = None,
) -> ServeReport:
    """Convenience wrapper: serve a list of prompts and drain the queue.

    ``policies`` optionally assigns each prompt its own KV compression
    policy (one entry per prompt; ``None`` entries use ``selector``), so a
    single call can serve a mixed-policy batch.
    """
    if policies is not None and len(policies) != len(prompts):
        raise ValueError("policies must have one entry per prompt")
    engine = BatchedEngine(
        model,
        selector=selector,
        generation_config=generation_config,
        scheduler_config=scheduler_config,
    )
    for idx, prompt in enumerate(prompts):
        engine.submit(prompt, policy=policies[idx] if policies else None)
    return engine.run()
