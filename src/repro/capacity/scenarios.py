"""Sweep-to-failure capacity scenarios over the tiered memory hierarchy.

Each scenario drives the virtual-clock traffic simulator against the
GPU→host→SSD tier budgets until something breaks, and maps *where*:

* ``oom_finder`` — bisects the longest per-request context each policy
  sustains at every concurrency level before a tier raises
  :class:`~repro.memory.CapacityExceeded`;
* ``latency_curve`` — sweeps the offered request rate upward until SLO
  attainment collapses below a floor (or admission fails outright),
  charging every host→SSD spill into the latencies along the way;
* ``capacity_frontier`` — probes the full (context × concurrency) grid
  per policy and reports the feasible region.

Probes are seeded arithmetic on the virtual clock end to end: prompt
contents derive from ``(seed, context, concurrency)``, engines run the
real NumPy substrate, and time comes from the perfmodel clock — so a
scenario's :class:`~repro.capacity.report.CapacityReport` is
byte-identical across machines and runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..api import EngineSpec
from ..memory import CapacityExceeded, TierBudgets
from ..model import get_model_config
from ..policies import PolicySpec
from ..serving.bench import serving_policy_spec
from ..traffic.arrivals import build_arrivals
from ..traffic.report import SLOSpec
from ..traffic.simulator import TrafficConfig, TrafficSimulator
from ..traffic.workload import RequestShape, TrafficRequest, generate_traffic
from .report import CapacityPoint, CapacityReport

__all__ = [
    "CapacityScenarioConfig",
    "CapacityScenario",
    "CapacityFrontierScenario",
    "OOMFinderScenario",
    "LatencyCurveScenario",
    "probe_point",
    "register_scenario",
    "scenario_names",
    "build_scenario",
    "run_scenario",
]

DEFAULT_TIERS = "gpu=320KiB,host=448KiB,ssd=4MiB"


@dataclass(frozen=True)
class CapacityScenarioConfig:
    """Shared knobs of all capacity scenarios.

    The defaults describe the pinned reference setup of the capacity
    benchmark: the ``serve-sim`` model under tight tier budgets
    (``gpu=320KiB,host=448KiB,ssd=4MiB``) where the host-resident
    ClusterKV policy survives points the dense ``full`` baseline cannot
    admit.  ``policies`` entries resolve through the same serving-tuned
    configuration as ``serve-bench``
    (:func:`repro.serving.bench.serving_policy_spec`).

    Context sweeps (``oom_finder``, ``capacity_frontier``) probe closed
    bursts: ``concurrency`` requests of exactly ``context_tokens``
    prompt tokens each, all arriving at t=0, over the grid
    ``context_min..context_max`` in ``context_step`` increments ×
    ``concurrencies``.  The rate sweep (``latency_curve``) probes
    open-loop Poisson traffic of ``num_requests`` requests with prompt
    lengths uniform in ``[context_min, context_max]`` at each offered
    rate in ``rates``, stopping once SLO attainment drops below
    ``slo_floor``.
    """

    model: str = "serve-sim"
    policies: tuple[PolicySpec | str, ...] = ("clusterkv", "full")
    tiers: TierBudgets | str = DEFAULT_TIERS
    budget: int = 48
    max_new_tokens: int = 16
    num_full_layers: int = 1
    num_sink_tokens: int = 8
    concurrencies: tuple[int, ...] = (1, 2, 3)
    context_min: int = 64
    context_max: int = 192
    context_step: int = 64
    rates: tuple[float, ...] = (0.25, 0.5, 1.0, 2.0)
    num_requests: int = 12
    arch: str = "llama-3.1-8b"
    context_scale: int = 64
    # Looser than the interactive-serving default: capacity probes run
    # long prompts under spill pricing, where a 2.5 s TTFT bound is
    # unattainable at any rate and the curve would collapse at its first
    # point for every policy.
    slo: SLOSpec = field(default_factory=lambda: SLOSpec(ttft_s=8.0, tpot_s=0.5))
    slo_floor: float = 0.5
    seed: int = 0
    backend: str = "serial"
    workers: int | None = None

    def __post_init__(self) -> None:
        if not self.policies:
            raise ValueError("policies must be non-empty")
        if self.context_min <= 0 or self.context_step <= 0:
            raise ValueError("context_min and context_step must be positive")
        if self.context_max < self.context_min:
            raise ValueError("context_max must be >= context_min")
        if not self.concurrencies or min(self.concurrencies) <= 0:
            raise ValueError("concurrencies must be positive")
        if not 0.0 <= self.slo_floor <= 1.0:
            raise ValueError("slo_floor must lie in [0, 1]")
        resolved = tuple(
            spec
            if isinstance(spec, PolicySpec) and spec.kwargs
            else serving_policy_spec(
                spec.name if isinstance(spec, PolicySpec) else str(spec).strip(),
                self.num_sink_tokens,
            )
            for spec in self.policies
        )
        object.__setattr__(self, "policies", resolved)
        tiers = self.tiers
        if isinstance(tiers, str):
            tiers = TierBudgets.parse(tiers)
        object.__setattr__(self, "tiers", tiers)

    @property
    def policy_names(self) -> tuple[str, ...]:
        """Names of the resolved policies, in sweep order."""
        return tuple(spec.name for spec in self.policies)  # type: ignore[union-attr]

    @property
    def tier_budgets(self) -> TierBudgets:
        """The resolved tier budgets (``tiers`` after string parsing)."""
        assert isinstance(self.tiers, TierBudgets)
        return self.tiers

    def contexts(self) -> list[int]:
        """The swept context lengths: ``context_min..context_max`` stepped."""
        return list(
            range(self.context_min, self.context_max + 1, self.context_step)
        )

    def engine_spec(self, policy: PolicySpec, concurrency: int) -> EngineSpec:
        """Replica engine description of one probe."""
        return EngineSpec(
            model=self.model,
            policy=policy,
            budget=self.budget,
            max_new_tokens=self.max_new_tokens,
            num_full_layers=self.num_full_layers,
            num_sink_tokens=self.num_sink_tokens,
            max_batch_size=concurrency,
            max_prefills_per_step=concurrency,
            tiers=self.tier_budgets,
            backend=self.backend,
        )

    def traffic_config(self, policy: PolicySpec, concurrency: int) -> TrafficConfig:
        """Single-replica simulation configuration of one probe."""
        return TrafficConfig(
            engine=self.engine_spec(policy, concurrency),
            num_replicas=1,
            router="round_robin",
            clock="perfmodel",
            arch=self.arch,
            context_scale=self.context_scale,
            slo=self.slo,
            workers=self.workers,
        )

    def describe(self) -> dict[str, object]:
        """Identifying engine/workload configuration (for reports)."""
        return {
            "model": self.model,
            "budget": self.budget,
            "max_new_tokens": self.max_new_tokens,
            "num_full_layers": self.num_full_layers,
            "num_sink_tokens": self.num_sink_tokens,
            "concurrencies": list(self.concurrencies),
            "context_min": self.context_min,
            "context_max": self.context_max,
            "context_step": self.context_step,
            "rates": list(self.rates),
            "num_requests": self.num_requests,
            "arch": self.arch,
            "context_scale": self.context_scale,
            "slo": self.slo.to_dict(),
            "slo_floor": self.slo_floor,
            "seed": self.seed,
        }


def _burst_requests(
    config: CapacityScenarioConfig, context_tokens: int, concurrency: int
) -> list[TrafficRequest]:
    """Closed burst: ``concurrency`` equal-length prompts arriving at t=0.

    Prompt contents are seeded by ``(seed, context, concurrency)`` so
    every grid point's workload is deterministic yet distinct.
    """
    vocab_size = get_model_config(config.model).vocab_size
    rng = np.random.default_rng([config.seed, context_tokens, concurrency])
    return [
        TrafficRequest(
            request_id=f"c{index}",
            arrival_time_s=0.0,
            prompt_ids=rng.integers(4, vocab_size, size=context_tokens).astype(
                np.int64
            ),
            max_new_tokens=config.max_new_tokens,
        )
        for index in range(concurrency)
    ]


def _rate_requests(
    config: CapacityScenarioConfig, policy: PolicySpec, rate: float
) -> list[TrafficRequest]:
    """Open-loop Poisson workload at one offered rate."""
    vocab_size = get_model_config(config.model).vocab_size
    times = build_arrivals("poisson", rate=rate).times(
        config.num_requests, seed=config.seed
    )
    shape = RequestShape(
        prompt_len_range=(config.context_min, config.context_max),
        max_new_tokens=config.max_new_tokens,
        policy=policy,
    )
    return generate_traffic([shape], times, vocab_size=vocab_size, seed=config.seed)


def probe_point(
    config: CapacityScenarioConfig,
    policy: PolicySpec,
    context_tokens: int,
    concurrency: int,
    rate: float | None = None,
) -> CapacityPoint:
    """Run one serving point to completion (or to tier exhaustion).

    Without ``rate``: a closed burst of ``concurrency`` prompts of
    exactly ``context_tokens`` tokens.  With ``rate``: the open-loop
    Poisson workload of :func:`_rate_requests` (``context_tokens`` then
    records the sweep's upper prompt bound).  A
    :class:`~repro.memory.CapacityExceeded` anywhere in the run marks
    the point infeasible and records which tier gave out; transfer and
    peak accounting still reflect everything moved up to the failure.
    """
    if rate is None:
        requests = _burst_requests(config, context_tokens, concurrency)
    else:
        requests = _rate_requests(config, policy, rate)
    feasible = True
    failed_tier: str | None = None
    duration_s = 0.0
    ttft_p50_s = 0.0
    slo_attainment = 0.0
    with TrafficSimulator(config.traffic_config(policy, concurrency)) as sim:
        try:
            report = sim.run(requests)
        except CapacityExceeded as exc:
            feasible = False
            failed_tier = exc.tier.value
        else:
            duration_s = report.duration_s
            ttft_p50_s = float(report.latency_summary()["ttft_s"]["p50"])
            slo_attainment = report.slo_attainment
        # Read through the replica handle so worker-resident engines
        # report the same accounting as in-process ones.
        stats = sim.replicas[0].handle.offload_stats()
    transfers = dict(stats["transfers"])
    peak_bytes = dict(stats["peak_bytes"])
    return CapacityPoint(
        policy=policy.name,
        concurrency=concurrency,
        context_tokens=context_tokens,
        feasible=feasible,
        failed_tier=failed_tier,
        rate=rate,
        duration_s=duration_s,
        ttft_p50_s=ttft_p50_s,
        slo_attainment=slo_attainment,
        transfers=transfers,
        peak_bytes=peak_bytes,
    )


class CapacityScenario:
    """Base class: one registered sweep strategy over the tier budgets."""

    name = "abstract"
    description = "abstract capacity scenario"

    def __init__(self, config: CapacityScenarioConfig | None = None) -> None:
        self.config = config if config is not None else CapacityScenarioConfig()

    def run(self) -> CapacityReport:
        """Execute the sweep and return its :class:`CapacityReport`."""
        raise NotImplementedError

    def _report(
        self,
        points: list[CapacityPoint],
        frontier: dict[str, dict[str, object]],
    ) -> CapacityReport:
        """Assemble the scenario's report from probed points + frontier."""
        return CapacityReport(
            scenario=self.name,
            policies=self.config.policy_names,
            tiers=self.config.tier_budgets.to_dict(),
            engine=self.config.describe(),
            points=tuple(points),
            frontier=frontier,
        )


_SCENARIOS: dict[str, type[CapacityScenario]] = {}


def register_scenario(cls: type[CapacityScenario]) -> type[CapacityScenario]:
    """Class decorator adding a scenario to the registry by its ``name``."""
    if cls.name in _SCENARIOS:
        raise ValueError(f"duplicate capacity scenario {cls.name!r}")
    _SCENARIOS[cls.name] = cls
    return cls


def scenario_names() -> list[str]:
    """Names of all registered capacity scenarios, sorted."""
    return sorted(_SCENARIOS)


def build_scenario(
    name: str, config: CapacityScenarioConfig | None = None
) -> CapacityScenario:
    """Instantiate a registered scenario by name."""
    if name not in _SCENARIOS:
        raise ValueError(
            f"unknown capacity scenario {name!r}; available: {scenario_names()}"
        )
    return _SCENARIOS[name](config)


def run_scenario(
    name: str, config: CapacityScenarioConfig | None = None
) -> CapacityReport:
    """Build and run a registered scenario in one call."""
    return build_scenario(name, config).run()


@register_scenario
class CapacityFrontierScenario(CapacityScenario):
    """Probe the full (context × concurrency) grid per policy.

    Every grid point runs (feasible points to completion, infeasible
    ones to the raising tier), so the report maps the entire feasible
    region — including non-monotone islands a bisection would skip.
    The frontier records, per policy and concurrency, the largest
    feasible context on the grid (0 when none is).
    """

    name = "capacity_frontier"
    description = "map the feasible (context x concurrency) region per policy"

    def run(self) -> CapacityReport:
        """Probe the grid and derive the per-policy frontier."""
        points: list[CapacityPoint] = []
        frontier: dict[str, dict[str, object]] = {}
        for policy in self.config.policies:
            per_policy: dict[str, object] = {}
            for concurrency in self.config.concurrencies:
                best = 0
                for context in self.config.contexts():
                    point = probe_point(self.config, policy, context, concurrency)
                    points.append(point)
                    if point.feasible:
                        best = max(best, context)
                per_policy[str(concurrency)] = best
            frontier[policy.name] = per_policy
        return self._report(points, frontier)


@register_scenario
class OOMFinderScenario(CapacityScenario):
    """Bisect the maximum feasible context per (policy, concurrency).

    Assumes feasibility is monotone in context length (more prompt
    tokens never free memory), which holds for every shipped policy:
    staging reservations and KV footprints only grow with context.
    Probes O(log n) grid points per pair instead of the full grid; the
    report's points are exactly the probes the bisection executed, in
    execution order.
    """

    name = "oom_finder"
    description = "bisect the max feasible context per (policy, concurrency)"

    def run(self) -> CapacityReport:
        """Bisect each (policy, concurrency) pair over the context grid."""
        points: list[CapacityPoint] = []
        frontier: dict[str, dict[str, object]] = {}
        contexts = self.config.contexts()
        for policy in self.config.policies:
            per_policy: dict[str, object] = {}
            for concurrency in self.config.concurrencies:
                best = 0
                lo, hi = 0, len(contexts) - 1
                while lo <= hi:
                    mid = (lo + hi) // 2
                    point = probe_point(
                        self.config, policy, contexts[mid], concurrency
                    )
                    points.append(point)
                    if point.feasible:
                        best = contexts[mid]
                        lo = mid + 1
                    else:
                        hi = mid - 1
                per_policy[str(concurrency)] = best
            frontier[policy.name] = per_policy
        return self._report(points, frontier)


@register_scenario
class LatencyCurveScenario(CapacityScenario):
    """Sweep the offered rate upward until the SLO collapses.

    Each policy serves open-loop Poisson traffic at every rate in
    ``rates`` (ascending) on a replica sized to the largest configured
    concurrency.  A policy's sweep stops at the first rate that either
    exhausts a tier or drops SLO attainment below ``slo_floor``; the
    frontier records the last sustained rate (0 when even the lowest
    rate fails).  Spill traffic is priced into every latency sample, so
    a policy that survives on SSD recalls collapses *earlier* on this
    curve than raw capacity alone would suggest.
    """

    name = "latency_curve"
    description = "sweep offered rate to SLO collapse per policy"

    def run(self) -> CapacityReport:
        """Sweep rates per policy, stopping at collapse."""
        points: list[CapacityPoint] = []
        frontier: dict[str, dict[str, object]] = {}
        concurrency = max(self.config.concurrencies)
        for policy in self.config.policies:
            max_rate = 0.0
            for rate in sorted(self.config.rates):
                point = probe_point(
                    self.config,
                    policy,
                    self.config.context_max,
                    concurrency,
                    rate=rate,
                )
                points.append(point)
                if not point.feasible or point.slo_attainment < self.config.slo_floor:
                    break
                max_rate = rate
            frontier[policy.name] = {"max_rate": max_rate}
        return self._report(points, frontier)
