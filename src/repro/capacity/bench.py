"""Capacity benchmark: the ``repro capacity-bench`` CLI entry point.

Runs one registered sweep-to-failure scenario (:mod:`.scenarios`) under
explicit tier budgets and formats the resulting
:class:`~repro.capacity.report.CapacityReport` as a table.  The whole
benchmark is seeded arithmetic on the virtual clock, so a given
configuration prints byte-identical numbers on any machine — the
property ``BENCH_capacity.json`` pins (via :func:`deterministic_capacity`)
and ``scripts/check_perf.py`` enforces.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .report import CapacityReport
from .scenarios import CapacityScenarioConfig, run_scenario, scenario_names

__all__ = [
    "CapacityBenchConfig",
    "run_capacity_bench",
    "format_capacity_report",
    "deterministic_capacity",
]


@dataclass(frozen=True)
class CapacityBenchConfig:
    """One capacity-benchmark invocation: a scenario plus its knobs.

    Attributes
    ----------
    scenario:
        Registry name of the sweep strategy to run (see
        :func:`repro.capacity.scenario_names`).
    config:
        The shared scenario configuration — policies, tier budgets,
        sweep grid, SLO floor, seed.
    """

    scenario: str = "capacity_frontier"
    config: CapacityScenarioConfig = field(default_factory=CapacityScenarioConfig)

    def __post_init__(self) -> None:
        if self.scenario not in scenario_names():
            raise ValueError(
                f"unknown capacity scenario {self.scenario!r}; "
                f"available: {scenario_names()}"
            )


def run_capacity_bench(config: CapacityBenchConfig | None = None) -> CapacityReport:
    """Run the configured scenario and return its report."""
    config = config or CapacityBenchConfig()
    return run_scenario(config.scenario, config.config)


def format_capacity_report(report: CapacityReport) -> str:
    """Human-readable table of one capacity report."""
    tiers = ", ".join(
        f"{name}={report.tiers.get(f'{name}_bytes')}"
        for name in ("gpu", "host", "ssd")
        if report.tiers.get(f"{name}_bytes") is not None
    )
    feasible = sum(1 for point in report.points if point.feasible)
    lines = [
        f"[capacity-bench] scenario={report.scenario}  tiers: {tiers or 'unbounded'}",
        f"points probed: {len(report.points)}  feasible: {feasible}  "
        f"infeasible: {len(report.points) - feasible}",
    ]
    for policy in report.policies:
        edge = report.frontier.get(policy, {})
        rendered = "  ".join(f"{key}={value}" for key, value in sorted(edge.items()))
        lines.append(f"frontier {policy:14s} {rendered}")
    totals = report.transfer_totals()
    for policy in report.policies:
        moved = totals.get(policy)
        if moved is None:
            continue
        lines.append(
            f"transfers {policy:13s} "
            f"h2d={moved.get('h2d', 0)}  d2h={moved.get('d2h', 0)}  "
            f"h2s={moved.get('h2s', 0)}  s2h={moved.get('s2h', 0)}"
        )
    failures: dict[str, int] = {}
    for point in report.points:
        if not point.feasible and point.failed_tier:
            key = f"{point.policy}:{point.failed_tier}"
            failures[key] = failures.get(key, 0) + 1
    if failures:
        spread = ", ".join(f"{key} x{count}" for key, count in sorted(failures.items()))
        lines.append(f"tier exhaustion: {spread}")
    return "\n".join(lines)


def deterministic_capacity() -> dict[str, object]:
    """The pinned capacity payload guarded by ``scripts/check_perf.py``.

    Runs the default ``capacity_frontier`` sweep — ClusterKV vs the
    dense ``full`` baseline on the (context × concurrency) grid under
    ``gpu=320KiB,host=448KiB,ssd=4MiB`` — and returns the full report
    dict.  Every number in it is a deterministic function of seeds and
    configuration (virtual-clock seconds included), so the comparison
    against ``BENCH_capacity.json`` is exact.
    """
    return run_capacity_bench().to_dict()
