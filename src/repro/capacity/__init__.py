"""Tiered-memory capacity harness: spill paging and sweep-to-failure scenarios.

The paper's system keeps the *full* KV cache host-resident and pulls only
selected clusters to the GPU — which makes host memory, not GPU memory,
the capacity ceiling.  This package extends the memory hierarchy one tier
further down and asks the quantitative question that follows: under
explicit GPU→host→SSD budgets, which (context length × concurrency ×
offered rate) points can each policy actually serve, and what do the
survivors pay for it?

Two halves:

* **Spill paging** (:class:`HostSpillManager`): demand-pages the
  host-resident KV cache of ClusterKV-style policies to a bounded SSD
  tier in fixed-size token pages (LRU victims, real byte movement, bit
  -identical recall), charging every transfer on the shared ledger so
  the perfmodel clock prices NVMe traffic into step latency.
* **Scenarios** (:mod:`.scenarios`): registered sweep strategies —
  ``oom_finder``, ``latency_curve``, ``capacity_frontier`` — that drive
  the traffic simulator into the wall and emit byte-reproducible
  :class:`CapacityReport` artifacts mapping the feasible region.

The tier budgets themselves (:class:`~repro.memory.TierBudgets`) and the
typed exhaustion error (:class:`~repro.memory.CapacityExceeded`) live in
:mod:`repro.memory`; they are re-exported here because capacity users
need them to configure sweeps and catch failures.
"""

from ..memory import CapacityExceeded, TierBudgets
from .bench import (
    CapacityBenchConfig,
    deterministic_capacity,
    format_capacity_report,
    run_capacity_bench,
)
from .report import CapacityPoint, CapacityReport
from .scenarios import (
    CapacityFrontierScenario,
    CapacityScenario,
    CapacityScenarioConfig,
    LatencyCurveScenario,
    OOMFinderScenario,
    build_scenario,
    probe_point,
    register_scenario,
    run_scenario,
    scenario_names,
)
from .spill import HostSpillManager, StorePager

__all__ = [
    "CapacityExceeded",
    "TierBudgets",
    "HostSpillManager",
    "StorePager",
    "CapacityPoint",
    "CapacityReport",
    "CapacityScenario",
    "CapacityScenarioConfig",
    "CapacityFrontierScenario",
    "OOMFinderScenario",
    "LatencyCurveScenario",
    "probe_point",
    "register_scenario",
    "scenario_names",
    "build_scenario",
    "run_scenario",
    "CapacityBenchConfig",
    "run_capacity_bench",
    "format_capacity_report",
    "deterministic_capacity",
]
