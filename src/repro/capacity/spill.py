"""Host-to-SSD pager: spills cold KV cluster pages under host-tier pressure.

ClusterKV keeps the *full* KV cache host-resident and recalls only the
selected clusters to the GPU each decode step.  When the host tier itself
is bounded (:class:`~repro.memory.TierBudgets`), the coldest pages of the
host cache are demoted one level further, to the SSD tier, and recalled on
re-access — every crossing recorded on the transfer ledger and priced by
the perf model at NVMe bandwidth.

The pager moves *real* payload bytes: an evicted page is serialized out of
the live layer buffer (which is zeroed in place) and written back verbatim
on recall, so the spill round-trip tests can prove bit-identity rather
than trusting the accounting.  Pages are fixed spans of
``page_tokens`` KV tokens per layer; eviction order is LRU over page
accesses (the reads issued by cluster selection), deterministic because
every structure is an insertion-ordered dict.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..memory import CapacityExceeded, OffloadManager, TierKind
from ..model.kv_cache import KVCacheStore

__all__ = ["HostSpillManager", "StorePager"]

PageKey = tuple[str, int, int]


@dataclass
class _SpilledPage:
    """Payload and span of one page currently resident on the SSD tier."""

    start: int
    end: int
    payload: bytes


class StorePager:
    """Per-store handle a :class:`KVCacheStore` calls into on reads/appends.

    Thin adapter binding a store's ``request_id`` to the shared
    :class:`HostSpillManager`; the store itself stays ignorant of request
    identity.
    """

    def __init__(self, manager: "HostSpillManager", request_id: str) -> None:
        self.manager = manager
        self.request_id = request_id

    def before_read(
        self,
        store: KVCacheStore,
        layer_idx: int,
        indices_per_head: list[np.ndarray] | None,
    ) -> None:
        """Recall any spilled pages a read would touch (all pages if ``None``)."""
        self.manager.before_read(self.request_id, store, layer_idx, indices_per_head)

    def make_room(self, store: KVCacheStore, nbytes: int, step: int = -1) -> None:
        """Spill cold pages until the host tier can grow by ``nbytes``."""
        self.manager.make_room(nbytes, step)


class HostSpillManager:
    """LRU pager demoting cold host-resident KV pages to the SSD tier.

    One manager serves every CPU-resident store of an engine; stores are
    registered as requests are admitted and unregistered when they retire.
    Only *compressed* layers are spill-eligible (full-attention layers read
    their whole KV every step, so spilling them would only thrash), and
    only completely filled pages are candidates (the growing tail page is
    being appended to).
    """

    def __init__(self, offload: OffloadManager, page_tokens: int = 32) -> None:
        if page_tokens <= 0:
            raise ValueError("page_tokens must be positive")
        self.offload = offload
        self.page_tokens = page_tokens
        self._stores: dict[str, KVCacheStore] = {}
        self._eligible: dict[str, tuple[int, ...]] = {}
        # Insertion-ordered dict used as an LRU: oldest key first.
        self._resident: dict[PageKey, None] = {}
        self._spilled: dict[PageKey, _SpilledPage] = {}
        self._page_counts: dict[tuple[str, int], int] = {}
        self._recalling: set[PageKey] = set()
        self.step_spilled_tokens = 0
        self.step_recalled_tokens = 0
        self.total_spilled_bytes = 0
        self.total_recalled_bytes = 0
        self.spill_events = 0
        self.recall_events = 0

    # ------------------------------------------------------------------
    # store lifecycle
    # ------------------------------------------------------------------
    def manage(
        self, request_id: str, store: KVCacheStore, eligible_layers: tuple[int, ...]
    ) -> None:
        """Attach a pager to ``store`` and make its pages spill candidates."""
        if request_id in self._stores:
            raise ValueError(f"request {request_id!r} is already managed")
        self._stores[request_id] = store
        self._eligible[request_id] = tuple(eligible_layers)
        store.pager = StorePager(self, request_id)
        self._sync(request_id)

    def unmanage(self, request_id: str) -> None:
        """Detach a store; drops its pages (tier bytes are freed by the store)."""
        store = self._stores.pop(request_id, None)
        if store is None:
            return
        if store.pager is not None:
            store.pager = None
        for layer_idx in self._eligible.pop(request_id, ()):
            pages = self._page_counts.pop((request_id, layer_idx), 0)
            for page in range(pages):
                key = (request_id, layer_idx, page)
                self._resident.pop(key, None)
                self._spilled.pop(key, None)

    def managed(self, request_id: str) -> bool:
        """Whether a store is registered under ``request_id``."""
        return request_id in self._stores

    def recall_all(self, request_id: str, step: int = -1) -> int:
        """Recall every spilled page of one request (checkpoint/migration path).

        Returns the number of tokens recalled.
        """
        tokens = 0
        for layer_idx in self._eligible.get(request_id, ()):
            pages = self._page_counts.get((request_id, layer_idx), 0)
            for page in range(pages):
                key = (request_id, layer_idx, page)
                if key in self._spilled:
                    tokens += self._recall(key, step)
        return tokens

    # ------------------------------------------------------------------
    # pager entry points
    # ------------------------------------------------------------------
    def before_read(
        self,
        request_id: str,
        store: KVCacheStore,
        layer_idx: int,
        indices_per_head: list[np.ndarray] | None,
    ) -> None:
        """Recall spilled pages a read would touch and refresh their recency."""
        if request_id not in self._stores or layer_idx not in self._eligible[request_id]:
            return
        self._sync(request_id)
        pages = self._page_counts.get((request_id, layer_idx), 0)
        if not pages:
            return
        if indices_per_head is None:
            touched = range(pages)
        else:
            seen: set[int] = set()
            for idx in indices_per_head:
                if len(idx):
                    seen.update(np.unique(np.asarray(idx, dtype=np.int64) // self.page_tokens).tolist())
            touched = sorted(page for page in seen if page < pages)
        for page in touched:
            key = (request_id, layer_idx, page)
            if key in self._spilled:
                self._recall(key, step=-1)
            elif key in self._resident:
                # Refresh LRU recency.
                del self._resident[key]
                self._resident[key] = None

    def make_room(self, nbytes: int, step: int = -1) -> None:
        """Spill LRU pages until the host tier has ``nbytes`` free.

        Raises :class:`~repro.memory.CapacityExceeded` when every eligible
        page is already spilled and the tier still cannot fit the request —
        the genuine host-tier capacity wall.
        """
        cpu = self.offload.cpu
        if cpu.capacity_bytes is None:
            return
        for request_id in self._stores:
            self._sync(request_id)
        while cpu.free_bytes is not None and cpu.free_bytes < nbytes:
            victim = next(
                (key for key in self._resident if key not in self._recalling), None
            )
            if victim is None:
                raise CapacityExceeded(
                    f"host tier cannot free {nbytes} bytes: all "
                    f"{len(self._spilled)} eligible pages already spilled "
                    f"(used {cpu.used_bytes} of {cpu.capacity_bytes})",
                    tier=TierKind.CPU,
                    name="<spill>",
                    needed_bytes=nbytes,
                    used_bytes=cpu.used_bytes,
                    capacity_bytes=cpu.capacity_bytes,
                )
            self._spill(victim, step)

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _sync(self, request_id: str) -> None:
        """Register newly filled pages of a store as resident MRU entries."""
        store = self._stores[request_id]
        for layer_idx in self._eligible[request_id]:
            full_pages = len(store.layers[layer_idx]) // self.page_tokens
            known = self._page_counts.get((request_id, layer_idx), 0)
            if full_pages > known:
                for page in range(known, full_pages):
                    self._resident[(request_id, layer_idx, page)] = None
                self._page_counts[(request_id, layer_idx)] = full_pages

    def _spill(self, key: PageKey, step: int) -> None:
        request_id, layer_idx, page = key
        store = self._stores[request_id]
        start = page * self.page_tokens
        end = start + self.page_tokens
        payload = store.layers[layer_idx].evict_span(start, end)
        name = store._buffer_name(layer_idx)
        nbytes = self.page_tokens * store.token_nbytes()
        self.offload.spill_to_ssd(name, nbytes, step=step, tag="kv_spill")
        del self._resident[key]
        self._spilled[key] = _SpilledPage(start, end, payload)
        self.step_spilled_tokens += self.page_tokens
        self.total_spilled_bytes += nbytes
        self.spill_events += 1

    def _recall(self, key: PageKey, step: int) -> int:
        request_id, layer_idx, page = key
        store = self._stores[request_id]
        spilled = self._spilled[key]
        name = store._buffer_name(layer_idx)
        nbytes = self.page_tokens * store.token_nbytes()
        self._recalling.add(key)
        try:
            try:
                self.offload.recall_from_ssd(name, nbytes, step=step, tag="kv_recall")
            except CapacityExceeded:
                # Host tier is full: evict colder pages first, then retry.
                self.make_room(nbytes, step)
                self.offload.recall_from_ssd(name, nbytes, step=step, tag="kv_recall")
        finally:
            self._recalling.discard(key)
        store.layers[layer_idx].restore_span(spilled.start, spilled.end, spilled.payload)
        del self._spilled[key]
        self._resident[key] = None
        self.step_recalled_tokens += self.page_tokens
        self.total_recalled_bytes += nbytes
        self.recall_events += 1
        return self.page_tokens

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    def drain_step_counters(self) -> tuple[int, int]:
        """Return and reset the (spilled, recalled) token counts of this step."""
        counts = (self.step_spilled_tokens, self.step_recalled_tokens)
        self.step_spilled_tokens = 0
        self.step_recalled_tokens = 0
        return counts

    def stats(self) -> dict[str, int]:
        """Cumulative spill/recall counters (deterministic, for reports)."""
        return {
            "spill_events": self.spill_events,
            "recall_events": self.recall_events,
            "spilled_bytes": self.total_spilled_bytes,
            "recalled_bytes": self.total_recalled_bytes,
            "pages_on_ssd": len(self._spilled),
        }
