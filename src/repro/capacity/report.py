"""Deterministic capacity reports: feasible regions and transfer accounting.

A :class:`CapacityReport` is the artifact a sweep-to-failure scenario
emits: every probed serving point (policy, context length, concurrency
and/or offered rate) with its feasibility verdict, virtual-clock latency
and per-direction transfer bytes, plus the derived frontier.  Reports are
built exclusively from seeded simulation state on the virtual clock, so
``to_json()`` is byte-identical across machines and runs — the property
``BENCH_capacity.json`` pins and ``scripts/check_perf.py`` enforces.
"""

from __future__ import annotations

import json
from collections.abc import Mapping
from dataclasses import dataclass, field

__all__ = ["CapacityPoint", "CapacityReport"]


@dataclass(frozen=True)
class CapacityPoint:
    """Outcome of probing one serving point against the tier budgets.

    Attributes
    ----------
    policy:
        Name of the KV compression policy probed.
    concurrency:
        Number of concurrent requests of the probe.
    context_tokens:
        Prompt length per request (the upper bound of the sweep's prompt
        range for rate probes).
    feasible:
        Whether the workload drained without tier exhaustion.
    failed_tier:
        Tier that raised :class:`~repro.memory.CapacityExceeded` for an
        infeasible point (``None`` when feasible).
    rate:
        Offered request rate (``latency_curve`` probes only).
    duration_s:
        Virtual-clock makespan of a feasible probe.
    ttft_p50_s:
        Median time-to-first-token across the probe's requests.
    slo_attainment:
        Fraction of requests meeting the SLO deadlines.
    transfers:
        Ledger byte totals by direction (``h2d``/``d2h``/``h2s``/``s2h``)
        — the SSD directions are exactly the spill traffic the virtual
        clock priced into the latency numbers above.
    peak_bytes:
        Per-tier high-water marks (``gpu``/``cpu``/``ssd``).
    """

    policy: str
    concurrency: int
    context_tokens: int
    feasible: bool
    failed_tier: str | None = None
    rate: float | None = None
    duration_s: float = 0.0
    ttft_p50_s: float = 0.0
    slo_attainment: float = 0.0
    transfers: dict[str, int] = field(default_factory=dict)
    peak_bytes: dict[str, int] = field(default_factory=dict)

    def to_dict(self) -> dict[str, object]:
        """JSON-compatible dict form (inverse of :meth:`from_dict`)."""
        return {
            "policy": self.policy,
            "concurrency": self.concurrency,
            "context_tokens": self.context_tokens,
            "feasible": self.feasible,
            "failed_tier": self.failed_tier,
            "rate": self.rate,
            "duration_s": self.duration_s,
            "ttft_p50_s": self.ttft_p50_s,
            "slo_attainment": self.slo_attainment,
            "transfers": dict(self.transfers),
            "peak_bytes": dict(self.peak_bytes),
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "CapacityPoint":
        """Rebuild a point from :meth:`to_dict` output."""
        known = set(cls.__dataclass_fields__)  # type: ignore[attr-defined]
        return cls(**{k: v for k, v in payload.items() if k in known})  # type: ignore[arg-type]


@dataclass(frozen=True)
class CapacityReport:
    """Everything one capacity scenario learned about the tier budgets.

    Attributes
    ----------
    scenario:
        Registry name of the scenario that produced the report.
    policies:
        Policy names swept, in sweep order.
    tiers:
        The :class:`~repro.memory.TierBudgets` dict the probes ran under.
    engine:
        Identifying engine/workload configuration (model, KV budget,
        decode length, priced architecture and context scale, seed).
    points:
        Every probe executed, in deterministic sweep order.
    frontier:
        Scenario-specific feasibility boundary, keyed by policy.  For
        context sweeps: ``{policy: {str(concurrency): max feasible
        context tokens}}``; for ``latency_curve``: ``{policy:
        {"max_rate": last sustained offered rate}}``.
    """

    scenario: str
    policies: tuple[str, ...]
    tiers: dict[str, object]
    engine: dict[str, object]
    points: tuple[CapacityPoint, ...]
    frontier: dict[str, dict[str, object]]

    def to_dict(self) -> dict[str, object]:
        """JSON-compatible dict form (inverse of :meth:`from_dict`)."""
        return {
            "scenario": self.scenario,
            "policies": list(self.policies),
            "tiers": dict(self.tiers),
            "engine": dict(self.engine),
            "points": [point.to_dict() for point in self.points],
            "frontier": {k: dict(v) for k, v in self.frontier.items()},
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "CapacityReport":
        """Rebuild a report from :meth:`to_dict` output."""
        return cls(
            scenario=str(payload["scenario"]),
            policies=tuple(payload.get("policies", ())),  # type: ignore[arg-type]
            tiers=dict(payload.get("tiers", {})),  # type: ignore[arg-type]
            engine=dict(payload.get("engine", {})),  # type: ignore[arg-type]
            points=tuple(
                CapacityPoint.from_dict(point)
                for point in payload.get("points", ())  # type: ignore[union-attr]
            ),
            frontier={
                str(k): dict(v)
                for k, v in dict(payload.get("frontier", {})).items()  # type: ignore[arg-type]
            },
        )

    def to_json(self) -> str:
        """Canonical JSON form: sorted keys, so equal reports are equal bytes."""
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "CapacityReport":
        """Rebuild a report from :meth:`to_json` output."""
        payload = json.loads(text)
        if not isinstance(payload, dict):
            raise ValueError("capacity report JSON must be an object")
        return cls.from_dict(payload)

    def transfer_totals(self) -> dict[str, dict[str, int]]:
        """Per-policy ledger byte totals summed over the feasible points."""
        totals: dict[str, dict[str, int]] = {}
        for point in self.points:
            if not point.feasible:
                continue
            bucket = totals.setdefault(
                point.policy, {"h2d": 0, "d2h": 0, "h2s": 0, "s2h": 0}
            )
            for direction, nbytes in point.transfers.items():
                bucket[direction] = bucket.get(direction, 0) + int(nbytes)
        return totals
