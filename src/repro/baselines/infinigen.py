"""InfiniGen baseline: per-token selection with SVD partial weights.

InfiniGen (Lee et al., OSDI 2024; paper reference [18]) makes tokens
recallable by *speculating* attention scores with reduced-dimension queries
and keys.  Offline, it applies a singular value decomposition to the key
matrix and keeps only the top-``r`` directions ("partial weights"); at every
decoding step it projects the query into that ``r``-dimensional space,
estimates all attention scores against the stored partial keys, and fetches
the KV of the highest-scoring tokens from CPU memory.

Properties reproduced here (paper Sec. II-C):

* selection cost is ``O(L * r)`` — it still scales linearly with the context
  length, unlike ClusterKV's ``O(C * d)``;
* partial keys must be stored in addition to the full keys (extra memory,
  tracked in ``aux_bytes``);
* selection is per-token, so there is no internal fragmentation — accuracy
  sits between Quest and ClusterKV in the paper's evaluation.
"""

from __future__ import annotations

import numpy as np

from ..memory import TierKind
from ..policies.registry import register_policy
from .base import (
    KVSelectorFactory,
    LayerSelectorState,
    clip_budget,
    merge_group_queries,
)
from .oracle import top_k_indices

__all__ = ["InfiniGenConfig", "InfiniGenLayerState", "InfiniGenSelector"]


class InfiniGenConfig:
    """Configuration of the InfiniGen baseline.

    Attributes
    ----------
    partial_ratio:
        Fraction of key channels kept by the SVD projection (the original
        work uses a partial-weight ratio around 0.25–0.3).
    min_partial_dim:
        Lower bound on the projected dimension.
    speculation_noise:
        Relative magnitude of the error of the speculated attention scores.
        InfiniGen speculates the important tokens of layer ``i`` while layer
        ``i-1`` is still executing, using partial weights calibrated
        offline; the speculated scores therefore differ from the attention
        scores actually computed.  The reproduction models that gap as
        Gaussian noise on the estimated scores with standard deviation
        ``speculation_noise`` times the standard deviation of the estimates
        (0 recovers an idealised, oracle-like InfiniGen).
    seed:
        Seed of the deterministic speculation-noise stream.
    """

    def __init__(
        self,
        partial_ratio: float = 0.25,
        min_partial_dim: int = 4,
        speculation_noise: float = 0.6,
        seed: int = 0,
    ) -> None:
        if not 0.0 < partial_ratio <= 1.0:
            raise ValueError("partial_ratio must lie in (0, 1]")
        if min_partial_dim <= 0:
            raise ValueError("min_partial_dim must be positive")
        if speculation_noise < 0.0:
            raise ValueError("speculation_noise must be non-negative")
        self.partial_ratio = partial_ratio
        self.min_partial_dim = min_partial_dim
        self.speculation_noise = speculation_noise
        self.seed = seed

    def partial_dim(self, head_dim: int) -> int:
        """Projected dimension ``r`` for a given head dimension."""
        return min(head_dim, max(self.min_partial_dim, int(round(head_dim * self.partial_ratio))))


class InfiniGenLayerState(LayerSelectorState):
    """Per-layer InfiniGen state: SVD projections and partial keys per head."""

    def __init__(
        self,
        layer_idx: int,
        n_kv_heads: int,
        head_dim: int,
        config: InfiniGenConfig,
    ) -> None:
        super().__init__(layer_idx, n_kv_heads, head_dim)
        self.config = config
        self.partial_dim = config.partial_dim(head_dim)
        self._num_tokens = 0
        # Per-head projection matrices (d, r) and partial key blocks.
        self._projections: list[np.ndarray] | None = None
        self._partial_key_blocks: list[list[np.ndarray]] = [[] for _ in range(n_kv_heads)]
        self._noise_rng = np.random.default_rng(config.seed + 7 * layer_idx + 1)

    # ------------------------------------------------------------------
    # observation
    # ------------------------------------------------------------------
    def observe_prefill(self, keys: np.ndarray) -> None:
        """SVD the prompt keys into partial weights and build partial keys."""
        keys = self._validate(keys)
        self._num_tokens = keys.shape[1]
        self._projections = []
        for head in range(self.n_kv_heads):
            head_keys = keys[head]
            # SVD of the prompt keys; the top right-singular vectors capture
            # the directions along which keys (and hence attention scores)
            # vary the most.  This models InfiniGen's offline partial-weight
            # generation.
            _, _, vt = np.linalg.svd(head_keys, full_matrices=False)
            projection = vt[: self.partial_dim].T  # (d, r)
            self._projections.append(projection)
            self._partial_key_blocks[head].append(head_keys @ projection)
            # SVD cost ~ L d^2, projection cost 2 L d r.
            self.stats.build_flops += int(
                keys.shape[1] * self.head_dim**2
                + 2 * keys.shape[1] * self.head_dim * self.partial_dim
            )
        self._refresh_aux_bytes()

    def observe_decode(self, keys: np.ndarray) -> None:
        """Project newly decoded keys into the partial space."""
        keys = self._validate(keys)
        if self._projections is None:
            raise RuntimeError("observe_decode called before observe_prefill")
        for head in range(self.n_kv_heads):
            self._partial_key_blocks[head].append(keys[head] @ self._projections[head])
            self.stats.build_flops += int(
                2 * keys.shape[1] * self.head_dim * self.partial_dim
            )
        self._num_tokens += keys.shape[1]
        self._refresh_aux_bytes()

    # ------------------------------------------------------------------
    # selection
    # ------------------------------------------------------------------
    def select(self, queries: np.ndarray, budget: int, step: int) -> list[np.ndarray]:
        """Speculate scores with partial keys and pick the top-``B`` tokens."""
        if self._projections is None:
            raise RuntimeError("select called before observe_prefill")
        merged = merge_group_queries(queries)
        budget = clip_budget(budget, self._num_tokens)
        selections: list[np.ndarray] = []
        for head in range(self.n_kv_heads):
            partial_keys = self._partial_keys(head)
            partial_query = merged[head] @ self._projections[head]
            estimated = partial_keys @ partial_query
            if self.config.speculation_noise > 0.0:
                # The scores used for speculation are not the scores computed
                # in the actual attention (cross-layer prefetch with offline
                # partial weights); model that gap as relative Gaussian noise
                # on the estimates.
                scale = float(np.std(estimated)) or 1.0
                estimated = estimated + self._noise_rng.normal(
                    scale=self.config.speculation_noise * scale, size=estimated.shape
                )
            indices = top_k_indices(estimated, budget)
            selections.append(indices)
            self.stats.score_flops += int(
                2 * self.head_dim * self.partial_dim  # query projection
                + 2 * self._num_tokens * self.partial_dim  # score estimation
            )
            self.stats.selected_tokens += int(indices.shape[0])
            self.stats.fetched_tokens += int(indices.shape[0])
        self.stats.num_selections += 1
        return selections

    @property
    def context_length(self) -> int:
        """Number of tokens observed so far (prefill plus decode)."""
        return self._num_tokens

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------
    def _partial_keys(self, head: int) -> np.ndarray:
        blocks = self._partial_key_blocks[head]
        if len(blocks) > 1:
            self._partial_key_blocks[head] = [np.concatenate(blocks, axis=0)]
        return self._partial_key_blocks[head][0]

    def _validate(self, keys: np.ndarray) -> np.ndarray:
        keys = np.asarray(keys, dtype=np.float64)
        if keys.ndim != 3 or keys.shape[0] != self.n_kv_heads or keys.shape[2] != self.head_dim:
            raise ValueError(
                f"expected keys of shape ({self.n_kv_heads}, t, {self.head_dim}), "
                f"got {keys.shape}"
            )
        return keys

    def _refresh_aux_bytes(self) -> None:
        # Partial keys stored at fp16 in addition to the original keys.
        self.stats.aux_bytes = int(
            self._num_tokens * self.partial_dim * self.n_kv_heads * 2
        )


@register_policy(
    "infinigen",
    config_cls=InfiniGenConfig,
    summary="per-token speculation with SVD partial keys, KV offloaded to CPU",
)
class InfiniGenSelector(KVSelectorFactory):
    """Factory of the InfiniGen baseline (offloads KV to CPU memory)."""

    name = "infinigen"
    kv_residency = TierKind.CPU

    def __init__(self, config: InfiniGenConfig | None = None) -> None:
        self.config = config or InfiniGenConfig()

    def create_layer_state(
        self,
        layer_idx: int,
        n_kv_heads: int,
        head_dim: int,
        num_sink_tokens: int,
    ) -> InfiniGenLayerState:
        """Create the InfiniGen partial-key state of one layer."""
        return InfiniGenLayerState(layer_idx, n_kv_heads, head_dim, self.config)

    def describe(self) -> dict[str, object]:
        """Method configuration: the full partial-key and speculation settings."""
        description = super().describe()
        description.update(
            partial_ratio=self.config.partial_ratio,
            min_partial_dim=self.config.min_partial_dim,
            speculation_noise=self.config.speculation_noise,
            seed=self.config.seed,
        )
        return description
