"""Common interface of all KV cache selection methods.

Every compression method (ClusterKV and the baselines it is compared with)
is expressed as a *selector*: at each decoding step the selector receives the
query vectors and returns, for every key/value head, the indices of the
tokens whose KV entries participate in the approximate attention
``softmax(q K_S^T / sqrt(d)) V_S`` (paper Sec. II-B).

Selectors are stateful per layer: they observe the keys produced during
prefill and decoding (so that they can build whatever acceleration structure
they need — semantic clusters, page bounds, partial keys, ...) and maintain
instrumentation counters that the performance model consumes.
"""

from __future__ import annotations

import abc
import copy
from dataclasses import dataclass, field

import numpy as np

from ..memory import TierKind

__all__ = [
    "SelectorStats",
    "LayerSelectorState",
    "KVSelectorFactory",
    "merge_group_queries",
    "clip_budget",
]


@dataclass
class SelectorStats:
    """Instrumentation counters accumulated by a layer selector.

    Attributes
    ----------
    score_flops:
        Floating point operations spent computing selection scores (the
        "recall overhead" of the paper).
    build_flops:
        Floating point operations spent building the selection structure
        (K-means clustering for ClusterKV, page summaries for Quest, partial
        key generation for InfiniGen).
    selected_tokens:
        Total number of tokens selected, summed over heads and steps.
    fetched_tokens:
        Tokens whose KV had to be transferred from the CPU tier (after any
        GPU-side caching).
    cache_hit_tokens / cache_miss_tokens:
        Cluster-cache hits and misses in token units (ClusterKV only; zero
        for other methods).
    num_selections:
        Number of ``select`` calls served.
    aux_bytes:
        Size of auxiliary metadata kept on the GPU (centroids, page bounds,
        partial keys, ...).
    """

    score_flops: int = 0
    build_flops: int = 0
    selected_tokens: int = 0
    fetched_tokens: int = 0
    cache_hit_tokens: int = 0
    cache_miss_tokens: int = 0
    num_selections: int = 0
    aux_bytes: int = 0

    def merge(self, other: "SelectorStats") -> "SelectorStats":
        """Return a new stats object with counters summed element-wise."""
        return SelectorStats(
            score_flops=self.score_flops + other.score_flops,
            build_flops=self.build_flops + other.build_flops,
            selected_tokens=self.selected_tokens + other.selected_tokens,
            fetched_tokens=self.fetched_tokens + other.fetched_tokens,
            cache_hit_tokens=self.cache_hit_tokens + other.cache_hit_tokens,
            cache_miss_tokens=self.cache_miss_tokens + other.cache_miss_tokens,
            num_selections=self.num_selections + other.num_selections,
            aux_bytes=self.aux_bytes + other.aux_bytes,
        )

    @property
    def cache_hit_rate(self) -> float:
        """Fraction of selected tokens served from the GPU-side cache."""
        total = self.cache_hit_tokens + self.cache_miss_tokens
        if total == 0:
            return 0.0
        return self.cache_hit_tokens / total


class LayerSelectorState(abc.ABC):
    """Per-layer state of a KV selection method."""

    def __init__(self, layer_idx: int, n_kv_heads: int, head_dim: int) -> None:
        self.layer_idx = layer_idx
        self.n_kv_heads = n_kv_heads
        self.head_dim = head_dim
        self.stats = SelectorStats()

    @abc.abstractmethod
    def observe_prefill(self, keys: np.ndarray) -> None:
        """Ingest prompt keys, shape ``(n_kv_heads, L, head_dim)``."""

    @abc.abstractmethod
    def observe_decode(self, keys: np.ndarray) -> None:
        """Ingest keys of newly decoded tokens, shape ``(n_kv_heads, t, head_dim)``."""

    @abc.abstractmethod
    def select(
        self, queries: np.ndarray, budget: int, step: int
    ) -> list[np.ndarray]:
        """Select token indices for the current decoding step.

        Parameters
        ----------
        queries:
            Query vectors grouped by kv head, shape
            ``(n_kv_heads, group_size, head_dim)``.
        budget:
            KV cache budget ``B`` (tokens per head).
        step:
            Zero-based decoding step index.

        Returns
        -------
        list of numpy.ndarray
            One sorted, unique int64 index array per kv head; indices refer
            to absolute token positions in ``[0, context_length)``.
        """

    @property
    def context_length(self) -> int:
        """Number of tokens observed so far (prefill plus decode)."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    # whole-state checkpoint hooks (sequence migration / preemption)
    # ------------------------------------------------------------------
    def export_state(self) -> dict[str, object]:
        """Deep snapshot of this state's complete mutable contents.

        The generalisation of :meth:`export_prefix_state` from prompt
        prefixes to *arbitrary decode positions*: everything the selector
        has accumulated — acceleration structures, caches, instrumentation
        counters — is captured so that :meth:`restore_state` on a fresh
        state of the same policy configuration reproduces this state
        exactly.  Selector states hold only plain-Python containers and
        NumPy arrays, so a deep copy of ``__dict__`` is exact for every
        registered policy; a selector holding unpicklable resources must
        override both hooks.
        """
        return copy.deepcopy(self.__dict__)

    def restore_state(self, state: dict[str, object]) -> None:
        """Adopt a snapshot produced by :meth:`export_state`.

        Called on a freshly created state of the same policy configuration
        (layer index, kv heads, head dim); afterwards the state behaves —
        selection results, statistics, context length — exactly as the
        exported one did at capture time, which is what makes
        checkpoint/restore bit-identical to uninterrupted decoding.
        """
        self.__dict__.clear()
        self.__dict__.update(copy.deepcopy(state))

    # ------------------------------------------------------------------
    # cross-request prefix-cache hooks (optional)
    # ------------------------------------------------------------------
    def export_prefix_state(self, prefix_len: int) -> dict[tuple[int, int], object]:
        """Semantic state of the prompt prefix, for the prefix cache.

        Returns a mapping from absolute token segments ``(seg_start,
        seg_end)`` with ``seg_end <= prefix_len`` to opaque payloads that
        :meth:`restore_prefix_state` on a *fresh* state of the same policy
        configuration can consume.  The default returns an empty mapping:
        most selectors rebuild their structure from the full prompt keys
        at prefill observation time and need nothing restored.
        """
        return {}

    def restore_prefix_state(self, segments: dict[tuple[int, int], object]) -> None:
        """Adopt exported prefix segments ahead of ``observe_prefill``.

        Called on a fresh state (before any observation) when the engine
        attaches the request to a cached prompt prefix.  The default is a
        no-op, matching the empty default export.
        """


class KVSelectorFactory(abc.ABC):
    """Factory building per-layer selector states for one generation run.

    Attributes
    ----------
    name:
        Identifier used in experiment reports (``"clusterkv"``, ``"quest"``,
        ``"infinigen"``, ``"full"``, ...).
    kv_residency:
        The memory tier holding the bulk KV cache under this method.  Full
        KV and Quest keep everything on the GPU; ClusterKV and InfiniGen
        offload to the CPU and fetch selected entries per step.
    """

    name: str = "abstract"
    kv_residency: TierKind = TierKind.GPU

    @abc.abstractmethod
    def create_layer_state(
        self,
        layer_idx: int,
        n_kv_heads: int,
        head_dim: int,
        num_sink_tokens: int,
    ) -> LayerSelectorState:
        """Create the selector state of one layer."""

    def describe(self) -> dict[str, object]:
        """Description of the method: identity plus its *full* configuration.

        Subclasses with configuration must extend this with every config
        field (keys matching their config class's constructor parameters):
        the output is embedded in experiment reports and
        :meth:`repro.serving.ServeReport.policy_descriptions` so that a
        report alone can rebuild the policy via
        :func:`repro.policies.policy_spec_from_description`.
        """
        return {"name": self.name, "kv_residency": self.kv_residency.value}


def merge_group_queries(queries: np.ndarray) -> np.ndarray:
    """Collapse grouped query heads into one scoring query per kv head.

    ``queries`` has shape ``(n_kv_heads, group_size, head_dim)``; the result
    has shape ``(n_kv_heads, head_dim)``.  Scores computed against the summed
    query equal the sum of per-query scores, which matches how grouped-query
    attention shares a kv head across its query group.
    """
    queries = np.asarray(queries, dtype=np.float64)
    if queries.ndim == 2:
        return queries
    if queries.ndim != 3:
        raise ValueError(f"expected (n_kv_heads, group, head_dim), got {queries.shape}")
    return queries.sum(axis=1)


def clip_budget(budget: int, context_length: int) -> int:
    """Clamp a budget to the number of available tokens."""
    if budget <= 0:
        raise ValueError(f"budget must be positive, got {budget}")
    return min(budget, context_length)
