"""StreamingLLM baseline: attention sinks plus a sliding window.

StreamingLLM (Xiao et al., ICLR 2024; paper reference [9]) is the simplest
fixed-pattern compression: it always keeps the first few "attention sink"
tokens and a sliding window of the most recent tokens, and permanently drops
everything else.  The paper cites it as the canonical fixed-pattern,
non-recallable method; it is included here for the motivation experiments
and as a lower bound for selection quality.
"""

from __future__ import annotations

import numpy as np

from ..memory import TierKind
from ..policies.registry import register_policy
from .base import KVSelectorFactory, LayerSelectorState, clip_budget

__all__ = ["StreamingLLMLayerState", "StreamingLLMSelector"]


class StreamingLLMLayerState(LayerSelectorState):
    """Sink tokens plus the most recent ``budget - sinks`` tokens."""

    def __init__(
        self,
        layer_idx: int,
        n_kv_heads: int,
        head_dim: int,
        num_sink_tokens: int,
    ) -> None:
        super().__init__(layer_idx, n_kv_heads, head_dim)
        self.num_sink_tokens = num_sink_tokens
        self._num_tokens = 0

    def observe_prefill(self, keys: np.ndarray) -> None:
        """Record the prompt length (the fixed pattern needs no structure)."""
        self._num_tokens = int(np.asarray(keys).shape[1])

    def observe_decode(self, keys: np.ndarray) -> None:
        """Extend the token count with the newly decoded tokens."""
        self._num_tokens += int(np.asarray(keys).shape[1])

    def select(self, queries: np.ndarray, budget: int, step: int) -> list[np.ndarray]:
        """Select the sink tokens plus the most recent window."""
        budget = clip_budget(budget, self._num_tokens)
        num_sinks = min(self.num_sink_tokens, self._num_tokens, budget)
        window = budget - num_sinks
        sinks = np.arange(num_sinks, dtype=np.int64)
        recent = np.arange(
            max(num_sinks, self._num_tokens - window), self._num_tokens, dtype=np.int64
        )
        indices = np.unique(np.concatenate([sinks, recent]))
        self.stats.selected_tokens += int(indices.shape[0]) * self.n_kv_heads
        self.stats.num_selections += 1
        return [indices.copy() for _ in range(self.n_kv_heads)]

    @property
    def context_length(self) -> int:
        """Number of tokens observed so far (prefill plus decode)."""
        return self._num_tokens


@register_policy(
    "streaming_llm", summary="fixed pattern: attention sinks plus a sliding window"
)
class StreamingLLMSelector(KVSelectorFactory):
    """Factory of the StreamingLLM (sink + sliding window) baseline."""

    name = "streaming_llm"
    kv_residency = TierKind.GPU

    def create_layer_state(
        self,
        layer_idx: int,
        n_kv_heads: int,
        head_dim: int,
        num_sink_tokens: int,
    ) -> StreamingLLMLayerState:
        """Create the sink-plus-window state of one layer."""
        return StreamingLLMLayerState(layer_idx, n_kv_heads, head_dim, num_sink_tokens)
