"""H2O baseline: non-recallable heavy-hitter eviction.

H2O (Zhang et al., NeurIPS 2023; paper reference [10]) keeps a fixed-size
cache of "heavy hitter" tokens — the tokens with the largest *accumulated*
attention weights — plus a window of the most recent tokens.  Crucially, the
attention weights used for eviction are computed only over the tokens that
are still retained; once a token is evicted it can never be recalled
(paper Fig. 1b).  This is the representative non-recallable method used in
the motivation study (paper Sec. II-C): tokens whose importance rises later
in decoding have already been discarded.
"""

from __future__ import annotations

import numpy as np

from ..memory import TierKind
from ..policies.registry import register_policy
from .base import (
    KVSelectorFactory,
    LayerSelectorState,
    clip_budget,
    merge_group_queries,
)
from ..model.tensor_ops import softmax

__all__ = ["H2OConfig", "H2OLayerState", "H2OSelector"]


class H2OConfig:
    """Configuration of the H2O baseline.

    Attributes
    ----------
    recent_ratio:
        Fraction of the budget reserved for the most recent tokens (the
        original work splits the budget evenly between heavy hitters and the
        recent window by default).
    """

    def __init__(self, recent_ratio: float = 0.5) -> None:
        if not 0.0 <= recent_ratio < 1.0:
            raise ValueError("recent_ratio must lie in [0, 1)")
        self.recent_ratio = recent_ratio


class H2OLayerState(LayerSelectorState):
    """Per-layer H2O state: retained token sets and accumulated scores."""

    def __init__(
        self,
        layer_idx: int,
        n_kv_heads: int,
        head_dim: int,
        config: H2OConfig,
        num_sink_tokens: int,
    ) -> None:
        super().__init__(layer_idx, n_kv_heads, head_dim)
        self.config = config
        self.num_sink_tokens = num_sink_tokens
        self._key_blocks: list[np.ndarray] = []
        self._num_tokens = 0
        # Per-head retained indices and their accumulated attention mass.
        self._retained: list[np.ndarray] | None = None
        self._accumulated: list[np.ndarray] | None = None
        # Highest token index (exclusive) already considered for retention;
        # anything beyond it is new and has not been evicted yet.
        self._seen_tokens = 0

    # ------------------------------------------------------------------
    # observation
    # ------------------------------------------------------------------
    def observe_prefill(self, keys: np.ndarray) -> None:
        """Store the prompt keys; eviction starts at the first decode step."""
        keys = np.asarray(keys, dtype=np.float64)
        self._key_blocks.append(keys)
        self._num_tokens = keys.shape[1]

    def observe_decode(self, keys: np.ndarray) -> None:
        """Store keys of newly decoded tokens (eviction candidates next step)."""
        keys = np.asarray(keys, dtype=np.float64)
        self._key_blocks.append(keys)
        self._num_tokens += keys.shape[1]

    def _all_keys(self) -> np.ndarray:
        if len(self._key_blocks) > 1:
            self._key_blocks = [np.concatenate(self._key_blocks, axis=1)]
        return self._key_blocks[0]

    # ------------------------------------------------------------------
    # selection
    # ------------------------------------------------------------------
    def select(self, queries: np.ndarray, budget: int, step: int) -> list[np.ndarray]:
        """Keep sinks, the recent window and the heaviest hitters; evicted tokens are never recalled."""
        merged = merge_group_queries(queries)
        budget = clip_budget(budget, self._num_tokens)
        keys = self._all_keys()
        if self._retained is None:
            # First decoding step: initialise the retained set from the full
            # prompt.  H2O accumulates attention during prefill; here the
            # first query plays that role, after which eviction is greedy and
            # permanent.
            self._retained = [
                np.arange(self._num_tokens, dtype=np.int64)
                for _ in range(self.n_kv_heads)
            ]
            self._accumulated = [np.zeros(self._num_tokens) for _ in range(self.n_kv_heads)]
            self._seen_tokens = self._num_tokens

        recent_budget = int(round(budget * self.config.recent_ratio))
        selections: list[np.ndarray] = []
        for head in range(self.n_kv_heads):
            retained = self._retained[head]
            accumulated = self._accumulated[head]

            # New tokens since the last step are always added to the candidate
            # set (they have not been evicted yet); previously evicted tokens
            # are never re-added (non-recallable).
            new_tokens = np.arange(self._seen_tokens, self._num_tokens, dtype=np.int64)
            if new_tokens.size:
                retained = np.concatenate([retained, new_tokens])
                accumulated = np.concatenate([accumulated, np.zeros(new_tokens.size)])

            # Attention over the retained candidates only (non-recallable).
            scores = keys[head, retained, :] @ merged[head]
            weights = softmax(scores / np.sqrt(self.head_dim))
            accumulated = accumulated + weights
            self.stats.score_flops += int(2 * retained.size * self.head_dim)

            # Keep sinks and the most recent tokens unconditionally, fill the
            # rest of the budget with the heaviest hitters.
            recent_cutoff = self._num_tokens - max(recent_budget, 1)
            keep_mask = (retained < self.num_sink_tokens) | (retained >= recent_cutoff)
            forced = retained[keep_mask]
            remaining = budget - forced.size
            if remaining > 0:
                candidate_mask = ~keep_mask
                candidate_indices = np.flatnonzero(candidate_mask)
                order = np.argsort(-accumulated[candidate_indices], kind="stable")
                chosen = candidate_indices[order[:remaining]]
                keep_positions = np.concatenate([np.flatnonzero(keep_mask), chosen])
            else:
                keep_positions = np.flatnonzero(keep_mask)[:budget]

            keep_positions = np.sort(keep_positions)
            self._retained[head] = retained[keep_positions]
            self._accumulated[head] = accumulated[keep_positions]
            selection = np.sort(self._retained[head].copy())
            selections.append(selection)
            self.stats.selected_tokens += int(selection.shape[0])
        self._seen_tokens = self._num_tokens
        self.stats.num_selections += 1
        return selections

    @property
    def context_length(self) -> int:
        """Number of tokens observed so far (prefill plus decode)."""
        return self._num_tokens


@register_policy(
    "h2o",
    config_cls=H2OConfig,
    summary="non-recallable heavy-hitter eviction plus recent window",
)
class H2OSelector(KVSelectorFactory):
    """Factory of the H2O (non-recallable heavy hitter) baseline."""

    name = "h2o"
    kv_residency = TierKind.GPU

    def __init__(self, config: H2OConfig | None = None) -> None:
        self.config = config or H2OConfig()

    def create_layer_state(
        self,
        layer_idx: int,
        n_kv_heads: int,
        head_dim: int,
        num_sink_tokens: int,
    ) -> H2OLayerState:
        """Create the H2O eviction state of one layer."""
        return H2OLayerState(layer_idx, n_kv_heads, head_dim, self.config, num_sink_tokens)

    def describe(self) -> dict[str, object]:
        """Method configuration: the budget split between hitters and window."""
        description = super().describe()
        description.update(recent_ratio=self.config.recent_ratio)
        return description
