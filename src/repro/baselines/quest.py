"""Quest baseline: query-aware page-level KV cache selection.

Quest (Tang et al., ICML 2024; paper reference [15]) divides the KV cache
into pages of ``page_size`` consecutive tokens and keeps, for every page,
the per-channel element-wise minimum and maximum of the keys in that page.
At every decoding step it computes an *upper bound* of the attention score a
page can achieve for the current query,

    bound(page) = sum_c max(q_c * max_key_c, q_c * min_key_c),

ranks pages by this bound and selects the top ``B / page_size`` pages.  All
tokens inside a selected page participate in attention — which is exactly
the internal-fragmentation weakness ClusterKV addresses (paper Fig. 3b).

Quest keeps the full KV cache in GPU memory (it reduces memory *accesses*,
not capacity), so ``kv_residency`` is the GPU tier and no fetch traffic is
charged.
"""

from __future__ import annotations

import numpy as np

from ..memory import TierKind
from ..policies.registry import register_policy
from .base import (
    KVSelectorFactory,
    LayerSelectorState,
    clip_budget,
    merge_group_queries,
)

__all__ = ["QuestConfig", "QuestLayerState", "QuestSelector"]

DEFAULT_PAGE_SIZE = 16


class QuestConfig:
    """Configuration of the Quest baseline.

    Attributes
    ----------
    page_size:
        Number of consecutive tokens per page (the original work uses 16).
    include_last_page:
        Whether the most recent (possibly partial) page is always selected;
        Quest always attends to the page containing the current token.
    """

    def __init__(self, page_size: int = DEFAULT_PAGE_SIZE, include_last_page: bool = True) -> None:
        if page_size <= 0:
            raise ValueError("page_size must be positive")
        self.page_size = page_size
        self.include_last_page = include_last_page


class QuestLayerState(LayerSelectorState):
    """Per-layer Quest state: per-page min/max key summaries."""

    def __init__(
        self,
        layer_idx: int,
        n_kv_heads: int,
        head_dim: int,
        config: QuestConfig,
    ) -> None:
        super().__init__(layer_idx, n_kv_heads, head_dim)
        self.config = config
        self._num_tokens = 0
        # Page summaries: lists of (n_kv_heads, head_dim) arrays per page.
        self._page_max: list[np.ndarray] = []
        self._page_min: list[np.ndarray] = []
        self._page_counts: list[int] = []

    # ------------------------------------------------------------------
    # observation
    # ------------------------------------------------------------------
    def observe_prefill(self, keys: np.ndarray) -> None:
        """Fold the prompt keys into per-page min/max summaries."""
        self._ingest(keys)

    def observe_decode(self, keys: np.ndarray) -> None:
        """Fold newly decoded keys into per-page min/max summaries."""
        self._ingest(keys)

    def _ingest(self, keys: np.ndarray) -> None:
        keys = np.asarray(keys, dtype=np.float64)
        if keys.ndim != 3 or keys.shape[0] != self.n_kv_heads or keys.shape[2] != self.head_dim:
            raise ValueError(
                f"expected keys of shape ({self.n_kv_heads}, t, {self.head_dim}), "
                f"got {keys.shape}"
            )
        for t in range(keys.shape[1]):
            key_t = keys[:, t, :]
            if self._page_counts and self._page_counts[-1] < self.config.page_size:
                self._page_max[-1] = np.maximum(self._page_max[-1], key_t)
                self._page_min[-1] = np.minimum(self._page_min[-1], key_t)
                self._page_counts[-1] += 1
            else:
                self._page_max.append(key_t.copy())
                self._page_min.append(key_t.copy())
                self._page_counts.append(1)
            self._num_tokens += 1
            # Building the per-channel min/max costs two comparisons per
            # channel per token: O(L * d) as in the paper (Sec. III-D).
            self.stats.build_flops += 2 * self.n_kv_heads * self.head_dim

    # ------------------------------------------------------------------
    # selection
    # ------------------------------------------------------------------
    def select(self, queries: np.ndarray, budget: int, step: int) -> list[np.ndarray]:
        """Rank pages by their score upper bound and take whole pages until the budget is met."""
        merged = merge_group_queries(queries)
        budget = clip_budget(budget, self._num_tokens)
        num_pages = len(self._page_counts)
        if num_pages == 0:
            self.stats.num_selections += 1
            return [np.zeros(0, dtype=np.int64) for _ in range(self.n_kv_heads)]

        pages_needed = max(1, budget // self.config.page_size)
        page_max = np.stack(self._page_max, axis=1)  # (H, num_pages, d)
        page_min = np.stack(self._page_min, axis=1)
        counts = np.asarray(self._page_counts, dtype=np.int64)
        starts = np.concatenate([[0], np.cumsum(counts)])[:-1]

        selections: list[np.ndarray] = []
        for head in range(self.n_kv_heads):
            query = merged[head]
            bounds = np.sum(
                np.maximum(query[None, :] * page_max[head], query[None, :] * page_min[head]),
                axis=1,
            )
            self.stats.score_flops += int(4 * num_pages * self.head_dim)

            order = np.lexsort((np.arange(num_pages), -bounds))
            chosen = list(order[:pages_needed])
            if self.config.include_last_page and (num_pages - 1) not in chosen:
                chosen[-1] = num_pages - 1
            chosen_pages = np.unique(np.asarray(chosen, dtype=np.int64))

            pieces = [
                np.arange(starts[p], starts[p] + counts[p], dtype=np.int64)
                for p in chosen_pages
            ]
            indices = np.sort(np.concatenate(pieces))
            selections.append(indices)
            self.stats.selected_tokens += int(indices.shape[0])
        self.stats.num_selections += 1
        self.stats.aux_bytes = int(2 * num_pages * self.n_kv_heads * self.head_dim * 2)
        return selections

    @property
    def context_length(self) -> int:
        """Number of tokens observed so far (prefill plus decode)."""
        return self._num_tokens

    @property
    def num_pages(self) -> int:
        """Number of pages currently summarised."""
        return len(self._page_counts)


@register_policy(
    "quest",
    config_cls=QuestConfig,
    summary="page-level selection by per-page min/max score bounds",
)
class QuestSelector(KVSelectorFactory):
    """Factory of the Quest baseline."""

    name = "quest"
    kv_residency = TierKind.GPU

    def __init__(self, config: QuestConfig | None = None) -> None:
        self.config = config or QuestConfig()

    def create_layer_state(
        self,
        layer_idx: int,
        n_kv_heads: int,
        head_dim: int,
        num_sink_tokens: int,
    ) -> QuestLayerState:
        """Create the Quest page-summary state of one layer."""
        return QuestLayerState(layer_idx, n_kv_heads, head_dim, self.config)

    def describe(self) -> dict[str, object]:
        """Method configuration: the full page-summary settings."""
        description = super().describe()
        description.update(
            page_size=self.config.page_size,
            include_last_page=self.config.include_last_page,
        )
        return description
