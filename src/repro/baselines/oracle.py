"""Exact top-k oracle selector.

Selects the ``B`` tokens with the largest true attention scores ``q·k`` at
every step.  This is the ideal (but prohibitively expensive, ``O(Ld)``)
selection the paper formulates in Sec. III-A; it serves as the ground truth
of the recall-rate experiments (Fig. 11) and as an accuracy upper bound for
any budget-constrained method.
"""

from __future__ import annotations

import numpy as np

from ..memory import TierKind
from ..policies.registry import register_policy
from .base import (
    KVSelectorFactory,
    LayerSelectorState,
    clip_budget,
    merge_group_queries,
)

__all__ = ["OracleTopKLayerState", "OracleTopKSelector", "top_k_indices"]


def top_k_indices(scores: np.ndarray, k: int) -> np.ndarray:
    """Indices of the ``k`` largest entries of ``scores``, sorted ascending.

    Ties are broken deterministically in favour of smaller indices.
    """
    if k <= 0:
        return np.zeros(0, dtype=np.int64)
    scores = np.asarray(scores, dtype=np.float64)
    k = min(k, scores.shape[0])
    # argsort on (-score, index) gives deterministic tie-breaking.
    order = np.lexsort((np.arange(scores.shape[0]), -scores))
    return np.sort(order[:k].astype(np.int64))


class OracleTopKLayerState(LayerSelectorState):
    """Keeps all keys and selects the exact top-``B`` per kv head."""

    def __init__(self, layer_idx: int, n_kv_heads: int, head_dim: int) -> None:
        super().__init__(layer_idx, n_kv_heads, head_dim)
        self._key_blocks: list[np.ndarray] = []
        self._num_tokens = 0

    def observe_prefill(self, keys: np.ndarray) -> None:
        """Store the prompt keys for exact scoring."""
        keys = np.asarray(keys, dtype=np.float64)
        self._key_blocks.append(keys)
        self._num_tokens = keys.shape[1]

    def observe_decode(self, keys: np.ndarray) -> None:
        """Store keys of newly decoded tokens."""
        keys = np.asarray(keys, dtype=np.float64)
        self._key_blocks.append(keys)
        self._num_tokens += keys.shape[1]

    def _all_keys(self) -> np.ndarray:
        if len(self._key_blocks) > 1:
            self._key_blocks = [np.concatenate(self._key_blocks, axis=1)]
        return self._key_blocks[0]

    def select(self, queries: np.ndarray, budget: int, step: int) -> list[np.ndarray]:
        """Select the exact top-``B`` tokens by true score per kv head."""
        merged = merge_group_queries(queries)
        budget = clip_budget(budget, self._num_tokens)
        keys = self._all_keys()
        selections = []
        for head in range(self.n_kv_heads):
            scores = keys[head] @ merged[head]
            indices = top_k_indices(scores, budget)
            selections.append(indices)
            self.stats.score_flops += int(2 * self._num_tokens * self.head_dim)
            self.stats.selected_tokens += int(indices.shape[0])
        self.stats.num_selections += 1
        return selections

    @property
    def context_length(self) -> int:
        """Number of tokens observed so far (prefill plus decode)."""
        return self._num_tokens


@register_policy("oracle", summary="exact top-k selection by true attention scores")
class OracleTopKSelector(KVSelectorFactory):
    """Factory of the exact top-k oracle."""

    name = "oracle"
    kv_residency = TierKind.GPU

    def create_layer_state(
        self,
        layer_idx: int,
        n_kv_heads: int,
        head_dim: int,
        num_sink_tokens: int,
    ) -> OracleTopKLayerState:
        """Create the exact top-k oracle state of one layer."""
        return OracleTopKLayerState(layer_idx, n_kv_heads, head_dim)
