"""KV cache selection baselines the paper compares against.

All baselines implement the :class:`~repro.baselines.base.KVSelectorFactory`
interface shared with :class:`repro.core.ClusterKVSelector`, so any of them
can be plugged into the inference engine and the experiment harnesses.
"""

from .base import (
    KVSelectorFactory,
    LayerSelectorState,
    SelectorStats,
    clip_budget,
    merge_group_queries,
)
from .full import FullKVLayerState, FullKVSelector
from .h2o import H2OConfig, H2OLayerState, H2OSelector
from .infinigen import InfiniGenConfig, InfiniGenLayerState, InfiniGenSelector
from .oracle import OracleTopKLayerState, OracleTopKSelector, top_k_indices
from .quest import QuestConfig, QuestLayerState, QuestSelector
from .streaming_llm import StreamingLLMLayerState, StreamingLLMSelector

__all__ = [
    "KVSelectorFactory",
    "LayerSelectorState",
    "SelectorStats",
    "clip_budget",
    "merge_group_queries",
    "FullKVSelector",
    "FullKVLayerState",
    "QuestSelector",
    "QuestLayerState",
    "QuestConfig",
    "InfiniGenSelector",
    "InfiniGenLayerState",
    "InfiniGenConfig",
    "H2OSelector",
    "H2OLayerState",
    "H2OConfig",
    "StreamingLLMSelector",
    "StreamingLLMLayerState",
    "OracleTopKSelector",
    "OracleTopKLayerState",
    "top_k_indices",
]
