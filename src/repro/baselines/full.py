"""Full KV cache baseline: no compression, every token is attended."""

from __future__ import annotations

import numpy as np

from ..memory import TierKind
from ..policies.registry import register_policy
from .base import KVSelectorFactory, LayerSelectorState

__all__ = ["FullKVLayerState", "FullKVSelector"]


class FullKVLayerState(LayerSelectorState):
    """Selects every cached token at every step (exact attention)."""

    def __init__(self, layer_idx: int, n_kv_heads: int, head_dim: int) -> None:
        super().__init__(layer_idx, n_kv_heads, head_dim)
        self._num_tokens = 0

    def observe_prefill(self, keys: np.ndarray) -> None:
        """Record the prompt length; full attention needs no structure."""
        self._num_tokens = int(np.asarray(keys).shape[1])

    def observe_decode(self, keys: np.ndarray) -> None:
        """Extend the token count with the newly decoded tokens."""
        self._num_tokens += int(np.asarray(keys).shape[1])

    def select(self, queries: np.ndarray, budget: int, step: int) -> list[np.ndarray]:
        """Select every cached token for every kv head."""
        indices = np.arange(self._num_tokens, dtype=np.int64)
        self.stats.selected_tokens += self._num_tokens * self.n_kv_heads
        self.stats.num_selections += 1
        return [indices.copy() for _ in range(self.n_kv_heads)]

    @property
    def context_length(self) -> int:
        """Number of tokens observed so far (prefill plus decode)."""
        return self._num_tokens


@register_policy("full", summary="uncompressed baseline: attend to every cached token")
class FullKVSelector(KVSelectorFactory):
    """Factory of the uncompressed baseline (paper's "Full KV")."""

    name = "full"
    kv_residency = TierKind.GPU

    def create_layer_state(
        self,
        layer_idx: int,
        n_kv_heads: int,
        head_dim: int,
        num_sink_tokens: int,
    ) -> FullKVLayerState:
        """Create the full-attention state of one layer."""
        return FullKVLayerState(layer_idx, n_kv_heads, head_dim)
