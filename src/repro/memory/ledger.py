"""Transfer ledger: records host/device traffic for performance modelling."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class TransferDirection(enum.Enum):
    """Direction of a transfer between two adjacent memory tiers.

    ``HOST_TO_DEVICE``/``DEVICE_TO_HOST`` cross the PCIe link between GPU
    and host; ``HOST_TO_SSD``/``SSD_TO_HOST`` cross the NVMe link between
    host DRAM and the SSD tier.
    """

    HOST_TO_DEVICE = "h2d"
    DEVICE_TO_HOST = "d2h"
    HOST_TO_SSD = "h2s"
    SSD_TO_HOST = "s2h"


@dataclass(frozen=True)
class TransferEvent:
    """A single logical transfer between memory tiers.

    Attributes
    ----------
    direction:
        Transfer direction.
    nbytes:
        Number of bytes moved.
    tag:
        Free-form label identifying the cause (e.g. ``"kv_fetch"``,
        ``"kv_offload"``), used by reports and tests.
    step:
        Decoding step index at which the transfer occurred (``-1`` for
        prefill-time transfers).
    """

    direction: TransferDirection
    nbytes: int
    tag: str
    step: int = -1


@dataclass
class TransferLedger:
    """Accumulates :class:`TransferEvent` records.

    The ledger is shared by the offload manager, the KV cache store and the
    selectors so that a single object captures all traffic of one generation
    run.
    """

    events: list[TransferEvent] = field(default_factory=list)

    def record(
        self,
        direction: TransferDirection,
        nbytes: int,
        tag: str,
        step: int = -1,
    ) -> None:
        """Append a transfer event."""
        if nbytes < 0:
            raise ValueError(f"transfer size must be non-negative, got {nbytes}")
        self.events.append(TransferEvent(direction, int(nbytes), tag, step))

    def total_bytes(
        self,
        direction: TransferDirection | None = None,
        tag: str | None = None,
    ) -> int:
        """Total bytes moved, optionally filtered by direction and/or tag."""
        total = 0
        for event in self.events:
            if direction is not None and event.direction is not direction:
                continue
            if tag is not None and event.tag != tag:
                continue
            total += event.nbytes
        return total

    def bytes_per_step(self, direction: TransferDirection | None = None) -> dict[int, int]:
        """Bytes moved per decoding step (prefill transfers are step ``-1``)."""
        per_step: dict[int, int] = {}
        for event in self.events:
            if direction is not None and event.direction is not direction:
                continue
            per_step[event.step] = per_step.get(event.step, 0) + event.nbytes
        return per_step

    def clear(self) -> None:
        """Drop all recorded events."""
        self.events.clear()

    def __len__(self) -> int:
        return len(self.events)
