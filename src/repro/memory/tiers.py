"""Memory tier abstraction (GPU device, CPU host and SSD memory)."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class TierKind(enum.Enum):
    """Kind of memory tier."""

    GPU = "gpu"
    CPU = "cpu"
    SSD = "ssd"


class MemoryCapacityError(RuntimeError):
    """Raised when an allocation would exceed a tier's capacity."""


class CapacityExceeded(MemoryCapacityError):
    """Typed tier-exhaustion error carrying the exact accounting state.

    Raised by :meth:`MemoryTier.allocate` / :meth:`MemoryTier.resize` when a
    bounded tier cannot fit a request.  The structured fields let the
    capacity harness (:mod:`repro.capacity`) attribute an infeasible
    serving point to the tier that hit its wall, and let tests pin the
    off-by-one: an allocation landing exactly on ``capacity_bytes``
    succeeds, one byte more raises.

    Attributes
    ----------
    tier:
        Kind of the exhausted tier.
    name:
        Buffer whose allocation or growth failed.
    needed_bytes:
        Bytes the failed operation tried to add to the tier.
    used_bytes:
        Bytes allocated on the tier at the time of the failure.
    capacity_bytes:
        The tier's configured capacity.
    """

    def __init__(
        self,
        message: str,
        *,
        tier: TierKind,
        name: str,
        needed_bytes: int,
        used_bytes: int,
        capacity_bytes: int,
    ) -> None:
        super().__init__(message)
        self.tier = tier
        self.name = name
        self.needed_bytes = int(needed_bytes)
        self.used_bytes = int(used_bytes)
        self.capacity_bytes = int(capacity_bytes)


@dataclass
class MemoryTier:
    """A byte-accounted memory pool.

    The tier does not own the actual NumPy buffers (those live wherever NumPy
    puts them); it tracks logical residency and usage so that experiments can
    report KV cache footprints and detect configurations that would not fit
    on the paper's 48 GB Ada 6000 GPU.

    Attributes
    ----------
    kind:
        Whether this tier models GPU or CPU memory.
    capacity_bytes:
        Total capacity; ``None`` means unbounded (useful for tests).
    """

    kind: TierKind
    capacity_bytes: int | None = None
    _used_bytes: int = field(default=0, init=False)
    _peak_bytes: int = field(default=0, init=False)
    _allocations: dict[str, int] = field(default_factory=dict, init=False)

    @property
    def used_bytes(self) -> int:
        """Bytes currently allocated on this tier."""
        return self._used_bytes

    @property
    def peak_bytes(self) -> int:
        """High-water mark of allocated bytes."""
        return self._peak_bytes

    @property
    def free_bytes(self) -> int | None:
        """Remaining capacity, or ``None`` for unbounded tiers."""
        if self.capacity_bytes is None:
            return None
        return self.capacity_bytes - self._used_bytes

    def allocate(self, name: str, nbytes: int) -> None:
        """Allocate ``nbytes`` under identifier ``name``.

        Raises
        ------
        CapacityExceeded
            If the allocation would exceed the tier capacity.
        ValueError
            If ``name`` is already allocated or ``nbytes`` is negative.
        """
        if nbytes < 0:
            raise ValueError(f"allocation size must be non-negative, got {nbytes}")
        if name in self._allocations:
            raise ValueError(f"allocation {name!r} already exists on {self.kind.value}")
        if self.capacity_bytes is not None and self._used_bytes + nbytes > self.capacity_bytes:
            raise CapacityExceeded(
                f"{self.kind.value} tier cannot fit {nbytes} bytes "
                f"(used {self._used_bytes} of {self.capacity_bytes})",
                tier=self.kind,
                name=name,
                needed_bytes=nbytes,
                used_bytes=self._used_bytes,
                capacity_bytes=self.capacity_bytes,
            )
        self._allocations[name] = nbytes
        self._used_bytes += nbytes
        self._peak_bytes = max(self._peak_bytes, self._used_bytes)

    def resize(self, name: str, nbytes: int) -> None:
        """Resize an existing allocation to ``nbytes``."""
        if name not in self._allocations:
            raise KeyError(f"no allocation named {name!r} on {self.kind.value}")
        delta = nbytes - self._allocations[name]
        if (
            self.capacity_bytes is not None
            and delta > 0
            and self._used_bytes + delta > self.capacity_bytes
        ):
            raise CapacityExceeded(
                f"{self.kind.value} tier cannot grow {name!r} by {delta} bytes "
                f"(used {self._used_bytes} of {self.capacity_bytes})",
                tier=self.kind,
                name=name,
                needed_bytes=delta,
                used_bytes=self._used_bytes,
                capacity_bytes=self.capacity_bytes,
            )
        self._allocations[name] = nbytes
        self._used_bytes += delta
        self._peak_bytes = max(self._peak_bytes, self._used_bytes)

    def free(self, name: str) -> None:
        """Release the allocation identified by ``name``."""
        if name not in self._allocations:
            raise KeyError(f"no allocation named {name!r} on {self.kind.value}")
        self._used_bytes -= self._allocations.pop(name)

    def allocation_bytes(self, name: str) -> int:
        """Size of an existing allocation."""
        return self._allocations[name]

    def has_allocation(self, name: str) -> bool:
        """Whether an allocation with ``name`` exists."""
        return name in self._allocations

    def reset(self) -> None:
        """Drop all allocations and statistics."""
        self._allocations.clear()
        self._used_bytes = 0
        self._peak_bytes = 0
