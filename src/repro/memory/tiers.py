"""Memory tier abstraction (GPU device memory and CPU host memory)."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class TierKind(enum.Enum):
    """Kind of memory tier."""

    GPU = "gpu"
    CPU = "cpu"


class MemoryCapacityError(RuntimeError):
    """Raised when an allocation would exceed a tier's capacity."""


@dataclass
class MemoryTier:
    """A byte-accounted memory pool.

    The tier does not own the actual NumPy buffers (those live wherever NumPy
    puts them); it tracks logical residency and usage so that experiments can
    report KV cache footprints and detect configurations that would not fit
    on the paper's 48 GB Ada 6000 GPU.

    Attributes
    ----------
    kind:
        Whether this tier models GPU or CPU memory.
    capacity_bytes:
        Total capacity; ``None`` means unbounded (useful for tests).
    """

    kind: TierKind
    capacity_bytes: int | None = None
    _used_bytes: int = field(default=0, init=False)
    _peak_bytes: int = field(default=0, init=False)
    _allocations: dict[str, int] = field(default_factory=dict, init=False)

    @property
    def used_bytes(self) -> int:
        """Bytes currently allocated on this tier."""
        return self._used_bytes

    @property
    def peak_bytes(self) -> int:
        """High-water mark of allocated bytes."""
        return self._peak_bytes

    @property
    def free_bytes(self) -> int | None:
        """Remaining capacity, or ``None`` for unbounded tiers."""
        if self.capacity_bytes is None:
            return None
        return self.capacity_bytes - self._used_bytes

    def allocate(self, name: str, nbytes: int) -> None:
        """Allocate ``nbytes`` under identifier ``name``.

        Raises
        ------
        MemoryCapacityError
            If the allocation would exceed the tier capacity.
        ValueError
            If ``name`` is already allocated or ``nbytes`` is negative.
        """
        if nbytes < 0:
            raise ValueError(f"allocation size must be non-negative, got {nbytes}")
        if name in self._allocations:
            raise ValueError(f"allocation {name!r} already exists on {self.kind.value}")
        if self.capacity_bytes is not None and self._used_bytes + nbytes > self.capacity_bytes:
            raise MemoryCapacityError(
                f"{self.kind.value} tier cannot fit {nbytes} bytes "
                f"(used {self._used_bytes} of {self.capacity_bytes})"
            )
        self._allocations[name] = nbytes
        self._used_bytes += nbytes
        self._peak_bytes = max(self._peak_bytes, self._used_bytes)

    def resize(self, name: str, nbytes: int) -> None:
        """Resize an existing allocation to ``nbytes``."""
        if name not in self._allocations:
            raise KeyError(f"no allocation named {name!r} on {self.kind.value}")
        delta = nbytes - self._allocations[name]
        if (
            self.capacity_bytes is not None
            and delta > 0
            and self._used_bytes + delta > self.capacity_bytes
        ):
            raise MemoryCapacityError(
                f"{self.kind.value} tier cannot grow {name!r} by {delta} bytes"
            )
        self._allocations[name] = nbytes
        self._used_bytes += delta
        self._peak_bytes = max(self._peak_bytes, self._used_bytes)

    def free(self, name: str) -> None:
        """Release the allocation identified by ``name``."""
        if name not in self._allocations:
            raise KeyError(f"no allocation named {name!r} on {self.kind.value}")
        self._used_bytes -= self._allocations.pop(name)

    def allocation_bytes(self, name: str) -> int:
        """Size of an existing allocation."""
        return self._allocations[name]

    def has_allocation(self, name: str) -> bool:
        """Whether an allocation with ``name`` exists."""
        return name in self._allocations

    def reset(self) -> None:
        """Drop all allocations and statistics."""
        self._allocations.clear()
        self._used_bytes = 0
        self._peak_bytes = 0
