"""Memory-tier substrate: GPU/CPU/SSD tiers, offloading and transfer accounting.

The paper's system offloads the full KV cache to CPU memory after prefill and
loads only the KV of selected tokens back to the GPU at every decoding step
(paper Fig. 5).  This package models the memory tiers explicitly and
keeps a ledger of every transfer so that the performance model
(:mod:`repro.perfmodel`) can charge PCIe time for exactly the bytes that the
algorithms actually move.  The capacity harness (:mod:`repro.capacity`)
extends the hierarchy downward: bounded per-tier budgets
(:class:`TierBudgets`), an SSD tier behind the host cache, and the typed
:class:`CapacityExceeded` raised at tier exhaustion.
"""

from .tiers import CapacityExceeded, MemoryCapacityError, MemoryTier, TierKind
from .ledger import TransferDirection, TransferEvent, TransferLedger
from .offload import MemoryLedgerDrift, OffloadManager
from .budgets import TierBudgets, parse_size

__all__ = [
    "MemoryTier",
    "TierKind",
    "MemoryCapacityError",
    "CapacityExceeded",
    "MemoryLedgerDrift",
    "TransferDirection",
    "TransferEvent",
    "TransferLedger",
    "OffloadManager",
    "TierBudgets",
    "parse_size",
]
