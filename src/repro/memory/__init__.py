"""Memory-tier substrate: GPU/CPU tiers, offloading and transfer accounting.

The paper's system offloads the full KV cache to CPU memory after prefill and
loads only the KV of selected tokens back to the GPU at every decoding step
(paper Fig. 5).  This package models the two memory tiers explicitly and
keeps a ledger of every transfer so that the performance model
(:mod:`repro.perfmodel`) can charge PCIe time for exactly the bytes that the
algorithms actually move.
"""

from .tiers import MemoryTier, TierKind, MemoryCapacityError
from .ledger import TransferDirection, TransferEvent, TransferLedger
from .offload import OffloadManager

__all__ = [
    "MemoryTier",
    "TierKind",
    "MemoryCapacityError",
    "TransferDirection",
    "TransferEvent",
    "TransferLedger",
    "OffloadManager",
]
