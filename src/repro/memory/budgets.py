"""Per-tier capacity budgets for capacity-bounded serving.

A :class:`TierBudgets` is the user-facing description of the
GPU -> host -> SSD hierarchy: one optional byte budget per tier
(``None`` means unbounded) plus the spill-page granularity used by the
host-to-SSD pager (:mod:`repro.capacity.spill`).  It parses the CLI's
``gpu=320KiB,host=448KiB,ssd=4MiB`` syntax, round-trips through JSON as
part of :class:`repro.api.EngineSpec`, and builds the
:class:`~repro.memory.offload.OffloadManager` a capacity-bounded engine
runs against.
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass

from .offload import OffloadManager
from .tiers import MemoryTier, TierKind

__all__ = ["TierBudgets", "parse_size"]

_SIZE_SUFFIXES: tuple[tuple[str, int], ...] = (
    ("TiB", 1024**4),
    ("GiB", 1024**3),
    ("MiB", 1024**2),
    ("KiB", 1024),
    ("TB", 1000**4),
    ("GB", 1000**3),
    ("MB", 1000**2),
    ("KB", 1000),
    ("B", 1),
)

_TIER_FIELDS = {"gpu": "gpu_bytes", "host": "host_bytes", "ssd": "ssd_bytes"}


def parse_size(text: str) -> int | None:
    """Parse a human-readable byte size (``"448KiB"``, ``"4MiB"``, ``"none"``).

    Binary suffixes (KiB/MiB/GiB/TiB) are powers of 1024, decimal ones
    (KB/MB/GB/TB) powers of 1000; a bare integer is bytes.  ``"none"`` and
    ``"unbounded"`` map to ``None`` (no budget).
    """
    cleaned = text.strip()
    if cleaned.lower() in {"none", "unbounded", ""}:
        return None
    for suffix, multiplier in _SIZE_SUFFIXES:
        if cleaned.lower().endswith(suffix.lower()):
            number = cleaned[: -len(suffix)].strip()
            return int(float(number) * multiplier)
    return int(cleaned)


@dataclass(frozen=True)
class TierBudgets:
    """Capacity budgets of the GPU -> host -> SSD memory hierarchy.

    Attributes
    ----------
    gpu_bytes / host_bytes / ssd_bytes:
        Byte capacity of each tier; ``None`` leaves that tier unbounded.
    spill_page_tokens:
        Granularity (in KV tokens) of the pages the host tier spills to
        SSD under pressure.
    """

    gpu_bytes: int | None = None
    host_bytes: int | None = None
    ssd_bytes: int | None = None
    spill_page_tokens: int = 32

    def __post_init__(self) -> None:
        for label, value in (
            ("gpu_bytes", self.gpu_bytes),
            ("host_bytes", self.host_bytes),
            ("ssd_bytes", self.ssd_bytes),
        ):
            if value is not None and value < 0:
                raise ValueError(f"{label} must be non-negative, got {value}")
        if self.spill_page_tokens <= 0:
            raise ValueError("spill_page_tokens must be positive")

    @classmethod
    def parse(cls, text: str, spill_page_tokens: int = 32) -> "TierBudgets":
        """Parse the CLI syntax ``"gpu=320KiB,host=448KiB,ssd=4MiB"``.

        Omitted tiers stay unbounded; tier names are ``gpu``, ``host``
        (alias ``cpu``) and ``ssd``.
        """
        values: dict[str, int | None] = {}
        for part in text.split(","):
            part = part.strip()
            if not part:
                continue
            if "=" not in part:
                raise ValueError(f"expected tier=size, got {part!r}")
            key, _, raw = part.partition("=")
            key = key.strip().lower()
            if key == "cpu":
                key = "host"
            if key not in _TIER_FIELDS:
                raise ValueError(f"unknown tier {key!r} (expected gpu, host or ssd)")
            values[_TIER_FIELDS[key]] = parse_size(raw)
        return cls(spill_page_tokens=spill_page_tokens, **values)

    def to_dict(self) -> dict[str, int | None]:
        """JSON-compatible dict (inverse of :meth:`from_dict`)."""
        return {
            "gpu_bytes": self.gpu_bytes,
            "host_bytes": self.host_bytes,
            "ssd_bytes": self.ssd_bytes,
            "spill_page_tokens": self.spill_page_tokens,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "TierBudgets":
        """Rebuild budgets from :meth:`to_dict` output."""
        known = {name for name in cls.__dataclass_fields__}  # type: ignore[attr-defined]
        kwargs = {key: value for key, value in payload.items() if key in known}
        return cls(**kwargs)  # type: ignore[arg-type]

    def build_manager(self) -> OffloadManager:
        """Build an :class:`OffloadManager` whose tiers enforce these budgets."""
        return OffloadManager(
            gpu=MemoryTier(TierKind.GPU, self.gpu_bytes),
            cpu=MemoryTier(TierKind.CPU, self.host_bytes),
            ssd=MemoryTier(TierKind.SSD, self.ssd_bytes),
        )

    def describe(self) -> str:
        """Compact human-readable form, e.g. ``gpu=320KiB,host=448KiB,ssd=4MiB``."""

        def fmt(value: int | None) -> str:
            if value is None:
                return "none"
            for suffix, multiplier in (("GiB", 1024**3), ("MiB", 1024**2), ("KiB", 1024)):
                if value and value % multiplier == 0:
                    return f"{value // multiplier}{suffix}"
            return str(value)

        return (
            f"gpu={fmt(self.gpu_bytes)},host={fmt(self.host_bytes)},"
            f"ssd={fmt(self.ssd_bytes)}"
        )
