"""Offload manager: models moving KV tensors across GPU, CPU and SSD tiers."""

from __future__ import annotations

from collections.abc import Iterable, Mapping
from dataclasses import dataclass, field

from .ledger import TransferDirection, TransferLedger
from .tiers import MemoryTier, TierKind

# Default tier sizes mirror the paper's testbed: an NVIDIA Ada 6000 with
# 48 GB of device memory, a host with ample DRAM and a capacious NVMe SSD.
DEFAULT_GPU_BYTES = 48 * 1024**3
DEFAULT_CPU_BYTES = 512 * 1024**3
DEFAULT_SSD_BYTES = 4 * 1024**4


class MemoryLedgerDrift(RuntimeError):
    """Raised by :meth:`OffloadManager.check_invariants` on accounting drift."""


@dataclass
class OffloadManager:
    """Coordinates residency of named buffers across GPU, CPU and SSD tiers.

    The manager tracks which tier each named buffer lives on, enforces tier
    capacities, and records every movement into a :class:`TransferLedger`.
    The actual NumPy arrays are stored by callers (e.g. the KV cache store);
    the manager only does the accounting, which is what the performance
    model needs.

    A buffer has one *primary* residency (GPU or CPU).  A CPU-resident
    buffer may additionally have a cold fraction spilled to the SSD tier
    (:meth:`spill_to_ssd` / :meth:`recall_from_ssd`); the manager keeps a
    per-buffer shadow count of spilled bytes so that :meth:`resize` —
    driven by the buffer's *logical* size — charges the host tier only for
    the bytes actually resident there.
    """

    gpu: MemoryTier = field(
        default_factory=lambda: MemoryTier(TierKind.GPU, DEFAULT_GPU_BYTES)
    )
    cpu: MemoryTier = field(
        default_factory=lambda: MemoryTier(TierKind.CPU, DEFAULT_CPU_BYTES)
    )
    ssd: MemoryTier = field(
        default_factory=lambda: MemoryTier(TierKind.SSD, DEFAULT_SSD_BYTES)
    )
    ledger: TransferLedger = field(default_factory=TransferLedger)
    _residency: dict[str, TierKind] = field(default_factory=dict, init=False)
    _ssd_bytes: dict[str, int] = field(default_factory=dict, init=False)

    def register(self, name: str, nbytes: int, tier: TierKind) -> None:
        """Register a new buffer of ``nbytes`` on the given tier."""
        target = self._tier(tier)
        target.allocate(name, nbytes)
        self._residency[name] = tier

    def resize(self, name: str, nbytes: int) -> None:
        """Resize a registered buffer to a *logical* size of ``nbytes``.

        No transfer is recorded.  Any fraction of the buffer currently
        spilled to SSD stays there; only the remainder is charged to the
        primary tier.  Shrinking below the spilled fraction is a caller
        bug and raises ``ValueError``.
        """
        tier = self._require(name)
        spilled = self._ssd_bytes.get(name, 0)
        resident = nbytes - spilled
        if resident < 0:
            raise ValueError(
                f"cannot resize {name!r} to {nbytes} bytes: {spilled} bytes "
                "are spilled to SSD"
            )
        self._tier(tier).resize(name, resident)

    def release(self, name: str) -> None:
        """Release a registered buffer (its SSD-spilled fraction included)."""
        tier = self._require(name)
        self._tier(tier).free(name)
        if self._ssd_bytes.pop(name, 0):
            self.ssd.free(name)
        del self._residency[name]

    def spill_to_ssd(self, name: str, nbytes: int, step: int = -1, tag: str = "kv_spill") -> int:
        """Move ``nbytes`` of a CPU-resident buffer down to the SSD tier.

        Records an ``h2s`` transfer and returns the bytes moved.  The
        buffer keeps its CPU primary residency; the spilled fraction is
        tracked in the shadow count consulted by :meth:`resize`.
        """
        tier = self._require(name)
        if tier is not TierKind.CPU:
            raise ValueError(f"can only spill CPU-resident buffers, {name!r} is on {tier.value}")
        if nbytes <= 0:
            return 0
        resident = self.cpu.allocation_bytes(name)
        if nbytes > resident:
            raise ValueError(
                f"cannot spill {nbytes} bytes of {name!r}: only {resident} resident"
            )
        # Grow SSD first (may raise CapacityExceeded), then shrink the host
        # side — shrinking never fails, so the operation is exception-safe.
        if self.ssd.has_allocation(name):
            self.ssd.resize(name, self.ssd.allocation_bytes(name) + nbytes)
        else:
            self.ssd.allocate(name, nbytes)
        self.cpu.resize(name, resident - nbytes)
        self._ssd_bytes[name] = self._ssd_bytes.get(name, 0) + nbytes
        self.ledger.record(TransferDirection.HOST_TO_SSD, nbytes, tag, step)
        return nbytes

    def recall_from_ssd(self, name: str, nbytes: int, step: int = -1, tag: str = "kv_recall") -> int:
        """Move ``nbytes`` of a buffer's spilled fraction back to the host.

        Records an ``s2h`` transfer and returns the bytes moved.  Raises
        :class:`~repro.memory.tiers.CapacityExceeded` if the host tier has
        no room — callers make room by spilling colder data first.
        """
        tier = self._require(name)
        if tier is not TierKind.CPU:
            raise ValueError(f"can only recall CPU-resident buffers, {name!r} is on {tier.value}")
        if nbytes <= 0:
            return 0
        spilled = self._ssd_bytes.get(name, 0)
        if nbytes > spilled:
            raise ValueError(
                f"cannot recall {nbytes} bytes of {name!r}: only {spilled} spilled"
            )
        # Grow the host side first (may raise CapacityExceeded), then
        # shrink the SSD side.
        self.cpu.resize(name, self.cpu.allocation_bytes(name) + nbytes)
        remaining = spilled - nbytes
        if remaining:
            self.ssd.resize(name, remaining)
            self._ssd_bytes[name] = remaining
        else:
            self.ssd.free(name)
            del self._ssd_bytes[name]
        self.ledger.record(TransferDirection.SSD_TO_HOST, nbytes, tag, step)
        return nbytes

    def ssd_bytes(self, name: str) -> int:
        """Bytes of the named buffer currently spilled to the SSD tier."""
        self._require(name)
        return self._ssd_bytes.get(name, 0)

    def residency(self, name: str) -> TierKind:
        """Tier on which the named buffer currently resides."""
        return self._require(name)

    def offload_to_cpu(self, name: str, step: int = -1, tag: str = "kv_offload") -> int:
        """Move a buffer from GPU to CPU, recording a D2H transfer.

        Returns the number of bytes moved (0 if already on CPU).
        """
        tier = self._require(name)
        if tier is TierKind.CPU:
            return 0
        nbytes = self.gpu.allocation_bytes(name)
        self.gpu.free(name)
        self.cpu.allocate(name, nbytes)
        self._residency[name] = TierKind.CPU
        self.ledger.record(TransferDirection.DEVICE_TO_HOST, nbytes, tag, step)
        return nbytes

    def fetch_to_gpu(self, name: str, step: int = -1, tag: str = "kv_fetch") -> int:
        """Move a buffer from CPU to GPU, recording an H2D transfer."""
        tier = self._require(name)
        if tier is TierKind.GPU:
            return 0
        nbytes = self.cpu.allocation_bytes(name)
        self.cpu.free(name)
        self.gpu.allocate(name, nbytes)
        self._residency[name] = TierKind.GPU
        self.ledger.record(TransferDirection.HOST_TO_DEVICE, nbytes, tag, step)
        return nbytes

    def record_partial_fetch(
        self, nbytes: int, step: int, tag: str = "kv_fetch"
    ) -> None:
        """Record an H2D transfer of a *subset* of a CPU-resident buffer.

        KV selection loads only the keys/values of selected tokens; the
        buffers themselves stay registered on the CPU tier and a transient
        copy is charged on the ledger.
        """
        self.ledger.record(TransferDirection.HOST_TO_DEVICE, nbytes, tag, step)

    def record_partial_offload(
        self, nbytes: int, step: int, tag: str = "kv_offload"
    ) -> None:
        """Record a D2H transfer of newly produced KV entries."""
        self.ledger.record(TransferDirection.DEVICE_TO_HOST, nbytes, tag, step)

    def check_invariants(
        self,
        stores: Iterable[object] = (),
        extra_allocations: Mapping[str, int] | None = None,
    ) -> dict[str, int]:
        """Reconcile tier accounting against live :class:`KVCacheStore` buffers.

        ``stores`` are live KV cache stores (anything exposing ``layers``,
        ``token_nbytes()`` and ``_buffer_name``); ``extra_allocations`` maps
        additional expected registrations (e.g. the engine's GPU staging
        reservations) to their byte sizes.  The check asserts, exactly:

        - every live layer buffer is registered and its primary-tier bytes
          plus SSD-spilled bytes equal ``len(layer) * token_nbytes``;
        - every extra allocation is registered with the expected size;
        - no *other* registrations exist (a released store that was never
          deregistered — the classic ledger-drift leak — is caught here);
        - each tier's ``used_bytes`` equals the sum of its allocations and
          respects its capacity.

        Returns per-tier used-byte totals on success; raises
        :class:`MemoryLedgerDrift` with a line per discrepancy otherwise.
        """
        problems: list[str] = []
        expected: dict[str, int] = {}
        for store in stores:
            token_nbytes = store.token_nbytes()  # type: ignore[attr-defined]
            for layer_idx, layer in enumerate(store.layers):  # type: ignore[attr-defined]
                name = store._buffer_name(layer_idx)  # type: ignore[attr-defined]
                expected[name] = len(layer) * token_nbytes
        for name, nbytes in (extra_allocations or {}).items():
            expected[name] = int(nbytes)
        for name, nbytes in sorted(expected.items()):
            if name not in self._residency:
                problems.append(f"live buffer {name!r} is not registered")
                continue
            tier = self._tier(self._residency[name])
            recorded = tier.allocation_bytes(name) + self._ssd_bytes.get(name, 0)
            if recorded != nbytes:
                problems.append(
                    f"buffer {name!r}: registered {recorded} bytes, live size {nbytes}"
                )
        for name in sorted(self._residency):
            if name not in expected:
                problems.append(
                    f"orphan registration {name!r} on "
                    f"{self._residency[name].value} (released store not deregistered?)"
                )
        for tier in (self.gpu, self.cpu, self.ssd):
            total = sum(tier._allocations.values())
            if total != tier.used_bytes:
                problems.append(
                    f"{tier.kind.value} tier used_bytes {tier.used_bytes} != "
                    f"sum of allocations {total}"
                )
            if tier.capacity_bytes is not None and tier.used_bytes > tier.capacity_bytes:
                problems.append(
                    f"{tier.kind.value} tier over capacity: "
                    f"{tier.used_bytes} > {tier.capacity_bytes}"
                )
        for name, nbytes in sorted(self._ssd_bytes.items()):
            if not self.ssd.has_allocation(name) or self.ssd.allocation_bytes(name) != nbytes:
                problems.append(f"SSD shadow count for {name!r} out of sync")
        if problems:
            raise MemoryLedgerDrift(
                "memory ledger drift:\n" + "\n".join(f"  - {line}" for line in problems)
            )
        return {
            "gpu": self.gpu.used_bytes,
            "cpu": self.cpu.used_bytes,
            "ssd": self.ssd.used_bytes,
        }

    def _tier(self, kind: TierKind) -> MemoryTier:
        if kind is TierKind.GPU:
            return self.gpu
        if kind is TierKind.CPU:
            return self.cpu
        return self.ssd

    def _require(self, name: str) -> TierKind:
        if name not in self._residency:
            raise KeyError(f"buffer {name!r} is not registered")
        return self._residency[name]
