"""Offload manager: models moving KV tensors between GPU and CPU tiers."""

from __future__ import annotations

from dataclasses import dataclass, field

from .ledger import TransferDirection, TransferLedger
from .tiers import MemoryTier, TierKind

# Default tier sizes mirror the paper's testbed: an NVIDIA Ada 6000 with
# 48 GB of device memory and a host with ample DRAM.
DEFAULT_GPU_BYTES = 48 * 1024**3
DEFAULT_CPU_BYTES = 512 * 1024**3


@dataclass
class OffloadManager:
    """Coordinates residency of named buffers across GPU and CPU tiers.

    The manager tracks which tier each named buffer lives on, enforces tier
    capacities, and records every movement into a :class:`TransferLedger`.
    The actual NumPy arrays are stored by callers (e.g. the KV cache store);
    the manager only does the accounting, which is what the performance
    model needs.
    """

    gpu: MemoryTier = field(
        default_factory=lambda: MemoryTier(TierKind.GPU, DEFAULT_GPU_BYTES)
    )
    cpu: MemoryTier = field(
        default_factory=lambda: MemoryTier(TierKind.CPU, DEFAULT_CPU_BYTES)
    )
    ledger: TransferLedger = field(default_factory=TransferLedger)
    _residency: dict[str, TierKind] = field(default_factory=dict, init=False)

    def register(self, name: str, nbytes: int, tier: TierKind) -> None:
        """Register a new buffer of ``nbytes`` on the given tier."""
        target = self._tier(tier)
        target.allocate(name, nbytes)
        self._residency[name] = tier

    def resize(self, name: str, nbytes: int) -> None:
        """Resize a registered buffer in place (no transfer recorded)."""
        tier = self._require(name)
        self._tier(tier).resize(name, nbytes)

    def release(self, name: str) -> None:
        """Release a registered buffer."""
        tier = self._require(name)
        self._tier(tier).free(name)
        del self._residency[name]

    def residency(self, name: str) -> TierKind:
        """Tier on which the named buffer currently resides."""
        return self._require(name)

    def offload_to_cpu(self, name: str, step: int = -1, tag: str = "kv_offload") -> int:
        """Move a buffer from GPU to CPU, recording a D2H transfer.

        Returns the number of bytes moved (0 if already on CPU).
        """
        tier = self._require(name)
        if tier is TierKind.CPU:
            return 0
        nbytes = self.gpu.allocation_bytes(name)
        self.gpu.free(name)
        self.cpu.allocate(name, nbytes)
        self._residency[name] = TierKind.CPU
        self.ledger.record(TransferDirection.DEVICE_TO_HOST, nbytes, tag, step)
        return nbytes

    def fetch_to_gpu(self, name: str, step: int = -1, tag: str = "kv_fetch") -> int:
        """Move a buffer from CPU to GPU, recording an H2D transfer."""
        tier = self._require(name)
        if tier is TierKind.GPU:
            return 0
        nbytes = self.cpu.allocation_bytes(name)
        self.cpu.free(name)
        self.gpu.allocate(name, nbytes)
        self._residency[name] = TierKind.GPU
        self.ledger.record(TransferDirection.HOST_TO_DEVICE, nbytes, tag, step)
        return nbytes

    def record_partial_fetch(
        self, nbytes: int, step: int, tag: str = "kv_fetch"
    ) -> None:
        """Record an H2D transfer of a *subset* of a CPU-resident buffer.

        KV selection loads only the keys/values of selected tokens; the
        buffers themselves stay registered on the CPU tier and a transient
        copy is charged on the ledger.
        """
        self.ledger.record(TransferDirection.HOST_TO_DEVICE, nbytes, tag, step)

    def record_partial_offload(
        self, nbytes: int, step: int, tag: str = "kv_offload"
    ) -> None:
        """Record a D2H transfer of newly produced KV entries."""
        self.ledger.record(TransferDirection.DEVICE_TO_HOST, nbytes, tag, step)

    def _tier(self, kind: TierKind) -> MemoryTier:
        return self.gpu if kind is TierKind.GPU else self.cpu

    def _require(self, name: str) -> TierKind:
        if name not in self._residency:
            raise KeyError(f"buffer {name!r} is not registered")
        return self._residency[name]
