"""Elementary cost functions of the roofline-style performance model.

Every cost is expressed as a :class:`OpCost` carrying FLOPs, bytes read from
device memory, and bytes moved over PCIe; :func:`roofline_time` converts a
cost into seconds under a hardware configuration.  Keeping the three
components separate makes the per-figure breakdowns (prefill vs. decode vs.
selection vs. transfer) easy to report and test.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..model.model_zoo import ReferenceArchitecture
from .hardware import HardwareConfig

__all__ = [
    "OpCost",
    "roofline_time",
    "linear_layers_cost",
    "attention_decode_cost",
    "attention_prefill_cost",
    "kv_bytes",
]


@dataclass(frozen=True)
class OpCost:
    """FLOPs, device-memory bytes and PCIe bytes of one operation."""

    flops: float = 0.0
    device_bytes: float = 0.0
    pcie_bytes: float = 0.0
    fixed_seconds: float = 0.0

    def __add__(self, other: "OpCost") -> "OpCost":
        return OpCost(
            flops=self.flops + other.flops,
            device_bytes=self.device_bytes + other.device_bytes,
            pcie_bytes=self.pcie_bytes + other.pcie_bytes,
            fixed_seconds=self.fixed_seconds + other.fixed_seconds,
        )

    def scaled(self, factor: float) -> "OpCost":
        """Cost multiplied by ``factor`` (e.g. number of decode steps)."""
        return OpCost(
            flops=self.flops * factor,
            device_bytes=self.device_bytes * factor,
            pcie_bytes=self.pcie_bytes * factor,
            fixed_seconds=self.fixed_seconds * factor,
        )


def roofline_time(
    cost: OpCost,
    hardware: HardwareConfig,
    pcie_gbps: float | None = None,
    overlap_pcie: bool = False,
) -> float:
    """Convert an :class:`OpCost` to seconds.

    Compute and device-memory traffic overlap (roofline: the slower one
    dominates); PCIe traffic is either serialised after the kernel time or
    overlapped with it when ``overlap_pcie`` is True (asynchronous copies).
    """
    kernel = max(
        cost.flops / (hardware.compute_flops * hardware.kernel_efficiency),
        cost.device_bytes / (hardware.memory_bandwidth * hardware.kernel_efficiency),
    )
    pcie_rate = (pcie_gbps or hardware.pcie_bandwidth_gbps) * 1e9
    pcie = cost.pcie_bytes / pcie_rate if cost.pcie_bytes else 0.0
    if overlap_pcie:
        return max(kernel, pcie) + cost.fixed_seconds
    return kernel + pcie + cost.fixed_seconds


def kv_bytes(arch: ReferenceArchitecture, num_tokens: int, num_layers: int | None = None) -> float:
    """Bytes of K plus V for ``num_tokens`` tokens over ``num_layers`` layers."""
    layers = arch.n_layers if num_layers is None else num_layers
    return (
        2.0
        * layers
        * arch.n_kv_heads
        * arch.head_dim
        * arch.bytes_per_element
        * num_tokens
    )


def linear_layers_cost(arch: ReferenceArchitecture, num_tokens: int) -> OpCost:
    """Cost of all dense projections (QKV, output, FFN, lm-head excluded).

    Weights are read once per forward pass regardless of the number of
    tokens (they stay resident and are streamed from device memory), and the
    FLOPs scale with the number of tokens.
    """
    weight_params = arch.num_parameters - 2 * arch.vocab_size * arch.d_model
    weight_bytes = weight_params * arch.bytes_per_element
    flops = 2.0 * weight_params * num_tokens
    activation_bytes = 4.0 * num_tokens * arch.d_model * arch.bytes_per_element
    return OpCost(flops=flops, device_bytes=weight_bytes + activation_bytes)


def attention_prefill_cost(arch: ReferenceArchitecture, prompt_length: int) -> OpCost:
    """Cost of exact causal attention over the prompt (all layers)."""
    # 2 * P^2 * d per head for scores plus the same for the weighted sum,
    # halved by causality.
    flops = (
        2.0
        * arch.n_layers
        * arch.n_heads
        * prompt_length
        * prompt_length
        * arch.head_dim
    )
    bytes_kv = kv_bytes(arch, prompt_length)
    return OpCost(flops=flops, device_bytes=bytes_kv)


def attention_decode_cost(
    arch: ReferenceArchitecture,
    attended_tokens: float,
    num_layers: int | None = None,
    read_amplification: float = 1.0,
) -> OpCost:
    """Cost of one decoding step's attention over ``attended_tokens`` tokens.

    ``read_amplification`` models implementations that materialise the
    grouped-query expansion (repeat_kv in HuggingFace transformers), which
    re-reads every KV entry once per query head instead of once per kv head.
    """
    layers = arch.n_layers if num_layers is None else num_layers
    flops = 4.0 * layers * arch.n_heads * attended_tokens * arch.head_dim
    bytes_read = kv_bytes(arch, attended_tokens, layers) * read_amplification
    return OpCost(flops=flops, device_bytes=bytes_read)
