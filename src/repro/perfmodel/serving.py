"""Step-cost adapter: pricing serving-engine steps on the roofline model.

:class:`StepCostModel` converts the per-step trace of the batched serving
engine (which requests were prefilled at which prompt lengths, which
requests decoded at which context lengths under which policy) into seconds
on the analytical :class:`~repro.perfmodel.latency.LatencyModel`.  It is
the bridge between the *functional* simulation — tiny NumPy models with
down-scaled contexts — and the *performance* model, which prices every
operation at the paper's true scale:

* the dense projections of one decoding step are charged **once per
  batch** (weight streaming is amortised across the batched requests —
  the effect continuous batching exists to exploit), while attention,
  selection and KV transfer are charged **per request** at that request's
  context length and policy;
* ``context_scale`` maps simulated token counts to paper-scale ones (the
  inverse of :class:`repro.experiments.ContextScale`): a simulation run at
  1/64th context charges costs as if contexts were 64x longer, which puts
  the virtual clock in the regime where compressed and dense methods
  genuinely diverge;
* ClusterKV's KV-fetch cost honours the **live** cluster-cache hit rate
  measured by the simulation (carried in the step trace), tying the
  virtual clock's byte-savings to the actual
  :class:`~repro.core.cache.ClusterCache` accounting.

Policies the latency model knows (``full``, ``clusterkv``, ``quest``,
``infinigen``) are priced with their full selection/transfer overheads;
any other registered policy (``streaming_llm``, ``h2o``, ``oracle``,
third-party selectors) is priced as generic sparse attention over its
budget with no selection overhead — a lower bound that keeps the adapter
total over the whole policy registry.
"""

from __future__ import annotations

from typing import Iterable, Protocol

from ..model.model_zoo import ReferenceArchitecture, get_reference_architecture
from .costs import attention_decode_cost, kv_bytes, linear_layers_cost, roofline_time
from .hardware import ADA_6000, HardwareConfig
from .latency import SUPPORTED_METHODS, LatencyModel, MethodLatencyParams

__all__ = ["StepCostModel"]


class _StepEntry(Protocol):
    """Shape of one per-request step-trace entry (duck-typed).

    Matches :class:`repro.serving.StepRequestTrace` without importing it —
    the serving layer stays free of perfmodel dependencies and vice versa.
    """

    policy_name: str
    context_length: int
    budget: int | None
    cache_hit_rate: float | None


class StepCostModel:
    """Prices batched-engine steps on the analytical latency model.

    Parameters
    ----------
    arch:
        Reference architecture (or its registry name) whose shapes the
        costs are computed for; defaults to Llama-3.1-8B, the paper's
        efficiency-experiment model.
    hardware:
        Hardware configuration of the priced GPU.
    params:
        Method-level latency parameters (cluster sizes, overlap fractions).
    context_scale:
        Multiplier mapping simulated token counts (prompt, context, budget)
        to paper-scale ones before pricing.  A simulation down-scaled by
        :class:`repro.experiments.ContextScale` factor ``k`` should be
        priced with ``context_scale=k``.
    """

    def __init__(
        self,
        arch: ReferenceArchitecture | str = "llama-3.1-8b",
        hardware: HardwareConfig = ADA_6000,
        params: MethodLatencyParams | None = None,
        context_scale: int = 1,
    ) -> None:
        if isinstance(arch, str):
            arch = get_reference_architecture(arch)
        if context_scale < 1:
            raise ValueError("context_scale must be at least 1")
        self.arch = arch
        self.hardware = hardware
        self.params = params or MethodLatencyParams()
        self.context_scale = context_scale
        self.latency = LatencyModel(arch, hardware, self.params)

    def describe(self) -> dict[str, object]:
        """Identifying configuration of this cost model (for reports)."""
        return {
            "arch": self.arch.name,
            "hardware": self.hardware.name,
            "context_scale": self.context_scale,
        }

    # ------------------------------------------------------------------
    # per-operation costs
    # ------------------------------------------------------------------
    def _method_for(self, policy_name: str, budget: int | None) -> str:
        """Latency-model method a policy prices as (``"generic"`` fallback)."""
        if budget is None:
            return "full"
        if policy_name in SUPPORTED_METHODS:
            return policy_name
        return "generic"

    def prefill_seconds(
        self, policy_name: str, prompt_length: int, budget: int | None = 0
    ) -> float:
        """Cost of prefilling one request, including method build work.

        ``budget`` decides whether the request will actually compress:
        ``None`` (no budget — the request decodes with full attention)
        prices a plain prefill with no offload or build work regardless of
        the policy name, matching how the decode side degenerates to the
        ``full`` method.  The default of 0 keeps the named method's build
        costs for callers pricing a compressed deployment directly.
        """
        scaled = prompt_length * self.context_scale
        method = self._method_for(policy_name, budget)
        offload = method in ("clusterkv", "infinigen")
        seconds = self.latency.prefill_seconds(scaled, offload_kv=offload)
        if method == "clusterkv":
            seconds += self.latency.clustering_build_seconds(scaled)
        elif method == "infinigen":
            seconds += self.latency.infinigen_build_seconds(scaled)
        return seconds

    def prefill_chunk_seconds(
        self,
        policy_name: str,
        prompt_length: int,
        chunk_start: int,
        chunk_tokens: int,
        budget: int | None = 0,
    ) -> float:
        """Cost of one prefill chunk ``[chunk_start, chunk_start + chunk_tokens)``.

        Chunk costs telescope: the chunk ending at ``e`` starting at ``s``
        is priced ``prefill(e) - prefill(s)``, so the chunks of one prompt
        sum *exactly* to the monolithic :meth:`prefill_seconds` (method
        build work — clustering, partial keys — is charged on the final
        chunk, where the engine actually runs it).  A chunk covering the
        whole prompt delegates to :meth:`prefill_seconds` directly.
        """
        end = chunk_start + chunk_tokens
        if chunk_start == 0 and end >= prompt_length:
            return self.prefill_seconds(policy_name, prompt_length, budget)
        method = self._method_for(policy_name, budget)
        offload = method in ("clusterkv", "infinigen")
        seconds = self.latency.prefill_seconds(
            end * self.context_scale, offload_kv=offload
        )
        if chunk_start > 0:
            seconds -= self.latency.prefill_seconds(
                chunk_start * self.context_scale, offload_kv=offload
            )
        if end >= prompt_length:
            scaled_prompt = prompt_length * self.context_scale
            if method == "clusterkv":
                seconds += self.latency.clustering_build_seconds(scaled_prompt)
            elif method == "infinigen":
                seconds += self.latency.infinigen_build_seconds(scaled_prompt)
        return max(seconds, 0.0)

    def prefix_attach_seconds(self, num_tokens: int) -> float:
        """Cost of attaching ``num_tokens`` of cached prefix KV to a request.

        A prefix-cache hit replaces the prefix's prefill compute with a
        copy of its stored KV entries into the request's cache, priced as
        a PCIe transfer of the prefix's KV bytes (the cache lives in host
        memory at paper scale).  This is what makes cache-on runs strictly
        cheaper than cache-off ones on the virtual clock whenever the
        transfer undercuts the prefill compute it replaces — which it does
        by orders of magnitude for transformer prefill.  Any clustering
        build work stays charged on the final suffix chunk via
        :meth:`prefill_chunk_seconds`, a conservative (over-)estimate for
        ClusterKV runs that restore cached cluster state.
        """
        if num_tokens <= 0:
            return 0.0
        scaled = num_tokens * self.context_scale
        return kv_bytes(self.arch, scaled) / self.hardware.pcie_bandwidth

    def migration_seconds(self, num_tokens: int) -> float:
        """Cost of migrating one in-flight request's sequence state.

        A live migration moves the request's complete KV cache —
        ``num_tokens`` context tokens across all layers — between replica
        hosts.  Under ClusterKV the full KV is host-resident already, so
        the transfer is host-to-host and priced at the same PCIe/NIC
        bandwidth as a prefix attach; selector metadata (centroids, page
        bounds) is orders of magnitude smaller than the KV itself and
        rides along for free.  This is the term that makes migration pay:
        moving the KV costs microseconds per token where re-prefilling
        from token zero costs milliseconds, which is exactly the paper's
        host-memory economics applied to elasticity.
        """
        if num_tokens <= 0:
            return 0.0
        scaled = num_tokens * self.context_scale
        return kv_bytes(self.arch, scaled) / self.hardware.pcie_bandwidth

    def replica_warmup_seconds(self) -> float:
        """Cold-start cost of provisioning one serving replica.

        An elastic fleet cannot add capacity instantaneously: a new
        replica must load the model weights onto the device over PCIe and
        run one warm-up forward pass before it can serve.  Both terms are
        priced on the same hardware description as the steps themselves,
        so scale-up lag and serving speed move together when the hardware
        changes.  Re-prefill costs of failure retries need no extra term:
        a retried request restarts from its prompt, so its second prefill
        is charged through :meth:`prefill_seconds` like any other.
        """
        weight_bytes = self.arch.num_parameters * self.arch.bytes_per_element
        load_seconds = weight_bytes / self.hardware.pcie_bandwidth
        warmup_pass = roofline_time(linear_layers_cost(self.arch, 1), self.hardware)
        return load_seconds + warmup_pass

    def spill_seconds(self, num_tokens: int) -> float:
        """Cost of writing ``num_tokens`` of per-layer KV pages to the SSD tier.

        Host-tier pressure demotes cold cluster pages one level further
        down; the pages are contiguous spans, so the write streams at the
        drive's sequential bandwidth.  ``num_tokens`` counts *layer* tokens
        (a page of one layer), priced at the per-layer share of the
        architecture's KV bytes.
        """
        if num_tokens <= 0:
            return 0.0
        scaled = num_tokens * self.context_scale
        nbytes = kv_bytes(self.arch, scaled) / self.arch.n_layers
        return nbytes / (self.hardware.ssd_write_gbps * 1e9)

    def recall_seconds(self, num_tokens: int) -> float:
        """Cost of reading ``num_tokens`` of per-layer KV pages back from SSD.

        The recall price is what ClusterKV pays for touching a cluster
        whose page went cold — the capacity harness charges it on the very
        step whose selection re-accessed the page.
        """
        if num_tokens <= 0:
            return 0.0
        scaled = num_tokens * self.context_scale
        nbytes = kv_bytes(self.arch, scaled) / self.arch.n_layers
        return nbytes / (self.hardware.ssd_read_gbps * 1e9)

    def dense_seconds(self, batch_size: int) -> float:
        """Cost of the batched dense projections of one decode step.

        Weights are streamed once for the whole batch; FLOPs scale with the
        batch size.  This is the term continuous batching amortises.
        """
        if batch_size <= 0:
            return 0.0
        return roofline_time(linear_layers_cost(self.arch, batch_size), self.hardware)

    def attend_seconds(
        self,
        policy_name: str,
        context_length: int,
        budget: int | None,
        cache_hit_rate: float | None = None,
    ) -> float:
        """Per-request attention + selection + transfer cost of one step.

        Excludes the dense projections (charged once per batch by
        :meth:`dense_seconds`).
        """
        context = context_length * self.context_scale
        scaled_budget = None if budget is None else budget * self.context_scale
        method = self._method_for(policy_name, budget)
        if method == "generic":
            assert scaled_budget is not None
            if scaled_budget >= context:
                method = "full"
            else:
                params = self.params
                compressed = self.arch.n_layers - params.num_full_layers
                full_attn = roofline_time(
                    attention_decode_cost(
                        self.arch, context, num_layers=params.num_full_layers
                    ),
                    self.hardware,
                )
                attended = min(scaled_budget, context)
                sparse_attn = roofline_time(
                    attention_decode_cost(self.arch, attended, num_layers=compressed),
                    self.hardware,
                )
                return full_attn + sparse_attn
        breakdown = self.latency.decode_step(
            method, context, scaled_budget, cache_hit_rate=cache_hit_rate
        )
        return breakdown["total"] - breakdown["dense"]

    # ------------------------------------------------------------------
    # whole steps
    # ------------------------------------------------------------------
    def step_seconds(
        self,
        prefills: Iterable[_StepEntry],
        decodes: Iterable[_StepEntry],
        attaches: Iterable[_StepEntry] = (),
    ) -> float:
        """Duration of one engine step given its per-request trace entries.

        ``prefills``/``decodes``/``attaches`` are the entries of one
        :class:`repro.serving.StepTrace` (any objects with the same
        attributes work).  Prefills are charged sequentially at full cost —
        entries carrying chunk information (``chunk_start``/
        ``chunk_tokens``) are priced as chunks, so mixed prefill+decode
        steps under chunked prefill cost only the chunk actually run; the
        decode batch is charged one shared dense pass plus per-request
        attention/selection/transfer.  Prefix-cache attaches (whose
        ``context_length`` is the number of attached tokens) are charged
        as KV transfers via :meth:`prefix_attach_seconds`.
        """
        seconds = 0.0
        for entry in attaches:
            seconds += self.prefix_attach_seconds(entry.context_length)
        for entry in prefills:
            chunk_tokens = getattr(entry, "chunk_tokens", None)
            if chunk_tokens is None:
                seconds += self.prefill_seconds(
                    entry.policy_name, entry.context_length, entry.budget
                )
            else:
                seconds += self.prefill_chunk_seconds(
                    entry.policy_name,
                    entry.context_length,
                    getattr(entry, "chunk_start", 0),
                    chunk_tokens,
                    entry.budget,
                )
        decode_entries = list(decodes)
        if decode_entries:
            seconds += self.dense_seconds(len(decode_entries))
            for entry in decode_entries:
                seconds += self.attend_seconds(
                    entry.policy_name,
                    entry.context_length,
                    entry.budget,
                    entry.cache_hit_rate,
                )
        return seconds
