"""Analytical performance model (latency, throughput, memory traffic).

Reproduces the efficiency experiments of the paper at the paper's true
model/context scale; see :mod:`repro.perfmodel.latency` for the modelling
assumptions.
"""

from .costs import (
    OpCost,
    attention_decode_cost,
    attention_prefill_cost,
    kv_bytes,
    linear_layers_cost,
    roofline_time,
)
from .hardware import ADA_6000, HardwareConfig, get_hardware, list_hardware
from .latency import LatencyModel, LatencyReport, MethodLatencyParams
from .serving import StepCostModel

__all__ = [
    "OpCost",
    "roofline_time",
    "linear_layers_cost",
    "attention_prefill_cost",
    "attention_decode_cost",
    "kv_bytes",
    "HardwareConfig",
    "ADA_6000",
    "get_hardware",
    "list_hardware",
    "LatencyModel",
    "LatencyReport",
    "MethodLatencyParams",
    "StepCostModel",
]
