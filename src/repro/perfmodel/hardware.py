"""Hardware descriptions used by the analytical performance model.

The paper measures latency on an NVIDIA Ada 6000 (RTX 6000 Ada generation)
GPU with the KV cache optionally offloaded to host memory over PCIe.  The
reproduction has no GPU, so the efficiency experiments (paper Fig. 12/13 and
the caching study) are driven by a roofline-style analytical model
parameterised by the numbers below.

Besides peak numbers, the model exposes a small set of *implementation
efficiency* parameters.  They encode well-known properties of the software
stacks the paper uses (HuggingFace transformers for the dense baseline,
FlexGen for InfiniGen) and are documented where they matter:

* ``kernel_efficiency`` — fraction of peak memory bandwidth achieved by the
  eager PyTorch decoding kernels.
* ``pcie_token_gather_gbps`` / ``pcie_cluster_gather_gbps`` — effective
  host-to-device bandwidth when gathering scattered per-token KV entries vs.
  contiguous per-cluster blocks.  Scattered 4 KB copies achieve only a small
  fraction of the PCIe peak, which is precisely why ClusterKV's
  cluster-granularity transfers and its GPU-side cache matter
  (paper Sec. IV-D).
* ``layer_sync_overhead_s`` — fixed per-layer scheduling/synchronisation
  overhead of offloading frameworks (significant for FlexGen/InfiniGen).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

__all__ = ["HardwareConfig", "ADA_6000", "get_hardware", "list_hardware"]


@dataclass(frozen=True)
class HardwareConfig:
    """Performance-relevant parameters of a GPU + host platform."""

    name: str
    compute_tflops: float  # dense fp16 TFLOP/s
    memory_bandwidth_gbps: float  # device memory GB/s
    pcie_bandwidth_gbps: float  # peak host-to-device GB/s
    pcie_token_gather_gbps: float  # effective GB/s for scattered token gathers
    pcie_cluster_gather_gbps: float  # effective GB/s for contiguous cluster blocks
    kernel_efficiency: float  # fraction of peak reached by eager kernels
    layer_sync_overhead_s: float  # per-layer scheduling overhead (offloading stacks)
    gpu_memory_bytes: int
    # NVMe link of the SSD tier behind host memory (PCIe 4.0 x4 class
    # drive): sequential read/write bandwidth the capacity harness prices
    # host<->SSD KV page spills and recalls at.
    ssd_read_gbps: float = 7.0
    ssd_write_gbps: float = 5.0

    def __post_init__(self) -> None:
        if self.compute_tflops <= 0 or self.memory_bandwidth_gbps <= 0:
            raise ValueError("compute and bandwidth must be positive")
        if not 0.0 < self.kernel_efficiency <= 1.0:
            raise ValueError("kernel_efficiency must lie in (0, 1]")

    @property
    def compute_flops(self) -> float:
        """Peak compute in FLOP/s."""
        return self.compute_tflops * 1e12

    @property
    def memory_bandwidth(self) -> float:
        """Device memory bandwidth in bytes/s."""
        return self.memory_bandwidth_gbps * 1e9

    @property
    def pcie_bandwidth(self) -> float:
        """Peak PCIe bandwidth in bytes/s."""
        return self.pcie_bandwidth_gbps * 1e9

    def scaled(self, **overrides: float) -> "HardwareConfig":
        """Copy of this configuration with some fields replaced."""
        return replace(self, **overrides)


# NVIDIA RTX 6000 Ada generation: 91.1 TFLOP/s fp16 (dense), 960 GB/s GDDR6,
# PCIe 4.0 x16 (~25 GB/s effective), 48 GB device memory.
ADA_6000 = HardwareConfig(
    name="ada-6000",
    compute_tflops=91.1,
    memory_bandwidth_gbps=960.0,
    pcie_bandwidth_gbps=25.0,
    pcie_token_gather_gbps=3.0,
    pcie_cluster_gather_gbps=20.0,
    kernel_efficiency=0.6,
    layer_sync_overhead_s=2.0e-4,
    gpu_memory_bytes=48 * 1024**3,
    ssd_read_gbps=7.0,
    ssd_write_gbps=5.0,
)

_HARDWARE = {ADA_6000.name: ADA_6000}


def get_hardware(name: str) -> HardwareConfig:
    """Look up a registered hardware configuration by name."""
    if name not in _HARDWARE:
        raise KeyError(f"unknown hardware {name!r}; available: {sorted(_HARDWARE)}")
    return _HARDWARE[name]


def list_hardware() -> list[str]:
    """Names of all registered hardware configurations."""
    return sorted(_HARDWARE)
