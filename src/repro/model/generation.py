"""Inference engine: prefill and decoding with pluggable KV compression.

The engine mirrors the paper's system organisation (paper Fig. 5):

* **Prefill** runs exact causal attention over the prompt, stores the KV
  cache (offloading it to the CPU tier when the active method requires it)
  and lets the selector build its acceleration structure — semantic
  clustering for ClusterKV, page summaries for Quest, partial keys for
  InfiniGen.
* **Decoding** appends the new token's KV, asks the selector for the token
  indices to attend to (respecting the KV cache budget), performs the
  approximate attention, and tracks every byte that has to be moved between
  memory tiers.

The module is split into three layers so that both the single-sequence
:class:`InferenceEngine` and the multi-request
:class:`repro.serving.BatchedEngine` share one numerical code path:

* :class:`SequenceState` — everything that belongs to *one* request: the KV
  cache store, per-layer selector states, the pointer-head state and the
  sampling RNG.
* :class:`EngineCore` — stateless-per-request stepping logic bound to a
  model and a :class:`~repro.model.config.GenerationConfig`.  Its
  :meth:`EngineCore.decode_step_batch` runs one decoding step for ``B``
  sequences at once, batching the per-token transformer blocks (embedding,
  QKV projection, attention output, feed-forward, logits) into single NumPy
  calls while attention and KV selection remain per-request.  With ``B = 1``
  the executed operations are exactly those of the single-sequence path, so
  batched serving at batch size one is bit-identical to this engine.
* :class:`InferenceEngine` — the historical one-request facade used by the
  accuracy and analysis experiments.

The engine also supports teacher-forced scoring (for perplexity evaluation)
and optional recording of exact attention scores so that recall-rate metrics
and the motivation analyses can be computed.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from ..baselines.base import KVSelectorFactory, LayerSelectorState, SelectorStats
from ..baselines.full import FullKVSelector
from ..baselines.oracle import top_k_indices
from ..memory import OffloadManager, TransferLedger
from ..perf import counters
from .attention import full_causal_attention, selected_attention_batch
from .config import GenerationConfig, ModelConfig
from .kv_cache import KVCacheStore
from .pointer import CopyHead
from .sampling import (
    DegenerateDistributionError,
    apply_temperature,
    greedy_sample,
    mix_distributions,
    temperature_sample,
)
from .tensor_ops import softmax
from .transformer import TransformerModel

__all__ = [
    "RecallRecord",
    "StepAttentionRecord",
    "GenerationResult",
    "SequenceState",
    "EngineCore",
    "InferenceEngine",
]


@dataclass(frozen=True)
class RecallRecord:
    """Recall of the truly important tokens at one (step, layer, head).

    ``recall`` is ``|I_T ∩ I_T^true| / |I_T^true|`` with ``|I_T^true| = B``
    (paper Sec. V-B, "Recall Rate of important tokens").
    """

    step: int
    layer: int
    head: int
    budget: int
    recall: float


@dataclass
class StepAttentionRecord:
    """Attention snapshot of the traced layer at one decoding step."""

    step: int
    layer: int
    selected_indices: list[np.ndarray]
    attention_weights: list[np.ndarray]
    true_scores: list[np.ndarray] | None = None


@dataclass
class _SpecAttendRecord:
    """What one verify position did to one layer, for rollback replay.

    Captured by :meth:`EngineCore._prepare_attend` while a speculative
    round is active: the span of ledger events the position appended
    (``[events[0], events[1])`` in the shared ledger), the new KV block
    the selector observed, the context length its stats were bumped with
    on the full-context path, and the exact ``select`` call it made (or
    ``None`` when no selection ran).  Replaying the records of the
    accepted positions against a restored selector snapshot reproduces
    the state a speculation-off run would have reached.
    """

    events: tuple[int, int]
    k_new: np.ndarray | None
    context_length: int
    select_args: tuple[np.ndarray, int, int] | None


@dataclass
class GenerationResult:
    """Everything produced by one generation or scoring run."""

    prompt_length: int
    output_ids: list[int] = field(default_factory=list)
    output_logprobs: list[float] = field(default_factory=list)
    target_logprobs: list[float] = field(default_factory=list)
    selector_stats: SelectorStats = field(default_factory=SelectorStats)
    per_layer_stats: dict[int, SelectorStats] = field(default_factory=dict)
    recall_records: list[RecallRecord] = field(default_factory=list)
    attention_trace: list[StepAttentionRecord] = field(default_factory=list)
    ledger: TransferLedger | None = None
    cache_hit_rate: float = 0.0
    decode_steps: int = 0
    kv_cache_bytes: int = 0
    method: str = "full"
    method_config: dict[str, object] = field(default_factory=dict)
    # Prompt tokens attached from the cross-request prefix cache instead of
    # being prefilled (0 for a cache miss or a run without the cache).
    cached_prefix_tokens: int = 0
    # Speculative decoding accounting (all 0 for a speculation-off run).
    # ``spec_drafted == spec_accepted + spec_rejected`` in every result; the
    # bonus token sampled from a round's last verified distribution is not a
    # draft and is counted in none of them.
    spec_rounds: int = 0
    spec_drafted_tokens: int = 0
    spec_accepted_tokens: int = 0
    spec_rejected_tokens: int = 0

    def mean_recall(self) -> float:
        """Average recall over all recorded (step, layer, head) triples."""
        if not self.recall_records:
            return 0.0
        return float(np.mean([record.recall for record in self.recall_records]))

    def perplexity(self) -> float:
        """Perplexity of the teacher-forced targets (scoring runs only)."""
        if not self.target_logprobs:
            raise ValueError("no target log-probabilities were recorded")
        return float(np.exp(-np.mean(self.target_logprobs)))


class SequenceState:
    """Per-request decoding state, independent of the engine driving it.

    One instance exists per generation request and owns every piece of
    mutable state the request accumulates: the KV cache of all layers, one
    :class:`~repro.baselines.base.LayerSelectorState` per compressed layer,
    the pointer-head history, the sampling RNG and the
    :class:`GenerationResult` under construction.  The
    :class:`repro.serving.BatchedEngine` keeps many of these alive at once
    and interleaves their decode steps; the single-sequence
    :class:`InferenceEngine` owns exactly one.

    Parameters
    ----------
    model:
        The (shared, immutable) transformer whose weights are used.
    selector:
        KV compression method factory; fresh per-layer states are created
        for this sequence, so one factory instance can serve many requests.
    generation_config:
        Decoding configuration (budget, sinks, sampling, tracing).
    offload:
        Memory-tier manager on which the KV buffers of this sequence are
        registered.  In batched serving this manager is shared by all
        requests, which is what lets the scheduler enforce a *global* KV
        memory budget.
    buffer_prefix:
        Prefix for the names of the KV buffers registered on ``offload``;
        must be unique per live sequence when the manager is shared.
    seed:
        Optional per-request sampling seed; defaults to
        ``generation_config.seed``.
    """

    def __init__(
        self,
        model: TransformerModel,
        selector: KVSelectorFactory,
        generation_config: GenerationConfig,
        offload: OffloadManager,
        buffer_prefix: str = "",
        seed: int | None = None,
    ) -> None:
        config = model.config
        self.selector = selector
        self.offload = offload
        self.rng = np.random.default_rng(
            generation_config.seed if seed is None else seed
        )
        self.kv_store = KVCacheStore(
            n_layers=config.n_layers,
            n_kv_heads=config.n_kv_heads,
            head_dim=config.head_dim,
            offload=offload,
            residency=selector.kv_residency,
            buffer_prefix=buffer_prefix,
        )
        self.layer_states: list[LayerSelectorState | None] = []
        for layer_idx in range(config.n_layers):
            if layer_idx < generation_config.num_full_layers:
                self.layer_states.append(None)
            else:
                self.layer_states.append(
                    selector.create_layer_state(
                        layer_idx,
                        config.n_kv_heads,
                        config.head_dim,
                        generation_config.num_sink_tokens,
                    )
                )
        self.copy_head = CopyHead(model.weights) if config.use_copy_head else None
        # The pointer (copy) head is an attention head over the context like
        # any other: its keys go through the same KV selection machinery, so
        # the accuracy of a compression method directly gates what the model
        # can retrieve.
        self.copy_state: LayerSelectorState | None = None
        if self.copy_head is not None:
            self.copy_state = selector.create_layer_state(
                config.n_layers,
                1,
                config.d_model,
                generation_config.num_sink_tokens,
            )
        self.trace_layer = config.n_layers - 1
        self.prefilled = False
        self.position = 0
        # Copy-head key blocks accumulated across prefill chunks; consumed
        # (observed by the copy selector state) when the last chunk lands.
        self._prefill_copy_keys: list[np.ndarray] = []
        self.result = GenerationResult(prompt_length=0, method=selector.name)

    def release(self) -> None:
        """Deregister this sequence's KV buffers from the offload manager.

        Called by the serving engine when a request retires so that its tier
        usage is returned to the pool before the next admission decision.
        """
        self.kv_store.release()


class EngineCore:
    """Shared stepping logic for single-sequence and batched inference.

    The core is bound to one model and one
    :class:`~repro.model.config.GenerationConfig` and operates on
    :class:`SequenceState` instances passed in per call.  It holds no
    per-request state, so one core can drive any number of concurrent
    sequences.
    """

    def __init__(self, model: TransformerModel, generation_config: GenerationConfig) -> None:
        self.model = model
        self.generation_config = generation_config
        # Reusable decode-step work buffers, keyed by batch size: the
        # concatenated attention output of one layer is written in place at
        # every layer of every step, so steady-state decoding allocates no
        # new per-step buffer here.
        self._attn_buffers: dict[int, np.ndarray] = {}
        # Growable zero-initialised workspaces of the fused cross-request
        # attention (padded K/V, queries, lengths); see _stacked_workspace.
        self._stacked_kv: np.ndarray | None = None
        self._stacked_queries: np.ndarray | None = None
        self._stacked_lengths: np.ndarray | None = None
        # Active speculative-round capture, or None outside a round.  Maps
        # ``(id(seq), layer_idx)`` to the per-position attend records that
        # let a rollback replay the accepted prefix (see speculative_round).
        self._spec_capture: dict[tuple[int, int], list[_SpecAttendRecord]] | None = None

    def _stacked_workspace(
        self, num: int, s_max: int
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Reusable buffers for :meth:`_attend_stacked`, grown by doubling.

        The K/V buffer is zero-initialised on (re)allocation and *not*
        re-zeroed between steps: stale entries beyond a request's valid
        length are masked to ``-inf`` scores (keys) or multiplied by an
        exactly-zero attention weight (values), so they never influence the
        output — and the buffer only ever holds finite cache data.
        """
        config = self.model.config
        kv = self._stacked_kv
        if kv is None or kv.shape[1] < num or kv.shape[3] < s_max:
            rows = max(num, 2 if kv is None else kv.shape[1] * 2)
            width = 64 if kv is None else kv.shape[3]
            while width < s_max:
                width *= 2
            self._stacked_kv = np.zeros(
                (2, rows, config.n_kv_heads, width, config.head_dim)
            )
            self._stacked_queries = np.empty(
                (rows, config.n_kv_heads, config.group_size, config.head_dim)
            )
            self._stacked_lengths = np.empty((rows, config.n_kv_heads), dtype=np.int64)
            kv = self._stacked_kv
        assert self._stacked_queries is not None and self._stacked_lengths is not None
        return (
            kv[0, :num, :, :s_max],
            kv[1, :num, :, :s_max],
            self._stacked_queries[:num],
            self._stacked_lengths[:num],
        )

    # ------------------------------------------------------------------
    # prefill
    # ------------------------------------------------------------------
    def prefill(self, seq: SequenceState, prompt_ids: np.ndarray) -> np.ndarray:
        """Run exact prefill attention over the prompt of one sequence.

        Returns the output probability distribution (``(vocab,)``) after the
        last prompt token, from which the first generated token is sampled.
        """
        prompt_ids = np.asarray(prompt_ids, dtype=np.int64)
        if prompt_ids.shape[0] == 0:
            raise ValueError("the prompt must contain at least one token")
        distribution = self.prefill_chunk(seq, prompt_ids, 0, prompt_ids.shape[0])
        assert distribution is not None
        return distribution

    def prefill_chunk(
        self,
        seq: SequenceState,
        prompt_ids: np.ndarray,
        start: int,
        end: int,
    ) -> np.ndarray | None:
        """Prefill prompt positions ``[start, end)`` of one sequence.

        Chunked prefill: the chunk's queries run exact causal attention
        against the KV cache of all ``end`` prompt positions seen so far, so
        a long prompt can be split across several engine steps (interleaved
        with other requests' decode steps) instead of stalling the batch in
        one monolithic pass.  Chunks must be contiguous and in order; the
        selector states observe the complete prompt once the last chunk
        lands, exactly as in a monolithic prefill.  With ``start == 0`` and
        ``end == len(prompt_ids)`` this *is* the monolithic prefill — one
        code path, so full-chunk prefill is trivially token-identical.

        Returns the output probability distribution after the last prompt
        token when ``end`` completes the prompt, else ``None``.
        """
        prompt_ids = np.asarray(prompt_ids, dtype=np.int64)
        config = self.model.config
        length = prompt_ids.shape[0]
        if length == 0:
            raise ValueError("the prompt must contain at least one token")
        if not 0 <= start < end <= length:
            raise ValueError(
                f"invalid prefill chunk [{start}, {end}) of a {length}-token prompt"
            )
        if start == 0:
            if seq.prefilled:
                raise RuntimeError("the sequence has already been prefilled")
            seq.prefilled = True
            seq.result.prompt_length = length
        elif seq.position != start:
            raise RuntimeError(
                f"prefill chunk starts at {start} but the sequence is at "
                f"position {seq.position}"
            )
        whole_prefix = start == 0
        positions = np.arange(start, end)
        hidden = self.model.embed(prompt_ids[start:end], positions)

        for layer_idx in range(config.n_layers):
            q, k, v = self.model.attention_qkv(layer_idx, hidden, positions)
            seq.kv_store.append(layer_idx, k, v, step=-1)
            if whole_prefix:
                keys_ctx, values_ctx = k, v
            else:
                keys_ctx = seq.kv_store.keys(layer_idx)
                values_ctx = seq.kv_store.values(layer_idx)
            attn = full_causal_attention(q, keys_ctx, values_ctx, config.softmax_scale)
            hidden = self.model.attention_output(layer_idx, hidden, attn.output)
            hidden = self.model.ffn(layer_idx, hidden)

        if seq.copy_head is not None:
            seq._prefill_copy_keys.append(seq.copy_head.ingest(prompt_ids[start:end]))
        seq.position = end
        if end < length:
            return None

        # Last chunk: the selectors observe the complete prompt (the cache
        # holds exactly the prompt KV at this point) and build their
        # acceleration structures, as in a monolithic prefill.
        for layer_idx in range(config.n_layers):
            state = seq.layer_states[layer_idx]
            if state is not None:
                state.observe_prefill(seq.kv_store.keys(layer_idx)[:, :length, :])
        if seq.copy_head is not None and seq.copy_state is not None:
            copy_keys = (
                seq._prefill_copy_keys[0]
                if len(seq._prefill_copy_keys) == 1
                else np.concatenate(seq._prefill_copy_keys, axis=0)
            )
            seq.copy_state.observe_prefill(copy_keys[None, :, :])
        seq._prefill_copy_keys = []

        logits = self.model.final_logits(hidden[-1:, :])[0]
        vocab_probs = softmax(logits)
        return self._mix_copy(seq, vocab_probs, int(prompt_ids[-1]), allowed_indices=None)

    def attach_prefix(
        self,
        seq: SequenceState,
        prompt_ids: np.ndarray,
        keys_per_layer: list[np.ndarray],
        values_per_layer: list[np.ndarray],
    ) -> None:
        """Adopt the cached KV of a prompt prefix instead of prefilling it.

        ``keys_per_layer``/``values_per_layer`` hold, per layer, the KV
        entries of the first ``H`` prompt positions as produced by an
        earlier prefill of the same token ids (shape
        ``(n_kv_heads, H, head_dim)``).  Causality makes this exact: the KV
        of position ``p`` depends only on tokens ``[0, p]``, so the
        injected entries are bit-identical to what prefilling this prompt
        would compute.  The copy head replays the attached token ids (its
        ingest is a pure per-token function), and the selector states are
        *not* notified here — the final suffix chunk's ``observe_prefill``
        runs over the complete prompt keys exactly as in a monolithic
        prefill, which is what keeps every policy token-identical.

        After attaching, the engine must prefill the remaining chunk(s)
        ``[H, len(prompt_ids))`` through :meth:`prefill_chunk`; ``H`` must
        leave at least one prompt token for that final chunk.
        """
        prompt_ids = np.asarray(prompt_ids, dtype=np.int64)
        config = self.model.config
        length = prompt_ids.shape[0]
        attached = keys_per_layer[0].shape[1] if keys_per_layer else 0
        if seq.prefilled:
            raise RuntimeError("the sequence has already been prefilled")
        if len(keys_per_layer) != config.n_layers or len(values_per_layer) != config.n_layers:
            raise ValueError("attach_prefix needs one KV pair per model layer")
        if not 0 < attached < length:
            raise ValueError(
                f"attached prefix of {attached} tokens must leave at least one of "
                f"the {length} prompt tokens to prefill"
            )
        seq.prefilled = True
        seq.result.prompt_length = length
        seq.result.cached_prefix_tokens = int(attached)
        for layer_idx in range(config.n_layers):
            seq.kv_store.append(
                layer_idx, keys_per_layer[layer_idx], values_per_layer[layer_idx], step=-1
            )
        if seq.copy_head is not None:
            seq._prefill_copy_keys.append(seq.copy_head.ingest(prompt_ids[:attached]))
        seq.position = int(attached)

    # ------------------------------------------------------------------
    # decoding
    # ------------------------------------------------------------------
    def decode_step_batch(
        self,
        seqs: list[SequenceState],
        token_ids: list[int],
        steps: list[int],
    ) -> list[np.ndarray]:
        """Run one decoding step for a batch of sequences.

        The per-token transformer blocks (embedding, QKV projection with
        RoPE, attention output projection, feed-forward, final logits) are
        row-wise over tokens, so the batch is pushed through them as a
        pseudo-sequence of ``B`` independent tokens in single NumPy calls.
        Attention and KV selection depend on per-request caches of differing
        lengths and stay per-sequence.

        Parameters
        ----------
        seqs:
            The sequences to step, each already prefilled.
        token_ids:
            The most recent token of each sequence (fed back as input).
        steps:
            Per-sequence zero-based decode step indices (requests admitted
            at different times sit at different steps within one batch).

        Returns
        -------
        list of numpy.ndarray
            One output probability distribution (``(vocab,)``) per sequence.
        """
        config = self.model.config
        batch = len(seqs)
        if not (batch == len(token_ids) == len(steps)):
            raise ValueError("seqs, token_ids and steps must have equal lengths")
        tokens = np.asarray(token_ids, dtype=np.int64)
        positions = np.asarray([seq.position for seq in seqs], dtype=np.int64)
        hidden = self.model.embed(tokens, positions)

        attn_concat = self._attn_buffers.get(batch)
        if attn_concat is None:
            attn_concat = np.empty((batch, config.n_heads * config.head_dim))
            self._attn_buffers[batch] = attn_concat
        for layer_idx in range(config.n_layers):
            q, k, v = self.model.attention_qkv(layer_idx, hidden, positions)
            if batch == 1:
                attn_concat[0] = self._attend_one(
                    seqs[0], layer_idx, q[:, 0, :], k[:, 0:1, :], v[:, 0:1, :], steps[0]
                )
            else:
                self._attend_layer_batch(seqs, layer_idx, q, k, v, steps, attn_concat)
            hidden = self.model.attention_output(layer_idx, hidden, attn_concat)
            hidden = self.model.ffn(layer_idx, hidden)

        logits = self.model.final_logits(hidden)
        # Row-wise softmax over the whole batch: one call instead of B, and
        # each row is identical to the 1-D softmax of that row's logits.
        all_probs = softmax(logits, axis=-1)
        distributions: list[np.ndarray] = []
        for b, seq in enumerate(seqs):
            allowed_indices = self._update_copy_head(seq, int(tokens[b]), steps[b])
            seq.position += 1
            distributions.append(
                self._mix_copy(seq, all_probs[b], int(tokens[b]), allowed_indices)
            )
        return distributions

    # ------------------------------------------------------------------
    # speculative decoding (draft + verify + rollback)
    # ------------------------------------------------------------------
    def speculative_round(
        self,
        seqs: list[SequenceState],
        token_ids: list[int],
        steps: list[int],
        drafts: list[list[int]],
    ) -> list[list[int]]:
        """One draft-then-verify round for a batch of sequences.

        For each sequence the verify pass teacher-forces the fed entries
        ``[current_token, d_1, ..., d_k]`` (``d_j`` the drafted
        candidates; a sequence with an empty draft contributes just its
        plain decode entry).  The pass sweeps the entries *time-major*:
        position offset ``j`` of every drafting sequence is evaluated in
        one call to :meth:`decode_step_batch`, so each position runs
        byte-for-byte the code a speculation-off engine step would run —
        which is what makes greedy speculation token- AND
        logprob-identical to plain decoding (batching the offsets into
        one wide GEMM instead would perturb the BLAS accumulation order
        and break the repo's bit-identity contract; the virtual clock
        still prices the round as a single fused pass, see
        :meth:`repro.perfmodel.StepCostModel.step_seconds`).

        Acceptance then runs per sequence: the longest matching prefix
        of the draft for greedy decoding (plus the bonus token from the
        first non-matching distribution), or distribution-preserving
        rejection sampling against the re-tempered verified
        distributions for temperature decoding.  Rejected positions are
        rolled back so they leave no residue in the KV cache, the
        selector and pointer states, or the offload ledger: the KV
        buffers truncate (and resize their tier registrations down), the
        selector states restore their round-start snapshots and replay
        the accepted positions' captured ``observe``/``select`` calls,
        the pointer head re-ingests the accepted tokens, and the
        rejected positions' ledger events are dropped.

        Emitted tokens (and their log-probabilities, taken from the raw
        verified distributions exactly as in plain decoding) are
        recorded on each sequence's result via :meth:`record_output`.
        Returns the per-sequence emitted-token lists; every list holds
        ``accepted + 1`` tokens.
        """
        if not (len(seqs) == len(token_ids) == len(steps) == len(drafts)):
            raise ValueError("seqs, token_ids, steps and drafts must align")
        entries = [
            [int(token)] + [int(d) for d in draft]
            for token, draft in zip(token_ids, drafts)
        ]
        snapshots: dict[int, dict[str, object]] = {}
        for seq, draft in zip(seqs, drafts):
            if draft:
                snapshots[id(seq)] = self._spec_snapshot(seq)

        capture: dict[tuple[int, int], list[_SpecAttendRecord]] = {}
        self._spec_capture = capture
        try:
            all_dists: list[list[np.ndarray]] = [[] for _ in seqs]
            max_entries = max(len(fed) for fed in entries)
            for offset in range(max_entries):
                batch = [i for i, fed in enumerate(entries) if len(fed) > offset]
                dists = self.decode_step_batch(
                    [seqs[i] for i in batch],
                    [entries[i][offset] for i in batch],
                    [steps[i] + offset for i in batch],
                )
                for i, dist in zip(batch, dists):
                    all_dists[i].append(dist)
        finally:
            self._spec_capture = None

        emitted_all: list[list[int]] = []
        ledger_drops: dict[int, tuple[list, set[int]]] = {}
        for i, seq in enumerate(seqs):
            draft = [int(d) for d in drafts[i]]
            emitted, accepted = self._spec_accept(seq, all_dists[i], draft)
            if draft:
                rejected = len(draft) - accepted
                seq.result.spec_rounds += 1
                seq.result.spec_drafted_tokens += len(draft)
                seq.result.spec_accepted_tokens += accepted
                seq.result.spec_rejected_tokens += rejected
                counters.record("specdec.rounds", 1)
                counters.record("specdec.drafted_tokens", len(draft))
                counters.record("specdec.accepted_tokens", accepted)
                counters.record("specdec.rejected_tokens", rejected)
                if rejected > 0:
                    self._spec_rollback(
                        seq,
                        snapshots[id(seq)],
                        capture,
                        entries[i],
                        steps[i],
                        accepted,
                        ledger_drops,
                    )
            emitted_all.append(emitted)
        for events, drops in ledger_drops.values():
            events[:] = [
                event for index, event in enumerate(events) if index not in drops
            ]
        return emitted_all

    def _spec_accept(
        self,
        seq: SequenceState,
        dists: list[np.ndarray],
        draft: list[int],
    ) -> tuple[list[int], int]:
        """Accept a verified draft; returns ``(emitted tokens, accepted)``.

        Greedy: longest matching prefix, then the bonus token from the
        first non-matching distribution — bit-identical to what plain
        greedy decoding would emit from the same distributions.
        Temperature: accept draft token ``x`` with probability ``q(x)``
        (``q`` the re-tempered verified distribution; the drafter is
        deterministic, so its proposal distribution is a point mass and
        the classic ``min(1, q/p)`` test reduces to ``q(x)``), sample
        the replacement from the residual ``q`` with ``x`` zeroed on
        rejection, and sample the bonus from the last distribution when
        every draft token is accepted — per-position emissions are
        distributed exactly as plain temperature decoding.
        """
        gen = self.generation_config
        emitted: list[int] = []
        accepted = 0
        if gen.greedy:
            for j, dist in enumerate(dists):
                token = greedy_sample(dist)
                emitted.append(token)
                self.record_output(seq, token, dist)
                if j < len(draft) and token == draft[j]:
                    accepted += 1
                else:
                    break
            return emitted, accepted
        for j, dist in enumerate(dists):
            if j < len(draft):
                q = apply_temperature(dist, gen.temperature)
                token = draft[j]
                if seq.rng.random() < q[token]:
                    emitted.append(token)
                    self.record_output(seq, token, dist)
                    accepted += 1
                    continue
                residual = q.copy()
                residual[token] = 0.0
                total = residual.sum()
                if not total > 0:
                    raise DegenerateDistributionError(
                        "rejection-sampling residual has no probability mass"
                    )
                token = int(seq.rng.choice(residual.shape[0], p=residual / total))
                emitted.append(token)
                self.record_output(seq, token, dist)
                break
            token = temperature_sample(dist, seq.rng, gen.temperature)
            emitted.append(token)
            self.record_output(seq, token, dist)
        return emitted, accepted

    def _spec_snapshot(self, seq: SequenceState) -> dict[str, object]:
        """Round-start snapshot of everything a rollback must restore."""
        return {
            "position": seq.position,
            "copy_len": len(seq.copy_head) if seq.copy_head is not None else 0,
            "layer_states": [
                state.export_state() if state is not None else None
                for state in seq.layer_states
            ],
            "copy_state": (
                seq.copy_state.export_state() if seq.copy_state is not None else None
            ),
        }

    def _spec_rollback(
        self,
        seq: SequenceState,
        snapshot: dict[str, object],
        capture: dict[tuple[int, int], list[_SpecAttendRecord]],
        fed: list[int],
        start_step: int,
        accepted: int,
        ledger_drops: dict[int, tuple[list, set[int]]],
    ) -> None:
        """Erase a sequence's rejected verify positions, state and ledger.

        ``fed`` positions ``[0, accepted]`` stay (their fed tokens were
        correct); everything after is removed: the KV cache truncates,
        the selector states restore the round-start snapshot and replay
        the accepted positions' captured calls, the pointer head
        re-ingests the accepted tokens (its ingest is a pure per-token
        function), and the rejected positions' ledger-event indices are
        queued in ``ledger_drops`` for one batched rebuild per ledger.
        """
        config = self.model.config
        keep = accepted + 1
        position0 = snapshot["position"]
        assert isinstance(position0, int)
        seq.kv_store.rollback(position0 + keep)
        seq.position = position0 + keep

        layer_payloads = snapshot["layer_states"]
        assert isinstance(layer_payloads, list)
        for layer_idx in range(config.n_layers):
            records = capture.get((id(seq), layer_idx), [])
            for record in records[keep:]:
                start, end = record.events
                if end > start:
                    events, drops = ledger_drops.setdefault(
                        id(seq.offload.ledger),
                        (seq.offload.ledger.events, set()),
                    )
                    drops.update(range(start, end))
            state = seq.layer_states[layer_idx]
            if state is None:
                continue
            payload = layer_payloads[layer_idx]
            assert payload is not None
            state.restore_state(payload)
            for record in records[:keep]:
                assert record.k_new is not None
                state.observe_decode(record.k_new)
                if record.select_args is not None:
                    grouped, budget, step = record.select_args
                    state.select(grouped, budget, step)
                else:
                    state.stats.selected_tokens += (
                        record.context_length * config.n_kv_heads
                    )
                    state.stats.num_selections += 1

        if seq.copy_head is not None:
            copy_len = snapshot["copy_len"]
            assert isinstance(copy_len, int)
            seq.copy_head.truncate(copy_len)
            copy_payload = snapshot["copy_state"]
            if seq.copy_state is not None and copy_payload is not None:
                assert isinstance(copy_payload, dict)
                seq.copy_state.restore_state(copy_payload)
            for j in range(keep):
                self._update_copy_head(seq, fed[j], start_step + j)

    def _prepare_attend(
        self,
        seq: SequenceState,
        layer_idx: int,
        query_vectors: np.ndarray,
        k_new: np.ndarray,
        v_new: np.ndarray,
        step: int,
    ) -> tuple:
        """KV append, observation, selection and gather of one sequence/layer.

        The non-GEMM front half of a decode-step attention: appends the new
        token's KV, lets the selector observe it, runs token selection under
        the budget and gathers the selected keys/values into stacked
        tensors.  Returns the prepared-attention tuple ``(seq, query
        vectors, keys, values, lengths, indices_per_head, state, context
        length, step, from_selection)`` consumed by :meth:`_attend_one`
        and :meth:`_attend_layer_batch`.
        """
        config = self.model.config
        gen = self.generation_config
        capture = self._spec_capture
        events_before = (
            len(seq.offload.ledger.events) if capture is not None else 0
        )
        seq.kv_store.append(layer_idx, k_new, v_new, step=step)
        state = seq.layer_states[layer_idx]
        context_length = len(seq.kv_store.layers[layer_idx])

        if state is not None:
            state.observe_decode(k_new)

        budget = gen.budget if gen.budget is not None else context_length
        use_selection = (
            state is not None and gen.budget is not None and budget < context_length
        )
        if use_selection:
            grouped = query_vectors.reshape(
                config.n_kv_heads, config.group_size, config.head_dim
            )
            fetched_before = state.stats.fetched_tokens
            indices_per_head = state.select(grouped, budget, step)
            fetched_delta = state.stats.fetched_tokens - fetched_before
            seq.kv_store.record_fetch(fetched_delta, step)
            # One stacked gather for all kv heads (right-padded when the
            # selected counts differ — semantic clusters have variable
            # sizes), feeding the two-GEMM batched attention.
            keys_sel, values_sel, sel_lengths = seq.kv_store.gather_many(
                layer_idx, indices_per_head
            )
        else:
            # Full-context attention: hand the cache views straight to the
            # batched attention — same values, no per-step O(L) copy.
            # Index arrays are only materialised if a recorder needs them.
            indices_per_head = None
            if state is not None:
                state.stats.selected_tokens += context_length * config.n_kv_heads
                state.stats.num_selections += 1
            keys_sel = seq.kv_store.keys(layer_idx)
            values_sel = seq.kv_store.values(layer_idx)
            sel_lengths = None
        if capture is not None:
            capture.setdefault((id(seq), layer_idx), []).append(
                _SpecAttendRecord(
                    events=(events_before, len(seq.offload.ledger.events)),
                    k_new=None if state is None else np.array(k_new, copy=True),
                    context_length=context_length,
                    select_args=(
                        (grouped.copy(), budget, step) if use_selection else None
                    ),
                )
            )
        return (
            seq,
            query_vectors,
            keys_sel,
            values_sel,
            sel_lengths,
            indices_per_head,
            state,
            context_length,
            step,
            use_selection,
        )

    def _finish_attend(
        self,
        layer_idx: int,
        prep: tuple,
        weights: list[np.ndarray] | None,
    ) -> None:
        """Recording hooks of one sequence/layer attention (recall, trace)."""
        gen = self.generation_config
        (seq, query_vectors, _, _, _, indices_per_head, state, context_length, step, _) = prep
        record_recall = (
            gen.record_true_scores and state is not None and gen.budget is not None
        )
        record_trace = gen.record_attention_trace and layer_idx == seq.trace_layer
        if not record_recall and not record_trace:
            return
        config = self.model.config
        if indices_per_head is None:
            indices_per_head = [
                np.arange(context_length, dtype=np.int64)
                for _ in range(config.n_kv_heads)
            ]
        if record_recall:
            budget = gen.budget
            assert budget is not None
            self._record_recall(
                seq, layer_idx, step, query_vectors, indices_per_head, budget
            )
        if record_trace:
            self._record_trace(
                seq, layer_idx, step, query_vectors, indices_per_head, weights
            )

    def _attend_one(
        self,
        seq: SequenceState,
        layer_idx: int,
        query_vectors: np.ndarray,
        k_new: np.ndarray,
        v_new: np.ndarray,
        step: int,
    ) -> np.ndarray:
        """KV append, token selection and attention of one sequence/layer.

        ``query_vectors`` is ``(n_heads, head_dim)``; ``k_new``/``v_new``
        are ``(n_kv_heads, 1, head_dim)``.  Returns the concatenated
        attention output, shape ``(n_heads * head_dim,)``.
        """
        gen = self.generation_config
        prep = self._prepare_attend(seq, layer_idx, query_vectors, k_new, v_new, step)
        # Attention weights are only materialised when this layer's trace is
        # actually recorded; the common path skips the per-head bookkeeping.
        need_weights = gen.record_attention_trace and layer_idx == seq.trace_layer
        attn = selected_attention_batch(
            query_vectors,
            prep[2],
            prep[3],
            self.model.config.softmax_scale,
            lengths=prep[4],
            return_weights=need_weights,
        )
        self._finish_attend(layer_idx, prep, attn.weights)
        return attn.output

    def _attend_layer_batch(
        self,
        seqs: list[SequenceState],
        layer_idx: int,
        q: np.ndarray,
        k: np.ndarray,
        v: np.ndarray,
        steps: list[int],
        out: np.ndarray,
    ) -> None:
        """Attention of one layer for the whole decode batch.

        Requests decoding under a budget produce *bounded* selected-KV
        tensors, so their attention fuses across requests into one pair of
        broadcast GEMMs over a ``(R, n_kv_heads, g, S_max)`` score tensor
        (padding entries carry exactly-zero weight, so each request's
        output equals its solo computation).  Full-context requests keep
        per-request GEMMs on zero-copy cache views — padding them would
        copy O(context) per step.  Rows of ``out`` are written in place.
        """
        gen = self.generation_config
        preps = [
            self._prepare_attend(
                seq, layer_idx, q[:, b, :], k[:, b : b + 1, :], v[:, b : b + 1, :], steps[b]
            )
            for b, seq in enumerate(seqs)
        ]
        stacked: list[tuple[int, tuple]] = []
        solo: list[tuple[int, tuple]] = []
        for b, prep in enumerate(preps):
            needs_weights = (
                gen.record_attention_trace and layer_idx == prep[0].trace_layer
            )
            if prep[9] and not needs_weights:
                stacked.append((b, prep))
            else:
                solo.append((b, prep))
        if len(stacked) < 2:
            solo = sorted(solo + stacked)
            stacked = []

        if stacked:
            self._attend_stacked(layer_idx, stacked, out)
        for b, prep in solo:
            seq = prep[0]
            need_weights = (
                gen.record_attention_trace and layer_idx == seq.trace_layer
            )
            attn = selected_attention_batch(
                prep[1],
                prep[2],
                prep[3],
                self.model.config.softmax_scale,
                lengths=prep[4],
                return_weights=need_weights,
            )
            out[b] = attn.output
            self._finish_attend(layer_idx, prep, attn.weights)

    def _attend_stacked(
        self, layer_idx: int, entries: list[tuple[int, tuple]], out: np.ndarray
    ) -> None:
        """Fused attention of several requests' bounded KV selections.

        Pads every request's stacked ``(n_kv_heads, S_r, d)`` selection to
        the batch-wide maximum and runs the scores and the weighted sum as
        two broadcast GEMMs for all requests and heads at once.  Padded
        keys score ``-inf`` (zero weight) and padded values are zero, so
        each request's slice is identical to its standalone computation.
        """
        config = self.model.config
        n_kv = config.n_kv_heads
        group = config.group_size
        head_dim = config.head_dim
        num = len(entries)
        s_max = max(prep[2].shape[1] for _, prep in entries)
        keys, values, queries, lengths = self._stacked_workspace(num, s_max)
        for i, (_, prep) in enumerate(entries):
            size = prep[2].shape[1]
            keys[i, :, :size] = prep[2]
            values[i, :, :size] = prep[3]
            lengths[i, :] = size if prep[4] is None else prep[4]
            queries[i] = prep[1].reshape(n_kv, group, head_dim)
        if int(lengths.min(initial=1)) <= 0:
            raise ValueError("a kv head has no selected tokens")

        scores = np.matmul(queries, keys.transpose(0, 1, 3, 2)) * config.softmax_scale
        counters.record("gemm.attention_decode", 2)
        for i in range(num):
            for kv_head in range(n_kv):
                valid = lengths[i, kv_head]
                if valid < s_max:
                    scores[i, kv_head, :, valid:] = -np.inf
        weights = softmax(scores, axis=-1)
        outputs = np.matmul(weights, values)  # (num, n_kv, group, head_dim)
        for i, (b, prep) in enumerate(entries):
            out[b] = outputs[i].reshape(-1)
            self._finish_attend(layer_idx, prep, None)

    def _update_copy_head(
        self, seq: SequenceState, token_id: int, step: int
    ) -> np.ndarray | None:
        """Ingest the current token into the pointer head and select its context.

        Returns the indices the pointer head may attend to at this step
        (``None`` means the full history, i.e. no compression).
        """
        if seq.copy_head is None:
            return None
        gen = self.generation_config
        copy_keys = seq.copy_head.ingest(np.asarray([token_id]))
        if seq.copy_state is None:
            return None
        seq.copy_state.observe_decode(copy_keys[None, :, :])
        history = len(seq.copy_head)
        if gen.budget is None or gen.budget >= history:
            seq.copy_state.stats.selected_tokens += history
            seq.copy_state.stats.num_selections += 1
            return None
        query = seq.copy_head.current_signature()
        selections = seq.copy_state.select(query[None, None, :], gen.budget, step)
        return selections[0]

    # ------------------------------------------------------------------
    # sampling and bookkeeping
    # ------------------------------------------------------------------
    def pick_token(self, seq: SequenceState, distribution: np.ndarray) -> int:
        """Sample the next token of a sequence from an output distribution."""
        if self.generation_config.greedy:
            return greedy_sample(distribution)
        return temperature_sample(
            distribution, seq.rng, self.generation_config.temperature
        )

    def record_output(self, seq: SequenceState, token_id: int, distribution: np.ndarray) -> None:
        """Append a generated token and its log-probability to the result."""
        seq.result.output_ids.append(token_id)
        # math.log == np.log for scalars (both IEEE-754 libm ln), without
        # the ufunc dispatch on this per-token path.
        seq.result.output_logprobs.append(
            math.log(max(float(distribution[token_id]), 1e-30))
        )

    def finalise(self, seq: SequenceState) -> GenerationResult:
        """Merge per-layer selector statistics into the sequence's result."""
        result = seq.result
        merged = SelectorStats()
        states: list[tuple[int, LayerSelectorState]] = [
            (layer_idx, state)
            for layer_idx, state in enumerate(seq.layer_states)
            if state is not None
        ]
        if seq.copy_state is not None:
            states.append((self.model.config.n_layers, seq.copy_state))
        for layer_idx, state in states:
            result.per_layer_stats[layer_idx] = state.stats
            merged = merged.merge(state.stats)
        result.selector_stats = merged
        result.ledger = seq.offload.ledger
        result.kv_cache_bytes = seq.kv_store.total_nbytes()
        # Embed the full selector configuration so any report built from
        # this result can reproduce the method exactly.
        result.method_config = dict(seq.selector.describe())
        hit_rates = [
            state.cache_hit_rate()
            for _, state in states
            if hasattr(state, "cache_hit_rate")
        ]
        result.cache_hit_rate = float(np.mean(hit_rates)) if hit_rates else 0.0
        return result

    # ------------------------------------------------------------------
    # checkpoint / restore (sequence migration, preemption, recovery)
    # ------------------------------------------------------------------
    def checkpoint_request(self, seq: SequenceState):
        """Capture the complete decoding state of one live sequence.

        Returns a :class:`repro.seqstate.SequenceCheckpoint` that, passed to
        :meth:`restore_request`, resumes the request bit-identically to
        never having been interrupted.  The sequence itself is unaffected.
        """
        from ..seqstate import checkpoint_sequence

        return checkpoint_sequence(self.model, self.generation_config, seq)

    def restore_request(
        self,
        checkpoint,
        selector: KVSelectorFactory,
        offload: OffloadManager,
        buffer_prefix: str = "",
    ) -> SequenceState:
        """Rebuild a live sequence from a checkpoint, bit-identical.

        ``selector`` must carry the same configuration signature the
        checkpoint was captured under, and ``offload`` is the (possibly
        different) memory manager the restored KV buffers register on —
        restoring onto another engine's manager is what migration is.
        """
        from ..seqstate import restore_sequence

        return restore_sequence(
            self.model,
            self.generation_config,
            checkpoint,
            selector,
            offload,
            buffer_prefix=buffer_prefix,
        )

    # ------------------------------------------------------------------
    # instrumentation helpers
    # ------------------------------------------------------------------
    def _mix_copy(
        self,
        seq: SequenceState,
        vocab_probs: np.ndarray,
        current_token_id: int,
        allowed_indices: np.ndarray | None,
    ) -> np.ndarray:
        if seq.copy_head is None:
            return vocab_probs
        copy_dist = seq.copy_head.copy_distribution(
            current_token_id, allowed_indices=allowed_indices
        )
        if copy_dist is None:
            return vocab_probs
        return mix_distributions(copy_dist, vocab_probs, self.model.config.copy_gate)

    def _record_recall(
        self,
        seq: SequenceState,
        layer_idx: int,
        step: int,
        query_vectors: np.ndarray,
        indices_per_head: list[np.ndarray],
        budget: int,
    ) -> None:
        config = self.model.config
        keys = seq.kv_store.keys(layer_idx)
        context_length = keys.shape[1]
        effective_budget = min(budget, context_length)
        grouped = query_vectors.reshape(
            config.n_kv_heads, config.group_size, config.head_dim
        ).sum(axis=1)
        # Full-context true-score GEMMs: instrumentation-only work, counted
        # so tests can assert the disabled path never reaches here.
        counters.record("gemm.true_score", config.n_kv_heads)
        for kv_head in range(config.n_kv_heads):
            true_scores = keys[kv_head] @ grouped[kv_head]
            true_top = top_k_indices(true_scores, effective_budget)
            selected = set(indices_per_head[kv_head].tolist())
            hits = sum(1 for index in true_top.tolist() if index in selected)
            recall = hits / max(1, true_top.shape[0])
            seq.result.recall_records.append(
                RecallRecord(
                    step=step,
                    layer=layer_idx,
                    head=kv_head,
                    budget=effective_budget,
                    recall=recall,
                )
            )

    def _record_trace(
        self,
        seq: SequenceState,
        layer_idx: int,
        step: int,
        query_vectors: np.ndarray,
        indices_per_head: list[np.ndarray],
        attention_weights: list[np.ndarray] | None,
    ) -> None:
        config = self.model.config
        keys = seq.kv_store.keys(layer_idx)
        grouped = query_vectors.reshape(
            config.n_kv_heads, config.group_size, config.head_dim
        ).sum(axis=1)
        counters.record("gemm.true_score", config.n_kv_heads)
        true_scores = [keys[kv_head] @ grouped[kv_head] for kv_head in range(config.n_kv_heads)]
        # Average the per-query-head weights inside each kv group so the trace
        # has one weight vector per kv head, aligned with its selected indices.
        kv_weights: list[np.ndarray] = []
        if attention_weights is not None:
            for kv_head in range(config.n_kv_heads):
                group_slice = attention_weights[
                    kv_head * config.group_size : (kv_head + 1) * config.group_size
                ]
                kv_weights.append(np.mean(np.stack(group_slice, axis=0), axis=0))
        seq.result.attention_trace.append(
            StepAttentionRecord(
                step=step,
                layer=layer_idx,
                selected_indices=[idx.copy() for idx in indices_per_head],
                attention_weights=kv_weights,
                true_scores=true_scores,
            )
        )


class InferenceEngine:
    """Runs prefill and decoding for one model / selection method pair.

    This is the single-request facade used by the accuracy experiments; the
    heavy lifting lives in :class:`EngineCore` and :class:`SequenceState`,
    which :class:`repro.serving.BatchedEngine` shares for multi-request
    continuous batching.
    """

    def __init__(
        self,
        model: TransformerModel,
        selector: KVSelectorFactory | None = None,
        generation_config: GenerationConfig | None = None,
        offload: OffloadManager | None = None,
    ) -> None:
        self.model = model
        self.selector = selector if selector is not None else FullKVSelector()
        self.generation_config = generation_config or GenerationConfig()
        self.offload = offload if offload is not None else OffloadManager()
        self._core = EngineCore(model, self.generation_config)
        self._sequence = SequenceState(
            model, self.selector, self.generation_config, self.offload
        )

    @property
    def kv_store(self) -> KVCacheStore:
        """KV cache store of the engine's single sequence."""
        return self._sequence.kv_store

    @property
    def layer_states(self) -> list[LayerSelectorState | None]:
        """Per-layer selector states (``None`` for uncompressed layers)."""
        return self._sequence.layer_states

    @property
    def copy_head(self) -> CopyHead | None:
        """Pointer head of the engine's single sequence, if enabled."""
        return self._sequence.copy_head

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def generate(self, prompt_ids: np.ndarray | list[int]) -> GenerationResult:
        """Autoregressively generate ``max_new_tokens`` tokens after the prompt."""
        seq = self._sequence
        distribution = self._core.prefill(seq, np.asarray(prompt_ids, dtype=np.int64))

        current_token = self._core.pick_token(seq, distribution)
        self._core.record_output(seq, current_token, distribution)

        for step in range(self.generation_config.max_new_tokens - 1):
            distribution = self._core.decode_step_batch([seq], [current_token], [step])[0]
            current_token = self._core.pick_token(seq, distribution)
            self._core.record_output(seq, current_token, distribution)
            seq.result.decode_steps += 1

        return self._core.finalise(seq)

    def score_sequence(
        self, token_ids: np.ndarray | list[int], prefill_length: int
    ) -> GenerationResult:
        """Teacher-forced scoring of ``token_ids`` for perplexity evaluation.

        The first ``prefill_length`` tokens are processed as the prompt; the
        remaining tokens are fed one at a time through the decoding path (so
        that KV compression affects the predictions exactly as it would
        during generation) and the log-probability of each true next token
        is recorded.
        """
        token_ids = np.asarray(token_ids, dtype=np.int64)
        if not 0 < prefill_length < token_ids.shape[0]:
            raise ValueError(
                "prefill_length must be positive and smaller than the sequence"
            )
        seq = self._sequence
        distribution = self._core.prefill(seq, token_ids[:prefill_length])

        for offset in range(prefill_length, token_ids.shape[0]):
            target = int(token_ids[offset])
            seq.result.target_logprobs.append(
                float(np.log(max(distribution[target], 1e-30)))
            )
            if offset == token_ids.shape[0] - 1:
                break
            step = offset - prefill_length
            distribution = self._core.decode_step_batch([seq], [target], [step])[0]
            seq.result.decode_steps += 1

        return self._core.finalise(seq)
