"""Inference engine: prefill and decoding with pluggable KV compression.

The engine mirrors the paper's system organisation (paper Fig. 5):

* **Prefill** runs exact causal attention over the prompt, stores the KV
  cache (offloading it to the CPU tier when the active method requires it)
  and lets the selector build its acceleration structure — semantic
  clustering for ClusterKV, page summaries for Quest, partial keys for
  InfiniGen.
* **Decoding** appends the new token's KV, asks the selector for the token
  indices to attend to (respecting the KV cache budget), performs the
  approximate attention, and tracks every byte that has to be moved between
  memory tiers.

The engine also supports teacher-forced scoring (for perplexity evaluation)
and optional recording of exact attention scores so that recall-rate metrics
and the motivation analyses can be computed.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..baselines.base import KVSelectorFactory, LayerSelectorState, SelectorStats
from ..baselines.full import FullKVSelector
from ..baselines.oracle import top_k_indices
from ..memory import OffloadManager, TransferLedger
from .attention import full_causal_attention, selected_attention
from .config import GenerationConfig, ModelConfig
from .kv_cache import KVCacheStore
from .pointer import CopyHead
from .sampling import greedy_sample, mix_distributions, temperature_sample
from .tensor_ops import softmax
from .transformer import TransformerModel

__all__ = [
    "RecallRecord",
    "StepAttentionRecord",
    "GenerationResult",
    "InferenceEngine",
]


@dataclass(frozen=True)
class RecallRecord:
    """Recall of the truly important tokens at one (step, layer, head).

    ``recall`` is ``|I_T ∩ I_T^true| / |I_T^true|`` with ``|I_T^true| = B``
    (paper Sec. V-B, "Recall Rate of important tokens").
    """

    step: int
    layer: int
    head: int
    budget: int
    recall: float


@dataclass
class StepAttentionRecord:
    """Attention snapshot of the traced layer at one decoding step."""

    step: int
    layer: int
    selected_indices: list[np.ndarray]
    attention_weights: list[np.ndarray]
    true_scores: list[np.ndarray] | None = None


@dataclass
class GenerationResult:
    """Everything produced by one generation or scoring run."""

    prompt_length: int
    output_ids: list[int] = field(default_factory=list)
    output_logprobs: list[float] = field(default_factory=list)
    target_logprobs: list[float] = field(default_factory=list)
    selector_stats: SelectorStats = field(default_factory=SelectorStats)
    per_layer_stats: dict[int, SelectorStats] = field(default_factory=dict)
    recall_records: list[RecallRecord] = field(default_factory=list)
    attention_trace: list[StepAttentionRecord] = field(default_factory=list)
    ledger: TransferLedger | None = None
    cache_hit_rate: float = 0.0
    decode_steps: int = 0
    kv_cache_bytes: int = 0
    method: str = "full"

    def mean_recall(self) -> float:
        """Average recall over all recorded (step, layer, head) triples."""
        if not self.recall_records:
            return 0.0
        return float(np.mean([record.recall for record in self.recall_records]))

    def perplexity(self) -> float:
        """Perplexity of the teacher-forced targets (scoring runs only)."""
        if not self.target_logprobs:
            raise ValueError("no target log-probabilities were recorded")
        return float(np.exp(-np.mean(self.target_logprobs)))


class InferenceEngine:
    """Runs prefill and decoding for one model / selection method pair."""

    def __init__(
        self,
        model: TransformerModel,
        selector: KVSelectorFactory | None = None,
        generation_config: GenerationConfig | None = None,
        offload: OffloadManager | None = None,
    ) -> None:
        self.model = model
        self.selector = selector if selector is not None else FullKVSelector()
        self.generation_config = generation_config or GenerationConfig()
        self.offload = offload if offload is not None else OffloadManager()
        self._rng = np.random.default_rng(self.generation_config.seed)

        config = model.config
        self.kv_store = KVCacheStore(
            n_layers=config.n_layers,
            n_kv_heads=config.n_kv_heads,
            head_dim=config.head_dim,
            offload=self.offload,
            residency=self.selector.kv_residency,
        )
        self.layer_states: list[LayerSelectorState | None] = []
        for layer_idx in range(config.n_layers):
            if layer_idx < self.generation_config.num_full_layers:
                self.layer_states.append(None)
            else:
                self.layer_states.append(
                    self.selector.create_layer_state(
                        layer_idx,
                        config.n_kv_heads,
                        config.head_dim,
                        self.generation_config.num_sink_tokens,
                    )
                )
        self.copy_head = (
            CopyHead(model.weights) if config.use_copy_head else None
        )
        # The pointer (copy) head is an attention head over the context like
        # any other: its keys go through the same KV selection machinery, so
        # the accuracy of a compression method directly gates what the model
        # can retrieve.
        self.copy_state: LayerSelectorState | None = None
        if self.copy_head is not None:
            self.copy_state = self.selector.create_layer_state(
                config.n_layers,
                1,
                config.d_model,
                self.generation_config.num_sink_tokens,
            )
        self._trace_layer = config.n_layers - 1
        self._prefilled = False
        self._position = 0

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def generate(self, prompt_ids: np.ndarray | list[int]) -> GenerationResult:
        """Autoregressively generate ``max_new_tokens`` tokens after the prompt."""
        prompt_ids = np.asarray(prompt_ids, dtype=np.int64)
        result = GenerationResult(
            prompt_length=int(prompt_ids.shape[0]), method=self.selector.name
        )
        distribution = self._prefill(prompt_ids, result)

        current_token = self._pick_token(distribution)
        logprob = float(np.log(max(distribution[current_token], 1e-30)))
        result.output_ids.append(current_token)
        result.output_logprobs.append(logprob)

        for step in range(self.generation_config.max_new_tokens - 1):
            distribution = self._decode_step(current_token, step, result)
            current_token = self._pick_token(distribution)
            result.output_ids.append(current_token)
            result.output_logprobs.append(
                float(np.log(max(distribution[current_token], 1e-30)))
            )
            result.decode_steps += 1

        self._finalise(result)
        return result

    def score_sequence(
        self, token_ids: np.ndarray | list[int], prefill_length: int
    ) -> GenerationResult:
        """Teacher-forced scoring of ``token_ids`` for perplexity evaluation.

        The first ``prefill_length`` tokens are processed as the prompt; the
        remaining tokens are fed one at a time through the decoding path (so
        that KV compression affects the predictions exactly as it would
        during generation) and the log-probability of each true next token
        is recorded.
        """
        token_ids = np.asarray(token_ids, dtype=np.int64)
        if not 0 < prefill_length < token_ids.shape[0]:
            raise ValueError(
                "prefill_length must be positive and smaller than the sequence"
            )
        result = GenerationResult(prompt_length=prefill_length, method=self.selector.name)
        distribution = self._prefill(token_ids[:prefill_length], result)

        for offset in range(prefill_length, token_ids.shape[0]):
            target = int(token_ids[offset])
            result.target_logprobs.append(
                float(np.log(max(distribution[target], 1e-30)))
            )
            if offset == token_ids.shape[0] - 1:
                break
            step = offset - prefill_length
            distribution = self._decode_step(target, step, result)
            result.decode_steps += 1

        self._finalise(result)
        return result

    # ------------------------------------------------------------------
    # prefill
    # ------------------------------------------------------------------
    def _prefill(self, prompt_ids: np.ndarray, result: GenerationResult) -> np.ndarray:
        if self._prefilled:
            raise RuntimeError("the engine has already been used; create a new one")
        self._prefilled = True
        config = self.model.config
        length = prompt_ids.shape[0]
        if length == 0:
            raise ValueError("the prompt must contain at least one token")
        positions = np.arange(length)
        hidden = self.model.embed(prompt_ids, positions)

        for layer_idx in range(config.n_layers):
            q, k, v = self.model.attention_qkv(layer_idx, hidden, positions)
            self.kv_store.append(layer_idx, k, v, step=-1)
            state = self.layer_states[layer_idx]
            if state is not None:
                state.observe_prefill(k)
            attn = full_causal_attention(q, k, v, config.softmax_scale)
            hidden = self.model.attention_output(layer_idx, hidden, attn.output)
            hidden = self.model.ffn(layer_idx, hidden)

        if self.copy_head is not None:
            copy_keys = self.copy_head.ingest(prompt_ids)
            if self.copy_state is not None:
                self.copy_state.observe_prefill(copy_keys[None, :, :])
        self._position = length

        logits = self.model.final_logits(hidden[-1:, :])[0]
        vocab_probs = softmax(logits)
        distribution = self._mix_copy(
            vocab_probs, int(prompt_ids[-1]), allowed_indices=None
        )
        return distribution

    # ------------------------------------------------------------------
    # decoding
    # ------------------------------------------------------------------
    def _decode_step(
        self, token_id: int, step: int, result: GenerationResult
    ) -> np.ndarray:
        config = self.model.config
        gen = self.generation_config
        position = self._position
        positions = np.asarray([position])
        hidden = self.model.embed(np.asarray([token_id]), positions)

        for layer_idx in range(config.n_layers):
            q, k, v = self.model.attention_qkv(layer_idx, hidden, positions)
            self.kv_store.append(layer_idx, k, v, step=step)
            state = self.layer_states[layer_idx]
            context_length = len(self.kv_store.layers[layer_idx])

            if state is not None:
                state.observe_decode(k)

            query_vectors = q[:, 0, :]  # (n_heads, head_dim)
            budget = gen.budget if gen.budget is not None else context_length
            use_selection = (
                state is not None and gen.budget is not None and budget < context_length
            )
            if use_selection:
                grouped = query_vectors.reshape(
                    config.n_kv_heads, config.group_size, config.head_dim
                )
                fetched_before = state.stats.fetched_tokens
                indices_per_head = state.select(grouped, budget, step)
                fetched_delta = state.stats.fetched_tokens - fetched_before
                self.kv_store.record_fetch(fetched_delta, step)
            else:
                indices_per_head = [
                    np.arange(context_length, dtype=np.int64)
                    for _ in range(config.n_kv_heads)
                ]
                if state is not None:
                    state.stats.selected_tokens += context_length * config.n_kv_heads
                    state.stats.num_selections += 1

            keys_sel = []
            values_sel = []
            for kv_head in range(config.n_kv_heads):
                k_sel, v_sel = self.kv_store.gather(
                    layer_idx, kv_head, indices_per_head[kv_head]
                )
                keys_sel.append(k_sel)
                values_sel.append(v_sel)

            attn = selected_attention(
                query_vectors, keys_sel, values_sel, config.softmax_scale
            )

            if gen.record_true_scores and state is not None and gen.budget is not None:
                self._record_recall(
                    result, layer_idx, step, query_vectors, indices_per_head, budget
                )
            if gen.record_attention_trace and layer_idx == self._trace_layer:
                self._record_trace(
                    result, layer_idx, step, query_vectors, indices_per_head, attn.weights
                )

            hidden = self.model.attention_output(
                layer_idx, hidden, attn.output[None, :]
            )
            hidden = self.model.ffn(layer_idx, hidden)

        allowed_indices = self._update_copy_head(token_id, step)
        self._position += 1

        logits = self.model.final_logits(hidden)[0]
        vocab_probs = softmax(logits)
        return self._mix_copy(vocab_probs, token_id, allowed_indices)

    def _update_copy_head(self, token_id: int, step: int) -> np.ndarray | None:
        """Ingest the current token into the pointer head and select its context.

        Returns the indices the pointer head may attend to at this step
        (``None`` means the full history, i.e. no compression).
        """
        if self.copy_head is None:
            return None
        gen = self.generation_config
        copy_keys = self.copy_head.ingest(np.asarray([token_id]))
        if self.copy_state is None:
            return None
        self.copy_state.observe_decode(copy_keys[None, :, :])
        history = len(self.copy_head)
        if gen.budget is None or gen.budget >= history:
            self.copy_state.stats.selected_tokens += history
            self.copy_state.stats.num_selections += 1
            return None
        query = self.copy_head.current_signature()
        selections = self.copy_state.select(query[None, None, :], gen.budget, step)
        return selections[0]

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------
    def _mix_copy(
        self,
        vocab_probs: np.ndarray,
        current_token_id: int,
        allowed_indices: np.ndarray | None,
    ) -> np.ndarray:
        if self.copy_head is None:
            return vocab_probs
        copy_dist = self.copy_head.copy_distribution(
            current_token_id, allowed_indices=allowed_indices
        )
        if copy_dist is None:
            return vocab_probs
        return mix_distributions(copy_dist, vocab_probs, self.model.config.copy_gate)

    def _pick_token(self, distribution: np.ndarray) -> int:
        if self.generation_config.greedy:
            return greedy_sample(distribution)
        return temperature_sample(
            distribution, self._rng, self.generation_config.temperature
        )

    def _record_recall(
        self,
        result: GenerationResult,
        layer_idx: int,
        step: int,
        query_vectors: np.ndarray,
        indices_per_head: list[np.ndarray],
        budget: int,
    ) -> None:
        config = self.model.config
        keys = self.kv_store.keys(layer_idx)
        context_length = keys.shape[1]
        effective_budget = min(budget, context_length)
        grouped = query_vectors.reshape(
            config.n_kv_heads, config.group_size, config.head_dim
        ).sum(axis=1)
        for kv_head in range(config.n_kv_heads):
            true_scores = keys[kv_head] @ grouped[kv_head]
            true_top = top_k_indices(true_scores, effective_budget)
            selected = set(indices_per_head[kv_head].tolist())
            hits = sum(1 for index in true_top.tolist() if index in selected)
            recall = hits / max(1, true_top.shape[0])
            result.recall_records.append(
                RecallRecord(
                    step=step,
                    layer=layer_idx,
                    head=kv_head,
                    budget=effective_budget,
                    recall=recall,
                )
            )

    def _record_trace(
        self,
        result: GenerationResult,
        layer_idx: int,
        step: int,
        query_vectors: np.ndarray,
        indices_per_head: list[np.ndarray],
        attention_weights: list[np.ndarray] | None,
    ) -> None:
        config = self.model.config
        keys = self.kv_store.keys(layer_idx)
        grouped = query_vectors.reshape(
            config.n_kv_heads, config.group_size, config.head_dim
        ).sum(axis=1)
        true_scores = [keys[kv_head] @ grouped[kv_head] for kv_head in range(config.n_kv_heads)]
        # Average the per-query-head weights inside each kv group so the trace
        # has one weight vector per kv head, aligned with its selected indices.
        kv_weights: list[np.ndarray] = []
        if attention_weights is not None:
            for kv_head in range(config.n_kv_heads):
                group_slice = attention_weights[
                    kv_head * config.group_size : (kv_head + 1) * config.group_size
                ]
                kv_weights.append(np.mean(np.stack(group_slice, axis=0), axis=0))
        result.attention_trace.append(
            StepAttentionRecord(
                step=step,
                layer=layer_idx,
                selected_indices=[idx.copy() for idx in indices_per_head],
                attention_weights=kv_weights,
                true_scores=true_scores,
            )
        )

    def _finalise(self, result: GenerationResult) -> None:
        merged = SelectorStats()
        states: list[tuple[int, LayerSelectorState]] = [
            (layer_idx, state)
            for layer_idx, state in enumerate(self.layer_states)
            if state is not None
        ]
        if self.copy_state is not None:
            states.append((self.model.config.n_layers, self.copy_state))
        for layer_idx, state in states:
            result.per_layer_stats[layer_idx] = state.stats
            merged = merged.merge(state.stats)
        result.selector_stats = merged
        result.ledger = self.offload.ledger
        result.kv_cache_bytes = self.kv_store.total_nbytes()
        hit_rates = [
            state.cache_hit_rate()
            for _, state in states
            if hasattr(state, "cache_hit_rate")
        ]
        result.cache_hit_rate = float(np.mean(hit_rates)) if hit_rates else 0.0
