"""Attention computation with pluggable token selection.

Two entry points are provided:

* :func:`full_causal_attention` — exact causal attention used during prefill
  (compression only applies to decoding, matching the paper's system).
* :func:`selected_attention` — single-query attention restricted to the
  tokens selected by a KV compression method, i.e. the approximation
  ``softmax(q K_S^T / sqrt(d)) V_S`` of paper Sec. II-B.

Grouped-query attention is supported: ``n_heads`` query heads share
``n_kv_heads`` key/value heads in contiguous groups.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .tensor_ops import causal_mask, masked_fill, softmax

__all__ = ["AttentionOutput", "full_causal_attention", "selected_attention"]


@dataclass
class AttentionOutput:
    """Result of one attention computation.

    Attributes
    ----------
    output:
        Concatenated per-head outputs; ``(T, n_heads * head_dim)`` for
        prefill or ``(n_heads * head_dim,)`` for single-token decode.
    weights:
        Per-query-head attention weights.  For decode this is a list of
        ``n_heads`` arrays aligned with the selected indices of the
        corresponding kv head; for prefill it is ``None`` unless explicitly
        requested (full weight tensors are large).
    """

    output: np.ndarray
    weights: list[np.ndarray] | None = None


def _check_group(n_heads: int, n_kv_heads: int) -> int:
    if n_heads % n_kv_heads != 0:
        raise ValueError(
            f"n_heads ({n_heads}) must be divisible by n_kv_heads ({n_kv_heads})"
        )
    return n_heads // n_kv_heads


def full_causal_attention(
    queries: np.ndarray,
    keys: np.ndarray,
    values: np.ndarray,
    scale: float,
    return_weights: bool = False,
) -> AttentionOutput:
    """Exact causal attention over the whole sequence.

    Parameters
    ----------
    queries:
        ``(n_heads, T_q, head_dim)``.
    keys, values:
        ``(n_kv_heads, T_k, head_dim)``; ``T_q <= T_k`` and the queries are
        the last ``T_q`` positions.
    scale:
        Softmax scale (``1/sqrt(head_dim)``).
    return_weights:
        When True, attention weights ``(n_heads, T_q, T_k)`` are also
        returned (used by the motivation analyses).
    """
    queries = np.asarray(queries, dtype=np.float64)
    keys = np.asarray(keys, dtype=np.float64)
    values = np.asarray(values, dtype=np.float64)
    n_heads, t_q, head_dim = queries.shape
    n_kv_heads, t_k, _ = keys.shape
    group = _check_group(n_heads, n_kv_heads)

    mask = causal_mask(t_q, t_k)
    outputs = np.empty((n_heads, t_q, head_dim))
    all_weights = np.empty((n_heads, t_q, t_k)) if return_weights else None
    for head in range(n_heads):
        kv_head = head // group
        scores = (queries[head] @ keys[kv_head].T) * scale
        scores = masked_fill(scores, mask)
        weights = softmax(scores, axis=-1)
        outputs[head] = weights @ values[kv_head]
        if all_weights is not None:
            all_weights[head] = weights

    stacked = np.transpose(outputs, (1, 0, 2)).reshape(t_q, n_heads * head_dim)
    weights_list = None
    if all_weights is not None:
        weights_list = [all_weights[head] for head in range(n_heads)]
    return AttentionOutput(output=stacked, weights=weights_list)


def selected_attention(
    queries: np.ndarray,
    keys_per_kv_head: list[np.ndarray],
    values_per_kv_head: list[np.ndarray],
    scale: float,
) -> AttentionOutput:
    """Single-token attention restricted to selected KV entries.

    Parameters
    ----------
    queries:
        ``(n_heads, head_dim)`` query vectors of the current token.
    keys_per_kv_head / values_per_kv_head:
        One ``(S_h, head_dim)`` array per kv head containing the keys and
        values of the tokens selected for that head (``S_h`` may differ
        between heads — semantic clusters have variable sizes).
    scale:
        Softmax scale.

    Returns
    -------
    AttentionOutput
        Output of shape ``(n_heads * head_dim,)`` and per-query-head
        attention weights aligned with each kv head's selected tokens.
    """
    queries = np.asarray(queries, dtype=np.float64)
    n_heads, head_dim = queries.shape
    n_kv_heads = len(keys_per_kv_head)
    group = _check_group(n_heads, n_kv_heads)

    # All query heads of one kv group attend to the same selected tokens, so
    # their scores and outputs are computed with one GEMM per kv head rather
    # than one GEMV per query head — this is the decode hot path.
    output = np.empty((n_heads, head_dim))
    weights_list: list[np.ndarray] = []
    for kv_head in range(n_kv_heads):
        keys = np.asarray(keys_per_kv_head[kv_head], dtype=np.float64)
        values = np.asarray(values_per_kv_head[kv_head], dtype=np.float64)
        if keys.shape[0] == 0:
            raise ValueError(f"kv head {kv_head} has no selected tokens")
        group_queries = queries[kv_head * group : (kv_head + 1) * group]
        scores = (group_queries @ keys.T) * scale
        weights = softmax(scores, axis=-1)
        output[kv_head * group : (kv_head + 1) * group] = weights @ values
        weights_list.extend(weights[i] for i in range(group))
    return AttentionOutput(output=output.reshape(-1), weights=weights_list)
